//! # chronos-suite
//!
//! The one-import facade over the Chronos reproduction workspace. Examples
//! and integration tests use this crate; library users may prefer to
//! depend on the individual crates directly:
//!
//! * [`math`] (`chronos-math`) — numerics substrate.
//! * [`rf`] (`chronos-rf`) — Wi-Fi/RF substrate and the Intel 5300 model.
//! * [`link`] (`chronos-link`) — hopping protocol, airtime arbitration and
//!   traffic models.
//! * [`core`] (`chronos-core`) — the Chronos time-of-flight estimator,
//!   shared plan cache, and the multi-client ranging service.
//! * [`drone`] (`chronos-drone`) — the personal-drone application.
//!
//! For the design document (crate map, CSI→ToF data flow, the
//! `PlanCache`/`RangingService` layer), see `docs/ARCHITECTURE.md`.
//!
//! ## Quickstart
//!
//! ```
//! use chronos_suite::core::config::ChronosConfig;
//! use chronos_suite::core::session::ChronosSession;
//! use chronos_suite::link::time::Instant;
//! use chronos_suite::rf::csi::MeasurementContext;
//! use chronos_suite::rf::environment::Environment;
//! use chronos_suite::rf::geometry::Point;
//! use chronos_suite::rf::hardware::Intel5300;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let ctx = MeasurementContext::new(
//!     Environment::free_space(),
//!     Intel5300::mobile(&mut rng),
//!     Point::new(0.0, 0.0),
//!     Intel5300::laptop(&mut rng),
//!     Point::new(3.0, 0.0),
//! );
//! let mut session = ChronosSession::new(ctx, ChronosConfig::default());
//! session.calibrate(&mut rng, 2);
//! let out = session.sweep(&mut rng, Instant::ZERO);
//! let d = out.mean_distance_m().expect("estimate");
//! assert!((d - 3.0).abs() < 0.5, "estimated {d} m");
//! ```

pub use chronos_core as core;
pub use chronos_drone as drone;
pub use chronos_link as link;
pub use chronos_math as math;
pub use chronos_rf as rf;
