#!/usr/bin/env bash
# Relative-link checker for README.md and docs/*.md.
#
# Extracts every markdown link target that is not an absolute URL or an
# in-page anchor and verifies the referenced path exists relative to the
# linking file's directory (anchors on existing files are accepted;
# anchor names themselves are not validated). Exits non-zero listing
# every broken link, so documentation satellites cannot rot silently.
#
# Usage: scripts/check-docs-links.sh [file-or-dir ...]
#        (defaults to README.md and docs/ at the repo root)
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

targets=("$@")
if [ ${#targets[@]} -eq 0 ]; then
    targets=(README.md docs)
fi

files=()
for t in "${targets[@]}"; do
    if [ -d "$t" ]; then
        while IFS= read -r f; do files+=("$f"); done \
            < <(find "$t" -name '*.md' -type f | sort)
    elif [ -f "$t" ]; then
        files+=("$t")
    else
        echo "check-docs-links: no such file or directory: $t" >&2
        exit 2
    fi
done

broken=0
checked=0
for f in "${files[@]}"; do
    dir="$(dirname "$f")"
    # Markdown inline links: [text](target). One match per line is
    # enough for our docs; code fences with parens don't match the
    # ](...) shape unless they really are links.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        # GitHub resolves markdown links relative to the linking file's
        # directory — no repo-root fallback, or root-relative links that
        # render broken would pass the check.
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN: $f -> $target"
            broken=$((broken + 1))
        fi
    done < <(grep -o '](\([^)]*\))' "$f" 2>/dev/null | sed 's/^](//; s/)$//')
done

if [ "$broken" -gt 0 ]; then
    echo "check-docs-links: $broken broken link(s) of $checked checked" >&2
    exit 1
fi
echo "check-docs-links: $checked relative link(s) OK across ${#files[@]} file(s)"
