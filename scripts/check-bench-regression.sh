#!/usr/bin/env bash
# Benchmark-regression gate: rerun the quick position-tracking scenarios
# and fail when any metric regresses >20% against the checked-in
# BENCH_position.json baseline.
#
# The scenarios are fully deterministic (seeded), so the comparison gates
# on real algorithmic drift, not run-to-run noise. On an *intentional*
# change, regenerate and commit the baseline:
#
#   cargo run --release -p chronos-bench --bin bench_position -- --quick
#
# Usage: scripts/check-bench-regression.sh [baseline.json]
set -euo pipefail

cd "$(dirname "$0")/.."
baseline="${1:-BENCH_position.json}"

if [[ ! -f "$baseline" ]]; then
    echo "missing baseline $baseline (generate with: cargo run --release -p chronos-bench --bin bench_position -- --quick)" >&2
    exit 1
fi

exec cargo run --release -p chronos-bench --bin bench_position -- \
    --quick --check "$baseline" --tolerance 0.20
