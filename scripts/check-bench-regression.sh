#!/usr/bin/env bash
# Benchmark-regression gates:
#
#  1. Position tracking: rerun the quick position scenarios and fail when
#     any metric regresses >20% against the checked-in
#     BENCH_position.json baseline. Fully deterministic (seeded).
#  2. Sweep-pipeline throughput: rerun the quick N=8 estimation
#     benchmark — with the `simd` feature, the configuration the
#     baseline is recorded under — and fail when the pipeline's speedup
#     over the pre-refactor reference solver regresses >20% (or drops
#     below the absolute 3.0x floor; re-baselined from 1.2x when the
#     lane-chunked SoA solver kernels landed), or when allocs/sweep
#     increases AT ALL — the zero-allocation contract gates exactly,
#     not within a tolerance, and on the fix_pool rows it gates the
#     persistent pool's *worker-side* allocation counter. Wall-clock
#     sweeps/s columns are informational (they depend on the host);
#     only the portable ratio/alloc metrics gate. The speedup is
#     measured paired (reference and pipeline alternate call-by-call,
#     per-client minimum over rounds), so host contention cancels out
#     of the ratio instead of tripping the gate.
#  3. Adversarial detection: rerun the quick replay/inject/jam attack
#     matrix and fail when detection latency (or honest-client error)
#     regresses >20%, or the quarantined rate drops >20%, against the
#     checked-in BENCH_adversarial.json baseline. Fully deterministic
#     (seeded), so the gate trips on real drift, not noise.
#  4. Overload soak: rerun the quick 1x-5x load matrix through the
#     bounded ingestion front-end and fail when the admitted-fix rate
#     drops >20%, shedding/deferrals or honest-client error grow >20%,
#     or any exact column (offered sweeps, queue peaks) drifts at all,
#     against the checked-in BENCH_soak.json baseline. The queue sheds
#     as a pure function of the arrival sequence, so drift is a real
#     scheduling change, never noise.
#  5. Fleet capacity: rerun the quick 16-AP / 1000-roaming-client
#     TDoA-vs-round-trip comparison plus the shard-scaling rows
#     (fleet_shard_w1/w2/w4 — serial loop vs pool-parallel shard
#     windows) and fail when per-client fix rate drops >20%, position
#     error or handoff-gap sweeps grow >20%, or any exact column
#     (AP/client/window/worker counts, handoffs, and the steady-state
#     worker_allocs counter, which gates the shard path at exactly 0)
#     drifts at all, against the checked-in BENCH_fleet.json baseline.
#     The speedup_vs_serial column is informational only (CI hosts vary
#     in core count). The bench itself also asserts the headline claim
#     (TDoA >= 2x fixes/s per client at <= 1.5x the error) and that
#     every worker count replays the serial loop's reports
#     digest-identically, before writing or checking anything.
#
# On an *intentional* change, regenerate and commit the baselines:
#
#   cargo run --release -p chronos-bench --bin bench_position -- --quick
#   cargo run --release -p chronos-bench --bin bench_throughput \
#       --features chronos-core/simd -- --quick
#   cargo run --release -p chronos-bench --bin bench_adversarial -- --quick
#   cargo run --release -p chronos-bench --bin bench_soak -- --quick
#   cargo run --release -p chronos-bench --bin bench_fleet -- --quick
#
# Usage: scripts/check-bench-regression.sh \
#            [position-baseline.json [throughput-baseline.json \
#            [adversarial-baseline.json [soak-baseline.json \
#            [fleet-baseline.json]]]]]
set -euo pipefail

cd "$(dirname "$0")/.."
position_baseline="${1:-BENCH_position.json}"
throughput_baseline="${2:-BENCH_throughput.json}"
adversarial_baseline="${3:-BENCH_adversarial.json}"
soak_baseline="${4:-BENCH_soak.json}"
fleet_baseline="${5:-BENCH_fleet.json}"

for baseline in "$position_baseline" "$throughput_baseline" \
        "$adversarial_baseline" "$soak_baseline" "$fleet_baseline"; do
    if [[ ! -f "$baseline" ]]; then
        echo "missing baseline $baseline (generate with the commands in this script's header)" >&2
        exit 1
    fi
done

cargo run --release -p chronos-bench --bin bench_position -- \
    --quick --check "$position_baseline" --tolerance 0.20

cargo run --release -p chronos-bench --bin bench_throughput \
    --features chronos-core/simd -- \
    --quick --check "$throughput_baseline" --tolerance 0.20

cargo run --release -p chronos-bench --bin bench_adversarial -- \
    --quick --check "$adversarial_baseline" --tolerance 0.20

cargo run --release -p chronos-bench --bin bench_soak -- \
    --quick --check "$soak_baseline" --tolerance 0.20

exec cargo run --release -p chronos-bench --bin bench_fleet -- \
    --quick --check "$fleet_baseline" --tolerance 0.20
