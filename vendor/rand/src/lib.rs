//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim provides exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded via
//!   SplitMix64 (high-quality, fast, and reproducible across platforms;
//!   it does **not** match upstream `StdRng`'s ChaCha12 streams, which is
//!   fine because every consumer in this workspace seeds explicitly and
//!   only relies on determinism, not on specific streams).
//! * [`SeedableRng::seed_from_u64`].
//! * [`Rng::gen`] for `f64`/`f32`/`bool` and [`Rng::gen_range`] over
//!   half-open ranges of floats and the common integer types.
//!
//! No thread-local generators, no OS entropy: everything is explicitly
//! seeded, which suits a simulation workspace where reproducibility is a
//! feature.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator ("Standard"
/// distribution in upstream rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges a generator can sample from (upstream `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + (self.end - self.start) * u;
                // Floating rounding can land exactly on `end`; nudge back in.
                if v >= self.end {
                    <$t>::max(
                        self.start,
                        self.end - (self.end - self.start) * <$t>::EPSILON,
                    )
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    };
}
float_range!(f64);
float_range!(f32);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // for the span sizes simulations use.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    };
}
int_range!(usize);
int_range!(u64);
int_range!(u32);
int_range!(u16);
int_range!(u8);
int_range!(i64);
int_range!(i32);
int_range!(i16);

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded by SplitMix64 expansion of a 64-bit seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>().to_bits(), c.gen::<f64>().to_bits());
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&x));
            let k = rng.gen_range(2usize..9);
            assert!((2..9).contains(&k));
            let q = rng.gen_range(0u16..u16::MAX);
            assert!(q < u16::MAX);
        }
    }

    #[test]
    fn unsized_dyn_receiver_compiles() {
        fn takes_dyn<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = takes_dyn(&mut rng);
    }
}
