//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Backed by plain `Vec<u8>`: this workspace only uses `bytes` for tiny
//! protocol frames, so zero-copy reference counting would buy nothing.
//! Provided surface: [`Bytes`], [`BytesMut`], the big-endian `put_*`
//! writers of [`BufMut`], and the big-endian `get_*` readers of [`Buf`]
//! for `&[u8]`.

use std::ops::Deref;

/// An immutable byte buffer (shim: owned `Vec<u8>`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer (shim: owned `Vec<u8>`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side buffer operations (big-endian, matching upstream defaults).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side buffer operations (big-endian). Reading advances the buffer.
///
/// # Panics
/// Like upstream `bytes`, the `get_*` methods panic when fewer than the
/// required bytes remain; check [`Buf::remaining`] first for strict
/// parsing.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf: advancing past the end");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_be_fields() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0x43);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 7);
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0x43);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_reader_advances() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.get_u16(), 0x0203);
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "advancing past the end")]
    fn overread_panics() {
        let mut r: &[u8] = &[1u8];
        let _ = r.get_u32();
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let b = Bytes::copy_from_slice(&[9, 8, 7]);
        assert_eq!(&b[..2], &[9, 8]);
        assert_eq!(b.to_vec(), vec![9, 8, 7]);
    }
}
