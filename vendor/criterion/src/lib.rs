//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Implements the surface the workspace's benches use — `criterion_group!`
//! / `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`]
//! and [`Bencher::iter`] — with a straightforward measurement loop:
//! warm up briefly, then time `sample_size` samples and report
//! min / median / max per-iteration latency plus derived throughput.
//!
//! No statistical regression analysis, HTML reports, or plotting; the
//! output is one console line per benchmark, which is what CI and the
//! PR-description numbers consume.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} \u{b5}s", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Identifies a benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds a bare parameterless id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Collected per-iteration times, nanoseconds.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until 3 iterations or 100 ms, whichever first, and
        // estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 && warm_start.elapsed() < Duration::from_millis(100) {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Per-sample iteration count so the whole measurement fits the
        // time budget.
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let per_sample = ((budget_ns / self.sample_size as f64) / est_ns).floor() as u64;
        let per_sample = per_sample.clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(f());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / per_sample as f64);
        }
    }

    fn report(&self, full_id: &str) {
        if self.samples_ns.is_empty() {
            println!("{full_id:<50} (no samples)");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = s[0];
        let med = s[s.len() / 2];
        let max = s[s.len() - 1];
        println!(
            "{full_id:<50} time: [{} {} {}]   ({:.2} iters/s)",
            fmt_ns(min),
            fmt_ns(med),
            fmt_ns(max),
            1e9 / med,
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Overrides the time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group (separator line, mirroring upstream's summary).
    pub fn finish(&mut self) {
        let _ = self.criterion;
        println!();
    }
}

/// Top-level benchmark harness configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&id.id);
        self
    }

    /// Upstream prints a final summary; the shim has nothing to add.
    pub fn final_summary(&mut self) {}
}

/// Re-export matching upstream's hint (benches may use either path).
pub use std::hint::black_box;

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, n| {
            b.iter(|| (0..*n).sum::<usize>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(30));
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
