//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the pattern the workspace's property tests use:
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     #[test]
//!     fn my_property(x in 0.0f64..1.0, n in 4usize..80) { ... }
//! }
//! ```
//!
//! Each property becomes a plain `#[test]` that samples its strategies
//! `cases` times from a generator seeded by the test's name — fully
//! deterministic across runs and platforms. There is no shrinking: a
//! failing case panics with the sampled values still recoverable from the
//! assertion message, which has proven sufficient for these numeric
//! properties.

/// Strategies: value generators over ranges and collections.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps drawn values through `f` (`proptest`'s combinator of the
        /// same name).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy whose values are mapped through a function.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// The constant strategy: always yields a clone of its value.
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-valued strategies (the expansion of
    /// [`prop_oneof!`](crate::prop_oneof); the real crate's arm weights
    /// are approximated by repeating an arm).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; drawing picks one arm uniformly.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "empty strategy union");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let n = self.arms.len() as u128;
            let i = ((rng.next_u64() as u128 * n) >> 64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Boxes a strategy for storage in a [`Union`] (helper behind
    /// [`prop_oneof!`](crate::prop_oneof), where a cast to
    /// `Box<dyn Strategy<Value = _>>` could not infer the value type).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(S0 / s0, S1 / s1);
    tuple_strategy!(S0 / s0, S1 / s1, S2 / s2);
    tuple_strategy!(S0 / s0, S1 / s1, S2 / s2, S3 / s3);
    tuple_strategy!(S0 / s0, S1 / s1, S2 / s2, S3 / s3, S4 / s4);
    tuple_strategy!(S0 / s0, S1 / s1, S2 / s2, S3 / s3, S4 / s4, S5 / s5);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! int_strategy {
        ($t:ty) => {
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        };
    }
    int_strategy!(usize);
    int_strategy!(u64);
    int_strategy!(u32);
    int_strategy!(u16);
    int_strategy!(u8);
    int_strategy!(i64);
    int_strategy!(i32);
    int_strategy!(i16);
    int_strategy!(i8);

    /// Strategy for `Vec<T>` with a size drawn from a range.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Runner configuration and the deterministic test generator.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of sampled cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator (SplitMix64) used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The things property tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies yielding the same value type
/// (shim: no weight syntax — repeat an arm to weight it).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]. Captured attributes (doc comments
/// and the `#[test]` marker) are dropped; the expansion adds its own
/// `#[test]`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$_meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Floats land in range.
        #[test]
        fn float_ranges(x in -2.0f64..3.0) {
            prop_assert!((-2.0..3.0).contains(&x));
        }

        /// Integers land in range, vectors respect sizes.
        #[test]
        fn ints_and_vecs(
            n in 1usize..7,
            v in collection::vec(0.0f64..1.0, 2..9),
        ) {
            prop_assert!((1..7).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Tuples, `prop_map`, `Just` and `prop_oneof!` compose.
        #[test]
        fn combinators_compose(
            pair in (0usize..5, 10usize..20).prop_map(|(a, b)| a + b),
            pick in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
        ) {
            prop_assert!((10..25).contains(&pair));
            prop_assert!((1..5).contains(&pick));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
