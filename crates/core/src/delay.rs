//! Per-packet arrival-delay estimation from cross-subcarrier phase slope.
//!
//! The measured phase across a band's subcarriers is (paper Eq. 6)
//!
//! ```text
//! angle(h~_{i,k}) = -2 pi f_{i,k} tau - 2 pi (f_{i,k} - f_{i,0}) delta_i
//! ```
//!
//! so the *slope* of phase against baseband frequency encodes the packet's
//! total arrival delay `tau + delta_i` (propagation plus detection). The
//! paper uses exactly this to measure detection delay per packet for its
//! Fig. 7(c): subtract the Chronos time-of-flight from the slope-derived
//! arrival delay and what is left is the detection delay.

use crate::error::ChronosError;
use chronos_math::lstsq::linear_lstsq;
use chronos_math::matrix::Mat;
use chronos_math::unwrap::unwrap_in_place;
use chronos_rf::csi::CsiCapture;

/// Estimates the total arrival delay (`tau + delta + hardware`) of one
/// capture in nanoseconds, from the unwrapped phase slope across
/// subcarriers, via linear least squares.
pub fn arrival_delay_ns(capture: &CsiCapture) -> Result<f64, ChronosError> {
    let n = capture.csi.len();
    if n != capture.layout.len() {
        return Err(ChronosError::BadCapture("csi length != layout length"));
    }
    if n < 3 {
        return Err(ChronosError::BadCapture("too few subcarriers"));
    }
    if capture.csi.iter().any(|z| !z.is_finite()) {
        return Err(ChronosError::BadCapture("non-finite CSI values"));
    }
    let offsets = capture.layout.baseband_offsets();
    let mut phases: Vec<f64> = capture.csi.iter().map(|z| z.arg()).collect();
    unwrap_in_place(&mut phases);

    // Fit phase = slope * f_offset + intercept.
    let mut a = Mat::zeros(n, 2);
    for (i, f) in offsets.iter().enumerate() {
        a[(i, 0)] = *f;
        a[(i, 1)] = 1.0;
    }
    let sol =
        linear_lstsq(&a, &phases).map_err(|_| ChronosError::BadCapture("degenerate phase fit"))?;
    let slope = sol[0]; // radians per Hz
    Ok(-slope / (2.0 * std::f64::consts::PI) * 1e9)
}

/// Estimates the detection delay of a capture given an independent
/// time-of-flight estimate (e.g. from the full Chronos pipeline) and the
/// calibrated hardware delay, in nanoseconds.
pub fn detection_delay_ns(
    capture: &CsiCapture,
    tof_ns: f64,
    hardware_ns: f64,
) -> Result<f64, ChronosError> {
    Ok(arrival_delay_ns(capture)? - tof_ns - hardware_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::bands::band_by_channel;
    use chronos_rf::csi::MeasurementContext;
    use chronos_rf::environment::Environment;
    use chronos_rf::geometry::Point;
    use chronos_rf::hardware::{ideal_device, AntennaArray};
    use chronos_rf::ofdm::SubcarrierLayout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx(distance_m: f64, delay_ns: f64, delay_std: f64) -> MeasurementContext {
        let mut di = ideal_device(AntennaArray::single());
        let mut dr = ideal_device(AntennaArray::single());
        di.detection_delay.median_ns = delay_ns;
        di.detection_delay.std_ns = delay_std;
        dr.detection_delay.median_ns = delay_ns;
        dr.detection_delay.std_ns = delay_std;
        let mut c = MeasurementContext::new(
            Environment::free_space(),
            di,
            Point::new(0.0, 0.0),
            dr,
            Point::new(distance_m, 0.0),
        );
        c.snr.snr_at_1m_db = 300.0;
        c
    }

    #[test]
    fn arrival_delay_recovers_tof_plus_delta() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = 6.0;
        let delta = 177.0;
        let c = ctx(d, delta, 0.0);
        let band = band_by_channel(52).unwrap();
        let layout = SubcarrierLayout::intel5300();
        let m = c.measure_pair(&mut rng, &band, &layout, 0, 0, 0.0);
        let est = arrival_delay_ns(&m.forward).unwrap();
        let expected = m.truth_tof_ns + m.forward.truth_detection_delay_ns;
        assert!(
            (est - expected).abs() < 0.5,
            "est {est} expected {expected}"
        );
    }

    #[test]
    fn detection_delay_extraction() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = 4.0;
        let c = ctx(d, 200.0, 20.0);
        let band = band_by_channel(120).unwrap();
        let layout = SubcarrierLayout::intel5300();
        for i in 0..20 {
            let m = c.measure_pair(&mut rng, &band, &layout, 0, 0, i as f64 * 1e-3);
            let est = detection_delay_ns(&m.forward, m.truth_tof_ns, 0.0).unwrap();
            assert!(
                (est - m.forward.truth_detection_delay_ns).abs() < 0.5,
                "est {est} truth {}",
                m.forward.truth_detection_delay_ns
            );
        }
    }

    #[test]
    fn delay_statistics_across_packets_match_model() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = ctx(5.0, 177.0, 24.76);
        let band = band_by_channel(149).unwrap();
        let layout = SubcarrierLayout::intel5300();
        let mut estimates = Vec::new();
        for i in 0..300 {
            let m = c.measure_pair(&mut rng, &band, &layout, 0, 0, i as f64 * 1e-3);
            estimates.push(detection_delay_ns(&m.forward, m.truth_tof_ns, 0.0).unwrap());
        }
        let median = chronos_math::stats::median(&estimates);
        let std = chronos_math::stats::std_dev(&estimates);
        assert!((median - 177.0).abs() < 5.0, "median {median}");
        assert!((std - 24.76).abs() < 5.0, "std {std}");
    }

    #[test]
    fn rejects_tiny_captures() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = ctx(3.0, 100.0, 0.0);
        let band = band_by_channel(36).unwrap();
        let layout = SubcarrierLayout::intel5300();
        let mut cap = c.measure_pair(&mut rng, &band, &layout, 0, 0, 0.0).forward;
        cap.csi.truncate(2);
        assert!(arrival_delay_ns(&cap).is_err());
    }

    #[test]
    fn multipath_biases_but_does_not_break_slope() {
        // With multipath the slope picks up a (bounded) bias toward the
        // power-weighted mean delay; it must stay within the delay spread.
        let mut rng = StdRng::seed_from_u64(5);
        let mut env = Environment::free_space();
        env.add_room(
            0.0,
            0.0,
            20.0,
            20.0,
            chronos_rf::environment::Material::Concrete,
        );
        let mut di = ideal_device(AntennaArray::single());
        let mut dr = ideal_device(AntennaArray::single());
        di.detection_delay.median_ns = 150.0;
        dr.detection_delay.median_ns = 150.0;
        let mut c =
            MeasurementContext::new(env, di, Point::new(4.0, 10.0), dr, Point::new(14.0, 10.0));
        c.snr.snr_at_1m_db = 300.0;
        let band = band_by_channel(100).unwrap();
        let layout = SubcarrierLayout::intel5300();
        let m = c.measure_pair(&mut rng, &band, &layout, 0, 0, 0.0);
        let est = arrival_delay_ns(&m.forward).unwrap();
        let lo = m.truth_tof_ns + m.forward.truth_detection_delay_ns - 5.0;
        let hi = m.truth_tof_ns + m.forward.truth_detection_delay_ns + 120.0;
        assert!(est > lo && est < hi, "est {est} outside [{lo}, {hi}]");
    }
}
