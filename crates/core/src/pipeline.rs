//! The zero-allocation sweep pipeline: a per-worker scratch arena for the
//! estimation hot path.
//!
//! PR 4's event engine issues sweeps continuously, which made per-sweep
//! allocation the dominant self-inflicted cost of the estimator: every
//! call re-allocated its way through splice → NDFT/ISTA → profile →
//! first-peak → localization (fresh `Vec`s per FISTA iteration, per-call
//! buffers in `tof`/`profile`, a fresh Gauss–Newton workspace per fix).
//! [`EstimatorScratch`] owns every one of those intermediates; a
//! [`SweepPipeline`] wraps the scratch and is allocated **once per engine
//! worker**, so steady-state TRACK estimation performs **zero heap
//! allocations** (asserted by the counting-allocator test in
//! `tests/alloc.rs`) and outputs stay **bitwise identical** to the
//! allocating path (the golden capture in `tests/engine.rs` and a
//! proptest pin this).
//!
//! The scratch also memoizes the `Arc`s of the shared NDFT/spline plans
//! it has used, so the per-sweep [`crate::plan::PlanCache`] lookup (which
//! must build a hashing key) is amortized away entirely: a worker
//! serving clients on one band plan touches the cache once, ever.
//!
//! See `docs/PIPELINE.md` for the scratch lifecycle, the batching story
//! and the exact boundary of the zero-alloc contract.

use crate::error::ChronosError;
use crate::ista::{DebiasScratch, IstaScratch};
use crate::localization::{AntennaRange, LocalizerConfig, LocateScratch, Position};
use crate::ndft::TauGrid;
use crate::plan::NdftPlan;
use crate::profile::RefineScratch;
use crate::quirk::BandGroupSamples;
use crate::reciprocity::BandProduct;
use crate::session::{ChronosSession, SweepOutput};
use crate::tof::{BandSample, GroupEstimate, GroupFix, TofEstimate, TofEstimator, TofFix};
use chronos_link::sweep::SweepConfig;
use chronos_link::time::Instant;
use chronos_math::peaks::Peak;
use chronos_math::spline::SplinePlan;
use chronos_math::Complex64;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Ceiling on the per-worker plan memos (NDFT and spline): a worker
/// serving more distinct (bands, grid) combinations than this falls
/// back to the shared [`crate::plan::PlanCache`] instead of growing —
/// and linearly scanning — its memo forever. Generous relative to real
/// deployments (full plan + a few subset sizes per worker).
pub(crate) const PLAN_MEMO_CAP: usize = 32;

/// One memoized NDFT plan: the key parts the estimator looks plans up
/// by, plus the shared plan itself.
#[derive(Debug, Clone)]
pub(crate) struct PlanMemo {
    pub(crate) freqs: Vec<f64>,
    pub(crate) grid: TauGrid,
    pub(crate) lobe_span: f64,
    pub(crate) plan: Arc<NdftPlan>,
}

/// Working buffers of the first-path selector (`tof::select_first_path`):
/// the CLEANed models, ghost hypotheses, matched-filter residuals and
/// peak lists.
#[derive(Debug, Clone, Default)]
pub(crate) struct SelectScratch {
    /// Forward-image buffer for residual-energy evaluations.
    pub(crate) fit: Vec<Complex64>,
    /// Masked model (candidate neighborhood zeroed).
    pub(crate) model: Vec<Complex64>,
    /// Ghost-source hypothesis model.
    pub(crate) hyp: Vec<Complex64>,
    /// CLEANed measurement residual.
    pub(crate) residual: Vec<Complex64>,
    /// Quiet-zone matched-filter samples.
    pub(crate) quiet: Vec<f64>,
    /// Clustered grating-lobe offsets.
    pub(crate) clusters: Vec<f64>,
    /// Debias output buffer for the model-comparison refits.
    pub(crate) debias_out: Vec<Complex64>,
    /// Peak-finder candidate working storage.
    pub(crate) peak_cands: Vec<Peak>,
    /// All dominant peaks of the profile.
    pub(crate) peaks_all: Vec<Peak>,
    /// Dominant peaks past the physical-prior cutoff.
    pub(crate) peaks: Vec<Peak>,
}

/// Every intermediate buffer of the estimation hot path — unwrap/splice
/// products, NDFT/ISTA iterates, profile magnitudes and peaks,
/// first-path selection models, CLEAN refinement, Gauss–Newton
/// localization workspaces — allocated once and reused across sweeps.
///
/// Buffers grow to the largest problem seen (an ACQUIRE full-plan sweep)
/// and then stop allocating; TRACK-mode subset sweeps always fit inside
/// warm ACQUIRE capacity.
#[derive(Debug, Default)]
pub struct EstimatorScratch {
    pub(crate) ista: IstaScratch,
    pub(crate) debias: DebiasScratch,
    pub(crate) p_final: Vec<Complex64>,
    pub(crate) mags: Vec<f64>,
    pub(crate) refine: RefineScratch,
    pub(crate) select: SelectScratch,
    pub(crate) groups: Vec<BandGroupSamples>,
    pub(crate) group_pool: Vec<BandGroupSamples>,
    pub(crate) order: Vec<usize>,
    pub(crate) fixes: Vec<GroupFix>,
    pub(crate) profiles: Vec<GroupEstimate>,
    pub(crate) products: Vec<BandProduct>,
    pub(crate) xs: Vec<f64>,
    pub(crate) plan_memo: Vec<PlanMemo>,
    pub(crate) spline_memo: Vec<(Vec<f64>, Arc<SplinePlan>)>,
    pub(crate) locate: LocateScratch,
}

impl EstimatorScratch {
    /// Fresh, empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One sweep of a batch handed to [`SweepPipeline::run_batch`].
#[derive(Debug)]
pub struct BatchSweep<'a> {
    /// The client session to sweep.
    pub session: &'a ChronosSession,
    /// The (possibly contention-adjusted) link configuration.
    pub sweep_cfg: &'a SweepConfig,
    /// Seed of the sweep's own RNG stream (see the engine's seeding
    /// contract).
    pub rng_seed: u64,
    /// Admitted start instant.
    pub start: Instant,
}

/// A reusable estimation pipeline: one scratch arena driving the full
/// products → ToF → localization path.
///
/// Allocate one per worker (the engine keeps one per worker thread) and
/// feed it sweeps forever; results are bitwise identical to the
/// allocating [`TofEstimator`]/[`crate::localization::locate_all`] path.
#[derive(Debug, Default)]
pub struct SweepPipeline {
    scratch: EstimatorScratch,
}

impl SweepPipeline {
    /// Creates an empty pipeline; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying scratch arena (for direct use of the `_into`
    /// estimator entry points).
    pub fn scratch_mut(&mut self) -> &mut EstimatorScratch {
        &mut self.scratch
    }

    /// Zero-allocation estimation: products in, a compact [`TofFix`] out.
    ///
    /// This is the steady-state TRACK entry point — after warm-up it
    /// performs no heap allocations at all (pinned by `tests/alloc.rs`).
    pub fn estimate_fix(
        &mut self,
        estimator: &TofEstimator,
        products: &[BandProduct],
    ) -> Result<TofFix, ChronosError> {
        estimator.estimate_fix_with(products, &mut self.scratch)
    }

    /// Scratch-accelerated [`TofEstimator::estimate_from_products`]: the
    /// solver runs allocation-free, only the returned [`TofEstimate`]
    /// (profiles included) is freshly allocated.
    pub fn estimate_from_products(
        &mut self,
        estimator: &TofEstimator,
        products: &[BandProduct],
    ) -> Result<TofEstimate, ChronosError> {
        estimator.estimate_from_products_with(products, &mut self.scratch)
    }

    /// Scratch-accelerated [`TofEstimator::estimate`] from raw band
    /// samples (splice → products → inversion).
    pub fn estimate(
        &mut self,
        estimator: &TofEstimator,
        bands: &[BandSample],
    ) -> Result<TofEstimate, ChronosError> {
        let mut products = std::mem::take(&mut self.scratch.products);
        let combined = estimator.products_into(bands, &mut self.scratch, &mut products);
        let result = match combined {
            Ok(()) => estimator.estimate_from_products_with(&products, &mut self.scratch),
            Err(e) => Err(e),
        };
        self.scratch.products = products;
        result
    }

    /// Zero-allocation localization: ranges in, candidates appended to
    /// `out` (cleared first), best residual first.
    pub fn locate_all(
        &mut self,
        ranges: &[AntennaRange],
        cfg: &LocalizerConfig,
        out: &mut Vec<Position>,
    ) -> Result<(), ChronosError> {
        crate::localization::locate_all_into(ranges, cfg, &mut self.scratch.locate, out)
    }

    /// Runs a batch of admitted sweeps back-to-back over this pipeline's
    /// scratch — the engine's same-instant dues path. Plan lookups and
    /// every estimation buffer are amortized across the whole batch; each
    /// sweep still owns its seeded RNG, so results are independent of how
    /// sweeps are grouped into batches (and bitwise identical to
    /// [`ChronosSession::sweep_with`]).
    pub fn run_batch(&mut self, jobs: &[BatchSweep<'_>]) -> Vec<SweepOutput> {
        jobs.iter().map(|job| self.run_sweep(job)).collect()
    }

    /// Runs one admitted sweep over this pipeline's scratch — the unit of
    /// work the persistent [`crate::runtime::WorkerRuntime`] dispatches.
    /// Each sweep owns its seeded RNG, so results are independent of
    /// which pipeline (or thread) runs it.
    pub fn run_sweep(&mut self, job: &BatchSweep<'_>) -> SweepOutput {
        let mut rng = StdRng::seed_from_u64(job.rng_seed);
        job.session
            .sweep_with_pipeline(job.sweep_cfg, &mut rng, job.start, self)
    }
}
