//! Zero-subcarrier channel recovery (paper §5).
//!
//! The measured channel phase at subcarrier `k` of band `i` is
//!
//! ```text
//! angle(h~_{i,k}) = -2 pi f_{i,k} tau  -  2 pi (f_{i,k} - f_{i,0}) delta_i
//! ```
//!
//! The detection-delay term vanishes exactly at `k = 0` — the one
//! subcarrier Wi-Fi never transmits (it collides with the radio's DC
//! offset). Chronos therefore interpolates the measured phase across the
//! populated subcarriers with a cubic spline and reads off the value at
//! subcarrier zero. Magnitude is interpolated the same way.
//!
//! The Intel 5300 complication: at 2.4 GHz the card reports phase modulo
//! pi/2 instead of modulo 2 pi. Ordinary unwrapping breaks on such data,
//! so [`interpolate_h0`] offers a quirk-aware mode that unwraps the phase
//! at 4x scale (where the quirk's jumps become full 2-pi wraps), leaving a
//! *constant* multiple-of-pi/2 offset that downstream code removes with a
//! fourth power (see [`crate::quirk`]).

use crate::error::ChronosError;
use chronos_math::spline::{linear_interp, CubicSpline, SplinePlan};
use chronos_math::unwrap::unwrap_in_place;
use chronos_math::Complex64;
use chronos_rf::csi::CsiCapture;

/// Interpolation backend for the zero-subcarrier estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interpolation {
    /// Natural cubic spline (the paper's choice, footnote 3).
    CubicSpline,
    /// Piecewise-linear (ablation baseline).
    Linear,
}

/// Estimates the channel at subcarrier 0 of a capture.
///
/// `quirk_aware` must be `true` for captures taken by an Intel 5300 on a
/// 2.4 GHz band; the returned value then carries an unknown constant
/// multiple-of-pi/2 phase offset (magnitude is unaffected).
pub fn interpolate_h0(
    capture: &CsiCapture,
    interpolation: Interpolation,
    quirk_aware: bool,
) -> Result<Complex64, ChronosError> {
    interpolate_h0_planned(capture, interpolation, quirk_aware, None)
}

/// [`interpolate_h0`] with an optional precomputed spline factorization.
///
/// When `plan` is present and was built for exactly this capture's
/// subcarrier abscissae, the per-capture tridiagonal refactorization is
/// skipped; [`SplinePlan::fit`] is bitwise-identical to a fresh
/// [`CubicSpline::fit`], so the result is unchanged. A plan for different
/// knots is ignored (correctness over reuse).
pub fn interpolate_h0_planned(
    capture: &CsiCapture,
    interpolation: Interpolation,
    quirk_aware: bool,
    plan: Option<&SplinePlan>,
) -> Result<Complex64, ChronosError> {
    let n = capture.csi.len();
    if n != capture.layout.len() {
        return Err(ChronosError::BadCapture("csi length != layout length"));
    }
    if n < 4 {
        return Err(ChronosError::BadCapture("too few subcarriers"));
    }
    if capture.csi.iter().any(|z| !z.is_finite()) {
        return Err(ChronosError::BadCapture("non-finite CSI values"));
    }

    let xs: Vec<f64> = capture.layout.indices().iter().map(|k| *k as f64).collect();
    let plan = plan.filter(|p| p.xs() == xs.as_slice());
    let fit_spline = |ys: &[f64]| -> Result<CubicSpline, ChronosError> {
        match plan {
            Some(p) => p.fit(ys),
            None => CubicSpline::fit(&xs, ys),
        }
        .map_err(|_| ChronosError::BadCapture("spline fit failed"))
    };

    // Phase track: unwrap (possibly at 4x scale), then interpolate.
    let scale = if quirk_aware { 4.0 } else { 1.0 };
    let mut phases: Vec<f64> = capture
        .csi
        .iter()
        .map(|z| chronos_math::unwrap::wrap_to_pi(z.arg() * scale))
        .collect();
    unwrap_in_place(&mut phases);
    let phase0 = match interpolation {
        Interpolation::CubicSpline => fit_spline(&phases)?.eval(0.0),
        Interpolation::Linear => linear_interp(&xs, &phases, 0.0),
    } / scale;

    // Magnitude track.
    let mags: Vec<f64> = capture.csi.iter().map(|z| z.abs()).collect();
    let mag0 = match interpolation {
        Interpolation::CubicSpline => fit_spline(&mags)?.eval(0.0),
        Interpolation::Linear => linear_interp(&xs, &mags, 0.0),
    }
    .max(0.0);

    Ok(Complex64::from_polar(mag0, phase0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::bands::band_by_channel;
    use chronos_rf::csi::MeasurementContext;
    use chronos_rf::environment::Environment;
    use chronos_rf::geometry::Point;
    use chronos_rf::hardware::{ideal_device, AntennaArray};
    use chronos_rf::ofdm::SubcarrierLayout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn capture_with(
        distance_m: f64,
        detection_delay_ns: f64,
        channel: u16,
        quirky: bool,
    ) -> CsiCapture {
        let mut rng = StdRng::seed_from_u64(99);
        let mut dev_i = ideal_device(AntennaArray::single());
        let mut dev_r = ideal_device(AntennaArray::single());
        dev_i.detection_delay.median_ns = detection_delay_ns;
        dev_r.detection_delay.median_ns = detection_delay_ns;
        if quirky {
            dev_i.quirk_24ghz = true;
            dev_r.quirk_24ghz = true;
        }
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            dev_i,
            Point::new(0.0, 0.0),
            dev_r,
            Point::new(distance_m, 0.0),
        );
        ctx.snr.snr_at_1m_db = 300.0; // noiseless
        let band = band_by_channel(channel).unwrap();
        let layout = SubcarrierLayout::intel5300();
        ctx.measure_pair(&mut rng, &band, &layout, 0, 0, 0.0)
            .forward
    }

    #[test]
    fn h0_phase_matches_center_frequency_channel() {
        // Without detection delay, h0 phase must be -2 pi f0 tau (mod 2pi).
        let d = 3.0;
        let cap = capture_with(d, 0.0, 48, false);
        let h0 = interpolate_h0(&cap, Interpolation::CubicSpline, false).unwrap();
        let tau_s = chronos_math::constants::m_to_ns(d) * 1e-9;
        let expected = chronos_math::unwrap::wrap_to_pi(-2.0 * PI * cap.band.center_hz * tau_s);
        assert!(
            chronos_math::unwrap::angular_distance(h0.arg(), expected) < 1e-4,
            "h0 {} expected {}",
            h0.arg(),
            expected
        );
    }

    #[test]
    fn h0_immune_to_detection_delay() {
        // The whole point of §5: huge detection delay, same h0 phase.
        let d = 5.0;
        let clean = capture_with(d, 0.0, 60, false);
        let delayed = capture_with(d, 250.0, 60, false);
        let h_clean = interpolate_h0(&clean, Interpolation::CubicSpline, false).unwrap();
        let h_delayed = interpolate_h0(&delayed, Interpolation::CubicSpline, false).unwrap();
        assert!(
            chronos_math::unwrap::angular_distance(h_clean.arg(), h_delayed.arg()) < 2e-3,
            "{} vs {}",
            h_clean.arg(),
            h_delayed.arg()
        );
        // Meanwhile a raw edge subcarrier is badly corrupted.
        let edge_clean = clean.csi[0].arg();
        let edge_delayed = delayed.csi[0].arg();
        assert!(chronos_math::unwrap::angular_distance(edge_clean, edge_delayed) > 0.3);
    }

    #[test]
    fn spline_and_linear_agree_on_smooth_phase() {
        let cap = capture_with(4.0, 180.0, 104, false);
        let a = interpolate_h0(&cap, Interpolation::CubicSpline, false).unwrap();
        let b = interpolate_h0(&cap, Interpolation::Linear, false).unwrap();
        assert!(chronos_math::unwrap::angular_distance(a.arg(), b.arg()) < 5e-3);
        assert!((a.abs() - b.abs()).abs() < 0.05 * a.abs().max(1e-12));
    }

    #[test]
    fn quirk_aware_unwrap_recovers_phase_mod_pi_over_2() {
        // 2.4 GHz capture with the quirk: quirk-aware interpolation must
        // produce h0 whose phase matches the true phase modulo pi/2.
        let d = 2.0;
        let cap = capture_with(d, 150.0, 6, true);
        let h0 = interpolate_h0(&cap, Interpolation::CubicSpline, true).unwrap();
        let tau_s = chronos_math::constants::m_to_ns(d) * 1e-9;
        let true_phase = -2.0 * PI * cap.band.center_hz * tau_s;
        // Compare modulo pi/2 by comparing 4x phases modulo 2 pi.
        let a = chronos_math::unwrap::wrap_to_pi(4.0 * h0.arg());
        let b = chronos_math::unwrap::wrap_to_pi(4.0 * true_phase);
        assert!(
            chronos_math::unwrap::angular_distance(a, b) < 5e-3,
            "4x phases: {a} vs {b}"
        );
    }

    #[test]
    fn magnitude_interpolation_positive_and_sane() {
        let cap = capture_with(7.0, 177.0, 149, false);
        let h0 = interpolate_h0(&cap, Interpolation::CubicSpline, false).unwrap();
        let mean_mag = cap.csi.iter().map(|z| z.abs()).sum::<f64>() / cap.csi.len() as f64;
        assert!(h0.abs() > 0.0);
        assert!((h0.abs() - mean_mag).abs() < 0.5 * mean_mag);
    }

    #[test]
    fn planned_interpolation_is_bitwise_identical() {
        let cap = capture_with(4.5, 120.0, 64, false);
        let xs: Vec<f64> = cap.layout.indices().iter().map(|k| *k as f64).collect();
        let plan = SplinePlan::new(&xs).unwrap();
        let direct = interpolate_h0(&cap, Interpolation::CubicSpline, false).unwrap();
        let planned =
            interpolate_h0_planned(&cap, Interpolation::CubicSpline, false, Some(&plan)).unwrap();
        assert_eq!(direct.re.to_bits(), planned.re.to_bits());
        assert_eq!(direct.im.to_bits(), planned.im.to_bits());
        // A plan for the wrong knots is ignored, not misapplied.
        let wrong = SplinePlan::new(&[0.0, 1.0, 2.0, 3.0]).unwrap();
        let guarded =
            interpolate_h0_planned(&cap, Interpolation::CubicSpline, false, Some(&wrong)).unwrap();
        assert_eq!(direct.re.to_bits(), guarded.re.to_bits());
    }

    #[test]
    fn bad_captures_rejected() {
        let mut cap = capture_with(3.0, 0.0, 36, false);
        cap.csi[3] = Complex64::new(f64::NAN, 0.0);
        assert_eq!(
            interpolate_h0(&cap, Interpolation::CubicSpline, false),
            Err(ChronosError::BadCapture("non-finite CSI values"))
        );
        let mut cap2 = capture_with(3.0, 0.0, 36, false);
        cap2.csi.truncate(10);
        assert!(matches!(
            interpolate_h0(&cap2, Interpolation::CubicSpline, false),
            Err(ChronosError::BadCapture(_))
        ));
    }

    #[test]
    fn noise_robustness_via_interpolation() {
        // With realistic noise, h0 phase error should be well under a
        // single-subcarrier phase noise level thanks to the 30-point fit.
        let mut rng = StdRng::seed_from_u64(5);
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            ideal_device(AntennaArray::single()),
            Point::new(0.0, 0.0),
            ideal_device(AntennaArray::single()),
            Point::new(2.0, 0.0),
        );
        ctx.snr.snr_at_1m_db = 35.0;
        let band = band_by_channel(40).unwrap();
        let layout = SubcarrierLayout::intel5300();
        let tau_s = chronos_math::constants::m_to_ns(2.0) * 1e-9;
        let expected = -2.0 * PI * band.center_hz * tau_s;
        let mut errs = Vec::new();
        for i in 0..50 {
            let cap = ctx
                .measure_pair(&mut rng, &band, &layout, 0, 0, i as f64 * 1e-3)
                .forward;
            let h0 = interpolate_h0(&cap, Interpolation::CubicSpline, false).unwrap();
            errs.push(chronos_math::unwrap::angular_distance(h0.arg(), expected));
        }
        let mean_err = chronos_math::stats::mean(&errs);
        assert!(mean_err < 0.05, "mean phase error {mean_err}");
    }
}
