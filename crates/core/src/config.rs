//! Estimator configuration, plus the ingestion front-end policy
//! ([`IngestionConfig`]) shared by service and engine.

use chronos_link::admission::AdmissionConfig;
use chronos_link::time::Duration;

/// Policy of the overload-safe ingestion front-end (see
/// `docs/INGESTION.md`).
///
/// When set on [`crate::service::ServiceConfig::ingestion`], sweep-due
/// events stop booking the [`chronos_link::arbiter::MediumArbiter`]
/// directly and instead pass through a bounded
/// [`chronos_link::admission::AdmissionQueue`]: requests are classed
/// (ACQUIRE > TRACK > BACKGROUND), queued within per-class and global
/// depth bounds, and drained in priority order only while the arbiter's
/// booking horizon stays within [`IngestionConfig::backlog_limit`].
/// Under pressure the engine degrades deliberately — the shedding
/// ladder stretches TRACK cadence first, drops BACKGROUND next, and
/// rejects ACQUIRE only when nothing else is left to give.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestionConfig {
    /// Depth bounds of the admission queue (per class and global).
    pub queue: AdmissionConfig,
    /// How far ahead of "now" the arbiter may be booked before the
    /// engine stops draining the queue. This is the knob that separates
    /// "bounded queue" from "unbounded promise backlog": without it,
    /// every admitted request books medium time arbitrarily far into
    /// the future and the queue never fills. Sized in units of sweep
    /// airtime (~84 ms full / ~30 ms subset): 250 ms keeps roughly a
    /// handful of sweeps in flight per concurrency lane.
    pub backlog_limit: Duration,
    /// Ceiling on the TRACK cadence stretch factor. The engine scales
    /// `track_gap` by `1 + fill * (track_stretch_max - 1)` where `fill`
    /// is the queue's global occupancy fraction, so a full queue spaces
    /// TRACK sweeps at `track_stretch_max *` the configured gap. The
    /// ladder's "TRACK slack is exhausted" point.
    pub track_stretch_max: f64,
    /// Delay before a deferred or shed request is offered again. Short
    /// enough that freed capacity is reclaimed promptly, long enough
    /// that a saturated queue is not hammered every event-loop instant.
    pub retry_gap: Duration,
}

impl Default for IngestionConfig {
    fn default() -> Self {
        IngestionConfig {
            queue: AdmissionConfig::default(),
            backlog_limit: Duration::from_millis(250),
            track_stretch_max: 8.0,
            retry_gap: Duration::from_millis(25),
        }
    }
}

/// How the estimator treats the Intel 5300's 2.4 GHz phase quirk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuirkMode {
    /// No firmware quirk: all 35 bands feed one inversion on the squared
    /// (reciprocity-product) channels. Used with idealized radios and in
    /// ablations.
    Ideal,
    /// Intel 5300 behaviour: 2.4 GHz CSI phase arrives modulo pi/2. The
    /// 5 GHz group (24 bands) runs on the reciprocity product (profile
    /// peaks at 2x delay); the 2.4 GHz group runs on the product's fourth
    /// power (peaks at 8x delay) and serves as a coarse cross-check.
    Intel5300,
}

/// Configuration of the time-of-flight estimator.
#[derive(Debug, Clone)]
pub struct ChronosConfig {
    /// Quirk handling mode.
    pub mode: QuirkMode,
    /// Inverse-NDFT grid step in the *profile* domain, nanoseconds.
    /// The profile domain carries scaled delays (2x or 8x the ToF), so the
    /// effective ToF resolution is finer by the group's delay scale.
    pub grid_step_ns: f64,
    /// Extent of the profile-domain grid, nanoseconds. 200 ns matches the
    /// paper's unambiguous range over 5 MHz-rastered Wi-Fi centers.
    pub grid_span_ns: f64,
    /// Sparsity weight, relative to `max |F* h|` (the smallest weight that
    /// zeroes everything). Typical: 0.05–0.3.
    pub alpha_rel: f64,
    /// Maximum proximal-gradient iterations.
    pub max_iters: usize,
    /// Convergence threshold on the iterate change (paper's epsilon).
    pub epsilon: f64,
    /// Use FISTA acceleration instead of plain ISTA (extension; the paper
    /// uses plain proximal gradient).
    pub accelerated: bool,
    /// Refit support amplitudes by least squares after the sparse solve
    /// (LASSO debiasing). Removes shrinkage bias so weak direct paths keep
    /// their physical dominance in the profile.
    pub debias: bool,
    /// Peak dominance threshold: a profile peak counts as a path when it
    /// reaches this fraction of the strongest peak.
    pub peak_dominance: f64,
    /// Sidelobe/ghost veto strength for the model-comparison test: a
    /// candidate first peak that is not the strongest is accepted only if
    /// the best alternative model (support without the candidate, plus a
    /// single seeded ghost-source atom at one grating-lobe offset) leaves
    /// at least `(1 + ratio)` times the baseline residual energy.
    /// Higher = more aggressive vetoing.
    pub sidelobe_veto_ratio: f64,
    /// Statistical significance floor for profile atoms: a candidate peak
    /// must exceed `atom_snr_min * residual / sqrt(n_bands)` (roughly that
    /// many standard errors of the least-squares fit) to count as a path.
    /// Suppresses the low-amplitude "garbage collector" atoms the sparse
    /// solver places to absorb noise and unmodeled content.
    pub atom_snr_min: f64,
    /// Use the 2.4 GHz coarse profile to cross-check/disambiguate the
    /// 5 GHz estimate (only meaningful in [`QuirkMode::Intel5300`]).
    pub use_24ghz_check: bool,
    /// Calibration constant subtracted from the raw (descaled) delay
    /// estimate, nanoseconds. Captures hardware chain delays and the fixed
    /// part of the protocol turnaround-CFO coupling (paper §7 obs. 2).
    pub calibration_ns: f64,
}

impl Default for ChronosConfig {
    fn default() -> Self {
        ChronosConfig {
            mode: QuirkMode::Intel5300,
            grid_step_ns: 0.25,
            grid_span_ns: 200.0,
            alpha_rel: 0.12,
            max_iters: 400,
            epsilon: 1e-6,
            accelerated: true,
            debias: true,
            peak_dominance: 0.15,
            sidelobe_veto_ratio: 0.4,
            atom_snr_min: 3.0,
            use_24ghz_check: true,
            calibration_ns: 0.0,
        }
    }
}

impl ChronosConfig {
    /// An idealized configuration for unit tests and genie ablations.
    pub fn ideal() -> Self {
        ChronosConfig {
            mode: QuirkMode::Ideal,
            ..Default::default()
        }
    }

    /// Number of grid points of the profile-domain grid.
    pub fn grid_len(&self) -> usize {
        (self.grid_span_ns / self.grid_step_ns).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_intel_mode() {
        let c = ChronosConfig::default();
        assert_eq!(c.mode, QuirkMode::Intel5300);
        assert!(c.alpha_rel > 0.0 && c.alpha_rel < 1.0);
    }

    #[test]
    fn grid_len_consistent() {
        let c = ChronosConfig {
            grid_step_ns: 0.5,
            grid_span_ns: 100.0,
            ..Default::default()
        };
        assert_eq!(c.grid_len(), 200);
    }

    #[test]
    fn ideal_constructor() {
        assert_eq!(ChronosConfig::ideal().mode, QuirkMode::Ideal);
    }

    #[test]
    fn ingestion_defaults_are_sane() {
        let c = IngestionConfig::default();
        assert!(c.track_stretch_max >= 1.0);
        assert!(c.backlog_limit > Duration::ZERO);
        assert!(c.retry_gap > Duration::ZERO);
        // Per-class depths must sum above the global bound so the global
        // bound binds first under mixed load.
        let q = c.queue;
        assert!(q.acquire_depth + q.track_depth + q.background_depth > q.global_depth);
    }
}
