//! The continuous, event-driven sweep engine behind
//! [`crate::service::RangingService`].
//!
//! The paper's protocol is inherently asynchronous: each client's band
//! sweep takes exactly as long as its hop plan dictates (§5, §7), so a
//! TRACK-mode client with a 12-band subset is done in ~29 ms while an
//! ACQUIRE client's 35-band sweep holds the air for ~84 ms. The original
//! `run_epoch` loop forced every client through a lock-step barrier —
//! the fast clients idled until the slowest sweep of the round finished.
//! The [`ServiceEngine`] retires that barrier: the service is a
//! discrete-event simulation over virtual time
//! ([`chronos_link::event::EventQueue`]) in which every client advances
//! at its own cadence.
//!
//! ## Event lifecycle
//!
//! ```text
//!   SweepDue(client)                       one event per client cycle
//!        │  batch same-instant dues; ACQUIRE clients admitted first
//!        ▼
//!   MediumArbiter::admit                   airtime admission (stagger,
//!        │                                 concurrency cap, contention
//!        │                                 loss), plan priced per client
//!        ▼
//!   worker-pool sweep + estimation         host-parallel, per-sweep RNG
//!        │                                 (results schedule-invariant)
//!        ▼
//!   SweepComplete(client)                  fires at the sweep's actual
//!        │                                 link-layer finish time
//!        ▼
//!   tracker fusion → reschedule            SweepDue(client) again at
//!                                          finish + per-mode cadence gap
//! ```
//!
//! `Join`/`Leave` are first-class: clients can enter and exit the pool
//! mid-run ([`ServiceEngine::join_session`], [`ServiceEngine::leave`],
//! [`ServiceEngine::leave_at`]) without disturbing other clients'
//! schedules or the arbiter's single-charge airtime accounting.
//!
//! ## Windows, not epochs
//!
//! [`ServiceEngine::run_until`] advances the simulation to a deadline
//! and returns a [`WindowReport`] — the generalization of
//! `EpochReport` over an arbitrary time window. Sweeps still in the air
//! at the deadline simply complete in the next window. The legacy
//! `RangingService::run_epoch` survives as a thin compatibility wrapper:
//! it schedules every client once at the current clock, drains the queue
//! without rescheduling, and reports the round exactly as the barrier
//! version did (same admission order, same seeds, same outcomes).
//!
//! ## Seeding contract
//!
//! Every sweep draws its randomness from an RNG seeded by
//! `mix(seed, ordinal + 1, client)` where `ordinal` is the client's own
//! **monotonic sweep counter** — not any global round index. The
//! counter increments at admission, and at most one sweep per client is
//! in flight, so a client's ordinal sequence is a pure function of how
//! many sweeps it has been issued. Consequences, relied on by tests:
//!
//! * results are invariant to worker-thread count and host schedule
//!   (each job owns its RNG);
//! * results are invariant to *cadence* — interleaving other clients,
//!   changing gaps, or splitting a run into different `run_until`
//!   windows never shifts another client's RNG stream;
//! * under the epoch wrapper every client sweeps exactly once per round,
//!   so ordinals coincide with the legacy global epoch index and the
//!   wrapper reproduces pre-engine outcomes bit for bit.

use crate::config::{ChronosConfig, IngestionConfig};
use crate::ndft::TauGrid;
use crate::pipeline::{BatchSweep, SweepPipeline};
use crate::plan::{CacheStats, PlanCache};
use crate::runtime::{PoolJob, WorkerRuntime};
use crate::service::{
    outcome_stats, ClientOutcome, EpochReport, LocalizationMode, ModeOccupancy, ServiceConfig,
};
use crate::session::{ChronosSession, SweepOutput};
use crate::tracker::{ClientTracker, PositionTracker, TrackMode, TrackerConfig};
use chronos_link::admission::{AdmissionQueue, IngestionStats, Offer};
use chronos_link::arbiter::{MediumArbiter, SweepGrant};
use chronos_link::event::EventQueue;
use chronos_link::sweep::SweepConfig;
use chronos_link::time::{Duration, Instant};
use chronos_link::traffic::TrafficClass;
use chronos_rf::bands::Band;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::geometry::Point;
use chronos_rf::subset::select_subset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Delay span scanned when scoring TRACK-subset grating ambiguity. Half
/// the default 200 ns profile span: profiles carry *scaled* delays
/// (scale ≥ 2), so 100 ns of physical delay covers the whole
/// unambiguous range a subset must keep ghost-free.
const SUBSET_AMBIGUITY_SPAN_NS: f64 = 100.0;

/// Mixes `(seed, ordinal, client)` into an independent RNG stream.
///
/// `ordinal` is the client's own monotonic sweep counter (see the
/// seeding contract in the module docs); the legacy epoch index is the
/// special case where every client sweeps once per round.
pub(crate) fn mix_seed(seed: u64, ordinal: u64, client: usize) -> u64 {
    let mut x = seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= (client as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The result of one continuous-run window (`[started, ended]`).
///
/// The event-driven generalization of [`EpochReport`]: outcomes are in
/// sweep-completion order (ties by client index), may contain several
/// sweeps per client (TRACK clients re-sweep as soon as their subset
/// airtime allows) and need not contain every client (a sweep still in
/// the air at the deadline lands in the next window).
///
/// **Scope: one engine = one AP.** Every field is **per-shard**: in a
/// multi-AP fleet ([`crate::fleet::FleetEngine`]) each AP's engine
/// emits its own `WindowReport`, where `outcomes[i].client` indexes
/// *that shard's* slots (map to fleet client ids via
/// [`crate::fleet::FleetEngine::client_of_slot`]) and `utilization`
/// covers that AP's medium only — including sync-beacon and TDoA-blast
/// airtime the fleet layer charges to the shard's arbiter, which by
/// design appears here as busy air but never as an outcome.
/// **Fleet-aggregated** quantities — TDoA fixes, handoff and
/// handoff-gap counters, sync rounds — never appear in this report;
/// they live on [`crate::fleet::FleetWindowReport`] alongside the
/// per-shard reports it wraps.
///
/// # Examples
///
/// ```
/// use chronos_core::engine::WindowReport;
/// use chronos_core::plan::CacheStats;
/// use chronos_link::time::{Duration, Instant};
///
/// let report = WindowReport {
///     started: Instant::from_millis(100),
///     ended: Instant::from_millis(350),
///     outcomes: Vec::new(),
///     utilization: 0.42,
///     wall: std::time::Duration::ZERO,
///     cache: CacheStats { hits: 0, misses: 0, ndft_entries: 0, spline_entries: 0 },
///     bands_planned: 24,
///     bands_full_sweep: 70,
///     ingestion: Default::default(),
/// };
/// assert_eq!(report.span(), Duration::from_millis(250));
/// assert!((report.airtime_saved() - (1.0 - 24.0 / 70.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// Window start on the simulated clock.
    pub started: Instant,
    /// Window end (the `run_until` deadline).
    pub ended: Instant,
    /// Completed-sweep outcomes, in completion order.
    pub outcomes: Vec<ClientOutcome>,
    /// Fraction of the window with at least one sweep on the air.
    pub utilization: f64,
    /// Host wall-clock time spent producing the window.
    pub wall: std::time::Duration,
    /// Plan-cache counters after the window.
    pub cache: CacheStats,
    /// Total bands scheduled across all sweeps admitted this window.
    pub bands_planned: usize,
    /// Bands the same sweeps would have cost as full plans — the
    /// denominator of [`WindowReport::airtime_saved`].
    pub bands_full_sweep: usize,
    /// Ingestion-layer accounting for this window: offered vs. admitted
    /// load, shed/deferral counts per class, queue high-water marks and
    /// the peak TRACK stretch. All-zero (default) when
    /// [`ServiceConfig::ingestion`] is off.
    pub ingestion: IngestionStats,
}

impl WindowReport {
    /// The window's length of simulated time.
    pub fn span(&self) -> Duration {
        self.ended.saturating_since(self.started)
    }

    /// Sweeps that produced a distance estimate.
    pub fn completed(&self) -> usize {
        outcome_stats::completed(&self.outcomes)
    }

    /// Localization throughput: completed sweeps per second of **window
    /// time**. Deliberately not named like
    /// `EpochReport::sweeps_per_sec_airtime` (which divides by the busy
    /// span of the round): this divides by the full window length,
    /// idle time included — in continuous operation the medium never
    /// drains, so the two coincide at steady state, but in a sparse
    /// window this one is the lower, honest wall-rate.
    pub fn sweeps_per_sec(&self) -> f64 {
        let span = self.span().as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.completed() as f64 / span
        }
    }

    /// Mean absolute ranging error over completed sweeps, meters.
    pub fn mean_abs_error_m(&self) -> Option<f64> {
        outcome_stats::mean_abs_error_m(&self.outcomes)
    }

    /// Fraction of per-fix airtime saved versus full-plan sweeps (band
    /// count as the airtime proxy).
    pub fn airtime_saved(&self) -> f64 {
        outcome_stats::airtime_saved(self.bands_planned, self.bands_full_sweep)
    }

    /// Sweeps per mode this window.
    pub fn mode_occupancy(&self) -> ModeOccupancy {
        outcome_stats::mode_occupancy(&self.outcomes)
    }

    /// RMS error of the distance tracker's fused outputs, meters.
    pub fn track_rmse_m(&self) -> Option<f64> {
        outcome_stats::track_rmse_m(&self.outcomes)
    }

    /// RMS 2-D error of the position tracker's fused outputs, meters.
    pub fn pos_rmse_m(&self) -> Option<f64> {
        outcome_stats::pos_rmse_m(&self.outcomes)
    }

    /// Median 2-D error of the raw position fixes, meters.
    pub fn median_pos_error_m(&self) -> Option<f64> {
        outcome_stats::median_pos_error_m(&self.outcomes)
    }

    /// Outcomes reported under QUARANTINE this window (estimates
    /// withheld; see [`crate::service::QuarantineConfig`]).
    pub fn quarantined(&self) -> usize {
        outcome_stats::quarantined(&self.outcomes)
    }
}

/// Events driving the engine's virtual time.
enum EngineEvent {
    /// A client is due for its next sweep (admission pending).
    SweepDue(usize),
    /// A sweep's link-layer exchange finished; fuse and reschedule.
    SweepComplete(Box<CompletedSweep>),
    /// A client leaves the pool at this instant.
    Leave(usize),
}

/// Everything a finished sweep carries to its `SweepComplete` event.
struct CompletedSweep {
    client: usize,
    grant: SweepGrant,
    mode: TrackMode,
    class: TrafficClass,
    deferrals: u32,
    bands_planned: usize,
    sweep_index: u64,
    /// Ground truth captured when the sweep *executed* — a caller may
    /// move the client between windows, and a sweep completing across a
    /// window boundary must be scored against the geometry it measured.
    truth_m: f64,
    truth_pos: Point,
    out: SweepOutput,
}

/// One admitted-but-not-yet-executed sweep.
struct Job {
    client: usize,
    grant: SweepGrant,
    sweep_cfg: SweepConfig,
    rng_seed: u64,
    mode: TrackMode,
    class: TrafficClass,
    /// Times the request was pushed back before this admission.
    deferrals: u32,
    sweep_index: u64,
}

/// One client's slot in the engine.
///
/// Slots are never reused: `leave` deactivates a slot but keeps its
/// index (and hence its RNG stream identity) stable forever.
struct Slot {
    session: ChronosSession,
    tracker: Option<ClientTracker>,
    pos_tracker: Option<PositionTracker>,
    /// Whether the mode machine drives band-subset scheduling for this
    /// client (service-wide `adaptive` or a per-client override).
    adaptive: bool,
    /// Monotonic sweep counter — the client's seeding ordinal.
    sweeps: u64,
    /// Whether the client participates in scheduling.
    active: bool,
    /// Whether a `SweepDue` or `SweepComplete` event for this client is
    /// currently queued (at most one sweep per client is ever pending).
    scheduled: bool,
    /// Whether the client is under service-level QUARANTINE: sweeps keep
    /// running (evidence keeps accumulating) but estimates are withheld
    /// from reports (see [`crate::service::QuarantineConfig`]).
    quarantined: bool,
    /// Consecutive completed sweeps with the anomaly score at or below
    /// the release threshold — the hysteresis dwell counter.
    clean_run: usize,
    /// Whether the client is flagged as BACKGROUND traffic (lowest
    /// admission class; first to be shed under overload).
    background: bool,
    /// Deferrals accumulated by the client's *next* sweep request
    /// (retries after a queue rejection or displacement); consumed at
    /// admission into [`Job::deferrals`].
    pending_deferrals: u32,
}

/// A client's portable tracking state, extracted at handoff and
/// implanted into another [`ServiceEngine`] — the fleet layer's
/// mechanism for moving a client between APs **without re-ACQUIRE**.
///
/// What travels: the Kalman tracker (whichever flavor the slot ran),
/// the quarantine verdict with its hysteresis dwell counter, the
/// BACKGROUND flag, and the per-client adaptive override. What does
/// *not* travel: the sweep ordinal — the destination engine issues the
/// client a fresh slot whose ordinal restarts at zero, preserving the
/// seeding contract (a shard's RNG streams are a pure function of its
/// own admission history, never of another shard's).
///
/// Position trackers hold state in the *serving AP's local frame*;
/// call [`MigratedClient::translate`] with `old_ap − new_ap` (world
/// coordinates) before implanting so the estimate lands in the new
/// frame. Distance trackers cannot be re-expressed this way (range to
/// the old AP says nothing about range to the new one), so fleet
/// handoff is a position-mode feature; migrating a distance tracker
/// carries the anomaly evidence but the filter re-seeds on its first
/// fix at the new AP.
#[derive(Debug, Clone)]
pub struct MigratedClient {
    tracker: Option<ClientTracker>,
    pos_tracker: Option<PositionTracker>,
    adaptive: bool,
    quarantined: bool,
    clean_run: usize,
    background: bool,
}

impl MigratedClient {
    /// Re-expresses the position track in the destination AP's frame:
    /// `delta` is `old_ap − new_ap` in world coordinates. No-op for
    /// distance trackers and uninitialized filters.
    pub fn translate(&mut self, delta: Point) {
        if let Some(t) = self.pos_tracker.as_mut() {
            t.translate(delta);
        }
    }

    /// Whether the client was under QUARANTINE at extraction (the
    /// verdict travels with the client — see
    /// [`crate::service::QuarantineConfig`]).
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// The anomaly score carried across the handoff, if the client ran
    /// a tracker.
    pub fn anomaly_score(&self) -> Option<f64> {
        self.tracker
            .as_ref()
            .map(|t| t.anomaly_score())
            .or_else(|| self.pos_tracker.as_ref().map(|t| t.anomaly_score()))
    }

    /// The mode the client's next sweep would run under (TRACK survives
    /// the handoff; that is the point).
    pub fn mode(&self) -> Option<TrackMode> {
        self.tracker
            .as_ref()
            .map(|t| t.mode())
            .or_else(|| self.pos_tracker.as_ref().map(|t| t.mode()))
    }
}

/// Continuous windows periodically release arbiter windows that have
/// fully elapsed (after this many completions), folding their medium
/// coverage into the running utilization — admission cost stays bounded
/// by the in-flight set instead of growing with window length.
const AIRTIME_FLUSH_EVERY: usize = 128;

/// Accumulates one window's (or epoch's) report inputs.
#[derive(Default)]
struct WindowAcc {
    outcomes: Vec<ClientOutcome>,
    bands_planned: usize,
    bands_full_sweep: usize,
    /// Covered medium time already flushed out of the arbiter, ns
    /// (continuous windows only).
    busy_ns: f64,
    /// Start of the not-yet-flushed utilization segment.
    flushed_to: Instant,
    /// Completions since the last airtime flush.
    since_flush: usize,
}

/// Runtime state of the ingestion front-end (present only when
/// [`ServiceConfig::ingestion`] is set).
struct IngestState {
    cfg: IngestionConfig,
    /// The bounded front door; holds client indices whose `SweepDue`
    /// fired but whose admission is pending capacity.
    queue: AdmissionQueue<usize>,
    /// Cumulative counters since engine creation (peak fields hold
    /// all-time maxima, folded in at window boundaries).
    stats: IngestionStats,
    /// Counter snapshot at the start of the current window.
    window_start: IngestionStats,
    /// Peak TRACK stretch factor observed in the current window.
    window_stretch_peak: f64,
}

impl IngestState {
    fn new(cfg: IngestionConfig) -> Self {
        IngestState {
            queue: AdmissionQueue::new(cfg.queue),
            cfg,
            stats: IngestionStats::default(),
            window_start: IngestionStats::default(),
            window_stretch_peak: 1.0,
        }
    }

    /// Current TRACK cadence stretch: 1 at an empty queue (the front
    /// end is transparent under light load), rising linearly with the
    /// queue's global occupancy to [`IngestionConfig::track_stretch_max`]
    /// when full.
    fn stretch(&self) -> f64 {
        let cap = self.cfg.queue.global_depth.max(1) as f64;
        let fill = (self.queue.len() as f64 / cap).min(1.0);
        1.0 + fill * (self.cfg.track_stretch_max.max(1.0) - 1.0)
    }
}

/// The continuous virtual-time sweep engine: a pool of
/// [`ChronosSession`]s sharing one [`PlanCache`] and one arbitrated
/// medium, driven by staged events instead of a lock-step epoch barrier.
///
/// See the module docs for the event lifecycle, the cadence policy and
/// the **seeding contract** (per-client monotonic sweep counters; results
/// invariant to thread count, host schedule and cadence).
pub struct ServiceEngine {
    cfg: ServiceConfig,
    plans: Arc<PlanCache>,
    slots: Vec<Slot>,
    /// TRACK subsets, memoized per (full-plan channels, subset size) —
    /// [`select_subset`] is pure, so every client on the standard plan
    /// shares one entry (and hence one cached NDFT plan downstream).
    subsets: HashMap<(Vec<u16>, usize), Arc<Vec<Band>>>,
    arbiter: MediumArbiter,
    queue: EventQueue<EngineEvent>,
    /// Queued `SweepDue`/`SweepComplete` events. When this hits zero the
    /// queue holds only scheduled departures — a timeless epoch drain
    /// stops there instead of pulling far-future `leave_at` events out
    /// of their virtual time.
    pending_ops: usize,
    /// `SweepComplete` events currently queued — sweeps on the air. The
    /// ingestion drain uses this for work conservation: with nothing in
    /// flight and nothing admitted this instant, at least one queued
    /// request is always released regardless of the backlog limit.
    in_flight: usize,
    /// Ingestion front-end state (`None`: dues book the arbiter
    /// directly, pre-ingestion behavior bit for bit).
    ingest: Option<IngestState>,
    clock: Instant,
    /// The submitter-side scratch pipeline: runs single-sweep batches
    /// inline and helps drain the runtime's ring on multi-sweep batches.
    /// Allocated lazily, reused for every subsequent batch — this is
    /// what makes steady-state estimation allocation-free. (Worker
    /// threads own their pipelines inside the [`WorkerRuntime`].)
    pipelines: Vec<SweepPipeline>,
    /// The persistent worker pool. Created once — lazily on the first
    /// multi-sweep batch, or installed up front via
    /// [`ServiceEngine::set_runtime`] so fleet shards share one pool —
    /// and reused for every batch after; the engine never spawns another
    /// thread past this point.
    runtime: Option<Arc<WorkerRuntime>>,
}

impl fmt::Debug for ServiceEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceEngine")
            .field("clients", &self.slots.len())
            .field("active", &self.n_active())
            .field("clock", &self.clock)
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl ServiceEngine {
    /// Creates an empty engine with a fresh plan cache.
    pub fn new(cfg: ServiceConfig) -> Self {
        Self::with_cache(cfg, Arc::new(PlanCache::new()))
    }

    /// Creates an engine that shares an existing plan cache.
    pub fn with_cache(cfg: ServiceConfig, plans: Arc<PlanCache>) -> Self {
        let arbiter = MediumArbiter::new(cfg.arbiter);
        let ingest = cfg.ingestion.map(IngestState::new);
        ServiceEngine {
            cfg,
            plans,
            slots: Vec::new(),
            subsets: HashMap::new(),
            arbiter,
            queue: EventQueue::new(),
            pending_ops: 0,
            in_flight: 0,
            ingest,
            clock: Instant::ZERO,
            pipelines: Vec::new(),
            runtime: None,
        }
    }

    /// The shared plan cache.
    pub fn plans(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// The engine's policy.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The airtime arbiter (admission windows, utilization, the
    /// single-charge `total_tracked_airtime` accounting).
    pub fn arbiter(&self) -> &MediumArbiter {
        &self.arbiter
    }

    /// The engine's virtual clock (end of the last window).
    pub fn clock(&self) -> Instant {
        self.clock
    }

    /// Queued events (pending dues, in-flight completions, scheduled
    /// leaves). Zero means the engine is quiescent.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Adds a client from its physical measurement context; returns its
    /// slot index. The session borrows the engine's plan cache.
    pub fn join(&mut self, ctx: MeasurementContext, config: ChronosConfig) -> usize {
        let session = ChronosSession::with_cache(ctx, config, Arc::clone(&self.plans));
        self.join_session(session)
    }

    /// Adds a client with a per-client tracker policy overriding the
    /// service-wide [`ServiceConfig::adaptive`] setting — e.g. to pin a
    /// client in ACQUIRE (`acquire_fixes: usize::MAX`) or give one
    /// client different filter noise.
    pub fn join_with_tracker(
        &mut self,
        ctx: MeasurementContext,
        config: ChronosConfig,
        tracker: TrackerConfig,
    ) -> usize {
        let session = ChronosSession::with_cache(ctx, config, Arc::clone(&self.plans));
        self.join_session_with(session, Some(tracker))
    }

    /// Adopts an existing session as a client (its plan cache is
    /// replaced by the engine's shared one).
    pub fn join_session(&mut self, session: ChronosSession) -> usize {
        self.join_session_with(session, None)
    }

    /// [`ServiceEngine::join_session`] with an optional per-client
    /// tracker override (see [`ServiceEngine::join_with_tracker`]).
    pub fn join_session_with(
        &mut self,
        mut session: ChronosSession,
        tracker: Option<TrackerConfig>,
    ) -> usize {
        session.plans = Some(Arc::clone(&self.plans));
        let adaptive = self.cfg.adaptive.is_some() || tracker.is_some();
        let tracker_cfg = tracker.or(self.cfg.adaptive);
        let (dist_tracker, pos_tracker) = match self.cfg.localization {
            LocalizationMode::Distance => (tracker_cfg.map(ClientTracker::new), None),
            LocalizationMode::Position => {
                // Position mode always fuses through a tracker; `adaptive`
                // only decides whether its mode machine drives band-subset
                // scheduling.
                (
                    None,
                    Some(PositionTracker::new(tracker_cfg.unwrap_or_default())),
                )
            }
        };
        self.slots.push(Slot {
            session,
            tracker: dist_tracker,
            pos_tracker,
            adaptive,
            sweeps: 0,
            active: true,
            scheduled: false,
            quarantined: false,
            clean_run: 0,
            background: false,
            pending_deferrals: 0,
        });
        self.slots.len() - 1
    }

    /// Deactivates a client immediately. Its slot index stays valid (and
    /// is never reused); a sweep already in the air completes and is
    /// reported, but nothing further is scheduled. Returns whether the
    /// client was active.
    pub fn leave(&mut self, idx: usize) -> bool {
        match self.slots.get_mut(idx) {
            Some(s) if s.active => {
                s.active = false;
                true
            }
            _ => false,
        }
    }

    /// Schedules a client's departure at simulated time `t` (an
    /// engine-level event, processed in time order with the sweeps).
    pub fn leave_at(&mut self, idx: usize, t: Instant) {
        self.queue
            .schedule(t.max(self.clock), EngineEvent::Leave(idx));
    }

    /// Extracts a client's portable tracking state and deactivates the
    /// slot — the departure half of a fleet handoff. Returns `None` if
    /// the slot is missing or already inactive. A sweep still in the
    /// air completes and is reported here (its outcome belongs to the
    /// old AP); the extracted state is the tracker as of the sweeps
    /// already absorbed.
    pub fn extract_client(&mut self, idx: usize) -> Option<MigratedClient> {
        let slot = self.slots.get(idx)?;
        if !slot.active {
            return None;
        }
        let state = MigratedClient {
            tracker: slot.tracker.clone(),
            pos_tracker: slot.pos_tracker.clone(),
            adaptive: slot.adaptive,
            quarantined: slot.quarantined,
            clean_run: slot.clean_run,
            background: slot.background,
        };
        self.leave(idx);
        Some(state)
    }

    /// The arrival half of a fleet handoff: adds a client whose tracker,
    /// quarantine verdict and flags come from
    /// [`ServiceEngine::extract_client`] on another engine (after
    /// [`MigratedClient::translate`] re-framed a position track). The
    /// new slot's sweep ordinal starts at zero like any other join —
    /// see [`MigratedClient`] for why. The client's first sweep here
    /// runs under the migrated mode: a TRACK arrival schedules a
    /// band-subset sweep immediately, no re-ACQUIRE.
    pub fn join_migrated(
        &mut self,
        ctx: MeasurementContext,
        config: ChronosConfig,
        state: MigratedClient,
    ) -> usize {
        let session = ChronosSession::with_cache(ctx, config, Arc::clone(&self.plans));
        self.slots.push(Slot {
            session,
            tracker: state.tracker,
            pos_tracker: state.pos_tracker,
            adaptive: state.adaptive,
            sweeps: 0,
            active: true,
            scheduled: false,
            quarantined: state.quarantined,
            clean_run: state.clean_run,
            background: state.background,
            pending_deferrals: 0,
        });
        self.slots.len() - 1
    }

    /// Books an externally-timed transmission on this AP's medium — the
    /// fleet layer charges inter-AP sync beacons and TDoA blasts here so
    /// they contend with (and are counted against) the shard's regular
    /// sweep airtime. The transmission is admitted at `not_before` under
    /// the normal arbiter rules (guard bands, concurrency stagger) and
    /// completed immediately at its granted start plus `airtime`.
    /// Returns the granted start.
    pub fn charge_airtime(&mut self, not_before: Instant, airtime: Duration) -> Instant {
        let grant = self.arbiter.admit(not_before, airtime);
        let start = grant.start;
        self.arbiter.complete(grant.token, start + airtime);
        start
    }

    /// Books an *overheard* transmission on this AP's medium at exactly
    /// `[at, at + airtime)` — no admission, no deferral, no stagger
    /// (see [`MediumArbiter::book`]). The fleet layer charges one-way
    /// TDoA blasts here: the client transmits on its own cadence
    /// regardless of this AP's schedule, so the air is busy at the
    /// actual blast instant, and booking is O(1) instead of an
    /// admission scan — at a thousand roaming clients a shard overhears
    /// thousands of blasts per window, and routing them through
    /// [`ServiceEngine::charge_airtime`] made every boundary pump
    /// quadratic in the blast count.
    pub fn charge_airtime_at(&mut self, at: Instant, airtime: Duration) {
        self.arbiter.book(at, airtime);
    }

    /// Whether a slot currently participates in scheduling.
    pub fn is_active(&self, idx: usize) -> bool {
        self.slots.get(idx).map(|s| s.active).unwrap_or(false)
    }

    /// Total slots ever created (indices run `0..n_slots()`).
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Currently active clients.
    pub fn n_active(&self) -> usize {
        self.slots.iter().filter(|s| s.active).count()
    }

    /// Immutable access to a client session.
    pub fn session(&self, idx: usize) -> &ChronosSession {
        &self.slots[idx].session
    }

    /// Mutable access to a client session (geometry updates between
    /// windows).
    pub fn session_mut(&mut self, idx: usize) -> &mut ChronosSession {
        &mut self.slots[idx].session
    }

    /// A client's distance tracker (adaptive distance-mode only).
    pub fn tracker(&self, idx: usize) -> Option<&ClientTracker> {
        self.slots.get(idx).and_then(|s| s.tracker.as_ref())
    }

    /// A client's position tracker (position-mode only).
    pub fn position_tracker(&self, idx: usize) -> Option<&PositionTracker> {
        self.slots.get(idx).and_then(|s| s.pos_tracker.as_ref())
    }

    /// Whether a client is currently under QUARANTINE (see
    /// [`crate::service::QuarantineConfig`]). Always `false` when the
    /// policy is off.
    pub fn is_quarantined(&self, idx: usize) -> bool {
        self.slots.get(idx).map(|s| s.quarantined).unwrap_or(false)
    }

    /// A client's current anomaly score (whichever tracker the slot
    /// runs; `None` for non-adaptive distance clients).
    pub fn anomaly_score(&self, idx: usize) -> Option<f64> {
        self.slots.get(idx).and_then(|s| {
            s.tracker
                .as_ref()
                .map(|t| t.anomaly_score())
                .or_else(|| s.pos_tracker.as_ref().map(|t| t.anomaly_score()))
        })
    }

    /// Flags a client as BACKGROUND traffic: its sweep requests are
    /// offered to the admission queue in the lowest class. With
    /// ingestion disabled the flag only annotates
    /// [`ClientOutcome::class`].
    pub fn set_background(&mut self, idx: usize, background: bool) {
        if let Some(s) = self.slots.get_mut(idx) {
            s.background = background;
        }
    }

    /// Whether a client is flagged as BACKGROUND traffic.
    pub fn is_background(&self, idx: usize) -> bool {
        self.slots.get(idx).map(|s| s.background).unwrap_or(false)
    }

    /// Cumulative ingestion accounting since engine creation (`None`
    /// when the front-end is off). Peak fields report all-time maxima
    /// including the in-progress window.
    pub fn ingestion_stats(&self) -> Option<IngestionStats> {
        self.ingest.as_ref().map(|ing| {
            let mut s = ing.stats;
            let hw = ing.queue.high_water();
            s.queue_peak.acquire = s.queue_peak.acquire.max(hw.acquire);
            s.queue_peak.track = s.queue_peak.track.max(hw.track);
            s.queue_peak.background = s.queue_peak.background.max(hw.background);
            s.queue_peak_total = s.queue_peak_total.max(ing.queue.high_water_total() as u64);
            s.stretch_peak = s.stretch_peak.max(ing.window_stretch_peak);
            s
        })
    }

    /// The admission class of a client's next sweep request.
    fn class_of(&self, client: usize) -> TrafficClass {
        if self.slots[client].background {
            TrafficClass::Background
        } else {
            match self.sched_mode(client).0 {
                TrackMode::Acquire => TrafficClass::Acquire,
                TrackMode::Track => TrafficClass::Track,
            }
        }
    }

    /// Calibrates every client at its current (known) geometry with `n`
    /// sweeps each (paper §7 obs. 2). Sequential: calibration is a
    /// one-time setup step.
    pub fn calibrate_all(&mut self, seed: u64, n: usize) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0, i));
            slot.session.calibrate(&mut rng, n);
        }
    }

    /// Worker-thread count for this run.
    pub(crate) fn thread_count(&self) -> usize {
        if self.cfg.threads > 0 {
            self.cfg.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
        .max(1)
    }

    /// The TRACK-mode subset for one client's full plan, memoized.
    ///
    /// Subsets are drawn from the plan's 5 GHz members: they share one
    /// delay scale (so the estimator inverts a single coherent group)
    /// and avoid the 2.4 ↔ 5 GHz gap, whose extreme spacing contributes
    /// ambiguity rather than aperture. Plans without enough 5 GHz bands
    /// fall back to selecting over the whole plan.
    fn track_subset(&mut self, client: usize, k: usize) -> Arc<Vec<Band>> {
        let full = &self.slots[client].session.sweep_cfg.plan;
        let key: (Vec<u16>, usize) = (full.iter().map(|b| b.channel).collect(), k);
        if let Some(s) = self.subsets.get(&key) {
            return Arc::clone(s);
        }
        let pool: Vec<Band> = full.iter().filter(|b| !b.group.is_2g4()).cloned().collect();
        let pool = if pool.len() >= k.max(5) {
            pool
        } else {
            full.clone()
        };
        let sub = Arc::new(select_subset(&pool, k, SUBSET_AMBIGUITY_SPAN_NS));
        self.subsets.insert(key, Arc::clone(&sub));
        sub
    }

    /// The mode and band request the scheduler reads for a client's next
    /// sweep.
    fn sched_mode(&self, client: usize) -> (TrackMode, Option<usize>) {
        let slot = &self.slots[client];
        if let Some(t) = &slot.pos_tracker {
            // A non-adaptive position service still fuses fixes, but
            // always sweeps the full plan — and reports the sweep it
            // actually issues (ACQUIRE-class), not the fusion machine's
            // internal mode.
            if slot.adaptive {
                (t.mode(), t.requested_bands())
            } else {
                (TrackMode::Acquire, None)
            }
        } else if let Some(t) = &slot.tracker {
            (t.mode(), t.requested_bands())
        } else {
            (TrackMode::Acquire, None)
        }
    }

    /// Admits one client's sweep at `now`: schedule its plan from
    /// tracker state, price the admission window per plan, draw the
    /// sweep's RNG seed from the client's sweep counter.
    fn admit(&mut self, client: usize, now: Instant, seed: u64, acc: &mut WindowAcc) -> Job {
        let mut sweep_cfg = self.slots[client].session.sweep_cfg.clone();
        acc.bands_full_sweep += sweep_cfg.plan.len();
        let (mode, requested) = self.sched_mode(client);
        if let Some(k) = requested {
            sweep_cfg.plan = self.track_subset(client, k).as_ref().clone();
        }
        acc.bands_planned += sweep_cfg.plan.len();
        // A jamming attacker degrades the link itself: project its jammed
        // channels onto the *final* (possibly subset) plan as per-band
        // frame loss. Honest clients keep the empty vector, which draws
        // no extra randomness in the link layer.
        if let Some(attacker) = &self.slots[client].session.ctx.attacker {
            if let Some(loss) = attacker.band_loss(&sweep_cfg.plan) {
                sweep_cfg.band_loss = loss;
            }
        }
        let expected = sweep_cfg
            .expected_duration()
            .mul_f64(self.cfg.admission_headroom.max(1.0));
        let grant = self.arbiter.admit(now, expected);
        sweep_cfg.medium.loss_prob = (sweep_cfg.medium.loss_prob + grant.extra_loss).min(0.9);
        let class = if self.slots[client].background {
            TrafficClass::Background
        } else {
            match mode {
                TrackMode::Acquire => TrafficClass::Acquire,
                TrackMode::Track => TrafficClass::Track,
            }
        };
        let slot = &mut self.slots[client];
        let sweep_index = slot.sweeps;
        slot.sweeps += 1;
        Job {
            client,
            grant,
            sweep_cfg,
            rng_seed: mix_seed(seed, sweep_index + 1, client),
            mode,
            class,
            deferrals: std::mem::take(&mut slot.pending_deferrals),
            sweep_index,
        }
    }

    /// Runs a batch of admitted sweeps on the persistent worker runtime:
    /// every job is submitted to the pool's lock-free ring and executed
    /// on a long-lived worker (or the helping submitter), each worker
    /// owning a [`SweepPipeline`] whose scratch arena survives across
    /// every batch of the runtime's lifetime. Results come back in
    /// submission (ordinal) order, and each job owns its seeded RNG, so
    /// neither the thread schedule nor the batching can change any
    /// result — the `{1, 2, 8}`-thread bitwise determinism tests pin
    /// this.
    ///
    /// The pool is created exactly once (here, lazily, or installed via
    /// [`ServiceEngine::set_runtime`]); the engine never spawns a thread
    /// per batch.
    fn execute(&mut self, jobs: &[Job]) -> Vec<SweepOutput> {
        fn batch_of<'a>(slots: &'a [Slot], slice: &'a [Job]) -> Vec<BatchSweep<'a>> {
            slice
                .iter()
                .map(|job| BatchSweep {
                    session: &slots[job.client].session,
                    sweep_cfg: &job.sweep_cfg,
                    rng_seed: job.rng_seed,
                    start: job.grant.start,
                })
                .collect()
        }
        let n_threads = self.thread_count();
        let slots = self.slots.as_slice();
        if self.pipelines.is_empty() {
            self.pipelines.push(SweepPipeline::new());
        }
        // Continuous-cadence batches are usually a single sweep: run
        // those inline on the submitter's pipeline rather than paying a
        // queue round-trip per sweep.
        if jobs.len() <= 1 || n_threads == 1 {
            return self.pipelines[0].run_batch(&batch_of(slots, jobs));
        }
        let runtime = ensure_runtime(&mut self.runtime, n_threads - 1);
        runtime.run_batch(&batch_of(slots, jobs), &mut self.pipelines[0])
    }

    /// The persistent worker runtime, if one has been created (lazily on
    /// the first multi-sweep batch of a multi-threaded engine) or
    /// installed.
    pub fn runtime(&self) -> Option<&Arc<WorkerRuntime>> {
        self.runtime.as_ref()
    }

    /// Installs a (possibly shared) worker runtime. A fleet installs one
    /// pool across all its shards so N shards don't spawn N pools; a
    /// bench can install a pre-spun pool to measure spin-up separately
    /// from throughput.
    pub fn set_runtime(&mut self, runtime: Arc<WorkerRuntime>) {
        self.runtime = Some(runtime);
    }

    /// Explicitly sizes the engine's worker pool to `workers` pool
    /// threads (the submitter still helps, so effective concurrency is
    /// `workers + 1`), resizing a live pool in place or creating one —
    /// the escape hatch from the lazy `thread_count() - 1` default.
    /// Call between windows; see [`WorkerRuntime::resize`].
    pub fn set_pool_workers(&mut self, workers: usize) {
        match &self.runtime {
            Some(rt) => rt.resize(workers),
            None => self.runtime = Some(Arc::new(WorkerRuntime::new(workers))),
        }
    }

    /// Pre-builds the NDFT plans every client's ACQUIRE (full-plan)
    /// sweep will request, routing the expensive constructions — matrix
    /// materialization plus the operator-norm power iteration — through
    /// the worker runtime so distinct plans build in parallel. With at
    /// most one distinct plan, or on a single-threaded engine, the
    /// builds run inline (a pool would have nothing to overlap).
    ///
    /// Purely an opt-in warm-up: the plan cache double-checks under its
    /// write lock either way, so estimation results and steady-state
    /// behavior are identical whether or not this runs. Returns the
    /// number of distinct plans built or found resident.
    pub fn prewarm_plans(&mut self) -> usize {
        let n_threads = self.thread_count();
        if self.pipelines.is_empty() {
            self.pipelines.push(SweepPipeline::new());
        }
        let mut jobs: Vec<PlanPrewarmJob<'_>> = Vec::new();
        collect_plan_jobs(&self.slots, &self.plans, &mut jobs);
        if jobs.len() <= 1 || n_threads == 1 {
            for job in &jobs {
                job.run(&mut self.pipelines[0]);
            }
            return jobs.len();
        }
        let runtime = ensure_runtime(&mut self.runtime, n_threads - 1);
        runtime.run_batch(&jobs, &mut self.pipelines[0]);
        jobs.len()
    }

    /// Appends this engine's distinct plan-construction jobs to `jobs`,
    /// deduplicating against entries already present — so a fleet can
    /// collect one job list across all shards (which share a plan
    /// cache) and build each distinct plan exactly once, on one pool.
    pub(crate) fn plan_prewarm_jobs<'a>(&'a self, jobs: &mut Vec<PlanPrewarmJob<'a>>) {
        collect_plan_jobs(&self.slots, &self.plans, jobs);
    }

    /// Processes one `SweepComplete`: feed the actual finish back, fuse
    /// the fix into the client's tracker, record the outcome, and (in
    /// continuous mode) reschedule the client at its per-mode cadence.
    fn finish_sweep(
        &mut self,
        done: CompletedSweep,
        now: Instant,
        auto_resweep: bool,
        track_stretch: f64,
        acc: &mut WindowAcc,
    ) {
        let CompletedSweep {
            client,
            grant,
            mode,
            class,
            deferrals,
            bands_planned,
            sweep_index,
            truth_m,
            truth_pos,
            out,
        } = done;
        let slot = &mut self.slots[client];
        let distance_m = out.mean_distance_m();
        let mut next_mode = TrackMode::Acquire;
        let mut anomaly_score = None;
        let (predicted_m, tracked_m, innovation_sigmas) = match &mut slot.tracker {
            Some(tracker) => {
                let upd = tracker.observe(out.link.started, distance_m, out.link.complete);
                next_mode = upd.next_mode;
                anomaly_score = Some(upd.anomaly_score);
                (
                    upd.predicted_m,
                    upd.fused_m,
                    upd.innovation.map(|i| i.sigmas()),
                )
            }
            None => (None, None, None),
        };
        let (position, pos_residual_m, pos_antennas, tracked_pos, pos_innovation_sigmas) =
            match &mut slot.pos_tracker {
                Some(tracker) => {
                    let resolved = tracker.resolve(&out.position_candidates);
                    let fix = resolved.map(|p| p.point);
                    let upd = tracker.observe(out.link.started, fix, out.link.complete);
                    if slot.adaptive {
                        next_mode = upd.next_mode;
                    }
                    anomaly_score = Some(upd.anomaly_score);
                    (
                        fix,
                        resolved.map(|p| p.residual_m),
                        resolved.map(|p| p.n_used),
                        upd.fused,
                        upd.innovation.map(|i| i.sigmas()),
                    )
                }
                None => (None, None, None, None, None),
            };
        // Quarantine hysteresis: entering is immediate (this outcome is
        // already withheld), release requires the score to sit at or
        // below the release threshold for `release_dwell` consecutive
        // sweeps. The sweep itself still ran and its fix still fed the
        // tracker — quarantine withholds the *report*, not the evidence.
        if let (Some(q), Some(score)) = (&self.cfg.quarantine, anomaly_score) {
            if slot.quarantined {
                if score <= q.release {
                    slot.clean_run += 1;
                    if slot.clean_run >= q.release_dwell {
                        slot.quarantined = false;
                        slot.clean_run = 0;
                    }
                } else {
                    slot.clean_run = 0;
                }
            } else if score >= q.threshold && sweep_index + 1 >= q.min_sweeps {
                slot.quarantined = true;
                slot.clean_run = 0;
            }
        }
        let quarantined = slot.quarantined;
        fn serve<T>(quarantined: bool, v: Option<T>) -> Option<T> {
            if quarantined {
                None
            } else {
                v
            }
        }
        acc.outcomes.push(ClientOutcome {
            client,
            sweep: sweep_index,
            started: out.link.started,
            finished: out.link.finished,
            concurrent: grant.concurrent,
            extra_loss: grant.extra_loss,
            link_complete: out.link.complete,
            distance_m: serve(quarantined, distance_m),
            truth_m,
            error_m: serve(quarantined, distance_m).map(|d| (d - truth_m).abs()),
            mode,
            bands_planned,
            predicted_m: serve(quarantined, predicted_m),
            tracked_m: serve(quarantined, tracked_m),
            tracked_error_m: serve(quarantined, tracked_m).map(|d| (d - truth_m).abs()),
            innovation_sigmas,
            position: serve(quarantined, position),
            pos_residual_m: serve(quarantined, pos_residual_m),
            pos_antennas: serve(quarantined, pos_antennas),
            truth_pos,
            pos_error_m: serve(quarantined, position).map(|p| p.dist(truth_pos)),
            tracked_pos: serve(quarantined, tracked_pos),
            tracked_pos_error_m: serve(quarantined, tracked_pos).map(|p| p.dist(truth_pos)),
            pos_innovation_sigmas,
            anomaly_score,
            quarantined,
            class,
            deferrals,
        });
        if auto_resweep && slot.active {
            let gap = match next_mode {
                // Cadence degradation: under queue pressure TRACK gaps
                // stretch (the first rung of the shedding ladder).
                // `track_stretch` is exactly 1.0 whenever ingestion is
                // off, keeping the legacy path bit-for-bit intact.
                TrackMode::Track if track_stretch > 1.0 => {
                    self.cfg.cadence.track_gap.mul_f64(track_stretch)
                }
                TrackMode::Track => self.cfg.cadence.track_gap,
                TrackMode::Acquire => self.cfg.cadence.acquire_gap,
            };
            slot.scheduled = true;
            self.pending_ops += 1;
            self.queue
                .schedule(now + gap, EngineEvent::SweepDue(client));
        } else {
            slot.scheduled = false;
        }
    }

    /// Schedules a `SweepDue` at `at` for every active client that has
    /// no pending event (in slot order — the deterministic tie-break).
    fn schedule_idle_clients(&mut self, at: Instant) {
        for idx in 0..self.slots.len() {
            if self.slots[idx].active && !self.slots[idx].scheduled {
                self.slots[idx].scheduled = true;
                self.pending_ops += 1;
                self.queue.schedule(at, EngineEvent::SweepDue(idx));
            }
        }
    }

    /// Folds the medium coverage of `[acc.flushed_to, now)` into the
    /// running window utilization, then releases every arbiter window
    /// that ended by `now` — those can no longer affect any admission
    /// (dues only fire at or after `now`), so the admission scan stays
    /// bounded by the in-flight set even in very long windows.
    fn flush_airtime(&mut self, now: Instant, acc: &mut WindowAcc) {
        let span = now.saturating_since(acc.flushed_to);
        if span > Duration::ZERO {
            acc.busy_ns += self.arbiter.utilization(acc.flushed_to, now) * span.as_nanos() as f64;
        }
        self.arbiter.release_before(now);
        acc.flushed_to = now;
        acc.since_flush = 0;
    }

    /// Reschedules a pushed-back request (deferred, displaced, or shed)
    /// after the ingestion retry gap. The slot's `scheduled` claim
    /// stays held by the retry event.
    fn retry_later(&mut self, client: usize, now: Instant, gap: Duration) {
        self.slots[client].pending_deferrals += 1;
        self.pending_ops += 1;
        self.queue
            .schedule(now + gap, EngineEvent::SweepDue(client));
    }

    /// The event loop: processes queued events in virtual-time order
    /// until the queue drains (`deadline: None`) or the next event would
    /// fire past the deadline.
    ///
    /// All events firing at one instant are drained together and
    /// processed leaves first, then completions, then the admission
    /// batch — completions before admissions so same-instant grants see
    /// actual sweep ends, dues last so the ACQUIRE-priority ordering
    /// spans every due of the instant.
    ///
    /// With the ingestion front-end active (continuous windows only),
    /// dues no longer book the arbiter directly: they are *offered* to
    /// the bounded [`AdmissionQueue`] (sheds and deferrals decided
    /// here), and the queue is drained in class-priority order only
    /// while the arbiter's booking horizon stays inside
    /// [`IngestionConfig::backlog_limit`] — with a work-conservation
    /// escape: if nothing is in flight and nothing was admitted this
    /// instant, one request is always released, so a non-empty queue
    /// always implies a pending completion and hence a future drain.
    fn pump(
        &mut self,
        seed: u64,
        deadline: Option<Instant>,
        acquire_priority: bool,
        auto_resweep: bool,
        acc: &mut WindowAcc,
    ) {
        // The front end applies to continuous windows only; the epoch
        // compatibility path keeps its legacy semantics. Taking the
        // state out of `self` lets the loop borrow both freely.
        let mut ingest = if auto_resweep {
            self.ingest.take()
        } else {
            None
        };
        while let Some(now) = self.queue.peek_time() {
            match deadline {
                Some(d) if now > d => break,
                // A timeless (epoch) drain stops once only scheduled
                // departures remain: a far-future `leave_at` must not be
                // pulled out of its virtual time by the round.
                None if self.pending_ops == 0 => break,
                _ => {}
            }
            // Drain the whole instant (pop order is deterministic).
            let mut completes: Vec<Box<CompletedSweep>> = Vec::new();
            let mut due: Vec<usize> = Vec::new();
            while let Some(event) = self.queue.pop_if_at(now) {
                match event {
                    EngineEvent::Leave(c) => {
                        if let Some(s) = self.slots.get_mut(c) {
                            s.active = false;
                        }
                    }
                    EngineEvent::SweepComplete(done) => {
                        self.pending_ops -= 1;
                        self.in_flight -= 1;
                        completes.push(done);
                    }
                    EngineEvent::SweepDue(c) => {
                        self.pending_ops -= 1;
                        due.push(c);
                    }
                }
            }
            // TRACK reschedules of this instant's completions see the
            // queue pressure as it stands *before* this instant's
            // arrivals — the pressure those sweeps actually ran under.
            let track_stretch = match &ingest {
                Some(ing) => ing.stretch(),
                None => 1.0,
            };
            if let Some(ing) = ingest.as_mut() {
                ing.window_stretch_peak = ing.window_stretch_peak.max(track_stretch);
            }
            acc.since_flush += completes.len();
            for done in completes {
                self.finish_sweep(*done, now, auto_resweep, track_stretch, acc);
            }
            if auto_resweep && acc.since_flush >= AIRTIME_FLUSH_EVERY {
                self.flush_airtime(now, acc);
            }
            // Departed clients' dues dissolve.
            for &c in &due {
                if !self.slots[c].active {
                    self.slots[c].scheduled = false;
                }
            }
            due.retain(|&c| self.slots[c].active);
            let mut jobs = Vec::with_capacity(due.len());
            if let Some(ing) = ingest.as_mut() {
                // Offer this instant's fresh dues to the bounded queue,
                // in due order. The ladder: TRACK rejections defer
                // (cadence keeps degrading), BACKGROUND rejections and
                // displacement victims are shed, ACQUIRE rejections —
                // possible only once displacement finds no background
                // victim — are shed as the last resort.
                for &c in &due {
                    let class = self.class_of(c);
                    ing.stats.offered.add(class, 1);
                    match ing.queue.offer(class, c) {
                        Offer::Enqueued => {}
                        Offer::Displaced(victim) => {
                            ing.stats.shed.add(TrafficClass::Background, 1);
                            self.retry_later(victim, now, ing.cfg.retry_gap);
                        }
                        Offer::Rejected(c) => {
                            if class == TrafficClass::Track {
                                ing.stats.deferred.add(class, 1);
                            } else {
                                ing.stats.shed.add(class, 1);
                            }
                            self.retry_later(c, now, ing.cfg.retry_gap);
                        }
                    }
                }
                // Drain in class-priority order while the arbiter's
                // booking horizon stays inside the backlog limit (each
                // admission pushes the horizon out, tightening the
                // check), with the work-conservation escape described
                // above.
                while let Some(class) = ing.queue.peek_class() {
                    let backlog = self.arbiter.horizon().saturating_since(now);
                    let has_capacity = backlog < ing.cfg.backlog_limit;
                    let work_conserving = self.in_flight == 0 && jobs.is_empty();
                    if !has_capacity && !work_conserving {
                        break;
                    }
                    let (_, c) = ing.queue.pop().expect("peeked class");
                    if !self.slots[c].active {
                        // Departed while queued: the claim dissolves.
                        self.slots[c].scheduled = false;
                        continue;
                    }
                    ing.stats.admitted.add(class, 1);
                    jobs.push(self.admit(c, now, seed, acc));
                }
                // Pressure is what *survives* the drain: requests parked
                // behind the backlog limit, not the transient occupancy
                // of same-instant offer-then-admit churn.
                ing.window_stretch_peak = ing.window_stretch_peak.max(ing.stretch());
            } else {
                if acquire_priority {
                    // ACQUIRE clients are admitted first (stable: ties
                    // keep due order) — a cold or broken track gets the
                    // earliest slot the arbiter can grant.
                    due.sort_by_key(|&c| self.sched_mode(c).0 == TrackMode::Track);
                }
                for &c in &due {
                    jobs.push(self.admit(c, now, seed, acc));
                }
            }
            if jobs.is_empty() {
                continue;
            }
            let results = self.execute(&jobs);
            for (job, out) in jobs.into_iter().zip(results) {
                self.arbiter.complete(job.grant.token, out.link.finished);
                let ctx = &self.slots[job.client].session.ctx;
                self.pending_ops += 1;
                self.in_flight += 1;
                self.queue.schedule(
                    out.link.finished,
                    EngineEvent::SweepComplete(Box::new(CompletedSweep {
                        client: job.client,
                        grant: job.grant,
                        mode: job.mode,
                        class: job.class,
                        deferrals: job.deferrals,
                        bands_planned: job.sweep_cfg.plan.len(),
                        sweep_index: job.sweep_index,
                        truth_m: ctx.initiator_pos.dist(ctx.responder_pos),
                        truth_pos: ctx.initiator_pos.sub(ctx.responder_pos),
                        out,
                    })),
                );
            }
        }
        if let Some(ing) = ingest {
            self.ingest = Some(ing);
        }
    }

    /// Snapshots the ingestion counters and resets the per-window peak
    /// trackers at a window's start. No-op with the front-end off.
    fn begin_ingest_window(&mut self) {
        if let Some(ing) = self.ingest.as_mut() {
            ing.window_start = ing.stats;
            ing.queue.reset_high_water();
            ing.window_stretch_peak = ing.stretch();
        }
    }

    /// The window's ingestion delta (counters since
    /// [`ServiceEngine::begin_ingest_window`], peaks over the window),
    /// folding the window's peaks into the cumulative all-time maxima.
    /// All-zero with the front-end off.
    fn end_ingest_window(&mut self) -> IngestionStats {
        let Some(ing) = self.ingest.as_mut() else {
            return IngestionStats::default();
        };
        let hw = ing.queue.high_water();
        let hw_total = ing.queue.high_water_total() as u64;
        ing.stats.queue_peak.acquire = ing.stats.queue_peak.acquire.max(hw.acquire);
        ing.stats.queue_peak.track = ing.stats.queue_peak.track.max(hw.track);
        ing.stats.queue_peak.background = ing.stats.queue_peak.background.max(hw.background);
        ing.stats.queue_peak_total = ing.stats.queue_peak_total.max(hw_total);
        ing.stats.stretch_peak = ing.stats.stretch_peak.max(ing.window_stretch_peak);
        let mut w = ing.stats.counters_since(&ing.window_start);
        w.queue_peak = hw;
        w.queue_peak_total = hw_total;
        w.stretch_peak = ing.window_stretch_peak;
        w
    }

    /// Releases everything still waiting in the admission queue as
    /// immediate dues at `at`. Epoch rounds bypass the front door
    /// entirely (legacy semantics), so mixed window/epoch use must not
    /// strand a queued client behind a door nobody is draining.
    fn flush_ingest_to_dues(&mut self, at: Instant) {
        if let Some(ing) = self.ingest.as_mut() {
            while let Some((class, c)) = ing.queue.pop() {
                ing.stats.admitted.add(class, 1);
                self.pending_ops += 1;
                self.queue.schedule(at, EngineEvent::SweepDue(c));
            }
        }
    }

    /// Runs the engine continuously until `deadline`: every active
    /// client is (re)scheduled at its own cadence — TRACK clients
    /// re-sweep as soon as their subset airtime allows, ACQUIRE clients
    /// get priority admission — and the window's completed sweeps are
    /// reported. Sweeps still in the air at the deadline complete in the
    /// next window.
    pub fn run_until(&mut self, seed: u64, deadline: Instant) -> WindowReport {
        let started = self.clock;
        let ended = deadline.max(started);
        let wall_start = std::time::Instant::now();
        if ended == started {
            // Zero-length window: a no-op, not a round of admissions.
            return WindowReport {
                started,
                ended,
                outcomes: Vec::new(),
                utilization: 0.0,
                wall: wall_start.elapsed(),
                cache: self.plans.stats(),
                bands_planned: 0,
                bands_full_sweep: 0,
                ingestion: IngestionStats::default(),
            };
        }
        let mut acc = WindowAcc {
            flushed_to: started,
            ..WindowAcc::default()
        };
        // Windows fully behind the last report can no longer overlap any
        // admission; dropping them keeps the arbiter scan bounded.
        self.arbiter.release_before(started);
        self.begin_ingest_window();
        self.schedule_idle_clients(started);
        let priority = self.cfg.cadence.acquire_priority;
        self.pump(seed, Some(ended), priority, true, &mut acc);
        let ingestion = self.end_ingest_window();
        // Utilization = periodically flushed coverage plus the tail the
        // arbiter still tracks (the segments are disjoint by
        // construction).
        let tail = ended.saturating_since(acc.flushed_to);
        let busy_ns = acc.busy_ns
            + if tail > Duration::ZERO {
                self.arbiter.utilization(acc.flushed_to, ended) * tail.as_nanos() as f64
            } else {
                0.0
            };
        let span_ns = ended.saturating_since(started).as_nanos();
        let utilization = if span_ns == 0 {
            0.0
        } else {
            busy_ns / span_ns as f64
        };
        self.clock = ended;
        WindowReport {
            started,
            ended,
            outcomes: acc.outcomes,
            utilization,
            wall: wall_start.elapsed(),
            cache: self.plans.stats(),
            bands_planned: acc.bands_planned,
            bands_full_sweep: acc.bands_full_sweep,
            ingestion,
        }
    }

    /// The epoch-barrier compatibility path behind
    /// [`crate::service::RangingService::run_epoch`]: every active
    /// client is scheduled once at the current clock (admission in
    /// client order, no priority), the queue drains without
    /// rescheduling, and the clock advances past the round's horizon
    /// plus the epoch gap — exactly the pre-engine semantics, seeds
    /// included (see the module-level seeding contract).
    ///
    /// Events carried over from a previous continuous window (in-flight
    /// completions, cadence dues past its deadline) are drained first
    /// and reported in this round, so every active client still gets a
    /// fresh sweep — a client with a leftover due may therefore appear
    /// twice in the round's outcomes.
    pub(crate) fn run_epoch_window(&mut self, seed: u64, epoch: u64) -> EpochReport {
        let started = self.clock;
        let wall_start = std::time::Instant::now();
        let mut acc = WindowAcc::default();
        self.arbiter.release_before(started);
        self.flush_ingest_to_dues(started);
        self.pump(seed, None, false, false, &mut acc);
        self.schedule_idle_clients(started);
        self.pump(seed, None, false, false, &mut acc);
        let horizon = self.arbiter.horizon().max(started);
        let airtime_span = horizon.saturating_since(started);
        let utilization = self.arbiter.utilization(started, horizon);
        self.clock = horizon + self.cfg.epoch_gap;
        acc.outcomes.sort_by_key(|o| o.client);
        EpochReport {
            epoch,
            started,
            airtime_span,
            utilization,
            outcomes: acc.outcomes,
            wall: wall_start.elapsed(),
            cache: self.plans.stats(),
            bands_planned: acc.bands_planned,
            bands_full_sweep: acc.bands_full_sweep,
        }
    }
}

/// Returns the engine's runtime, creating a pool of `workers` threads on
/// first use. A free function (not a method) so callers can hold other
/// `self` field borrows across the call.
fn ensure_runtime(slot: &mut Option<Arc<WorkerRuntime>>, workers: usize) -> &Arc<WorkerRuntime> {
    // The submitter helps, so `workers` pool threads give `workers + 1`
    // effective concurrency.
    slot.get_or_insert_with(|| Arc::new(WorkerRuntime::new(workers)))
}

/// One distinct NDFT plan construction (matrix materialization plus the
/// operator-norm power iteration), shaped as a pool job so prewarm can
/// build distinct plans in parallel. See
/// [`ServiceEngine::plan_prewarm_jobs`].
pub(crate) struct PlanPrewarmJob<'a> {
    plans: &'a PlanCache,
    freqs: Vec<f64>,
    grid: TauGrid,
    lobe_span_ns: f64,
}

impl PoolJob for PlanPrewarmJob<'_> {
    type Output = ();
    fn run(&self, _pipeline: &mut SweepPipeline) {
        let _ = self
            .plans
            .ndft_plan(&self.freqs, self.grid, self.lobe_span_ns);
    }
}

/// The field-level body of [`ServiceEngine::plan_prewarm_jobs`]: a free
/// function so `prewarm_plans` can keep disjoint `&mut self` field
/// borrows alive around it.
///
/// One key per (delay-scale group, client config) the estimator will
/// derive: group frequencies ascending, exactly as
/// `quirk::group_by_scale` orders them.
fn collect_plan_jobs<'a>(
    slots: &'a [Slot],
    plans: &'a PlanCache,
    jobs: &mut Vec<PlanPrewarmJob<'a>>,
) {
    for slot in slots {
        let cfg = &slot.session.config;
        let grid = TauGrid::span(cfg.grid_span_ns, cfg.grid_step_ns);
        for quirked in [false, true] {
            let mut freqs: Vec<f64> = slot
                .session
                .sweep_cfg
                .plan
                .iter()
                .filter(|b| {
                    (cfg.mode == crate::config::QuirkMode::Intel5300 && b.group.is_2g4()) == quirked
                })
                .map(|b| b.center_hz)
                .collect();
            if freqs.len() < 5 {
                continue; // the estimator skips groups this small
            }
            freqs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            if jobs
                .iter()
                .any(|j| j.freqs == freqs && j.grid == grid && j.lobe_span_ns == cfg.grid_span_ns)
            {
                continue;
            }
            jobs.push(PlanPrewarmJob {
                plans,
                freqs,
                grid,
                lobe_span_ns: cfg.grid_span_ns,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::environment::Environment;
    use chronos_rf::geometry::Point;
    use chronos_rf::hardware::{ideal_device, AntennaArray};

    fn ideal_ctx(d: f64) -> MeasurementContext {
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            ideal_device(AntennaArray::single()),
            Point::new(0.0, 0.0),
            ideal_device(AntennaArray::laptop()),
            Point::new(d, 0.0),
        );
        ctx.snr.snr_at_1m_db = 60.0;
        ctx
    }

    fn engine_with(n: usize, cfg: ServiceConfig) -> ServiceEngine {
        let mut eng = ServiceEngine::new(cfg);
        for i in 0..n {
            let id = eng.join(ideal_ctx(2.0 + i as f64), ChronosConfig::ideal());
            eng.session_mut(id).sweep_cfg.medium.loss_prob = 0.0;
        }
        eng
    }

    #[test]
    fn window_reports_sweeps_and_advances_clock() {
        let mut eng = engine_with(2, ServiceConfig::adaptive(TrackerConfig::default()));
        let w = eng.run_until(7, Instant::from_millis(400));
        assert_eq!(w.started, Instant::ZERO);
        assert_eq!(w.ended, Instant::from_millis(400));
        assert_eq!(eng.clock(), Instant::from_millis(400));
        // Two clients x (~90 ms full sweeps, then ~30 ms subsets): well
        // more than one sweep per client fits in 400 ms.
        assert!(w.completed() > 4, "only {} sweeps", w.completed());
        assert!(w.utilization > 0.5, "utilization {}", w.utilization);
        // Per-client sweep ordinals are monotonic within the window.
        for c in 0..2 {
            let ords: Vec<u64> = w
                .outcomes
                .iter()
                .filter(|o| o.client == c)
                .map(|o| o.sweep)
                .collect();
            for pair in ords.windows(2) {
                assert_eq!(pair[1], pair[0] + 1);
            }
        }
    }

    #[test]
    fn track_clients_resweep_without_waiting_for_acquire() {
        // One client pinned in ACQUIRE, one free to promote: once the
        // free client reaches TRACK it must complete several subset
        // sweeps per ACQUIRE sweep instead of idling at a barrier.
        let mut eng = ServiceEngine::new(ServiceConfig::adaptive(TrackerConfig::default()));
        let pinned = eng.join_with_tracker(
            ideal_ctx(3.0),
            ChronosConfig::ideal(),
            TrackerConfig {
                acquire_fixes: usize::MAX,
                ..TrackerConfig::default()
            },
        );
        let free = eng.join(ideal_ctx(5.0), ChronosConfig::ideal());
        for i in [pinned, free] {
            eng.session_mut(i).sweep_cfg.medium.loss_prob = 0.0;
        }
        // Warm-up window promotes the free client.
        eng.run_until(3, Instant::from_millis(400));
        let w = eng.run_until(3, Instant::from_millis(1000));
        let acquire_sweeps = w.outcomes.iter().filter(|o| o.client == pinned).count();
        let track_sweeps = w
            .outcomes
            .iter()
            .filter(|o| o.client == free && o.mode == TrackMode::Track)
            .count();
        assert!(acquire_sweeps >= 3, "{acquire_sweeps} ACQUIRE sweeps");
        assert!(
            track_sweeps >= 2 * acquire_sweeps,
            "TRACK client made {track_sweeps} sweeps vs {acquire_sweeps} ACQUIRE — still barriered?"
        );
        for o in w.outcomes.iter().filter(|o| o.client == pinned) {
            assert_eq!(o.mode, TrackMode::Acquire, "pinned client must not promote");
            assert_eq!(o.bands_planned, 35);
        }
    }

    #[test]
    fn windows_compose_like_one_long_window() {
        // Cadence invariance of the seeding contract: one 600 ms window
        // and three 200 ms windows produce the same outcome stream.
        let run = |splits: &[u64]| {
            let mut eng = engine_with(3, ServiceConfig::adaptive(TrackerConfig::default()));
            let mut fps = Vec::new();
            for &ms in splits {
                let w = eng.run_until(11, Instant::from_millis(ms));
                for o in &w.outcomes {
                    fps.push((o.client, o.sweep, o.distance_m.map(f64::to_bits)));
                }
            }
            fps
        };
        assert_eq!(run(&[600]), run(&[200, 400, 600]));
    }

    #[test]
    fn leave_at_stops_scheduling_mid_window() {
        let mut eng = engine_with(2, ServiceConfig::adaptive(TrackerConfig::default()));
        eng.leave_at(1, Instant::from_millis(250));
        let w = eng.run_until(5, Instant::from_millis(800));
        assert!(!eng.is_active(1));
        assert_eq!(eng.n_active(), 1);
        let last_c1 = w
            .outcomes
            .iter()
            .filter(|o| o.client == 1)
            .map(|o| o.started)
            .max()
            .expect("client 1 swept before leaving");
        // Sweeps admitted after the departure instant would start later
        // than ~250 ms (+ one in-flight completion).
        assert!(
            last_c1 < Instant::from_millis(400),
            "client 1 still sweeping at {last_c1}"
        );
        // Client 0 keeps its cadence.
        let c0 = w.outcomes.iter().filter(|o| o.client == 0).count();
        assert!(c0 >= 8, "client 0 made only {c0} sweeps");
    }

    #[test]
    fn long_windows_keep_arbiter_bounded() {
        // One multi-second window must not accumulate an arbiter window
        // per sweep: fully elapsed windows are flushed periodically,
        // folding their coverage into the running utilization. Cheap
        // estimator — this test is about accounting, not accuracy —
        // but not so coarse that ghost fixes trip the innovation gate
        // and stall the client in (slow) ACQUIRE cycles.
        let coarse = ChronosConfig {
            max_iters: 120,
            grid_step_ns: 0.5,
            ..ChronosConfig::ideal()
        };
        let mut eng = ServiceEngine::new(ServiceConfig::adaptive(TrackerConfig::default()));
        let id = eng.join(ideal_ctx(3.0), coarse);
        eng.session_mut(id).sweep_cfg.medium.loss_prob = 0.0;
        let w = eng.run_until(9, Instant::from_millis(6_000));
        assert!(
            w.completed() > AIRTIME_FLUSH_EVERY,
            "window too small to trigger a flush: {} sweeps",
            w.completed()
        );
        // Retained airtime is at most the unflushed tail, not the whole
        // window's worth of sweeps.
        let tracked = eng.arbiter().total_tracked_airtime();
        assert!(
            tracked < Duration::from_millis(4_500),
            "arbiter still tracks {tracked} of airtime after flushes"
        );
        // Flushed coverage still reports as one continuous utilization.
        assert!(w.utilization > 0.8, "utilization {}", w.utilization);
    }

    #[test]
    fn future_leave_survives_epoch_rounds_until_its_time() {
        // A departure scheduled far in the virtual future must not be
        // pulled forward by run_epoch's timeless queue drain: the client
        // keeps sweeping until the engine's clock actually passes the
        // departure instant.
        let mut eng = engine_with(2, ServiceConfig::adaptive(TrackerConfig::default()));
        eng.leave_at(1, Instant::from_millis(800));
        let e0 = eng.run_epoch_window(3, 0);
        assert_eq!(e0.outcomes.len(), 2, "client 1 must still sweep");
        assert!(eng.is_active(1), "leave fired {} early", eng.clock());
        // Drive the clock past the departure with continuous windows.
        eng.run_until(3, Instant::from_millis(900));
        assert!(!eng.is_active(1));
        // The later round serves only client 0 (possibly twice: a sweep
        // carried over from the window plus its fresh epoch sweep).
        let late = eng.run_epoch_window(3, 1);
        assert!(!late.outcomes.is_empty());
        assert!(late.outcomes.iter().all(|o| o.client == 0));
    }

    #[test]
    fn empty_engine_windows_are_empty() {
        let mut eng = ServiceEngine::new(ServiceConfig::default());
        let w = eng.run_until(1, Instant::from_millis(100));
        assert_eq!(w.completed(), 0);
        assert_eq!(w.outcomes.len(), 0);
        assert_eq!(w.utilization, 0.0);
        assert_eq!(w.ingestion, IngestionStats::default());
        assert_eq!(eng.pending_events(), 0);
    }

    #[test]
    fn ingestion_under_light_load_is_transparent() {
        // With the queue never filling (few clients, generous backlog),
        // the front door must change nothing: same admissions, same
        // order, same RNG streams, bit-for-bit the same estimates.
        let run = |ingestion: Option<IngestionConfig>| {
            let cfg = ServiceConfig {
                ingestion,
                ..ServiceConfig::adaptive(TrackerConfig::default())
            };
            let mut eng = engine_with(3, cfg);
            let w = eng.run_until(11, Instant::from_millis(600));
            assert!(w.completed() > 3);
            w.outcomes
                .iter()
                .map(|o| {
                    (
                        o.client,
                        o.sweep,
                        o.started,
                        o.finished,
                        o.distance_m.map(f64::to_bits),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(None), run(Some(IngestionConfig::default())));
    }

    #[test]
    fn light_load_ingestion_stats_balance_and_never_shed() {
        let cfg = ServiceConfig {
            ingestion: Some(IngestionConfig::default()),
            ..ServiceConfig::adaptive(TrackerConfig::default())
        };
        let mut eng = engine_with(2, cfg);
        let w = eng.run_until(5, Instant::from_millis(500));
        let s = w.ingestion;
        assert!(s.offered.total() > 0);
        assert_eq!(s.shed.total(), 0);
        assert_eq!(s.deferred.total(), 0);
        assert!((s.stretch_peak - 1.0).abs() < 1e-12, "{}", s.stretch_peak);
        // Everything offered is either admitted or still on the air /
        // in the queue at the deadline.
        assert!(s.admitted.total() <= s.offered.total());
        assert!(s.offered.total() - s.admitted.total() <= 2);
        let cum = eng.ingestion_stats().expect("front-end on");
        assert!(cum.offered.total() >= s.offered.total());
    }

    #[test]
    fn outcome_class_annotates_background_without_ingestion() {
        let mut eng = engine_with(2, ServiceConfig::adaptive(TrackerConfig::default()));
        eng.set_background(1, true);
        assert!(eng.is_background(1));
        assert!(!eng.is_background(0));
        assert!(eng.ingestion_stats().is_none(), "front-end off");
        let w = eng.run_until(3, Instant::from_millis(300));
        for o in &w.outcomes {
            assert_eq!(o.deferrals, 0);
            if o.client == 1 {
                assert_eq!(o.class, TrafficClass::Background);
            } else {
                // Honest foreground clients map ACQUIRE/TRACK modes to
                // the matching classes.
                let expect = match o.mode {
                    TrackMode::Acquire => TrafficClass::Acquire,
                    TrackMode::Track => TrafficClass::Track,
                };
                assert_eq!(o.class, expect);
            }
        }
    }
}
