//! Shared, immutable estimation plans — build the hot numeric machinery
//! once, reuse it across every client and sweep.
//!
//! Profiling the estimator shows that a large slice of each call to
//! [`crate::tof::TofEstimator::estimate`] is spent on work that depends
//! only on the *band plan and grid*, not on the measurements:
//!
//! * materializing the NDFT matrix (`n_bands x n_taus` complex
//!   exponentials, [`crate::ndft::Ndft::new`]);
//! * the power iteration estimating its spectral norm, which sets the
//!   proximal-gradient step size ([`crate::ndft::Ndft::op_norm`], 40
//!   forward+adjoint passes);
//! * the grating-lobe offset table used by first-peak ghost vetoing
//!   ([`crate::profile::strong_lobe_offsets`], a dense scan of the plan's
//!   self-response);
//! * the cubic-spline factorization over the subcarrier layout used to
//!   interpolate the zero-subcarrier
//!   ([`chronos_math::spline::SplinePlan`]).
//!
//! A single client repeats this work for every antenna of every sweep; a
//! ranging service with hundreds of clients on the *same* Wi-Fi band plan
//! repeats it hundreds of times per sweep round. [`PlanCache`] memoizes
//! all of it behind `Arc`s so N clients and M sweeps share one copy, and
//! [`NdftPlan`] packages the per-(bands, grid) precomputation. Cached and
//! uncached estimation run the *same* floating-point operations — the
//! cache changes cost, never results (covered by equivalence tests).
//!
//! Concurrency: the cache is a read-mostly table guarded by `RwLock`s.
//! After the first sweep warms it, all lookups take the read path, so
//! parallel per-client inversions (see `service`) contend only on an
//! `RwLock` read acquisition.

use crate::ndft::{Ndft, TauGrid};
use chronos_math::spline::{SplineError, SplinePlan};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Everything precomputable about inverting one band group on one grid.
///
/// Immutable after construction; share it with `Arc` (usually via
/// [`PlanCache::ndft_plan`]).
#[derive(Debug, Clone)]
pub struct NdftPlan {
    /// The materialized forward/adjoint operator.
    pub ndft: Ndft,
    /// Spectral norm `||F||_2` from 40 power iterations — exactly what
    /// [`crate::ista::solve`] computes per call when uncached.
    pub op_norm: f64,
    /// Strong grating-lobe offsets of the band plan's point response
    /// (threshold 0.5, scanned to the grid's span), consumed by the
    /// first-peak ghost veto in [`crate::tof`].
    pub lobe_offsets: Vec<f64>,
}

/// Power-iteration count used for the cached operator norm. Must match
/// what the uncached solver historically used so results are identical.
pub(crate) const OP_NORM_ITERS: usize = 40;

/// Self-response threshold above which an offset counts as a strong lobe.
pub(crate) const LOBE_THRESHOLD: f64 = 0.5;

impl NdftPlan {
    /// Builds the full plan for a band group: operator, norm, lobe table.
    ///
    /// `lobe_span_ns` is how far to scan for grating lobes — the
    /// estimator passes its configured grid span, which can be slightly
    /// less than the grid's rounded-up extent (`len * step`).
    pub fn new(freqs_hz: &[f64], grid: TauGrid, lobe_span_ns: f64) -> Self {
        let ndft = Ndft::new(freqs_hz, grid);
        let op_norm = ndft.op_norm(OP_NORM_ITERS);
        let lobe_offsets =
            crate::profile::strong_lobe_offsets(freqs_hz, LOBE_THRESHOLD, lobe_span_ns);
        NdftPlan {
            ndft,
            op_norm,
            lobe_offsets,
        }
    }
}

/// Cache keys quantize `f64`s by bit pattern: two plans are "the same"
/// exactly when every frequency and grid parameter is bit-identical,
/// which is the right notion for deterministic simulation configs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct NdftKey {
    freq_bits: Vec<u64>,
    grid_start: u64,
    grid_step: u64,
    grid_len: usize,
    lobe_span: u64,
}

impl NdftKey {
    fn new(freqs_hz: &[f64], grid: TauGrid, lobe_span_ns: f64) -> Self {
        NdftKey {
            freq_bits: freqs_hz.iter().map(|f| f.to_bits()).collect(),
            grid_start: grid.start_ns.to_bits(),
            grid_step: grid.step_ns.to_bits(),
            grid_len: grid.len,
            lobe_span: lobe_span_ns.to_bits(),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SplineKey {
    x_bits: Vec<u64>,
}

/// Cache hit/miss/occupancy counters (a point-in-time snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Resident NDFT plans.
    pub ndft_entries: usize,
    /// Resident spline plans.
    pub spline_entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when the cache was never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A shared, thread-safe cache of immutable estimation plans.
///
/// One `PlanCache` (behind an `Arc`) serves any number of
/// [`crate::session::ChronosSession`]s and the multi-client
/// [`crate::service::RangingService`]: the first estimate on a given
/// (band plan, grid) pays for plan construction, every later estimate —
/// any client, any sweep, any thread — reuses it.
///
/// ```
/// use chronos_core::ndft::TauGrid;
/// use chronos_core::plan::PlanCache;
/// use std::sync::Arc;
///
/// let cache = Arc::new(PlanCache::new());
/// let freqs = [5.18e9, 5.2e9, 5.24e9, 5.28e9, 5.32e9];
/// let grid = TauGrid::span(200.0, 0.25);
///
/// // First lookup builds the plan...
/// let a = cache.ndft_plan(&freqs, grid, 200.0);
/// // ...the second is answered from the cache with the same object.
/// let b = cache.ndft_plan(&freqs, grid, 200.0);
/// assert!(Arc::ptr_eq(&a, &b));
///
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// assert!(a.op_norm > 0.0);
/// ```
#[derive(Debug, Default)]
pub struct PlanCache {
    ndft: RwLock<HashMap<NdftKey, Arc<NdftPlan>>>,
    spline: RwLock<HashMap<SplineKey, Arc<SplinePlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared NDFT plan for `(freqs_hz, grid, lobe_span_ns)`,
    /// building it on first use. `lobe_span_ns` bounds the grating-lobe
    /// scan (the estimator passes its configured grid span).
    pub fn ndft_plan(&self, freqs_hz: &[f64], grid: TauGrid, lobe_span_ns: f64) -> Arc<NdftPlan> {
        let key = NdftKey::new(freqs_hz, grid, lobe_span_ns);
        if let Some(plan) = self.ndft.read().expect("plan cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        // Double-checked: build under the write lock so concurrent cold
        // misses on the same key do exactly one construction (a cold
        // stampede of N workers would otherwise throw away N-1 expensive
        // power iterations). Other keys briefly queue behind the build —
        // acceptable, since each key is built once per process.
        let mut table = self.ndft.write().expect("plan cache poisoned");
        if let Some(plan) = table.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        let built = Arc::new(NdftPlan::new(freqs_hz, grid, lobe_span_ns));
        table.insert(key, Arc::clone(&built));
        self.misses.fetch_add(1, Ordering::Relaxed);
        built
    }

    /// Returns the shared spline plan for the knot abscissae `xs`
    /// (typically a subcarrier layout), building it on first use.
    pub fn spline_plan(&self, xs: &[f64]) -> Result<Arc<SplinePlan>, SplineError> {
        let key = SplineKey {
            x_bits: xs.iter().map(|x| x.to_bits()).collect(),
        };
        if let Some(plan) = self.spline.read().expect("plan cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        let mut table = self.spline.write().expect("plan cache poisoned");
        if let Some(plan) = table.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        let built = Arc::new(SplinePlan::new(xs)?);
        table.insert(key, Arc::clone(&built));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(built)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            ndft_entries: self.ndft.read().expect("plan cache poisoned").len(),
            spline_entries: self.spline.read().expect("plan cache poisoned").len(),
        }
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        self.ndft.write().expect("plan cache poisoned").clear();
        self.spline.write().expect("plan cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::bands::band_plan_5ghz;

    fn freqs() -> Vec<f64> {
        band_plan_5ghz().iter().map(|b| b.center_hz).collect()
    }

    #[test]
    fn ndft_plan_matches_per_call_computation() {
        let f = freqs();
        let grid = TauGrid::span(200.0, 0.25);
        let plan = NdftPlan::new(&f, grid, 200.0);
        let direct = Ndft::new(&f, grid);
        assert_eq!(
            plan.op_norm.to_bits(),
            direct.op_norm(OP_NORM_ITERS).to_bits()
        );
        let lobes = crate::profile::strong_lobe_offsets(&f, LOBE_THRESHOLD, 200.0);
        assert_eq!(plan.lobe_offsets, lobes);
    }

    #[test]
    fn cache_deduplicates_and_counts() {
        let cache = PlanCache::new();
        let f = freqs();
        let grid = TauGrid::span(100.0, 0.5);
        let a = cache.ndft_plan(&f, grid, 100.0);
        let b = cache.ndft_plan(&f, grid, 100.0);
        assert!(Arc::ptr_eq(&a, &b));
        // A different grid is a different plan.
        let c = cache.ndft_plan(&f, TauGrid::span(100.0, 0.25), 100.0);
        assert!(!Arc::ptr_eq(&a, &c));
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.ndft_entries, 2);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn spline_plans_shared_and_validated() {
        let cache = PlanCache::new();
        let xs: Vec<f64> = (-28i32..=28)
            .filter(|k| *k != 0)
            .map(|k| k as f64)
            .collect();
        let a = cache.spline_plan(&xs).unwrap();
        let b = cache.spline_plan(&xs).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(cache.spline_plan(&[1.0]).is_err());
        assert_eq!(cache.stats().spline_entries, 1);
    }

    #[test]
    fn concurrent_lookups_converge_to_one_plan() {
        let cache = Arc::new(PlanCache::new());
        let f = freqs();
        let grid = TauGrid::span(50.0, 0.5);
        let plans: Vec<Arc<NdftPlan>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let f = f.clone();
                    scope.spawn(move || cache.ndft_plan(&f, grid, 50.0))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("thread"))
                .collect()
        });
        // Double-checked locking: exactly one plan is ever built, and
        // every racer holds it.
        let resident = cache.ndft_plan(&f, grid, 50.0);
        for p in &plans {
            assert!(Arc::ptr_eq(p, &resident));
        }
        let stats = cache.stats();
        assert_eq!(stats.ndft_entries, 1);
        assert_eq!(stats.misses, 1, "cold stampede built more than one plan");
    }

    #[test]
    fn hit_rate_zero_lookups_is_zero_not_nan() {
        // A never-queried cache must report 0.0, not 0/0 = NaN.
        let empty = PlanCache::new().stats();
        assert_eq!(empty.hits + empty.misses, 0);
        assert_eq!(empty.hit_rate(), 0.0);
        assert!(!empty.hit_rate().is_nan());
    }

    #[test]
    fn clear_empties_tables() {
        let cache = PlanCache::new();
        cache.ndft_plan(&freqs(), TauGrid::span(10.0, 1.0), 10.0);
        assert_eq!(cache.stats().ndft_entries, 1);
        cache.clear();
        assert_eq!(cache.stats().ndft_entries, 0);
    }
}
