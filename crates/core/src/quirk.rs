//! Band-group handling for the Intel 5300's 2.4 GHz phase quirk
//! (paper §11, footnote 5; DESIGN.md §4.2).
//!
//! The 5300 reports 2.4 GHz channel phase modulo pi/2. Chronos's fix —
//! running the algorithm on the fourth power of the channel — removes the
//! ambiguity, but changes the *delay scale* of the measurement: the
//! reciprocity product `h^2` peaks at `2 tau`, while its fourth power
//! (`h^8`) peaks at `8 tau`. Measurements at different delay scales sample
//! **different** time-domain profiles, so they cannot share one NDFT
//! inversion. This module groups band products by delay scale; the
//! estimator inverts each group separately and fuses the candidates.
//!
//! Consequences worth knowing (documented trade-offs):
//! * the 5 GHz group (24 bands spanning 645 MHz of centers) dominates the
//!   estimate — it has both resolution and an unambiguous range of 200 ns
//!   at scale 2 (100 ns of ToF, i.e. 30 m);
//! * the quirked 2.4 GHz group at scale 8 aliases beyond 25 ns of ToF and
//!   is used only as a consistency check for nearby devices.

use crate::reciprocity::BandProduct;
use chronos_math::Complex64;

/// One group of band products sharing a delay scale.
#[derive(Debug, Clone)]
pub struct BandGroupSamples {
    /// Center frequencies, Hz (ascending).
    pub freqs_hz: Vec<f64>,
    /// Measurement per frequency.
    pub values: Vec<Complex64>,
    /// Delay scale of the group (2 or 8).
    pub delay_scale: f64,
}

impl BandGroupSamples {
    /// Number of bands in the group.
    pub fn len(&self) -> usize {
        self.freqs_hz.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.freqs_hz.is_empty()
    }

    /// The ToF beyond which this group's profile aliases, given an
    /// unambiguous profile-domain range (ns).
    pub fn alias_limit_ns(&self, profile_range_ns: f64) -> f64 {
        profile_range_ns / self.delay_scale
    }
}

/// Splits band products into delay-scale groups, each sorted by frequency.
pub fn group_by_scale(products: &[BandProduct]) -> Vec<BandGroupSamples> {
    let mut groups = Vec::new();
    let mut pool = Vec::new();
    let mut order = Vec::new();
    group_by_scale_into(products, &mut groups, &mut pool, &mut order);
    groups
}

/// [`group_by_scale`] into reusable buffers: `groups` receives the
/// result, `pool` recycles emptied groups between calls (their inner
/// vectors keep capacity), `order` is index-sort working storage.
/// Identical output; zero heap allocations once the buffers have seen
/// the plan size.
pub fn group_by_scale_into(
    products: &[BandProduct],
    groups: &mut Vec<BandGroupSamples>,
    pool: &mut Vec<BandGroupSamples>,
    order: &mut Vec<usize>,
) {
    pool.extend(groups.drain(..).map(|mut g| {
        g.freqs_hz.clear();
        g.values.clear();
        g
    }));
    order.clear();
    order.extend(0..products.len());
    // Frequencies tie-break on the product index, reproducing the stable
    // sort's order without its merge buffer.
    order.sort_unstable_by(|a, b| {
        products[*a]
            .freq_hz
            .partial_cmp(&products[*b].freq_hz)
            .unwrap()
            .then(a.cmp(b))
    });
    for &i in order.iter() {
        let p = &products[i];
        match groups.iter_mut().find(|g| g.delay_scale == p.delay_scale) {
            Some(g) => {
                g.freqs_hz.push(p.freq_hz);
                g.values.push(p.value);
            }
            None => {
                let mut g = pool.pop().unwrap_or_else(|| BandGroupSamples {
                    freqs_hz: Vec::new(),
                    values: Vec::new(),
                    delay_scale: 0.0,
                });
                g.delay_scale = p.delay_scale;
                g.freqs_hz.push(p.freq_hz);
                g.values.push(p.value);
                groups.push(g);
            }
        }
    }
    // Deterministic order: smallest scale (finest ToF range) first. (A
    // handful of groups at most — the stable sort stays in its
    // insertion-sort regime.)
    groups.sort_by(|a, b| a.delay_scale.partial_cmp(&b.delay_scale).unwrap());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp(freq_ghz: f64, scale: f64) -> BandProduct {
        BandProduct {
            freq_hz: freq_ghz * 1e9,
            value: Complex64::ONE,
            exchanges: 1,
            delay_scale: scale,
        }
    }

    #[test]
    fn splits_by_scale() {
        let products = vec![bp(5.18, 2.0), bp(2.412, 8.0), bp(5.32, 2.0), bp(2.437, 8.0)];
        let groups = group_by_scale(&products);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].delay_scale, 2.0);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].delay_scale, 8.0);
        assert_eq!(groups[1].len(), 2);
    }

    #[test]
    fn groups_sorted_by_frequency() {
        let products = vec![bp(5.825, 2.0), bp(5.18, 2.0), bp(5.5, 2.0)];
        let groups = group_by_scale(&products);
        assert_eq!(groups.len(), 1);
        let f = &groups[0].freqs_hz;
        assert!(f.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn single_scale_single_group() {
        let products = vec![bp(5.18, 2.0), bp(5.2, 2.0)];
        let groups = group_by_scale(&products);
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn alias_limit_scales() {
        let g = BandGroupSamples {
            freqs_hz: vec![2.4e9],
            values: vec![Complex64::ONE],
            delay_scale: 8.0,
        };
        assert!((g.alias_limit_ns(200.0) - 25.0).abs() < 1e-12);
        let g2 = BandGroupSamples {
            freqs_hz: vec![5.5e9],
            values: vec![Complex64::ONE],
            delay_scale: 2.0,
        };
        assert!((g2.alias_limit_ns(200.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(group_by_scale(&[]).is_empty());
    }
}
