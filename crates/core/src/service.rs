//! Multi-client ranging service: one access point localizing many
//! clients concurrently, sharing the numeric hot path.
//!
//! The paper demonstrates one pair of devices. The service layer scales
//! that design out the way a production deployment would:
//!
//! * **Shared plans.** Every client sweeps the same Wi-Fi band plan, so
//!   the NDFT operators, operator norms, lobe tables and spline
//!   factorizations are identical across clients. A single
//!   [`PlanCache`] (built lazily on the first sweep) serves all of them;
//!   per-client estimation borrows immutable `Arc`s instead of
//!   rebuilding the machinery per sweep (see [`crate::plan`]).
//! * **Airtime arbitration.** Sweeps go through a
//!   [`MediumArbiter`], which staggers their starts, caps how many hop
//!   concurrently, and charges each overlapping sweep a collision loss —
//!   so N clients contend for the medium the way real hoppers would,
//!   and reported throughput includes the protocol cost of contention.
//! * **Continuous scheduling.** Sweeps are driven by the event-based
//!   [`ServiceEngine`] (see [`crate::engine`]): each client re-sweeps at
//!   its own cadence instead of marching through a lock-step epoch
//!   barrier. [`RangingService::run_until`] plays an arbitrary window of
//!   continuous operation; [`RangingService::run_epoch`] remains as a
//!   compatibility wrapper that reproduces the legacy one-sweep-per-
//!   client rounds exactly (admission order, RNG seeds and all).
//! * **Parallel inversion.** Per-client profile inversion (the CPU-bound
//!   part: ISTA over the shared NDFT plan) runs on scoped worker
//!   threads; simulation determinism is preserved by giving every sweep
//!   its own seeded generator keyed by the client's monotonic sweep
//!   counter, so results are independent of the thread schedule *and*
//!   the sweep cadence (the seeding contract in [`crate::engine`]).

use crate::config::{ChronosConfig, IngestionConfig};
use crate::engine::{ServiceEngine, WindowReport};
use crate::plan::{CacheStats, PlanCache};
use crate::session::ChronosSession;
use crate::tracker::{ClientTracker, PositionTracker, TrackMode, TrackerConfig};
use chronos_link::admission::IngestionStats;
use chronos_link::arbiter::{ArbiterConfig, MediumArbiter};
use chronos_link::time::{Duration, Instant};
use chronos_link::traffic::TrafficClass;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::geometry::Point;
use std::sync::Arc;

/// What the service reports per client: a scalar distance (the paper's
/// §3–§7 pipeline) or a full 2-D position fix (§8's multi-antenna
/// localization, served online).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalizationMode {
    /// Track the scalar transmitter–receiver distance (mean over
    /// antennas). The seed behavior.
    #[default]
    Distance,
    /// Fuse per-antenna ToF circles into a 2-D position in the AP's
    /// frame ([`crate::localization`]) and track it with a
    /// [`PositionTracker`].
    Position,
}

/// Per-client rescheduling policy of the continuous engine: how soon a
/// client is due again after a sweep completes, derived from its tracker
/// mode, and whether cold clients jump the admission queue.
#[derive(Debug, Clone, Copy)]
pub struct CadenceConfig {
    /// Idle gap between a TRACK client's sweep completion and its next
    /// due. Kept near zero so TRACK clients re-sweep as soon as their
    /// subset airtime allows — the arbiter, not a barrier, paces them.
    pub track_gap: Duration,
    /// Idle gap for ACQUIRE clients (cold or re-acquiring tracks).
    pub acquire_gap: Duration,
    /// When several clients fall due at the same instant, admit ACQUIRE
    /// clients first: a cold or broken track benefits most from the
    /// earliest slot the arbiter can grant.
    pub acquire_priority: bool,
}

impl Default for CadenceConfig {
    fn default() -> Self {
        CadenceConfig {
            // A scheduling turnaround, not a pause: one guard interval
            // below the arbiter's stagger so cadence never outruns it.
            track_gap: Duration::from_millis(2),
            acquire_gap: Duration::from_millis(2),
            acquire_priority: true,
        }
    }
}

/// Service-level policy.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Airtime arbitration policy.
    pub arbiter: ArbiterConfig,
    /// Multiplier on a plan's loss-free airtime
    /// ([`chronos_link::sweep::SweepConfig::expected_duration`]) when
    /// projecting its admission window — headroom for retransmissions.
    /// With variable-length plans a fixed projection would overcharge
    /// subset sweeps, so admission scales with each client's actual plan.
    pub admission_headroom: f64,
    /// Worker threads for per-client estimation; 0 = one per available
    /// core.
    pub threads: usize,
    /// Idle gap inserted between epochs (the `run_epoch` compatibility
    /// path only; continuous windows use [`CadenceConfig`]).
    pub epoch_gap: Duration,
    /// Adaptive sweep scheduling: when set, every client gets a
    /// [`ClientTracker`] and the service schedules full ACQUIRE sweeps or
    /// TRACK-mode band subsets from its state. `None` preserves the
    /// legacy behavior (full sweep, every client, every round).
    pub adaptive: Option<TrackerConfig>,
    /// What the service tracks per client: scalar distance (default) or
    /// 2-D position. In [`LocalizationMode::Position`] every client gets
    /// a [`PositionTracker`] (configured from `adaptive`, or defaults
    /// when the scheduler is non-adaptive) and the epoch report carries
    /// per-client position fixes, tracked positions and
    /// [`EpochReport::pos_rmse_m`].
    pub localization: LocalizationMode,
    /// Continuous-mode rescheduling policy (see [`CadenceConfig`]).
    pub cadence: CadenceConfig,
    /// Service-level exclusion policy for anomalous clients. When set,
    /// each client's [`crate::tracker::AnomalyScore`] is compared against
    /// the thresholds after every completed sweep: a client whose score
    /// crosses [`QuarantineConfig::threshold`] is demoted to QUARANTINE —
    /// its sweeps keep running (so evidence keeps accumulating) but its
    /// distance/position estimates are withheld from reports until the
    /// score decays below [`QuarantineConfig::release`] for
    /// [`QuarantineConfig::release_dwell`] consecutive sweeps. `None`
    /// (the default) disables the policy entirely. See
    /// `docs/ADVERSARIAL.md`.
    pub quarantine: Option<QuarantineConfig>,
    /// Overload-safe ingestion front-end. When set, continuous-window
    /// sweep dues pass through a bounded class-aware admission queue
    /// with the TRACK-stretch → BACKGROUND-drop → ACQUIRE-reject
    /// shedding ladder (see [`IngestionConfig`] and
    /// `docs/INGESTION.md`). `None` (the default) preserves the
    /// pre-ingestion behavior bit-for-bit: every due books the arbiter
    /// immediately, however far ahead that booking lands.
    pub ingestion: Option<IngestionConfig>,
}

/// Thresholds of the quarantine hysteresis loop (see
/// `docs/ADVERSARIAL.md` for tuning guidance).
#[derive(Debug, Clone, Copy)]
pub struct QuarantineConfig {
    /// Anomaly score at or above which a client enters QUARANTINE.
    pub threshold: f64,
    /// Score at or below which a quarantined client becomes eligible for
    /// release. Kept well below `threshold` so a client oscillating near
    /// the trip point doesn't flap between states.
    pub release: f64,
    /// Consecutive sweeps the score must stay at or below `release`
    /// before the client is re-trusted. Raising this lengthens the
    /// shadow a detected attack casts; see the re-seed caveat in
    /// `docs/ADVERSARIAL.md`.
    pub release_dwell: usize,
    /// Sweeps a fresh client must complete before it can be quarantined
    /// — the first innovations of a cold filter are not evidence.
    pub min_sweeps: u64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            // One hard-gated sweep (sigma_clamp-clipped EWMA step plus a
            // one-miss run) lands around 5.8 with the default
            // AnomalyConfig; 4.0 trips on that first clear violation
            // while staying above anything a converged clean client
            // produces.
            threshold: 4.0,
            release: 1.5,
            release_dwell: 6,
            // The first fixes of a zero-velocity-seeded filter chasing a
            // coarse ACQUIRE estimate run several sigma hot; clean
            // clients settle well under the threshold by their sixth
            // sweep (`tests/adversarial.rs` pins the control run).
            min_sweeps: 6,
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            arbiter: ArbiterConfig::default(),
            // ~95 ms projected for the standard ~84 ms sweep.
            admission_headroom: 1.13,
            threads: 0,
            epoch_gap: Duration::from_millis(5),
            adaptive: None,
            localization: LocalizationMode::Distance,
            cadence: CadenceConfig::default(),
            quarantine: None,
            ingestion: None,
        }
    }
}

impl ServiceConfig {
    /// The default policy with adaptive tracking enabled.
    pub fn adaptive(tracker: TrackerConfig) -> Self {
        ServiceConfig {
            adaptive: Some(tracker),
            ..Default::default()
        }
    }

    /// The default policy in position mode with adaptive scheduling: full
    /// ACQUIRE sweeps until each client's position filter converges, then
    /// band-subset TRACK sweeps fused into 2-D fixes.
    pub fn position(tracker: TrackerConfig) -> Self {
        ServiceConfig {
            adaptive: Some(tracker),
            localization: LocalizationMode::Position,
            ..Default::default()
        }
    }
}

/// One client's result within an epoch or continuous window.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    /// Client index within the service.
    pub client: usize,
    /// The client's monotonic sweep ordinal (0 for its first sweep) —
    /// also the key of the sweep's RNG stream, see the seeding contract
    /// in [`crate::engine`].
    pub sweep: u64,
    /// Admitted sweep start.
    pub started: Instant,
    /// Link-layer finish time.
    pub finished: Instant,
    /// Concurrent sweeps at admission.
    pub concurrent: usize,
    /// Contention loss the sweep ran with (added to the base medium
    /// loss).
    pub extra_loss: f64,
    /// Whether the link-layer sweep covered the full plan.
    pub link_complete: bool,
    /// Mean estimated distance across successful antennas, meters.
    pub distance_m: Option<f64>,
    /// Ground-truth device distance, meters.
    pub truth_m: f64,
    /// Absolute ranging error, meters (when an estimate exists).
    pub error_m: Option<f64>,
    /// Mode this client's sweep was scheduled under. Always
    /// [`TrackMode::Acquire`] for a non-adaptive service.
    pub mode: TrackMode,
    /// Bands in the scheduled plan (35 for a full sweep, the subset size
    /// in TRACK mode).
    pub bands_planned: usize,
    /// Tracker prediction for this sweep before the fix was fused,
    /// meters (adaptive services, once the filter is seeded).
    pub predicted_m: Option<f64>,
    /// Tracker output after fusing this sweep's fix, meters — the
    /// distance an adaptive deployment would report.
    pub tracked_m: Option<f64>,
    /// Absolute error of `tracked_m` against ground truth, meters.
    pub tracked_error_m: Option<f64>,
    /// Innovation of this sweep's fix in standard deviations (adaptive
    /// services; `None` when no fix was fused).
    pub innovation_sigmas: Option<f64>,
    /// Raw 2-D position fix in the AP's frame, after mirror-candidate
    /// resolution against the motion prior (position mode only).
    pub position: Option<Point>,
    /// RMS circle residual of the fix, meters (position mode only).
    pub pos_residual_m: Option<f64>,
    /// Antennas the fix used after NLOS/outlier rejection (position mode
    /// only).
    pub pos_antennas: Option<usize>,
    /// Ground-truth client position in the AP's frame.
    pub truth_pos: Point,
    /// Absolute 2-D error of the raw fix, meters.
    pub pos_error_m: Option<f64>,
    /// Position-tracker output after fusing this sweep's fix — the
    /// position a deployment would report (position mode only).
    pub tracked_pos: Option<Point>,
    /// Absolute 2-D error of `tracked_pos` against ground truth, meters.
    pub tracked_pos_error_m: Option<f64>,
    /// Innovation of this sweep's position fix in (Mahalanobis) standard
    /// deviations (position mode; `None` when no fix was fused).
    pub pos_innovation_sigmas: Option<f64>,
    /// The client's anomaly score after this sweep (adaptive services;
    /// see [`crate::tracker::AnomalyScore`]). Reported even while the
    /// client is quarantined — the score is the evidence trail.
    pub anomaly_score: Option<f64>,
    /// Whether the client was under QUARANTINE when this sweep was
    /// reported. Quarantined outcomes carry link/truth/innovation fields
    /// but have their estimate fields (`distance_m`, `tracked_m`,
    /// `position`, `tracked_pos`, ...) withheld as `None`.
    pub quarantined: bool,
    /// The admission class this sweep was offered under: BACKGROUND for
    /// clients flagged via [`RangingService::set_background`], otherwise
    /// derived from the scheduling mode (ACQUIRE/TRACK). Populated
    /// whether or not the ingestion front-end is enabled.
    pub class: TrafficClass,
    /// Times this request was pushed back (deferred, retried after a
    /// displacement, or re-offered after a shed) before the sweep that
    /// produced this outcome was finally admitted. Always 0 with
    /// ingestion disabled.
    pub deferrals: u32,
}

/// The result of one service round.
///
/// **Scope: one service = one AP.** Like
/// [`crate::engine::WindowReport`], every field is
/// per-AP: `outcomes[i].client` is a slot index of *this* service,
/// `utilization` covers this AP's medium, and nothing here aggregates
/// across a fleet. The epoch driver is single-AP-only by design — the
/// multi-AP fleet layer ([`crate::fleet`]) runs its shards through
/// continuous windows (`run_until`), never through epochs, because
/// handoff and clock-sync events are scheduled at window boundaries.
///
/// # Examples
///
/// ```
/// use chronos_core::plan::CacheStats;
/// use chronos_core::service::EpochReport;
/// use chronos_link::time::{Duration, Instant};
///
/// let report = EpochReport {
///     epoch: 3,
///     started: Instant::from_millis(500),
///     airtime_span: Duration::from_millis(84),
///     utilization: 1.0,
///     outcomes: Vec::new(),
///     wall: std::time::Duration::ZERO,
///     cache: CacheStats { hits: 2, misses: 1, ndft_entries: 1, spline_entries: 1 },
///     bands_planned: 35,
///     bands_full_sweep: 35,
/// };
/// assert_eq!(report.airtime_saved(), 0.0); // full sweeps save nothing
/// assert!((report.cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch counter.
    pub epoch: u64,
    /// Epoch start on the simulated clock.
    pub started: Instant,
    /// Simulated span from epoch start to the last sweep's end.
    pub airtime_span: Duration,
    /// Fraction of the span with at least one sweep on the air.
    pub utilization: f64,
    /// Per-client outcomes, ordered by client index.
    pub outcomes: Vec<ClientOutcome>,
    /// Host wall-clock time spent producing the epoch (sweep simulation
    /// plus estimation across all worker threads).
    pub wall: std::time::Duration,
    /// Plan-cache counters after the epoch.
    pub cache: CacheStats,
    /// Total bands scheduled across all clients this epoch.
    pub bands_planned: usize,
    /// Bands a non-adaptive service would have scheduled (clients × full
    /// plan length) — the denominator of [`EpochReport::airtime_saved`].
    pub bands_full_sweep: usize,
}

/// How many clients ran in each mode during one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModeOccupancy {
    /// Clients swept under ACQUIRE (full plan).
    pub acquire: usize,
    /// Clients swept under TRACK (band subset).
    pub track: usize,
}

/// Shared statistics over outcome slices — one implementation behind
/// both [`EpochReport`] and [`WindowReport`].
pub(crate) mod outcome_stats {
    use super::{ClientOutcome, ModeOccupancy, TrackMode};

    pub fn completed(outcomes: &[ClientOutcome]) -> usize {
        outcomes.iter().filter(|o| o.distance_m.is_some()).count()
    }

    pub fn quarantined(outcomes: &[ClientOutcome]) -> usize {
        outcomes.iter().filter(|o| o.quarantined).count()
    }

    pub fn mean_abs_error_m(outcomes: &[ClientOutcome]) -> Option<f64> {
        let errs: Vec<f64> = outcomes.iter().filter_map(|o| o.error_m).collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }

    pub fn airtime_saved(bands_planned: usize, bands_full_sweep: usize) -> f64 {
        if bands_full_sweep == 0 {
            0.0
        } else {
            1.0 - bands_planned as f64 / bands_full_sweep as f64
        }
    }

    pub fn mode_occupancy(outcomes: &[ClientOutcome]) -> ModeOccupancy {
        let mut occ = ModeOccupancy::default();
        for o in outcomes {
            match o.mode {
                TrackMode::Acquire => occ.acquire += 1,
                TrackMode::Track => occ.track += 1,
            }
        }
        occ
    }

    pub fn track_rmse_m(outcomes: &[ClientOutcome]) -> Option<f64> {
        rmse(outcomes.iter().filter_map(|o| o.tracked_error_m))
    }

    pub fn pos_rmse_m(outcomes: &[ClientOutcome]) -> Option<f64> {
        rmse(outcomes.iter().filter_map(|o| o.tracked_pos_error_m))
    }

    pub fn median_pos_error_m(outcomes: &[ClientOutcome]) -> Option<f64> {
        let errs: Vec<f64> = outcomes.iter().filter_map(|o| o.pos_error_m).collect();
        if errs.is_empty() {
            None
        } else {
            Some(chronos_math::stats::median(&errs))
        }
    }

    fn rmse(errs: impl Iterator<Item = f64>) -> Option<f64> {
        let errs: Vec<f64> = errs.collect();
        if errs.is_empty() {
            None
        } else {
            Some(chronos_math::stats::rms(&errs))
        }
    }
}

impl EpochReport {
    /// Clients whose sweep produced a distance estimate.
    pub fn completed(&self) -> usize {
        outcome_stats::completed(&self.outcomes)
    }

    /// Outcomes reported under QUARANTINE this epoch (estimates
    /// withheld; see [`QuarantineConfig`]).
    pub fn quarantined(&self) -> usize {
        outcome_stats::quarantined(&self.outcomes)
    }

    /// Mean absolute ranging error over completed clients, meters.
    pub fn mean_abs_error_m(&self) -> Option<f64> {
        outcome_stats::mean_abs_error_m(&self.outcomes)
    }

    /// Fraction of per-fix airtime the adaptive scheduler saved this
    /// epoch versus sweeping every client's full plan: `1 −
    /// bands_planned / bands_full_sweep` (band count is an airtime proxy
    /// — dwell cost per band is constant, see
    /// [`chronos_link::sweep::SweepConfig::expected_duration`]). Zero
    /// for a non-adaptive service.
    pub fn airtime_saved(&self) -> f64 {
        outcome_stats::airtime_saved(self.bands_planned, self.bands_full_sweep)
    }

    /// Clients per mode this epoch.
    pub fn mode_occupancy(&self) -> ModeOccupancy {
        outcome_stats::mode_occupancy(&self.outcomes)
    }

    /// Root-mean-square error of the tracker's fused outputs against
    /// ground truth, meters. `None` for non-adaptive services or before
    /// any filter is seeded.
    pub fn track_rmse_m(&self) -> Option<f64> {
        outcome_stats::track_rmse_m(&self.outcomes)
    }

    /// Root-mean-square 2-D error of the position tracker's fused outputs
    /// against ground truth, meters. `None` outside position mode or
    /// before any filter is seeded.
    pub fn pos_rmse_m(&self) -> Option<f64> {
        outcome_stats::pos_rmse_m(&self.outcomes)
    }

    /// Median 2-D error of the *raw* position fixes against ground truth,
    /// meters — the paper's §12.2 localization observable, per epoch.
    pub fn median_pos_error_m(&self) -> Option<f64> {
        outcome_stats::median_pos_error_m(&self.outcomes)
    }

    /// Localization throughput over simulated airtime: completed sweeps
    /// per second of medium time. This is the capacity figure an AP
    /// operator cares about.
    pub fn sweeps_per_sec_airtime(&self) -> f64 {
        let span = self.airtime_span.as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.completed() as f64 / span
        }
    }
}

/// A pool of [`ChronosSession`]s sharing one [`PlanCache`] and one
/// arbitrated medium — the public facade over the event-driven
/// [`ServiceEngine`].
///
/// [`RangingService::run_epoch`] plays one legacy lock-step round (every
/// client sweeps exactly once); [`RangingService::run_until`] runs the
/// continuous engine to a deadline, letting every client advance at its
/// own cadence. Both may be mixed on one service instance: the engine's
/// clock and the per-client trackers are shared.
#[derive(Debug)]
pub struct RangingService {
    engine: ServiceEngine,
    epoch: u64,
}

impl RangingService {
    /// Creates an empty service with a fresh plan cache.
    pub fn new(cfg: ServiceConfig) -> Self {
        Self::with_cache(cfg, Arc::new(PlanCache::new()))
    }

    /// Creates a service that shares an existing plan cache (e.g. one
    /// warmed by another service instance or process stage).
    pub fn with_cache(cfg: ServiceConfig, plans: Arc<PlanCache>) -> Self {
        RangingService {
            engine: ServiceEngine::with_cache(cfg, plans),
            epoch: 0,
        }
    }

    /// The underlying continuous engine.
    pub fn engine(&self) -> &ServiceEngine {
        &self.engine
    }

    /// The shared plan cache.
    pub fn plans(&self) -> &Arc<PlanCache> {
        self.engine.plans()
    }

    /// The service's policy.
    pub fn config(&self) -> &ServiceConfig {
        self.engine.config()
    }

    /// The airtime arbiter (admission windows and the single-charge
    /// `total_tracked_airtime` accounting).
    pub fn arbiter(&self) -> &MediumArbiter {
        self.engine.arbiter()
    }

    /// The service's virtual clock.
    pub fn clock(&self) -> Instant {
        self.engine.clock()
    }

    /// Adds a client from its physical measurement context; returns its
    /// index. The client's session borrows the service's plan cache.
    pub fn add_client(&mut self, ctx: MeasurementContext, config: ChronosConfig) -> usize {
        self.engine.join(ctx, config)
    }

    /// Adds a client with a per-client tracker policy overriding the
    /// service-wide [`ServiceConfig::adaptive`] setting (e.g. pin a
    /// client in ACQUIRE with `acquire_fixes: usize::MAX`).
    pub fn add_client_with_tracker(
        &mut self,
        ctx: MeasurementContext,
        config: ChronosConfig,
        tracker: TrackerConfig,
    ) -> usize {
        self.engine.join_with_tracker(ctx, config, tracker)
    }

    /// Adopts an existing session as a client (its plan cache is replaced
    /// by the service's shared one).
    pub fn add_session(&mut self, session: ChronosSession) -> usize {
        self.engine.join_session(session)
    }

    /// Deactivates a client. Its index stays valid (never reused); a
    /// sweep already in the air completes and is reported, but nothing
    /// further is scheduled for it. Returns whether the client was
    /// active.
    pub fn remove_client(&mut self, idx: usize) -> bool {
        self.engine.leave(idx)
    }

    /// Whether a client currently participates in scheduling.
    pub fn is_active(&self, idx: usize) -> bool {
        self.engine.is_active(idx)
    }

    /// A client's tracker (adaptive distance-mode services only).
    pub fn tracker(&self, idx: usize) -> Option<&ClientTracker> {
        self.engine.tracker(idx)
    }

    /// A client's position tracker (position-mode services only).
    pub fn position_tracker(&self, idx: usize) -> Option<&PositionTracker> {
        self.engine.position_tracker(idx)
    }

    /// Whether a client is currently under QUARANTINE (see
    /// [`QuarantineConfig`]). Always `false` when the policy is off.
    pub fn is_quarantined(&self, idx: usize) -> bool {
        self.engine.is_quarantined(idx)
    }

    /// A client's current anomaly score (adaptive services; `None` when
    /// the service schedules non-adaptively).
    pub fn anomaly_score(&self, idx: usize) -> Option<f64> {
        self.engine.anomaly_score(idx)
    }

    /// Flags a client as BACKGROUND traffic: its sweeps are offered to
    /// the admission queue in the lowest class — first to be shed under
    /// overload, displaceable by a full-queue ACQUIRE. With ingestion
    /// disabled the flag only annotates [`ClientOutcome::class`].
    pub fn set_background(&mut self, idx: usize, background: bool) {
        self.engine.set_background(idx, background);
    }

    /// Whether a client is flagged as BACKGROUND traffic.
    pub fn is_background(&self, idx: usize) -> bool {
        self.engine.is_background(idx)
    }

    /// Cumulative ingestion-layer accounting since service creation
    /// (`None` when [`ServiceConfig::ingestion`] is off). Per-window
    /// deltas live on [`WindowReport::ingestion`].
    pub fn ingestion_stats(&self) -> Option<IngestionStats> {
        self.engine.ingestion_stats()
    }

    /// Number of client slots ever created (indices run
    /// `0..n_clients()`; departed clients keep their slot).
    pub fn n_clients(&self) -> usize {
        self.engine.n_slots()
    }

    /// Currently active clients.
    pub fn n_active(&self) -> usize {
        self.engine.n_active()
    }

    /// Immutable access to a client session.
    pub fn client(&self, idx: usize) -> &ChronosSession {
        self.engine.session(idx)
    }

    /// Mutable access to a client session (geometry updates, config
    /// tweaks between rounds).
    pub fn client_mut(&mut self, idx: usize) -> &mut ChronosSession {
        self.engine.session_mut(idx)
    }

    /// Calibrates every client at its current (known) geometry with `n`
    /// sweeps each (paper §7 obs. 2). Sequential: calibration is a
    /// one-time setup step.
    pub fn calibrate_all(&mut self, seed: u64, n: usize) {
        self.engine.calibrate_all(seed, n);
    }

    /// Runs one legacy epoch round on the engine: every active client is
    /// scheduled once at the current clock (admission in client order),
    /// sweeps run on the worker pool, fixes fuse into the trackers, and
    /// the clock advances past the round's horizon plus the epoch gap.
    ///
    /// This is a thin compatibility wrapper over the continuous engine —
    /// because every client sweeps exactly once per round, the per-client
    /// sweep ordinals coincide with the legacy global epoch index and the
    /// wrapper reproduces pre-engine outcomes exactly (asserted by
    /// `tests/engine.rs`).
    pub fn run_epoch(&mut self, seed: u64) -> EpochReport {
        let epoch = self.epoch;
        self.epoch += 1;
        self.engine.run_epoch_window(seed, epoch)
    }

    /// Runs the continuous engine until `deadline`: every client
    /// re-sweeps at its own tracker-derived cadence (TRACK clients as
    /// soon as their subset airtime allows, ACQUIRE clients with
    /// priority admission) and the window's completed sweeps are
    /// reported. See [`crate::engine`] for the event lifecycle.
    pub fn run_until(&mut self, seed: u64, deadline: Instant) -> WindowReport {
        self.engine.run_until(seed, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::environment::Environment;
    use chronos_rf::geometry::Point;
    use chronos_rf::hardware::{ideal_device, AntennaArray};

    fn ideal_ctx(d: f64) -> MeasurementContext {
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            ideal_device(AntennaArray::single()),
            Point::new(0.0, 0.0),
            ideal_device(AntennaArray::laptop()),
            Point::new(d, 0.0),
        );
        ctx.snr.snr_at_1m_db = 60.0;
        ctx
    }

    fn service_with_cfg(n: usize, cfg: ServiceConfig) -> RangingService {
        let mut svc = RangingService::new(cfg);
        for i in 0..n {
            let id = svc.add_client(ideal_ctx(2.0 + i as f64), ChronosConfig::ideal());
            svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
        }
        svc
    }

    fn service_with(n: usize) -> RangingService {
        service_with_cfg(n, ServiceConfig::default())
    }

    #[test]
    fn epoch_estimates_every_client() {
        let mut svc = service_with(3);
        let report = svc.run_epoch(7);
        assert_eq!(report.outcomes.len(), 3);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.client, i);
            assert_eq!(o.sweep, 0, "first sweep ordinal");
            let err = o.error_m.expect("estimate");
            assert!(err < 0.3, "client {i} error {err}");
        }
        assert!(report.utilization > 0.0);
        assert!(report.sweeps_per_sec_airtime() > 0.0);
    }

    #[test]
    fn clients_share_one_plan_cache() {
        let mut svc = service_with(4);
        let report = svc.run_epoch(1);
        // Ideal mode, identical grids: every client needs the same NDFT
        // plan, so exactly one is ever built (plus one spline plan). The
        // worker pipelines memoize the plan `Arc`s after the first
        // lookup, so the shared cache sees at most a handful of queries
        // — the sharing contract is "built exactly once", not a hit
        // count.
        assert_eq!(report.cache.ndft_entries, 1);
        assert_eq!(report.cache.spline_entries, 1);
        assert_eq!(report.cache.misses, 2, "{:?}", report.cache);
    }

    #[test]
    fn results_independent_of_thread_count() {
        let run = |threads: usize| {
            let cfg = ServiceConfig {
                threads,
                ..Default::default()
            };
            let mut svc = service_with_cfg(4, cfg);
            let r = svc.run_epoch(3);
            r.outcomes
                .iter()
                .map(|o| o.distance_m.unwrap().to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn epochs_advance_the_clock_and_stay_deterministic() {
        let mut svc = service_with(2);
        let a = svc.run_epoch(5);
        let b = svc.run_epoch(5);
        assert!(b.started > a.started);
        assert_eq!(a.epoch, 0);
        assert_eq!(b.epoch, 1);
        // Same service construction, same seeds => same outcome stream.
        let mut svc2 = service_with(2);
        let a2 = svc2.run_epoch(5);
        for (x, y) in a.outcomes.iter().zip(a2.outcomes.iter()) {
            assert_eq!(
                x.distance_m.map(f64::to_bits),
                y.distance_m.map(f64::to_bits)
            );
        }
    }

    fn position_ctx(p: Point) -> MeasurementContext {
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            ideal_device(AntennaArray::single()),
            p,
            ideal_device(AntennaArray::access_point()),
            Point::new(0.0, 0.0),
        );
        ctx.snr.snr_at_1m_db = 60.0;
        ctx
    }

    #[test]
    fn position_mode_reports_submeter_fixes_and_promotes_to_track() {
        let mut svc = RangingService::new(ServiceConfig::position(TrackerConfig::default()));
        let id = svc.add_client(position_ctx(Point::new(1.5, 4.0)), ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
        let mut reports = Vec::new();
        for e in 0..4 {
            reports.push(svc.run_epoch(100 + e));
        }
        let last = reports.last().unwrap();
        let o = &last.outcomes[0];
        assert!(o.truth_pos.dist(Point::new(1.5, 4.0)) < 1e-12);
        let err = o.pos_error_m.expect("raw fix");
        assert!(err < 1.0, "raw position error {err}");
        let rmse = last.pos_rmse_m().expect("tracked position");
        assert!(rmse < 1.0, "tracked RMSE {rmse}");
        // The position tracker's mode machine drives subset scheduling.
        assert_eq!(o.mode, TrackMode::Track);
        assert!(o.bands_planned < 35, "subset sweep expected");
        assert!(last.median_pos_error_m().is_some());
        // Distance-tracking fields stay unpopulated in position mode.
        assert!(o.tracked_m.is_none());
    }

    #[test]
    fn non_adaptive_position_mode_full_sweeps_still_fuse() {
        let cfg = ServiceConfig {
            localization: LocalizationMode::Position,
            ..ServiceConfig::default()
        };
        let mut svc = RangingService::new(cfg);
        let id = svc.add_client(position_ctx(Point::new(-2.0, 3.0)), ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
        for e in 0..3 {
            let r = svc.run_epoch(7 + e);
            let o = &r.outcomes[0];
            assert_eq!(
                o.bands_planned, 35,
                "non-adaptive service must sweep the full plan"
            );
            assert_eq!(
                o.mode,
                TrackMode::Acquire,
                "reported mode must match the sweep actually issued"
            );
            assert!(o.tracked_pos.is_some());
        }
        assert_eq!(svc.run_epoch(99).mode_occupancy().track, 0);
        assert!(svc.position_tracker(id).is_some());
        assert!(svc.tracker(id).is_none());
    }

    #[test]
    fn ratio_reporters_are_zero_not_nan_on_empty_input() {
        // Every ratio must degrade to 0.0 (never 0/0 = NaN) when its
        // denominator is empty: an empty service round, a zero-length
        // window, a never-queried cache.
        assert_eq!(outcome_stats::airtime_saved(0, 0), 0.0);
        assert!(!outcome_stats::airtime_saved(0, 0).is_nan());
        assert_eq!(outcome_stats::completed(&[]), 0);
        assert_eq!(outcome_stats::quarantined(&[]), 0);
        assert!(outcome_stats::mean_abs_error_m(&[]).is_none());
        assert!(outcome_stats::track_rmse_m(&[]).is_none());
        assert!(outcome_stats::pos_rmse_m(&[]).is_none());
        assert!(outcome_stats::median_pos_error_m(&[]).is_none());
        assert_eq!(outcome_stats::mode_occupancy(&[]), ModeOccupancy::default());

        let mut svc = RangingService::new(ServiceConfig::default());
        // Zero-length window on an empty service: every report ratio is a
        // finite zero.
        let w = svc.run_until(1, Instant::ZERO);
        assert_eq!(w.sweeps_per_sec(), 0.0);
        assert_eq!(w.airtime_saved(), 0.0);
        assert_eq!(w.utilization, 0.0);
        assert_eq!(w.cache.hit_rate(), 0.0);
        assert!(w.mean_abs_error_m().is_none());
        // An epoch round with no clients: same contract.
        let e = svc.run_epoch(1);
        assert_eq!(e.sweeps_per_sec_airtime(), 0.0);
        assert!(!e.sweeps_per_sec_airtime().is_nan());
        assert_eq!(e.airtime_saved(), 0.0);
        assert_eq!(e.utilization, 0.0);
        assert_eq!(e.cache.hit_rate(), 0.0);
    }

    #[test]
    fn contention_reported_for_overlapping_sweeps() {
        let mut svc = service_with(6);
        let report = svc.run_epoch(11);
        // With max_concurrent = 4 and six clients, some sweeps overlap
        // and pay contention; the utilization must reflect real overlap.
        assert!(report.outcomes.iter().any(|o| o.concurrent > 0));
        assert!(report.outcomes.iter().any(|o| o.extra_loss > 0.0));
        assert!(report.airtime_span > Duration::from_millis(80));
    }

    #[test]
    fn removed_client_skips_later_epochs() {
        let mut svc = service_with(3);
        let first = svc.run_epoch(21);
        assert_eq!(first.outcomes.len(), 3);
        assert!(svc.remove_client(1));
        assert!(!svc.remove_client(1), "double-remove reports inactive");
        assert!(!svc.is_active(1));
        assert_eq!(svc.n_clients(), 3, "slot indices stay valid");
        assert_eq!(svc.n_active(), 2);
        let second = svc.run_epoch(22);
        let clients: Vec<usize> = second.outcomes.iter().map(|o| o.client).collect();
        assert_eq!(clients, vec![0, 2]);
        // Remaining clients' sweep ordinals keep advancing.
        assert!(second.outcomes.iter().all(|o| o.sweep == 1));
    }
}
