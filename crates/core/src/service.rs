//! Multi-client ranging service: one access point localizing many
//! clients concurrently, sharing the numeric hot path.
//!
//! The paper demonstrates one pair of devices. The service layer scales
//! that design out the way a production deployment would:
//!
//! * **Shared plans.** Every client sweeps the same Wi-Fi band plan, so
//!   the NDFT operators, operator norms, lobe tables and spline
//!   factorizations are identical across clients. A single
//!   [`PlanCache`] (built lazily on the first sweep) serves all of them;
//!   per-client estimation borrows immutable `Arc`s instead of
//!   rebuilding the machinery per sweep (see [`crate::plan`]).
//! * **Airtime arbitration.** Sweeps go through a
//!   [`MediumArbiter`], which staggers their starts, caps how many hop
//!   concurrently, and charges each overlapping sweep a collision loss —
//!   so N clients contend for the medium the way real hoppers would,
//!   and reported throughput includes the protocol cost of contention.
//! * **Parallel inversion.** Per-client profile inversion (the CPU-bound
//!   part: ISTA over the shared NDFT plan) runs on scoped worker
//!   threads; simulation determinism is preserved by giving every
//!   (client, epoch) its own seeded generator, so results are
//!   independent of the thread schedule.
//!
//! A [`RangingService::run_epoch`] call plays one round: every client is
//! admitted, sweeps, and is estimated; the [`EpochReport`] carries
//! per-client outcomes plus medium utilization and cache statistics.

use crate::config::ChronosConfig;
use crate::plan::{CacheStats, PlanCache};
use crate::session::ChronosSession;
use crate::tracker::{ClientTracker, PositionTracker, TrackMode, TrackerConfig};
use chronos_link::arbiter::{ArbiterConfig, MediumArbiter, SweepGrant};
use chronos_link::sweep::SweepConfig;
use chronos_link::time::{Duration, Instant};
use chronos_rf::bands::Band;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::geometry::Point;
use chronos_rf::subset::select_subset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Delay span scanned when scoring TRACK-subset grating ambiguity. Half
/// the default 200 ns profile span: profiles carry *scaled* delays
/// (scale ≥ 2), so 100 ns of physical delay covers the whole
/// unambiguous range a subset must keep ghost-free.
const SUBSET_AMBIGUITY_SPAN_NS: f64 = 100.0;

/// What the service reports per client: a scalar distance (the paper's
/// §3–§7 pipeline) or a full 2-D position fix (§8's multi-antenna
/// localization, served online).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalizationMode {
    /// Track the scalar transmitter–receiver distance (mean over
    /// antennas). The seed behavior.
    #[default]
    Distance,
    /// Fuse per-antenna ToF circles into a 2-D position in the AP's
    /// frame ([`crate::localization`]) and track it with a
    /// [`PositionTracker`].
    Position,
}

/// Service-level policy.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Airtime arbitration policy.
    pub arbiter: ArbiterConfig,
    /// Multiplier on a plan's loss-free airtime
    /// ([`SweepConfig::expected_duration`]) when projecting its admission
    /// window — headroom for retransmissions. With variable-length plans
    /// a fixed projection would overcharge subset sweeps, so admission
    /// scales with each client's actual plan.
    pub admission_headroom: f64,
    /// Worker threads for per-client estimation; 0 = one per available
    /// core.
    pub threads: usize,
    /// Idle gap inserted between epochs.
    pub epoch_gap: Duration,
    /// Adaptive sweep scheduling: when set, every client gets a
    /// [`ClientTracker`] and the service schedules full ACQUIRE sweeps or
    /// TRACK-mode band subsets from its state. `None` preserves the
    /// legacy behavior (full sweep, every client, every epoch).
    pub adaptive: Option<TrackerConfig>,
    /// What the service tracks per client: scalar distance (default) or
    /// 2-D position. In [`LocalizationMode::Position`] every client gets
    /// a [`PositionTracker`] (configured from `adaptive`, or defaults
    /// when the scheduler is non-adaptive) and the epoch report carries
    /// per-client position fixes, tracked positions and
    /// [`EpochReport::pos_rmse_m`].
    pub localization: LocalizationMode,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            arbiter: ArbiterConfig::default(),
            // ~95 ms projected for the standard ~84 ms sweep.
            admission_headroom: 1.13,
            threads: 0,
            epoch_gap: Duration::from_millis(5),
            adaptive: None,
            localization: LocalizationMode::Distance,
        }
    }
}

impl ServiceConfig {
    /// The default policy with adaptive tracking enabled.
    pub fn adaptive(tracker: TrackerConfig) -> Self {
        ServiceConfig {
            adaptive: Some(tracker),
            ..Default::default()
        }
    }

    /// The default policy in position mode with adaptive scheduling: full
    /// ACQUIRE sweeps until each client's position filter converges, then
    /// band-subset TRACK sweeps fused into 2-D fixes.
    pub fn position(tracker: TrackerConfig) -> Self {
        ServiceConfig {
            adaptive: Some(tracker),
            localization: LocalizationMode::Position,
            ..Default::default()
        }
    }
}

/// One client's result within an epoch.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    /// Client index within the service.
    pub client: usize,
    /// Admitted sweep start.
    pub started: Instant,
    /// Link-layer finish time.
    pub finished: Instant,
    /// Concurrent sweeps at admission.
    pub concurrent: usize,
    /// Contention loss the sweep ran with (added to the base medium
    /// loss).
    pub extra_loss: f64,
    /// Whether the link-layer sweep covered the full plan.
    pub link_complete: bool,
    /// Mean estimated distance across successful antennas, meters.
    pub distance_m: Option<f64>,
    /// Ground-truth device distance, meters.
    pub truth_m: f64,
    /// Absolute ranging error, meters (when an estimate exists).
    pub error_m: Option<f64>,
    /// Mode this client's sweep was scheduled under. Always
    /// [`TrackMode::Acquire`] for a non-adaptive service.
    pub mode: TrackMode,
    /// Bands in the scheduled plan (35 for a full sweep, the subset size
    /// in TRACK mode).
    pub bands_planned: usize,
    /// Tracker prediction for this epoch before the fix was fused,
    /// meters (adaptive services, once the filter is seeded).
    pub predicted_m: Option<f64>,
    /// Tracker output after fusing this epoch's fix, meters — the
    /// distance an adaptive deployment would report.
    pub tracked_m: Option<f64>,
    /// Absolute error of `tracked_m` against ground truth, meters.
    pub tracked_error_m: Option<f64>,
    /// Innovation of this epoch's fix in standard deviations (adaptive
    /// services; `None` when no fix was fused).
    pub innovation_sigmas: Option<f64>,
    /// Raw 2-D position fix in the AP's frame, after mirror-candidate
    /// resolution against the motion prior (position mode only).
    pub position: Option<Point>,
    /// RMS circle residual of the fix, meters (position mode only).
    pub pos_residual_m: Option<f64>,
    /// Antennas the fix used after NLOS/outlier rejection (position mode
    /// only).
    pub pos_antennas: Option<usize>,
    /// Ground-truth client position in the AP's frame.
    pub truth_pos: Point,
    /// Absolute 2-D error of the raw fix, meters.
    pub pos_error_m: Option<f64>,
    /// Position-tracker output after fusing this epoch's fix — the
    /// position a deployment would report (position mode only).
    pub tracked_pos: Option<Point>,
    /// Absolute 2-D error of `tracked_pos` against ground truth, meters.
    pub tracked_pos_error_m: Option<f64>,
    /// Innovation of this epoch's position fix in (Mahalanobis) standard
    /// deviations (position mode; `None` when no fix was fused).
    pub pos_innovation_sigmas: Option<f64>,
}

/// The result of one service round.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch counter.
    pub epoch: u64,
    /// Epoch start on the simulated clock.
    pub started: Instant,
    /// Simulated span from epoch start to the last sweep's end.
    pub airtime_span: Duration,
    /// Fraction of the span with at least one sweep on the air.
    pub utilization: f64,
    /// Per-client outcomes, ordered by client index.
    pub outcomes: Vec<ClientOutcome>,
    /// Host wall-clock time spent producing the epoch (sweep simulation
    /// plus estimation across all worker threads).
    pub wall: std::time::Duration,
    /// Plan-cache counters after the epoch.
    pub cache: CacheStats,
    /// Total bands scheduled across all clients this epoch.
    pub bands_planned: usize,
    /// Bands a non-adaptive service would have scheduled (clients × full
    /// plan length) — the denominator of [`EpochReport::airtime_saved`].
    pub bands_full_sweep: usize,
}

/// How many clients ran in each mode during one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModeOccupancy {
    /// Clients swept under ACQUIRE (full plan).
    pub acquire: usize,
    /// Clients swept under TRACK (band subset).
    pub track: usize,
}

impl EpochReport {
    /// Clients whose sweep produced a distance estimate.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.distance_m.is_some())
            .count()
    }

    /// Mean absolute ranging error over completed clients, meters.
    pub fn mean_abs_error_m(&self) -> Option<f64> {
        let errs: Vec<f64> = self.outcomes.iter().filter_map(|o| o.error_m).collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }

    /// Fraction of per-fix airtime the adaptive scheduler saved this
    /// epoch versus sweeping every client's full plan: `1 −
    /// bands_planned / bands_full_sweep` (band count is an airtime proxy
    /// — dwell cost per band is constant, see
    /// [`SweepConfig::expected_duration`]). Zero for a non-adaptive
    /// service.
    pub fn airtime_saved(&self) -> f64 {
        if self.bands_full_sweep == 0 {
            0.0
        } else {
            1.0 - self.bands_planned as f64 / self.bands_full_sweep as f64
        }
    }

    /// Clients per mode this epoch.
    pub fn mode_occupancy(&self) -> ModeOccupancy {
        let mut occ = ModeOccupancy::default();
        for o in &self.outcomes {
            match o.mode {
                TrackMode::Acquire => occ.acquire += 1,
                TrackMode::Track => occ.track += 1,
            }
        }
        occ
    }

    /// Root-mean-square error of the tracker's fused outputs against
    /// ground truth, meters. `None` for non-adaptive services or before
    /// any filter is seeded.
    pub fn track_rmse_m(&self) -> Option<f64> {
        Self::rmse(self.outcomes.iter().filter_map(|o| o.tracked_error_m))
    }

    /// Root-mean-square 2-D error of the position tracker's fused outputs
    /// against ground truth, meters. `None` outside position mode or
    /// before any filter is seeded.
    pub fn pos_rmse_m(&self) -> Option<f64> {
        Self::rmse(self.outcomes.iter().filter_map(|o| o.tracked_pos_error_m))
    }

    /// Median 2-D error of the *raw* position fixes against ground truth,
    /// meters — the paper's §12.2 localization observable, per epoch.
    pub fn median_pos_error_m(&self) -> Option<f64> {
        let errs: Vec<f64> = self.outcomes.iter().filter_map(|o| o.pos_error_m).collect();
        if errs.is_empty() {
            None
        } else {
            Some(chronos_math::stats::median(&errs))
        }
    }

    fn rmse(errs: impl Iterator<Item = f64>) -> Option<f64> {
        let errs: Vec<f64> = errs.collect();
        if errs.is_empty() {
            None
        } else {
            Some(chronos_math::stats::rms(&errs))
        }
    }

    /// Localization throughput over simulated airtime: completed sweeps
    /// per second of medium time. This is the capacity figure an AP
    /// operator cares about.
    pub fn sweeps_per_sec_airtime(&self) -> f64 {
        let span = self.airtime_span.as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.completed() as f64 / span
        }
    }
}

/// A pool of [`ChronosSession`]s sharing one [`PlanCache`] and one
/// arbitrated medium.
#[derive(Debug)]
pub struct RangingService {
    cfg: ServiceConfig,
    plans: Arc<PlanCache>,
    clients: Vec<ChronosSession>,
    trackers: Vec<Option<ClientTracker>>,
    pos_trackers: Vec<Option<PositionTracker>>,
    /// TRACK subsets, memoized per (full-plan channels, subset size) —
    /// [`select_subset`] is pure, so every client on the standard plan
    /// shares one entry (and hence one cached NDFT plan downstream).
    subsets: HashMap<(Vec<u16>, usize), Arc<Vec<Band>>>,
    arbiter: MediumArbiter,
    clock: Instant,
    epoch: u64,
}

impl RangingService {
    /// Creates an empty service with a fresh plan cache.
    pub fn new(cfg: ServiceConfig) -> Self {
        Self::with_cache(cfg, Arc::new(PlanCache::new()))
    }

    /// Creates a service that shares an existing plan cache (e.g. one
    /// warmed by another service instance or process stage).
    pub fn with_cache(cfg: ServiceConfig, plans: Arc<PlanCache>) -> Self {
        let arbiter = MediumArbiter::new(cfg.arbiter);
        RangingService {
            cfg,
            plans,
            clients: Vec::new(),
            trackers: Vec::new(),
            pos_trackers: Vec::new(),
            subsets: HashMap::new(),
            arbiter,
            clock: Instant::ZERO,
            epoch: 0,
        }
    }

    /// The shared plan cache.
    pub fn plans(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// The service's policy.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Adds a client from its physical measurement context; returns its
    /// index. The client's session borrows the service's plan cache.
    pub fn add_client(&mut self, ctx: MeasurementContext, config: ChronosConfig) -> usize {
        let session = ChronosSession::with_cache(ctx, config, Arc::clone(&self.plans));
        self.add_session(session)
    }

    /// Adopts an existing session as a client (its plan cache is replaced
    /// by the service's shared one).
    pub fn add_session(&mut self, mut session: ChronosSession) -> usize {
        session.plans = Some(Arc::clone(&self.plans));
        self.clients.push(session);
        match self.cfg.localization {
            LocalizationMode::Distance => {
                self.trackers
                    .push(self.cfg.adaptive.map(ClientTracker::new));
                self.pos_trackers.push(None);
            }
            LocalizationMode::Position => {
                // Position mode always fuses through a tracker; `adaptive`
                // only decides whether its mode machine drives band-subset
                // scheduling.
                self.trackers.push(None);
                self.pos_trackers.push(Some(PositionTracker::new(
                    self.cfg.adaptive.unwrap_or_default(),
                )));
            }
        }
        self.clients.len() - 1
    }

    /// A client's tracker (adaptive distance-mode services only).
    pub fn tracker(&self, idx: usize) -> Option<&ClientTracker> {
        self.trackers.get(idx).and_then(|t| t.as_ref())
    }

    /// A client's position tracker (position-mode services only).
    pub fn position_tracker(&self, idx: usize) -> Option<&PositionTracker> {
        self.pos_trackers.get(idx).and_then(|t| t.as_ref())
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// Immutable access to a client session.
    pub fn client(&self, idx: usize) -> &ChronosSession {
        &self.clients[idx]
    }

    /// Mutable access to a client session (geometry updates, config
    /// tweaks between epochs).
    pub fn client_mut(&mut self, idx: usize) -> &mut ChronosSession {
        &mut self.clients[idx]
    }

    /// Calibrates every client at its current (known) geometry with `n`
    /// sweeps each (paper §7 obs. 2). Sequential: calibration is a
    /// one-time setup step.
    pub fn calibrate_all(&mut self, seed: u64, n: usize) {
        for (i, session) in self.clients.iter_mut().enumerate() {
            let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0, i));
            session.calibrate(&mut rng, n);
        }
    }

    /// Worker-thread count for this run.
    fn thread_count(&self) -> usize {
        if self.cfg.threads > 0 {
            self.cfg.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
        .max(1)
    }

    /// The TRACK-mode subset for one client's full plan, memoized.
    ///
    /// Subsets are drawn from the plan's 5 GHz members: they share one
    /// delay scale (so the estimator inverts a single coherent group)
    /// and avoid the 2.4 ↔ 5 GHz gap, whose extreme spacing contributes
    /// ambiguity rather than aperture. Plans without enough 5 GHz bands
    /// fall back to selecting over the whole plan.
    fn track_subset(&mut self, client: usize, k: usize) -> Arc<Vec<Band>> {
        let full = &self.clients[client].sweep_cfg.plan;
        let key: (Vec<u16>, usize) = (full.iter().map(|b| b.channel).collect(), k);
        if let Some(s) = self.subsets.get(&key) {
            return Arc::clone(s);
        }
        let pool: Vec<Band> = full.iter().filter(|b| !b.group.is_2g4()).cloned().collect();
        let pool = if pool.len() >= k.max(5) {
            pool
        } else {
            full.clone()
        };
        let sub = Arc::new(select_subset(&pool, k, SUBSET_AMBIGUITY_SPAN_NS));
        self.subsets.insert(key, Arc::clone(&sub));
        sub
    }

    /// Runs one epoch: schedule each client's plan from its tracker
    /// state (full plan when non-adaptive or ACQUIREing, a band subset
    /// in TRACK), admit the sweeps through the arbiter with
    /// plan-proportional airtime projections, run them (estimation
    /// parallelized across worker threads), fuse the fixes into the
    /// trackers, then advance the service clock past the epoch horizon.
    pub fn run_epoch(&mut self, seed: u64) -> EpochReport {
        let epoch_start = self.clock;
        let epoch = self.epoch;
        self.epoch += 1;

        // Scheduling + admission (deterministic order = client order).
        struct Job {
            client: usize,
            grant: SweepGrant,
            sweep_cfg: SweepConfig,
            rng_seed: u64,
            mode: TrackMode,
        }
        let mut jobs: Vec<Job> = Vec::with_capacity(self.clients.len());
        let mut bands_planned = 0usize;
        let mut bands_full_sweep = 0usize;
        for i in 0..self.clients.len() {
            let mut sweep_cfg = self.clients[i].sweep_cfg.clone();
            bands_full_sweep += sweep_cfg.plan.len();
            let (mode, requested) = if let Some(t) = &self.pos_trackers[i] {
                // A non-adaptive position service still fuses fixes, but
                // always sweeps the full plan — and reports the sweep it
                // actually issues (ACQUIRE-class), not the fusion
                // machine's internal mode.
                if self.cfg.adaptive.is_some() {
                    (t.mode(), t.requested_bands())
                } else {
                    (TrackMode::Acquire, None)
                }
            } else if let Some(t) = &self.trackers[i] {
                (t.mode(), t.requested_bands())
            } else {
                (TrackMode::Acquire, None)
            };
            if let Some(k) = requested {
                sweep_cfg.plan = self.track_subset(i, k).as_ref().clone();
            }
            bands_planned += sweep_cfg.plan.len();
            let expected = sweep_cfg
                .expected_duration()
                .mul_f64(self.cfg.admission_headroom.max(1.0));
            let grant = self.arbiter.admit(epoch_start, expected);
            sweep_cfg.medium.loss_prob = (sweep_cfg.medium.loss_prob + grant.extra_loss).min(0.9);
            jobs.push(Job {
                client: i,
                grant,
                sweep_cfg,
                rng_seed: mix_seed(seed, epoch + 1, i),
                mode,
            });
        }

        // Parallel sweep + estimation. Each job owns its RNG; the thread
        // schedule cannot change any result.
        let wall_start = std::time::Instant::now();
        let n_threads = self.thread_count();
        let chunk = jobs.len().div_ceil(n_threads).max(1);
        let clients = &self.clients;
        let mut results: Vec<(usize, SweepGrant, crate::session::SweepOutput)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move || {
                            slice
                                .iter()
                                .map(|job| {
                                    let mut rng = StdRng::seed_from_u64(job.rng_seed);
                                    let out = clients[job.client].sweep_with(
                                        &job.sweep_cfg,
                                        &mut rng,
                                        job.grant.start,
                                    );
                                    (job.client, job.grant, out)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("service worker panicked"))
                    .collect()
            });
        let wall = wall_start.elapsed();
        results.sort_by_key(|(client, _, _)| *client);

        // Feed actual finish times back into the arbiter, fuse fixes
        // into the trackers (sequentially, in client order — tracker
        // state stays schedule-independent), then build the report.
        let mut outcomes = Vec::with_capacity(results.len());
        for (client, grant, out) in &results {
            self.arbiter.complete(grant.token, out.link.finished);
            let truth_m = self.clients[*client].truth_distance_m();
            let distance_m = out.mean_distance_m();
            let job = &jobs[*client];
            let (predicted_m, tracked_m, innovation_sigmas) = match &mut self.trackers[*client] {
                Some(tracker) => {
                    let upd = tracker.observe(out.link.started, distance_m, out.link.complete);
                    (
                        upd.predicted_m,
                        upd.fused_m,
                        upd.innovation.map(|i| i.sigmas()),
                    )
                }
                None => (None, None, None),
            };
            let truth_pos = {
                let ctx = &self.clients[*client].ctx;
                ctx.initiator_pos.sub(ctx.responder_pos)
            };
            let (position, pos_residual_m, pos_antennas, tracked_pos, pos_innovation_sigmas) =
                match &mut self.pos_trackers[*client] {
                    Some(tracker) => {
                        let resolved = tracker.resolve(&out.position_candidates);
                        let fix = resolved.map(|p| p.point);
                        let upd = tracker.observe(out.link.started, fix, out.link.complete);
                        (
                            fix,
                            resolved.map(|p| p.residual_m),
                            resolved.map(|p| p.n_used),
                            upd.fused,
                            upd.innovation.map(|i| i.sigmas()),
                        )
                    }
                    None => (None, None, None, None, None),
                };
            outcomes.push(ClientOutcome {
                client: *client,
                started: out.link.started,
                finished: out.link.finished,
                concurrent: grant.concurrent,
                extra_loss: grant.extra_loss,
                link_complete: out.link.complete,
                distance_m,
                truth_m,
                error_m: distance_m.map(|d| (d - truth_m).abs()),
                mode: job.mode,
                bands_planned: job.sweep_cfg.plan.len(),
                predicted_m,
                tracked_m,
                tracked_error_m: tracked_m.map(|d| (d - truth_m).abs()),
                innovation_sigmas,
                position,
                pos_residual_m,
                pos_antennas,
                truth_pos,
                pos_error_m: position.map(|p| p.dist(truth_pos)),
                tracked_pos,
                tracked_pos_error_m: tracked_pos.map(|p| p.dist(truth_pos)),
                pos_innovation_sigmas,
            });
        }

        let horizon = self.arbiter.horizon().max(epoch_start);
        let airtime_span = horizon.saturating_since(epoch_start);
        let utilization = self.arbiter.utilization(epoch_start, horizon);
        self.clock = horizon + self.cfg.epoch_gap;
        self.arbiter.release_before(self.clock);

        EpochReport {
            epoch,
            started: epoch_start,
            airtime_span,
            utilization,
            outcomes,
            wall,
            cache: self.plans.stats(),
            bands_planned,
            bands_full_sweep,
        }
    }
}

/// Mixes (seed, epoch, client) into an independent RNG stream.
fn mix_seed(seed: u64, epoch: u64, client: usize) -> u64 {
    let mut x = seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= (client as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::environment::Environment;
    use chronos_rf::geometry::Point;
    use chronos_rf::hardware::{ideal_device, AntennaArray};

    fn ideal_ctx(d: f64) -> MeasurementContext {
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            ideal_device(AntennaArray::single()),
            Point::new(0.0, 0.0),
            ideal_device(AntennaArray::laptop()),
            Point::new(d, 0.0),
        );
        ctx.snr.snr_at_1m_db = 60.0;
        ctx
    }

    fn service_with(n: usize) -> RangingService {
        let mut svc = RangingService::new(ServiceConfig::default());
        for i in 0..n {
            let id = svc.add_client(ideal_ctx(2.0 + i as f64), ChronosConfig::ideal());
            svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
        }
        svc
    }

    #[test]
    fn epoch_estimates_every_client() {
        let mut svc = service_with(3);
        let report = svc.run_epoch(7);
        assert_eq!(report.outcomes.len(), 3);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.client, i);
            let err = o.error_m.expect("estimate");
            assert!(err < 0.3, "client {i} error {err}");
        }
        assert!(report.utilization > 0.0);
        assert!(report.sweeps_per_sec_airtime() > 0.0);
    }

    #[test]
    fn clients_share_one_plan_cache() {
        let mut svc = service_with(4);
        let report = svc.run_epoch(1);
        // Ideal mode, identical grids: every client needs the same NDFT
        // plan, so exactly one is ever built (plus one spline plan).
        assert_eq!(report.cache.ndft_entries, 1);
        assert_eq!(report.cache.spline_entries, 1);
        assert!(
            report.cache.hits > report.cache.misses,
            "{:?}",
            report.cache
        );
    }

    #[test]
    fn results_independent_of_thread_count() {
        let run = |threads: usize| {
            let mut svc = service_with(4);
            svc.cfg = ServiceConfig {
                threads,
                ..Default::default()
            };
            let r = svc.run_epoch(3);
            r.outcomes
                .iter()
                .map(|o| o.distance_m.unwrap().to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn epochs_advance_the_clock_and_stay_deterministic() {
        let mut svc = service_with(2);
        let a = svc.run_epoch(5);
        let b = svc.run_epoch(5);
        assert!(b.started > a.started);
        assert_eq!(a.epoch, 0);
        assert_eq!(b.epoch, 1);
        // Same service construction, same seeds => same outcome stream.
        let mut svc2 = service_with(2);
        let a2 = svc2.run_epoch(5);
        for (x, y) in a.outcomes.iter().zip(a2.outcomes.iter()) {
            assert_eq!(
                x.distance_m.map(f64::to_bits),
                y.distance_m.map(f64::to_bits)
            );
        }
    }

    fn position_ctx(p: Point) -> MeasurementContext {
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            ideal_device(AntennaArray::single()),
            p,
            ideal_device(AntennaArray::access_point()),
            Point::new(0.0, 0.0),
        );
        ctx.snr.snr_at_1m_db = 60.0;
        ctx
    }

    #[test]
    fn position_mode_reports_submeter_fixes_and_promotes_to_track() {
        let mut svc = RangingService::new(ServiceConfig::position(TrackerConfig::default()));
        let id = svc.add_client(position_ctx(Point::new(1.5, 4.0)), ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
        let mut reports = Vec::new();
        for e in 0..4 {
            reports.push(svc.run_epoch(100 + e));
        }
        let last = reports.last().unwrap();
        let o = &last.outcomes[0];
        assert!(o.truth_pos.dist(Point::new(1.5, 4.0)) < 1e-12);
        let err = o.pos_error_m.expect("raw fix");
        assert!(err < 1.0, "raw position error {err}");
        let rmse = last.pos_rmse_m().expect("tracked position");
        assert!(rmse < 1.0, "tracked RMSE {rmse}");
        // The position tracker's mode machine drives subset scheduling.
        assert_eq!(o.mode, TrackMode::Track);
        assert!(o.bands_planned < 35, "subset sweep expected");
        assert!(last.median_pos_error_m().is_some());
        // Distance-tracking fields stay unpopulated in position mode.
        assert!(o.tracked_m.is_none());
    }

    #[test]
    fn non_adaptive_position_mode_full_sweeps_still_fuse() {
        let cfg = ServiceConfig {
            localization: LocalizationMode::Position,
            ..ServiceConfig::default()
        };
        let mut svc = RangingService::new(cfg);
        let id = svc.add_client(position_ctx(Point::new(-2.0, 3.0)), ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
        for e in 0..3 {
            let r = svc.run_epoch(7 + e);
            let o = &r.outcomes[0];
            assert_eq!(
                o.bands_planned, 35,
                "non-adaptive service must sweep the full plan"
            );
            assert_eq!(
                o.mode,
                TrackMode::Acquire,
                "reported mode must match the sweep actually issued"
            );
            assert!(o.tracked_pos.is_some());
        }
        assert_eq!(svc.run_epoch(99).mode_occupancy().track, 0);
        assert!(svc.position_tracker(id).is_some());
        assert!(svc.tracker(id).is_none());
    }

    #[test]
    fn contention_reported_for_overlapping_sweeps() {
        let mut svc = service_with(6);
        let report = svc.run_epoch(11);
        // With max_concurrent = 4 and six clients, some sweeps overlap
        // and pay contention; the utilization must reflect real overlap.
        assert!(report.outcomes.iter().any(|o| o.concurrent > 0));
        assert!(report.outcomes.iter().any(|o| o.extra_loss > 0.0));
        assert!(report.airtime_span > Duration::from_millis(80));
    }
}
