//! Multi-client ranging service: one access point localizing many
//! clients concurrently, sharing the numeric hot path.
//!
//! The paper demonstrates one pair of devices. The service layer scales
//! that design out the way a production deployment would:
//!
//! * **Shared plans.** Every client sweeps the same Wi-Fi band plan, so
//!   the NDFT operators, operator norms, lobe tables and spline
//!   factorizations are identical across clients. A single
//!   [`PlanCache`] (built lazily on the first sweep) serves all of them;
//!   per-client estimation borrows immutable `Arc`s instead of
//!   rebuilding the machinery per sweep (see [`crate::plan`]).
//! * **Airtime arbitration.** Sweeps go through a
//!   [`MediumArbiter`], which staggers their starts, caps how many hop
//!   concurrently, and charges each overlapping sweep a collision loss —
//!   so N clients contend for the medium the way real hoppers would,
//!   and reported throughput includes the protocol cost of contention.
//! * **Parallel inversion.** Per-client profile inversion (the CPU-bound
//!   part: ISTA over the shared NDFT plan) runs on scoped worker
//!   threads; simulation determinism is preserved by giving every
//!   (client, epoch) its own seeded generator, so results are
//!   independent of the thread schedule.
//!
//! A [`RangingService::run_epoch`] call plays one round: every client is
//! admitted, sweeps, and is estimated; the [`EpochReport`] carries
//! per-client outcomes plus medium utilization and cache statistics.

use crate::config::ChronosConfig;
use crate::plan::{CacheStats, PlanCache};
use crate::session::ChronosSession;
use chronos_link::arbiter::{ArbiterConfig, MediumArbiter, SweepGrant};
use chronos_link::sweep::SweepConfig;
use chronos_link::time::{Duration, Instant};
use chronos_rf::csi::MeasurementContext;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Service-level policy.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Airtime arbitration policy.
    pub arbiter: ArbiterConfig,
    /// Projected sweep duration used for admission (a standard 35-band
    /// sweep takes ~84 ms; a little headroom absorbs retransmissions).
    pub expected_sweep: Duration,
    /// Worker threads for per-client estimation; 0 = one per available
    /// core.
    pub threads: usize,
    /// Idle gap inserted between epochs.
    pub epoch_gap: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            arbiter: ArbiterConfig::default(),
            expected_sweep: Duration::from_millis(95),
            threads: 0,
            epoch_gap: Duration::from_millis(5),
        }
    }
}

/// One client's result within an epoch.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    /// Client index within the service.
    pub client: usize,
    /// Admitted sweep start.
    pub started: Instant,
    /// Link-layer finish time.
    pub finished: Instant,
    /// Concurrent sweeps at admission.
    pub concurrent: usize,
    /// Contention loss the sweep ran with (added to the base medium
    /// loss).
    pub extra_loss: f64,
    /// Whether the link-layer sweep covered the full plan.
    pub link_complete: bool,
    /// Mean estimated distance across successful antennas, meters.
    pub distance_m: Option<f64>,
    /// Ground-truth device distance, meters.
    pub truth_m: f64,
    /// Absolute ranging error, meters (when an estimate exists).
    pub error_m: Option<f64>,
}

/// The result of one service round.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch counter.
    pub epoch: u64,
    /// Epoch start on the simulated clock.
    pub started: Instant,
    /// Simulated span from epoch start to the last sweep's end.
    pub airtime_span: Duration,
    /// Fraction of the span with at least one sweep on the air.
    pub utilization: f64,
    /// Per-client outcomes, ordered by client index.
    pub outcomes: Vec<ClientOutcome>,
    /// Host wall-clock time spent producing the epoch (sweep simulation
    /// plus estimation across all worker threads).
    pub wall: std::time::Duration,
    /// Plan-cache counters after the epoch.
    pub cache: CacheStats,
}

impl EpochReport {
    /// Clients whose sweep produced a distance estimate.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.distance_m.is_some()).count()
    }

    /// Mean absolute ranging error over completed clients, meters.
    pub fn mean_abs_error_m(&self) -> Option<f64> {
        let errs: Vec<f64> = self.outcomes.iter().filter_map(|o| o.error_m).collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }

    /// Localization throughput over simulated airtime: completed sweeps
    /// per second of medium time. This is the capacity figure an AP
    /// operator cares about.
    pub fn sweeps_per_sec_airtime(&self) -> f64 {
        let span = self.airtime_span.as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.completed() as f64 / span
        }
    }
}

/// A pool of [`ChronosSession`]s sharing one [`PlanCache`] and one
/// arbitrated medium.
#[derive(Debug)]
pub struct RangingService {
    cfg: ServiceConfig,
    plans: Arc<PlanCache>,
    clients: Vec<ChronosSession>,
    arbiter: MediumArbiter,
    clock: Instant,
    epoch: u64,
}

impl RangingService {
    /// Creates an empty service with a fresh plan cache.
    pub fn new(cfg: ServiceConfig) -> Self {
        Self::with_cache(cfg, Arc::new(PlanCache::new()))
    }

    /// Creates a service that shares an existing plan cache (e.g. one
    /// warmed by another service instance or process stage).
    pub fn with_cache(cfg: ServiceConfig, plans: Arc<PlanCache>) -> Self {
        let arbiter = MediumArbiter::new(cfg.arbiter);
        RangingService {
            cfg,
            plans,
            clients: Vec::new(),
            arbiter,
            clock: Instant::ZERO,
            epoch: 0,
        }
    }

    /// The shared plan cache.
    pub fn plans(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// Adds a client from its physical measurement context; returns its
    /// index. The client's session borrows the service's plan cache.
    pub fn add_client(&mut self, ctx: MeasurementContext, config: ChronosConfig) -> usize {
        let session = ChronosSession::with_cache(ctx, config, Arc::clone(&self.plans));
        self.clients.push(session);
        self.clients.len() - 1
    }

    /// Adopts an existing session as a client (its plan cache is replaced
    /// by the service's shared one).
    pub fn add_session(&mut self, mut session: ChronosSession) -> usize {
        session.plans = Some(Arc::clone(&self.plans));
        self.clients.push(session);
        self.clients.len() - 1
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// Immutable access to a client session.
    pub fn client(&self, idx: usize) -> &ChronosSession {
        &self.clients[idx]
    }

    /// Mutable access to a client session (geometry updates, config
    /// tweaks between epochs).
    pub fn client_mut(&mut self, idx: usize) -> &mut ChronosSession {
        &mut self.clients[idx]
    }

    /// Calibrates every client at its current (known) geometry with `n`
    /// sweeps each (paper §7 obs. 2). Sequential: calibration is a
    /// one-time setup step.
    pub fn calibrate_all(&mut self, seed: u64, n: usize) {
        for (i, session) in self.clients.iter_mut().enumerate() {
            let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0, i));
            session.calibrate(&mut rng, n);
        }
    }

    /// Worker-thread count for this run.
    fn thread_count(&self) -> usize {
        if self.cfg.threads > 0 {
            self.cfg.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        }
        .max(1)
    }

    /// Runs one epoch: admit every client through the arbiter, run the
    /// granted sweeps (estimation parallelized across worker threads),
    /// then advance the service clock past the epoch's horizon.
    pub fn run_epoch(&mut self, seed: u64) -> EpochReport {
        let epoch_start = self.clock;
        let epoch = self.epoch;
        self.epoch += 1;

        // Admission (deterministic order = client order).
        let grants: Vec<SweepGrant> = (0..self.clients.len())
            .map(|_| self.arbiter.admit(epoch_start, self.cfg.expected_sweep))
            .collect();

        // Per-client contention-adjusted link configs.
        struct Job {
            client: usize,
            grant: SweepGrant,
            sweep_cfg: SweepConfig,
            rng_seed: u64,
        }
        let jobs: Vec<Job> = grants
            .iter()
            .enumerate()
            .map(|(i, grant)| {
                let mut sweep_cfg = self.clients[i].sweep_cfg.clone();
                sweep_cfg.medium.loss_prob =
                    (sweep_cfg.medium.loss_prob + grant.extra_loss).min(0.9);
                Job {
                    client: i,
                    grant: *grant,
                    sweep_cfg,
                    rng_seed: mix_seed(seed, epoch + 1, i),
                }
            })
            .collect();

        // Parallel sweep + estimation. Each job owns its RNG; the thread
        // schedule cannot change any result.
        let wall_start = std::time::Instant::now();
        let n_threads = self.thread_count();
        let chunk = jobs.len().div_ceil(n_threads).max(1);
        let clients = &self.clients;
        let mut results: Vec<(usize, SweepGrant, crate::session::SweepOutput)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move || {
                            slice
                                .iter()
                                .map(|job| {
                                    let mut rng = StdRng::seed_from_u64(job.rng_seed);
                                    let out = clients[job.client].sweep_with(
                                        &job.sweep_cfg,
                                        &mut rng,
                                        job.grant.start,
                                    );
                                    (job.client, job.grant, out)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("service worker panicked"))
                    .collect()
            });
        let wall = wall_start.elapsed();
        results.sort_by_key(|(client, _, _)| *client);

        // Feed actual finish times back into the arbiter, then build the
        // report.
        let mut outcomes = Vec::with_capacity(results.len());
        for (client, grant, out) in &results {
            self.arbiter.complete(grant.token, out.link.finished);
            let truth_m = self.clients[*client].truth_distance_m();
            let distance_m = out.mean_distance_m();
            outcomes.push(ClientOutcome {
                client: *client,
                started: out.link.started,
                finished: out.link.finished,
                concurrent: grant.concurrent,
                extra_loss: grant.extra_loss,
                link_complete: out.link.complete,
                distance_m,
                truth_m,
                error_m: distance_m.map(|d| (d - truth_m).abs()),
            });
        }

        let horizon = self.arbiter.horizon().max(epoch_start);
        let airtime_span = horizon.saturating_since(epoch_start);
        let utilization = self.arbiter.utilization(epoch_start, horizon);
        self.clock = horizon + self.cfg.epoch_gap;
        self.arbiter.release_before(self.clock);

        EpochReport {
            epoch,
            started: epoch_start,
            airtime_span,
            utilization,
            outcomes,
            wall,
            cache: self.plans.stats(),
        }
    }
}

/// Mixes (seed, epoch, client) into an independent RNG stream.
fn mix_seed(seed: u64, epoch: u64, client: usize) -> u64 {
    let mut x = seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= (client as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::environment::Environment;
    use chronos_rf::geometry::Point;
    use chronos_rf::hardware::{ideal_device, AntennaArray};

    fn ideal_ctx(d: f64) -> MeasurementContext {
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            ideal_device(AntennaArray::single()),
            Point::new(0.0, 0.0),
            ideal_device(AntennaArray::laptop()),
            Point::new(d, 0.0),
        );
        ctx.snr.snr_at_1m_db = 60.0;
        ctx
    }

    fn service_with(n: usize) -> RangingService {
        let mut svc = RangingService::new(ServiceConfig::default());
        for i in 0..n {
            let id = svc.add_client(ideal_ctx(2.0 + i as f64), ChronosConfig::ideal());
            svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
        }
        svc
    }

    #[test]
    fn epoch_estimates_every_client() {
        let mut svc = service_with(3);
        let report = svc.run_epoch(7);
        assert_eq!(report.outcomes.len(), 3);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.client, i);
            let err = o.error_m.expect("estimate");
            assert!(err < 0.3, "client {i} error {err}");
        }
        assert!(report.utilization > 0.0);
        assert!(report.sweeps_per_sec_airtime() > 0.0);
    }

    #[test]
    fn clients_share_one_plan_cache() {
        let mut svc = service_with(4);
        let report = svc.run_epoch(1);
        // Ideal mode, identical grids: every client needs the same NDFT
        // plan, so exactly one is ever built (plus one spline plan).
        assert_eq!(report.cache.ndft_entries, 1);
        assert_eq!(report.cache.spline_entries, 1);
        assert!(report.cache.hits > report.cache.misses, "{:?}", report.cache);
    }

    #[test]
    fn results_independent_of_thread_count() {
        let run = |threads: usize| {
            let mut svc = service_with(4);
            let mut cfg = ServiceConfig::default();
            cfg.threads = threads;
            svc.cfg = cfg;
            let r = svc.run_epoch(3);
            r.outcomes.iter().map(|o| o.distance_m.unwrap().to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn epochs_advance_the_clock_and_stay_deterministic() {
        let mut svc = service_with(2);
        let a = svc.run_epoch(5);
        let b = svc.run_epoch(5);
        assert!(b.started > a.started);
        assert_eq!(a.epoch, 0);
        assert_eq!(b.epoch, 1);
        // Same service construction, same seeds => same outcome stream.
        let mut svc2 = service_with(2);
        let a2 = svc2.run_epoch(5);
        for (x, y) in a.outcomes.iter().zip(a2.outcomes.iter()) {
            assert_eq!(
                x.distance_m.map(f64::to_bits),
                y.distance_m.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn contention_reported_for_overlapping_sweeps() {
        let mut svc = service_with(6);
        let report = svc.run_epoch(11);
        // With max_concurrent = 4 and six clients, some sweeps overlap
        // and pay contention; the utilization must reflect real overlap.
        assert!(report.outcomes.iter().any(|o| o.concurrent > 0));
        assert!(report.outcomes.iter().any(|o| o.extra_loss > 0.0));
        assert!(report.airtime_span > Duration::from_millis(80));
    }
}
