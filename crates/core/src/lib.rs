//! # chronos-core
//!
//! The paper's contribution: sub-nanosecond time-of-flight on commodity
//! Wi-Fi, rebuilt end to end.
//!
//! The pipeline, in the order measurements flow through it:
//!
//! 1. [`phase`] — clean each CSI capture and interpolate the channel at the
//!    unmeasurable **zero-subcarrier**, the only point free of packet
//!    detection delay (paper §5).
//! 2. [`reciprocity`] — multiply forward and reverse zero-subcarrier
//!    channels to cancel carrier frequency offset (paper §7, Eq. 11–13),
//!    averaging across packet exchanges.
//! 3. [`quirk`] — handle the Intel 5300's 2.4 GHz phase bug by raising the
//!    2.4 GHz products to the fourth power and keeping band groups with
//!    different delay scales apart (paper §11, footnote 5).
//! 4. [`ndft`] + [`ista`] — pose multipath recovery as a sparse inversion
//!    of the **non-uniform DFT** over the swept band centers and solve it
//!    with the paper's proximal-gradient Algorithm 1 (§6).
//! 5. [`profile`] — extract the multipath profile's first dominant peak:
//!    the direct path's (scaled) propagation delay.
//! 6. [`tof`] — fuse band groups, undo delay scaling, apply calibration:
//!    the time-of-flight estimate.
//! 7. [`ranging`] + [`localization`] — distances from ToF, positions from
//!    intersecting per-antenna distance circles (§8).
//! 8. [`session`] — the end-to-end loop: drive the link-layer band sweep,
//!    synthesize CSI at the protocol's capture instants, estimate.
//!
//! [`crt`] implements the Chinese-remainder view of §4 (the Fig. 3
//! construction) used for single-path fast paths, cross-checks and tests,
//! and [`delay`] estimates per-packet detection delay for the Fig. 7(c)
//! analysis.

pub mod config;
pub mod crt;
pub mod delay;
pub mod error;
pub mod ista;
pub mod localization;
pub mod ndft;
pub mod phase;
pub mod profile;
pub mod quirk;
pub mod ranging;
pub mod reciprocity;
pub mod session;
pub mod tof;

pub use config::{ChronosConfig, QuirkMode};
pub use error::ChronosError;
pub use profile::MultipathProfile;
pub use session::{ChronosSession, SweepOutput};
pub use tof::{BandSample, TofEstimate, TofEstimator};
