//! # chronos-core
//!
//! The paper's contribution: sub-nanosecond time-of-flight on commodity
//! Wi-Fi, rebuilt end to end — plus the service layer that scales it
//! from one device pair to a pool of concurrently ranged clients.
//!
//! ## The pipeline, in measurement order
//!
//! [`phase`] cleans each CSI capture and interpolates the channel at the
//! **zero-subcarrier** — the one OFDM frequency Wi-Fi never transmits,
//! and the only one whose phase is untouched by packet-detection delay
//! (paper §5, footnote 3). A natural cubic spline over the 30 measured
//! subcarriers is read off at zero; the spline's factorization is
//! reusable across captures via [`chronos_math::spline::SplinePlan`].
//!
//! [`reciprocity`] multiplies forward and reverse zero-subcarrier
//! channels from one packet exchange. Carrier frequency offset rotates
//! the two captures in *opposite* directions, so the product cancels it
//! exactly (paper §7, Eq. 11–13), leaving the squared channel; exchanges
//! within a band dwell are averaged.
//!
//! [`quirk`] absorbs the Intel 5300's 2.4 GHz firmware bug — phase
//! reported modulo π/2 (paper §11, footnote 5) — by raising 2.4 GHz
//! products to the fourth power, and keeps band groups whose delay
//! scales now differ (2× vs 8×) apart for separate inversion.
//!
//! [`ndft`] + [`ista`] recover multipath: measurements at the scattered
//! swept band centers are a **non-uniform DFT** of the delay-domain
//! profile, inverted under an L1 sparsity prior with the paper's
//! proximal-gradient Algorithm 1 (§6.2), plus FISTA acceleration and
//! LASSO debiasing as documented extensions.
//!
//! [`profile`] extracts the time-of-flight from the recovered profile:
//! the direct path is the **first dominant peak**, not the strongest
//! (§6, observation 1), refined below the grid step by matched-filter
//! maximization and defended against sidelobe/grating ghosts.
//!
//! [`tof`] fuses the per-group candidates (the widest aperture wins; the
//! coarse 2.4 GHz group cross-checks), undoes delay scaling, and applies
//! the one-time calibration constant (§7, observation 2).
//!
//! [`ranging`] + [`localization`] turn per-antenna ToFs into distances
//! and intersect the per-antenna circles into a position (§8).
//!
//! [`session`] is the per-pair driver: one [`ChronosSession`] runs the
//! link-layer band sweep, synthesizes CSI at the protocol's exact
//! capture instants, and estimates per receive antenna (§4, §11).
//!
//! ## Scaling beyond the paper
//!
//! [`plan`] extracts everything an estimate computes that depends only
//! on the band plan and grid — NDFT operators, spectral norms, lobe
//! tables, spline factorizations — into immutable plans served by a
//! thread-safe [`PlanCache`]. Cached and uncached estimation are
//! bit-identical; only the redundant per-sweep construction disappears.
//!
//! [`service`] is the multi-client layer: a [`RangingService`] pools
//! sessions over one shared `PlanCache`, admits their sweeps through the
//! airtime arbiter in [`chronos_link::arbiter`] so N hoppers contend
//! realistically, and runs per-client inversion on scoped worker
//! threads with schedule-independent results.
//!
//! [`engine`] is the continuous scheduler underneath the service: a
//! discrete-event [`ServiceEngine`] over virtual time in which every
//! client re-sweeps at its own tracker-derived cadence (`SweepDue` →
//! arbiter admission → worker-pool execution → `SweepComplete` → tracker
//! fusion → reschedule), with client join/leave as first-class events.
//! `RangingService::run_until` exposes it directly; `run_epoch` is a
//! compatibility wrapper reproducing the legacy lock-step rounds (see
//! `docs/SCHEDULING.md`).
//!
//! [`tracker`] closes the loop *across* epochs: a per-client
//! constant-velocity Kalman filter ([`tracker::DistanceFilter`]) fuses
//! each fix, and a mode machine ([`tracker::ClientTracker`]) switches
//! clients between full ACQUIRE sweeps and cheap TRACK-mode band-subset
//! sweeps ([`chronos_rf::subset`]), re-acquiring on innovation spikes or
//! repeated misses. The service schedules per-client plans from tracker
//! state and reports the airtime saved (see `docs/TRACKING.md`).
//!
//! [`pipeline`] is the zero-allocation hot path underneath all of it: a
//! per-worker [`pipeline::EstimatorScratch`] arena (ISTA iterates, NDFT
//! images, debias/Gauss–Newton workspaces, peak and group buffers) wrapped
//! by a [`pipeline::SweepPipeline`], so steady-state TRACK estimation
//! performs zero heap allocations while staying bitwise identical to the
//! allocating path (see `docs/PIPELINE.md`).
//!
//! ## Support modules
//!
//! [`crt`] implements the Chinese-remainder view of §4 (the Fig. 3
//! construction) used for single-path fast paths, cross-checks and
//! tests. [`delay`] estimates per-packet detection delay by the §5 slope
//! method for the Fig. 7(c) analysis. [`config`] carries the estimator's
//! knobs with paper-matched defaults, and [`error`] the pipeline's
//! failure taxonomy.

pub mod config;
pub mod crt;
pub mod delay;
pub mod engine;
pub mod error;
pub mod fleet;
pub mod ista;
pub mod localization;
pub mod ndft;
pub mod phase;
pub mod pipeline;
pub mod plan;
pub mod profile;
pub mod quirk;
pub mod ranging;
pub mod reciprocity;
pub mod runtime;
pub mod service;
pub mod session;
pub mod tof;
pub mod tracker;

/// Whether this build vectorizes the NDFT/FISTA hot path (the `simd`
/// cargo feature, tolerance tier). `false` means the scalar exact tier:
/// bitwise-reproducible against the PR-5 contract. Benches and tests
/// branch on this instead of re-plumbing the feature flag.
pub const fn simd_enabled() -> bool {
    cfg!(feature = "simd")
}

pub use config::{ChronosConfig, IngestionConfig, QuirkMode};
pub use engine::{ServiceEngine, WindowReport};
pub use error::ChronosError;
pub use pipeline::{EstimatorScratch, SweepPipeline};
pub use plan::{CacheStats, NdftPlan, PlanCache};
pub use profile::MultipathProfile;
pub use runtime::{PoolJob, TokenRing, WorkerRuntime};
pub use service::{CadenceConfig, EpochReport, QuarantineConfig, RangingService, ServiceConfig};
pub use session::{ChronosSession, SweepOutput};
pub use tof::{BandSample, TofEstimate, TofEstimator, TofFix};
pub use tracker::{
    AnomalyConfig, AnomalyScore, ClientTracker, DistanceFilter, TrackMode, TrackerConfig,
};
