//! The Chinese-remainder view of multi-band time-of-flight (paper §4).
//!
//! For a *single-path* channel, the phase measured on band `i` pins the
//! time-of-flight modulo `1/f_i` (paper Eq. 3). Sweeping many bands yields
//! a congruence system whose solution is unique modulo the LCM of the
//! moduli — about 200 ns (60 m) across the Wi-Fi plan. The paper's Fig. 3
//! solves it by alignment: the candidate delay satisfied by the most bands
//! wins. This module wraps the generic voting solver from `chronos-math`
//! for channel phases.
//!
//! In the full pipeline this view is subsumed by the sparse inverse-NDFT
//! (which handles multipath); it remains useful as a cheap single-path
//! fast path, a cross-check, and the generator of the Fig. 3 reproduction.

use chronos_math::crt::{solve_by_voting, Congruence, VoteSolution};
use chronos_math::Complex64;
use std::f64::consts::PI;

/// Converts one band's channel phase into a time-of-flight congruence
/// (paper Eq. 3): `tau = -angle(h) / (2 pi f)  mod  1/f`, in nanoseconds.
///
/// `delay_scale` accounts for squared/powered channels (phase of `h^s`
/// advances `s` times faster): pass 1 for raw channels, 2 for reciprocity
/// products.
pub fn congruence_from_channel(freq_hz: f64, h: Complex64, delay_scale: f64) -> Congruence {
    let modulus_ns = 1e9 / (freq_hz * delay_scale);
    let tau_ns = -h.arg() / (2.0 * PI * freq_hz * delay_scale) * 1e9;
    Congruence::new(tau_ns, modulus_ns)
}

/// Solver settings for the phase-voting ToF resolver.
#[derive(Debug, Clone, Copy)]
pub struct CrtConfig {
    /// Search range for the time-of-flight, ns.
    pub range_ns: f64,
    /// Voting grid step, ns.
    pub step_ns: f64,
    /// Per-congruence alignment tolerance, ns.
    pub tol_ns: f64,
}

impl Default for CrtConfig {
    fn default() -> Self {
        CrtConfig {
            range_ns: 200.0,
            step_ns: 0.005,
            tol_ns: 0.03,
        }
    }
}

/// Resolves a single-path time-of-flight from per-band channel values by
/// congruence voting. Returns `None` when fewer than two bands align.
pub fn tof_from_channels(
    freqs_hz: &[f64],
    channels: &[Complex64],
    delay_scale: f64,
    cfg: &CrtConfig,
) -> Option<VoteSolution> {
    assert_eq!(
        freqs_hz.len(),
        channels.len(),
        "tof_from_channels: length mismatch"
    );
    let congruences: Vec<Congruence> = freqs_hz
        .iter()
        .zip(channels.iter())
        .map(|(f, h)| congruence_from_channel(*f, *h, delay_scale))
        .collect();
    let sol = solve_by_voting(&congruences, cfg.range_ns, cfg.step_ns, cfg.tol_ns)?;
    if freqs_hz.len() >= 3 && sol.votes < 3 {
        return None; // too little alignment to trust
    }
    Some(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::bands::{band_plan, band_plan_24ghz};

    fn channels_for(tau_ns: f64, freqs: &[f64]) -> Vec<Complex64> {
        freqs
            .iter()
            .map(|f| Complex64::from_polar(1.0, -2.0 * PI * f * tau_ns * 1e-9))
            .collect()
    }

    #[test]
    fn congruence_matches_eq3() {
        let f = 2.4e9;
        let tau = 2.0; // ns
        let h = Complex64::from_polar(0.8, -2.0 * PI * f * tau * 1e-9);
        let c = congruence_from_channel(f, h, 1.0);
        // Modulus 1/f = 0.4166 ns; remainder = tau mod modulus.
        assert!((c.modulus - 1e9 / f).abs() < 1e-12);
        assert!(c.distance(tau) < 1e-9);
    }

    #[test]
    fn fig3_scenario_five_bands() {
        // Paper Fig. 3: source at 0.6 m (tau = 2 ns), five bands.
        let freqs: Vec<f64> = [2.412e9, 2.462e9, 5.18e9, 5.3e9, 5.825e9].to_vec();
        let tau = chronos_math::constants::m_to_ns(0.6);
        let hs = channels_for(tau, &freqs);
        let sol = tof_from_channels(&freqs, &hs, 1.0, &CrtConfig::default()).unwrap();
        assert_eq!(sol.votes, 5);
        assert!((sol.value - tau).abs() < 0.01, "{} vs {tau}", sol.value);
    }

    #[test]
    fn full_plan_resolves_long_delays() {
        // 35 bands resolve a 150 ns (45 m) delay unambiguously.
        let freqs: Vec<f64> = band_plan().iter().map(|b| b.center_hz).collect();
        let tau = 150.0;
        let hs = channels_for(tau, &freqs);
        let sol = tof_from_channels(&freqs, &hs, 1.0, &CrtConfig::default()).unwrap();
        assert!(sol.votes >= 30, "votes {}", sol.votes);
        assert!((sol.value - tau).abs() < 0.02, "{}", sol.value);
    }

    #[test]
    fn paper_claim_24ghz_resolves_200ns() {
        // §4: "Chronos can resolve time-of-flight uniquely modulo 200 ns
        // using Wi-Fi frequency bands around 2.4 GHz".
        let freqs: Vec<f64> = band_plan_24ghz().iter().map(|b| b.center_hz).collect();
        for tau in [3.0, 57.0, 123.0, 190.0] {
            let hs = channels_for(tau, &freqs);
            let sol = tof_from_channels(&freqs, &hs, 1.0, &CrtConfig::default()).unwrap();
            assert!((sol.value - tau).abs() < 0.05, "tau {tau} -> {}", sol.value);
        }
    }

    #[test]
    fn delay_scale_two_for_products() {
        let freqs: Vec<f64> = [5.18e9, 5.32e9, 5.5e9, 5.7e9, 5.825e9].to_vec();
        let tau = 7.3;
        // Product channels: phase advances twice as fast.
        let hs: Vec<Complex64> = freqs
            .iter()
            .map(|f| Complex64::from_polar(1.0, -2.0 * PI * f * 2.0 * tau * 1e-9))
            .collect();
        let sol = tof_from_channels(&freqs, &hs, 2.0, &CrtConfig::default()).unwrap();
        assert!((sol.value - tau).abs() < 0.02, "{}", sol.value);
    }

    #[test]
    fn noisy_phases_still_vote() {
        let freqs: Vec<f64> = band_plan().iter().map(|b| b.center_hz).collect();
        let tau = 21.7;
        let hs: Vec<Complex64> = freqs
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let noise = if i % 2 == 0 { 0.08 } else { -0.08 }; // radians
                Complex64::from_polar(1.0, -2.0 * PI * f * tau * 1e-9 + noise)
            })
            .collect();
        let sol = tof_from_channels(&freqs, &hs, 1.0, &CrtConfig::default()).unwrap();
        assert!((sol.value - tau).abs() < 0.05, "{}", sol.value);
    }

    #[test]
    fn too_few_aligned_returns_none() {
        // Three bands with mutually inconsistent phases.
        let freqs = [5.18e9, 5.5e9, 5.825e9];
        let hs = [
            Complex64::from_polar(1.0, 0.1),
            Complex64::from_polar(1.0, 2.0),
            Complex64::from_polar(1.0, -2.3),
        ];
        // With a tiny tolerance there should be no 3-vote alignment; the
        // solver may still find accidental pairs, which we reject.
        let cfg = CrtConfig {
            tol_ns: 0.0005,
            step_ns: 0.001,
            range_ns: 5.0,
        };
        let sol = tof_from_channels(&freqs, &hs, 1.0, &cfg);
        assert!(sol.is_none() || sol.unwrap().votes < 3);
    }
}
