//! Multipath profiles and the first-peak time-of-flight rule (paper §6).
//!
//! The sparse inversion yields a complex profile over the delay grid; its
//! magnitude is the multipath profile of the paper's Fig. 4(b) and Fig.
//! 7(b). Chronos's decision rule: the direct path is the *shortest* path,
//! so the time-of-flight is the delay of the profile's **first dominant
//! peak** — not its strongest.
//!
//! Because the sparse solution concentrates each physical path into one or
//! two grid bins, sub-bin refinement via quadratic interpolation of the
//! sparse spikes is meaningless; instead the profile refines its first
//! peak by maximizing the **matched-filter response** of the raw band
//! measurements in a window around the sparse peak (golden-section
//! search). This is what delivers resolution beyond the grid step.

use crate::error::ChronosError;
use crate::ndft::Ndft;
use chronos_math::peaks::{find_peaks, Peak, PeakConfig};
use chronos_math::Complex64;

/// A multipath profile over a uniform delay grid.
#[derive(Debug, Clone)]
pub struct MultipathProfile {
    /// Grid start, ns.
    pub start_ns: f64,
    /// Grid step, ns.
    pub step_ns: f64,
    /// Magnitude per grid point.
    pub magnitudes: Vec<f64>,
    /// Delay scale of the grid relative to true time-of-flight (2 for
    /// squared channels, 8 for quirked fourth powers, 1 for raw channels).
    pub delay_scale: f64,
}

impl MultipathProfile {
    /// Builds a profile from a sparse complex solution.
    pub fn from_solution(p: &[Complex64], start_ns: f64, step_ns: f64, delay_scale: f64) -> Self {
        MultipathProfile {
            start_ns,
            step_ns,
            magnitudes: p.iter().map(|z| z.abs()).collect(),
            delay_scale,
        }
    }

    /// Converts a Rayleigh resolution width (in profile-domain ns, i.e.
    /// `1 / aperture_bandwidth`) into a minimum peak separation in grid
    /// bins. Peaks closer than a resolution width cannot be two physical
    /// paths — they are the main lobe and its shoulder/sidelobe — so the
    /// peak finder merges them into the stronger one.
    pub fn min_sep_bins(&self, resolution_ns: f64) -> usize {
        min_sep_bins(resolution_ns, self.step_ns)
    }

    /// Dominant peaks in *profile-domain* delays (not descaled). Peaks
    /// closer than `min_sep_bins` grid bins are merged (strongest wins).
    pub fn dominant_peaks(&self, dominance: f64, min_sep_bins: usize) -> Vec<Peak> {
        find_peaks(
            &self.magnitudes,
            self.start_ns,
            self.step_ns,
            &PeakConfig {
                dominance,
                min_separation: min_sep_bins.max(1),
            },
        )
    }

    /// The number of dominant peaks — the sparsity statistic of §12.1
    /// ("mean number of dominant peaks ... 5.05, sd 1.95").
    pub fn peak_count(&self, dominance: f64) -> usize {
        self.dominant_peaks(dominance, 3).len()
    }

    /// First dominant peak in profile-domain delay, or an error if the
    /// profile has no energy above the dominance threshold.
    pub fn first_peak(&self, dominance: f64, min_sep_bins: usize) -> Result<Peak, ChronosError> {
        self.dominant_peaks(dominance, min_sep_bins)
            .into_iter()
            .next()
            .ok_or(ChronosError::NoDominantPath)
    }

    /// First *path* peak with sidelobe rejection.
    ///
    /// Wi-Fi's band plan is spectrally clustered (2.4 GHz and several 5 GHz
    /// chunks), so the point response of the NDFT is a fringe comb: a
    /// single physical path shows a strong main lobe flanked by weaker
    /// fringes within one **cluster resolution** (`1 / largest_cluster_
    /// span`). A weak "peak" that sits less than `veto_radius_ns` before a
    /// much stronger one is therefore a sidelobe of that stronger path,
    /// not an earlier direct path; accepting it causes the characteristic
    /// one-fringe-early error. Candidates are vetoed when their magnitude
    /// is below `veto_ratio` times a stronger peak within the radius.
    ///
    /// A genuinely attenuated direct path survives if it is either farther
    /// than the veto radius ahead of the reflections or at least
    /// `veto_ratio` of their strength — the same regime where the paper's
    /// own first-peak rule is reliable (§6, observation 1).
    pub fn first_path_peak(
        &self,
        dominance: f64,
        min_sep_bins: usize,
        veto_radius_ns: f64,
        veto_ratio: f64,
    ) -> Result<Peak, ChronosError> {
        let peaks = self.dominant_peaks(dominance, min_sep_bins);
        'candidates: for (i, cand) in peaks.iter().enumerate() {
            for later in peaks.iter().skip(i + 1) {
                if later.x - cand.x <= veto_radius_ns
                    && cand.magnitude < veto_ratio * later.magnitude
                {
                    continue 'candidates; // sidelobe of `later`
                }
            }
            return Ok(*cand);
        }
        Err(ChronosError::NoDominantPath)
    }

    /// First dominant peak, refined by maximizing the matched-filter
    /// response of the raw measurements `h` under `ndft` within half a
    /// resolution width around the sparse peak, then **descaled** into a
    /// true time-of-flight in nanoseconds.
    ///
    /// `resolution_ns` is the aperture's Rayleigh width in profile-domain
    /// nanoseconds (`1e9 / span_hz`); it controls both peak merging and
    /// the refinement window.
    pub fn tof_ns(
        &self,
        ndft: &Ndft,
        h: &[Complex64],
        dominance: f64,
        resolution_ns: f64,
    ) -> Result<f64, ChronosError> {
        let min_sep = self.min_sep_bins(resolution_ns);
        let peak = self.first_peak(dominance, min_sep)?;
        let half_window = (0.5 * resolution_ns).max(self.step_ns);
        let refined = golden_max(
            |tau| ndft.matched_filter(h, tau),
            peak.x - half_window,
            peak.x + half_window,
            1e-4,
        );
        Ok(refined / self.delay_scale)
    }
}

/// CLEAN-style refinement of the first peak: subtracts the modeled
/// contribution of every *other* detected atom from the raw measurement,
/// then maximizes the matched filter of the residual in a half-resolution
/// window around the sparse peak. Removing the interference of later
/// (often stronger) paths is what keeps the refined delay unbiased.
///
/// `p` is the (debiased) complex solution on the NDFT grid; `peak` the
/// first dominant peak; `min_sep_bins` the merge radius used to find it.
/// Returns the refined **profile-domain** delay in ns.
pub fn refine_first_peak_clean(
    ndft: &Ndft,
    h: &[Complex64],
    p: &[Complex64],
    peak: &Peak,
    min_sep_bins: usize,
    resolution_ns: f64,
) -> f64 {
    let mut ws = RefineScratch::default();
    refine_first_peak_clean_into(ndft, h, p, peak, min_sep_bins, resolution_ns, &mut ws)
}

/// Reusable buffers for [`refine_first_peak_clean_into`]: the masked
/// model, its forward image, and the CLEANed residual.
#[derive(Debug, Clone, Default)]
pub struct RefineScratch {
    others: Vec<Complex64>,
    predicted: Vec<Complex64>,
    residual: Vec<Complex64>,
}

/// [`refine_first_peak_clean`] over a reusable workspace — identical
/// result, zero heap allocations once the buffers have capacity.
pub fn refine_first_peak_clean_into(
    ndft: &Ndft,
    h: &[Complex64],
    p: &[Complex64],
    peak: &Peak,
    min_sep_bins: usize,
    resolution_ns: f64,
    ws: &mut RefineScratch,
) -> f64 {
    // Model of everything except the first peak's neighborhood.
    ws.others.clear();
    ws.others.extend_from_slice(p);
    let lo = peak.index.saturating_sub(min_sep_bins);
    let hi = (peak.index + min_sep_bins).min(p.len().saturating_sub(1));
    for z in ws.others.iter_mut().take(hi + 1).skip(lo) {
        *z = Complex64::ZERO;
    }
    ndft.forward_into(&ws.others, &mut ws.predicted);
    ws.residual.clear();
    ws.residual
        .extend(h.iter().zip(ws.predicted.iter()).map(|(a, b)| *a - *b));
    let half_window = (0.5 * resolution_ns).max(ndft.grid().step_ns);
    let residual = &ws.residual;
    golden_max(
        |tau| ndft.matched_filter(residual, tau),
        peak.x - half_window,
        peak.x + half_window,
        1e-4,
    )
}

/// The minimum peak separation (grid bins) for a Rayleigh resolution
/// width over a grid step — the single implementation behind
/// [`MultipathProfile::min_sep_bins`] and the scratch pipeline's inlined
/// profile handling (they must agree bit for bit).
pub fn min_sep_bins(resolution_ns: f64, step_ns: f64) -> usize {
    ((resolution_ns / step_ns).ceil() as usize).max(3)
}

/// Rayleigh resolution of an aperture spanning `freqs_hz`, in nanoseconds:
/// `1 / (f_max - f_min)`. Falls back to 2 ns for degenerate spans.
pub fn resolution_ns(freqs_hz: &[f64]) -> f64 {
    let lo = freqs_hz.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = freqs_hz.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    if span > 0.0 {
        1e9 / span
    } else {
        2.0
    }
}

/// Strong sidelobe/grating offsets of a band plan's point response.
///
/// Most Wi-Fi band centers share a coarse frequency raster (20 MHz at
/// 5 GHz), so the NDFT's point response repeats quasi-periodically: energy
/// at delay `D` leaks coherent ghosts to `D ± offset` for every offset
/// where the plan's self-response exceeds `threshold`. First-peak
/// selection must treat a candidate with a much stronger peak at one of
/// these offsets *after* it as a suspected ghost.
///
/// Returns positive offsets (ns) up to `max_offset_ns`, excluding the main
/// lobe (within twice the full-aperture resolution).
pub fn strong_lobe_offsets(freqs_hz: &[f64], threshold: f64, max_offset_ns: f64) -> Vec<f64> {
    let n = freqs_hz.len() as f64;
    if freqs_hz.is_empty() {
        return Vec::new();
    }
    let res = resolution_ns(freqs_hz);
    let response = |off_ns: f64| -> f64 {
        let mut acc = Complex64::ZERO;
        for f in freqs_hz {
            acc += Complex64::cis(2.0 * std::f64::consts::PI * f * off_ns * 1e-9);
        }
        acc.abs() / n
    };
    let step = 0.05;
    let mut offsets = Vec::new();
    let mut x = 2.0 * res;
    let mut in_lobe = false;
    let mut lobe_best = (0.0f64, 0.0f64); // (offset, response)
    while x <= max_offset_ns {
        let r = response(x);
        if r > threshold {
            if !in_lobe || r > lobe_best.1 {
                lobe_best = (x, r);
            }
            in_lobe = true;
        } else if in_lobe {
            offsets.push(lobe_best.0);
            in_lobe = false;
            lobe_best = (0.0, 0.0);
        }
        x += step;
    }
    if in_lobe {
        offsets.push(lobe_best.0);
    }
    offsets
}

/// Cluster-limited resolution: splits sorted `freqs_hz` into clusters at
/// gaps wider than `gap_hz`, and returns `1e9 / largest_cluster_span` —
/// the width of the fringe *envelope* of the NDFT point response, which
/// governs how far sidelobes stay strong (and hence the sidelobe-veto
/// radius of [`MultipathProfile::first_path_peak`]).
pub fn cluster_resolution_ns(freqs_hz: &[f64], gap_hz: f64) -> f64 {
    let mut sorted = freqs_hz.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    cluster_resolution_ns_sorted(&sorted, gap_hz)
}

/// [`cluster_resolution_ns`] for frequencies already in ascending order
/// (band groups keep theirs sorted) — the allocation-free hot-path
/// variant. Identical result; sorting sorted input is the identity.
pub fn cluster_resolution_ns_sorted(sorted: &[f64], gap_hz: f64) -> f64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    let mut best_span = 0.0f64;
    let mut start = match sorted.first() {
        Some(f) => *f,
        None => return 2.0,
    };
    let mut prev = start;
    for f in sorted.iter().skip(1) {
        if f - prev > gap_hz {
            best_span = best_span.max(prev - start);
            start = *f;
        }
        prev = *f;
    }
    best_span = best_span.max(prev - start);
    if best_span > 0.0 {
        1e9 / best_span
    } else {
        2.0
    }
}

/// Golden-section search for the maximum of a unimodal function on
/// `[lo, hi]` to absolute tolerance `tol`.
fn golden_max(f: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo.min(hi), lo.max(hi));
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let (mut fc, mut fd) = (f(c), f(d));
    while (b - a).abs() > tol {
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    0.5 * (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ista::{solve, IstaConfig};
    use crate::ndft::TauGrid;
    use chronos_rf::bands::band_plan_5ghz;
    use std::f64::consts::PI;

    fn freqs() -> Vec<f64> {
        band_plan_5ghz().iter().map(|b| b.center_hz).collect()
    }

    fn squared_channel(paths: &[(f64, f64)], freqs: &[f64]) -> Vec<Complex64> {
        // Emulates the reciprocity product: (sum a e^{-j2pi f tau})^2.
        freqs
            .iter()
            .map(|f| {
                let mut h = Complex64::ZERO;
                for (tau_ns, a) in paths {
                    h += Complex64::from_polar(*a, -2.0 * PI * f * tau_ns * 1e-9);
                }
                h * h
            })
            .collect()
    }

    #[test]
    fn profile_from_solution_magnitudes() {
        let p = vec![
            Complex64::from_polar(2.0, 1.0),
            Complex64::ZERO,
            Complex64::from_polar(0.5, -2.0),
        ];
        let prof = MultipathProfile::from_solution(&p, 0.0, 0.5, 2.0);
        assert_eq!(prof.magnitudes.len(), 3);
        assert!((prof.magnitudes[0] - 2.0).abs() < 1e-12);
        assert_eq!(prof.magnitudes[1], 0.0);
    }

    #[test]
    fn end_to_end_single_path_tof_subnanosecond() {
        // Squared channel of a single 10.3 ns path: profile peak at 20.6,
        // descaled ToF at 10.3 — sub-grid via matched filter.
        let f = freqs();
        let grid = TauGrid::span(100.0, 0.25);
        let ndft = Ndft::new(&f, grid);
        let h = squared_channel(&[(10.3, 1.0)], &f);
        let sol = solve(&ndft, &h, &IstaConfig::default());
        let prof = MultipathProfile::from_solution(&sol.p, 0.0, 0.25, 2.0);
        let res = resolution_ns(&f);
        let tof = prof.tof_ns(&ndft, &h, 0.2, res).unwrap();
        assert!((tof - 10.3).abs() < 0.05, "tof {tof}");
    }

    #[test]
    fn first_peak_rule_direct_weaker_than_reflection() {
        // Direct at 8 ns (amp 0.5), reflection at 15 ns (amp 1.0): first
        // peak must still win.
        let f = freqs();
        let grid = TauGrid::span(100.0, 0.25);
        let ndft = Ndft::new(&f, grid);
        let h = squared_channel(&[(8.0, 0.5), (15.0, 1.0)], &f);
        let sol = solve(
            &ndft,
            &h,
            &IstaConfig {
                alpha_rel: 0.06,
                ..Default::default()
            },
        );
        let prof = MultipathProfile::from_solution(&sol.p, 0.0, 0.25, 2.0);
        // The estimator's flow: detect, then CLEAN-refine so the stronger
        // reflection does not bias the direct path's vertex.
        let res = resolution_ns(&f);
        let min_sep = prof.min_sep_bins(res);
        let peak = prof.first_peak(0.1, min_sep).unwrap();
        let refined = refine_first_peak_clean(&ndft, &h, &sol.p, &peak, min_sep, res);
        let tof = refined / 2.0;
        assert!((tof - 8.0).abs() < 0.3, "tof {tof}");
    }

    #[test]
    fn squared_channel_cross_terms_do_not_precede_first_peak() {
        // §7's argument: squaring creates sum-delays, but the smallest
        // remains 2*tau_min.
        let f = freqs();
        let grid = TauGrid::span(100.0, 0.25);
        let ndft = Ndft::new(&f, grid);
        let h = squared_channel(&[(6.0, 1.0), (9.0, 0.8), (14.0, 0.5)], &f);
        let sol = solve(
            &ndft,
            &h,
            &IstaConfig {
                alpha_rel: 0.08,
                ..Default::default()
            },
        );
        let prof = MultipathProfile::from_solution(&sol.p, 0.0, 0.25, 2.0);
        let first = prof
            .first_peak(0.15, prof.min_sep_bins(resolution_ns(&f)))
            .unwrap();
        assert!(first.x >= 2.0 * 6.0 - 0.5, "premature peak at {}", first.x);
        assert!(first.x <= 2.0 * 6.0 + 0.5, "first peak late at {}", first.x);
    }

    #[test]
    fn peak_count_reflects_sparsity() {
        let f = freqs();
        let grid = TauGrid::span(100.0, 0.25);
        let ndft = Ndft::new(&f, grid);
        let h = squared_channel(&[(5.0, 1.0), (9.0, 0.7), (13.0, 0.5)], &f);
        let sol = solve(
            &ndft,
            &h,
            &IstaConfig {
                alpha_rel: 0.08,
                ..Default::default()
            },
        );
        let prof = MultipathProfile::from_solution(&sol.p, 0.0, 0.25, 2.0);
        let count = prof.peak_count(0.15);
        // 3 paths -> up to 6 squared-channel terms, at least 3 visible.
        assert!((3..=8).contains(&count), "count {count}");
    }

    #[test]
    fn empty_profile_errors() {
        let prof = MultipathProfile {
            start_ns: 0.0,
            step_ns: 0.5,
            magnitudes: vec![0.0; 100],
            delay_scale: 2.0,
        };
        assert_eq!(
            prof.first_peak(0.1, 3).unwrap_err(),
            ChronosError::NoDominantPath
        );
    }

    #[test]
    fn golden_max_finds_parabola_vertex() {
        let v = golden_max(|x| -(x - 3.7) * (x - 3.7), 0.0, 10.0, 1e-8);
        assert!((v - 3.7).abs() < 1e-6);
    }

    #[test]
    fn resolution_of_5ghz_plan() {
        let f = freqs();
        // 5.18..5.825 GHz span -> ~1.55 ns.
        let r = resolution_ns(&f);
        assert!((r - 1.55).abs() < 0.01, "{r}");
        // Degenerate span falls back.
        assert_eq!(resolution_ns(&[5e9]), 2.0);
        assert_eq!(resolution_ns(&[]), 2.0);
    }

    #[test]
    fn cluster_resolution_splits_at_gaps() {
        let f = freqs();
        // Only the 5.32 -> 5.5 GHz gap (180 MHz) exceeds the threshold; the
        // 5.7 -> 5.745 gap (45 MHz) does not, so the largest cluster spans
        // 5.5-5.825 GHz = 325 MHz -> ~3.08 ns.
        let r = cluster_resolution_ns(&f, 150e6);
        assert!((r - 3.077).abs() < 0.01, "{r}");
        // With an enormous gap threshold everything is one cluster.
        let r_all = cluster_resolution_ns(&f, 10e9);
        assert!((r_all - resolution_ns(&f)).abs() < 1e-9);
        assert_eq!(cluster_resolution_ns(&[], 1e6), 2.0);
    }

    #[test]
    fn lobe_offsets_of_5ghz_plan_near_50ns() {
        // 19 of 24 bands share the 20 MHz raster: strong grating lobes
        // cluster around +-50 ns.
        let f = freqs();
        let lobes = strong_lobe_offsets(&f, 0.5, 100.0);
        assert!(!lobes.is_empty());
        assert!(
            lobes.iter().any(|d| (*d - 50.0).abs() < 3.5),
            "no ~50 ns lobe in {lobes:?}"
        );
        // No strong lobes in the mid-range (5..40 ns).
        assert!(lobes.iter().all(|d| *d < 5.0 || *d > 40.0), "{lobes:?}");
    }

    #[test]
    fn lobe_offsets_empty_for_irregular_plan() {
        // Deliberately co-prime-ish spacings: no strong lobes below 100 ns
        // beyond the main-lobe exclusion.
        let f = [5.18e9, 5.253e9, 5.419e9, 5.622e9, 5.801e9];
        let lobes = strong_lobe_offsets(&f, 0.9, 50.0);
        assert!(lobes.is_empty(), "{lobes:?}");
    }

    #[test]
    fn first_path_peak_vetoes_weak_preceding_sidelobe() {
        // A weak bump one cluster-resolution before a strong peak is a
        // sidelobe; first_path_peak must skip it.
        let mut mags = vec![0.0; 200];
        mags[40] = 0.3; // candidate sidelobe at x = 10 (step 0.25)
        mags[56] = 1.0; // strong peak at x = 14
        let prof = MultipathProfile {
            start_ns: 0.0,
            step_ns: 0.25,
            magnitudes: mags,
            delay_scale: 2.0,
        };
        let p = prof.first_path_peak(0.1, 3, 5.0, 0.5).unwrap();
        assert_eq!(p.index, 56);
        // But a strong-enough early peak survives.
        let mut mags2 = vec![0.0; 200];
        mags2[40] = 0.7;
        mags2[56] = 1.0;
        let prof2 = MultipathProfile {
            start_ns: 0.0,
            step_ns: 0.25,
            magnitudes: mags2,
            delay_scale: 2.0,
        };
        let p2 = prof2.first_path_peak(0.1, 3, 5.0, 0.5).unwrap();
        assert_eq!(p2.index, 40);
    }

    #[test]
    fn descaling_uses_delay_scale() {
        let f = freqs();
        let grid = TauGrid::span(100.0, 0.25);
        let ndft = Ndft::new(&f, grid);
        // Same measurement, but declared at scale 8 (quirked group):
        // reported ToF must be 1/4 of the scale-2 answer.
        let h = squared_channel(&[(10.0, 1.0)], &f);
        let sol = solve(&ndft, &h, &IstaConfig::default());
        let p2 = MultipathProfile::from_solution(&sol.p, 0.0, 0.25, 2.0);
        let p8 = MultipathProfile::from_solution(&sol.p, 0.0, 0.25, 8.0);
        let res = resolution_ns(&f);
        let t2 = p2.tof_ns(&ndft, &h, 0.2, res).unwrap();
        let t8 = p8.tof_ns(&ndft, &h, 0.2, res).unwrap();
        assert!((t2 / t8 - 4.0).abs() < 1e-9);
    }
}
