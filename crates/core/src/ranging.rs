//! Distances from time-of-flight, and the one-time constant calibration
//! (paper §7 observation 2, §8).
//!
//! Multiplying a calibrated time-of-flight by the speed of light yields the
//! device-to-device distance. The calibration removes the constant part of
//! the estimate that is *not* propagation: hardware chain delays on both
//! devices and the fixed component of the turnaround-CFO coupling. The
//! paper performs it "a priori and only once by measuring time-of-flight
//! to a device at a known distance" — [`calibrate_offset`] does exactly
//! that from a batch of raw estimates at a known distance.

use chronos_math::constants::{m_to_ns, ns_to_m};
use chronos_math::stats::median;

/// A point distance estimate with bookkeeping for outlier rejection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeEstimate {
    /// Estimated distance, meters.
    pub distance_m: f64,
    /// The time-of-flight it came from, ns.
    pub tof_ns: f64,
}

impl RangeEstimate {
    /// Builds a range estimate from a calibrated ToF.
    pub fn from_tof_ns(tof_ns: f64) -> Self {
        RangeEstimate {
            distance_m: ns_to_m(tof_ns),
            tof_ns,
        }
    }
}

/// Computes the calibration constant (ns) from raw, *uncalibrated* ToF
/// estimates taken at a known distance: the median of
/// `raw_tof - true_tof`. The median makes the calibration robust to the
/// occasional multipath outlier in the calibration batch itself.
///
/// Returns `NaN` when `raw_tofs_ns` is empty.
pub fn calibrate_offset(raw_tofs_ns: &[f64], known_distance_m: f64) -> f64 {
    let true_tof = m_to_ns(known_distance_m);
    let residuals: Vec<f64> = raw_tofs_ns.iter().map(|t| t - true_tof).collect();
    median(&residuals)
}

/// Median-absolute-deviation outlier filter over distance estimates.
///
/// Keeps estimates within `k` MADs of the median (k ~ 3 is standard).
/// Always keeps at least one estimate (the median itself). Used by the
/// localization layer (§12.2: "we perform outlier rejection on this set of
/// distance estimates") and by the drone's averaging loop (§9).
pub fn reject_outliers(estimates: &[RangeEstimate], k: f64) -> Vec<RangeEstimate> {
    if estimates.len() <= 2 {
        return estimates.to_vec();
    }
    let ds: Vec<f64> = estimates.iter().map(|e| e.distance_m).collect();
    let med = median(&ds);
    let abs_dev: Vec<f64> = ds.iter().map(|d| (d - med).abs()).collect();
    let mad = median(&abs_dev).max(1e-6);
    let kept: Vec<RangeEstimate> = estimates
        .iter()
        .filter(|e| (e.distance_m - med).abs() <= k * mad)
        .cloned()
        .collect();
    if kept.is_empty() {
        // Degenerate: keep the single median-closest estimate.
        let best = estimates
            .iter()
            .min_by(|a, b| {
                (a.distance_m - med)
                    .abs()
                    .partial_cmp(&(b.distance_m - med).abs())
                    .unwrap()
            })
            .unwrap();
        vec![*best]
    } else {
        kept
    }
}

/// Robust combination of repeated distance estimates: outlier rejection
/// followed by the mean of survivors. This is the drone controller's
/// de-noising step (§9, §12.4).
pub fn combine_ranges(estimates: &[RangeEstimate], k: f64) -> Option<f64> {
    if estimates.is_empty() {
        return None;
    }
    let kept = reject_outliers(estimates, k);
    Some(kept.iter().map(|e| e.distance_m).sum::<f64>() / kept.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_from_tof() {
        let r = RangeEstimate::from_tof_ns(10.0);
        assert!((r.distance_m - 2.998).abs() < 0.01);
    }

    #[test]
    fn calibration_recovers_known_offset() {
        // Raw estimates = truth + 6.3 ns constant + small noise.
        let true_d = 3.0;
        let true_tof = m_to_ns(true_d);
        let raws: Vec<f64> = [-0.1, 0.05, 0.0, 0.12, -0.03]
            .iter()
            .map(|n| true_tof + 6.3 + n)
            .collect();
        let off = calibrate_offset(&raws, true_d);
        assert!((off - 6.3).abs() < 0.1, "offset {off}");
    }

    #[test]
    fn calibration_robust_to_one_outlier() {
        let true_d = 2.0;
        let true_tof = m_to_ns(true_d);
        let mut raws: Vec<f64> = (0..9).map(|i| true_tof + 5.0 + 0.01 * i as f64).collect();
        raws.push(true_tof + 60.0); // gross outlier
        let off = calibrate_offset(&raws, true_d);
        assert!((off - 5.04).abs() < 0.1, "offset {off}");
    }

    #[test]
    fn empty_calibration_is_nan() {
        assert!(calibrate_offset(&[], 1.0).is_nan());
    }

    #[test]
    fn outlier_rejection_drops_far_points() {
        let mut ests: Vec<RangeEstimate> = [3.0, 3.02, 2.98, 3.01, 2.99]
            .iter()
            .map(|d| RangeEstimate {
                distance_m: *d,
                tof_ns: m_to_ns(*d),
            })
            .collect();
        ests.push(RangeEstimate {
            distance_m: 7.5,
            tof_ns: m_to_ns(7.5),
        });
        let kept = reject_outliers(&ests, 3.0);
        assert_eq!(kept.len(), 5);
        assert!(kept.iter().all(|e| e.distance_m < 4.0));
    }

    #[test]
    fn small_sets_passed_through() {
        let ests = vec![
            RangeEstimate {
                distance_m: 1.0,
                tof_ns: 3.3,
            },
            RangeEstimate {
                distance_m: 9.0,
                tof_ns: 30.0,
            },
        ];
        assert_eq!(reject_outliers(&ests, 3.0).len(), 2);
    }

    #[test]
    fn combine_ranges_denoises() {
        let ests: Vec<RangeEstimate> = [1.40, 1.41, 1.39, 1.40, 2.9]
            .iter()
            .map(|d| RangeEstimate {
                distance_m: *d,
                tof_ns: m_to_ns(*d),
            })
            .collect();
        let d = combine_ranges(&ests, 3.0).unwrap();
        assert!((d - 1.40).abs() < 0.01, "combined {d}");
        assert!(combine_ranges(&[], 3.0).is_none());
    }

    #[test]
    fn identical_estimates_survive_mad() {
        // MAD = 0 must not reject everything.
        let ests = vec![
            RangeEstimate {
                distance_m: 2.0,
                tof_ns: 6.7
            };
            5
        ];
        let kept = reject_outliers(&ests, 3.0);
        assert_eq!(kept.len(), 5);
    }
}
