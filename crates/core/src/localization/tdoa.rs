//! Hyperbolic (TDoA) localization across synchronized access points.
//!
//! The paper's pipeline is round-trip: one AP measures a client's full
//! time-of-flight, so every fix costs that AP an entire band sweep. Once
//! a *fleet* of APs shares a clock (see [`crate::fleet::ClockSync`]),
//! a single client transmission timestamped at N ≥ 3 APs yields N − 1
//! **range differences** — each pair of APs constrains the client to a
//! hyperbola branch, and the branches intersect at the client. No
//! round-trip, no per-AP sweep: the whole fleet localizes the client off
//! one cheap blast.
//!
//! The solver mirrors [`crate::localization`]'s circle-intersection
//! design: a damped Gauss–Newton least squares over a [`Residuals`]
//! problem, reusing the allocation-free [`GnWorkspace`]. Residual `i` is
//!
//! ```text
//!   r_i(p) = (|p − a_i| − |p − a_ref|) − Δd_i
//! ```
//!
//! where `a_ref` is the reference (serving) AP and `Δd_i` the measured
//! range difference `c · (t_i − t_ref)`. Clock residual between an AP
//! pair enters `Δd_i` directly as `c · δ_pair` — which is why the fleet
//! gates TDoA on the pair's synchronization residual bound.
//!
//! Hyperbolic cost surfaces are flatter than circles (the gradient along
//! a branch is weak far from the anchors), so the solver fits from two
//! seeds — the caller's prior (a tracker prediction, when warm) and the
//! anchor centroid — and keeps the lower-cost converged fit.

use crate::error::ChronosError;
use chronos_math::lstsq::{GaussNewton, GnWorkspace, Residuals};
use chronos_rf::geometry::Point;

/// One anchor's range-difference observation against the reference AP.
#[derive(Debug, Clone, Copy)]
pub struct RangeDiff {
    /// Anchor (AP) position, world frame, meters.
    pub anchor: Point,
    /// Measured range difference `|p − anchor| − |p − reference|`,
    /// meters (i.e. `c ·` the arrival-timestamp difference).
    pub diff_m: f64,
}

/// A hyperbolic position fix.
#[derive(Debug, Clone, Copy)]
pub struct TdoaFix {
    /// Estimated transmitter position, world frame.
    pub point: Point,
    /// Root-mean-square range-difference residual at the solution,
    /// meters.
    pub residual_m: f64,
    /// Anchors the fix used, including the reference.
    pub n_anchors: usize,
}

/// Solver knobs.
#[derive(Debug, Clone, Copy)]
pub struct TdoaSolverConfig {
    /// Maximum acceptable RMS range-difference residual before declaring
    /// no consistent position, meters.
    pub max_residual_m: f64,
    /// Gauss–Newton iteration cap.
    pub max_iters: usize,
}

impl Default for TdoaSolverConfig {
    fn default() -> Self {
        TdoaSolverConfig {
            max_residual_m: 2.0,
            max_iters: 200,
        }
    }
}

struct HyperbolaResiduals<'a> {
    reference: Point,
    diffs: &'a [RangeDiff],
}

impl Residuals for HyperbolaResiduals<'_> {
    fn len(&self) -> usize {
        self.diffs.len()
    }
    fn eval(&self, p: &[f64], out: &mut [f64]) {
        let pt = Point::new(p[0], p[1]);
        let d_ref = pt.dist(self.reference);
        for (i, rd) in self.diffs.iter().enumerate() {
            out[i] = (pt.dist(rd.anchor) - d_ref) - rd.diff_m;
        }
    }
}

/// Solves the hyperbolic fix from range differences against `reference`.
///
/// Needs at least two range differences (three APs total): two unknowns,
/// two hyperbolae. `seed` is the caller's prior — a position-tracker
/// prediction when warm, or any point near the anchors when cold; the
/// anchor centroid is always tried as a second seed and the lower-cost
/// converged fit wins.
///
/// Allocation note: repeated calls with the same `ws` are free of heap
/// allocations once the workspace has seen the largest anchor count
/// (the same contract as [`crate::localization::locate_all_into`]).
pub fn solve_tdoa(
    reference: Point,
    diffs: &[RangeDiff],
    seed: Point,
    cfg: &TdoaSolverConfig,
    ws: &mut GnWorkspace,
) -> Result<TdoaFix, ChronosError> {
    if diffs.len() < 2 {
        return Err(ChronosError::NoConsistentPosition);
    }
    let gn = GaussNewton {
        max_iters: cfg.max_iters,
        ..Default::default()
    };
    let problem = HyperbolaResiduals { reference, diffs };
    let mut centroid = reference;
    for rd in diffs {
        centroid = centroid.add(rd.anchor);
    }
    centroid = centroid.scale(1.0 / (diffs.len() + 1) as f64);
    let mut best: Option<TdoaFix> = None;
    for s in [seed, centroid] {
        let fit = gn.minimize_with(&problem, &[s.x, s.y], ws);
        let p = Point::new(ws.params[0], ws.params[1]);
        if !p.x.is_finite() || !p.y.is_finite() {
            continue;
        }
        let rms = (fit.cost / diffs.len() as f64).sqrt();
        if best.as_ref().is_none_or(|b| rms < b.residual_m) {
            best = Some(TdoaFix {
                point: p,
                residual_m: rms,
                n_anchors: diffs.len() + 1,
            });
        }
    }
    match best {
        Some(fix) if fix.residual_m <= cfg.max_residual_m => Ok(fix),
        _ => Err(ChronosError::NoConsistentPosition),
    }
}

/// Builds the range-difference set for a known geometry plus per-anchor
/// range errors (test/model helper): entry `i` is anchor `i`'s true
/// range difference against `reference`, biased by
/// `err_m[i] − err_ref_m`.
pub fn range_diffs_for(
    tx: Point,
    reference: Point,
    err_ref_m: f64,
    anchors: &[(Point, f64)],
) -> Vec<RangeDiff> {
    anchors
        .iter()
        .map(|&(a, err_m)| RangeDiff {
            anchor: a,
            diff_m: (tx.dist(a) - tx.dist(reference)) + (err_m - err_ref_m),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_aps() -> (Point, Vec<Point>) {
        // Reference at origin, three more anchors on a 20 m square.
        (
            Point::new(0.0, 0.0),
            vec![
                Point::new(20.0, 0.0),
                Point::new(0.0, 20.0),
                Point::new(20.0, 20.0),
            ],
        )
    }

    #[test]
    fn exact_fix_from_clean_range_diffs() {
        let (reference, anchors) = square_aps();
        let tx = Point::new(7.0, 12.5);
        let diffs = range_diffs_for(
            tx,
            reference,
            0.0,
            &anchors.iter().map(|&a| (a, 0.0)).collect::<Vec<_>>(),
        );
        let mut ws = GnWorkspace::default();
        let fix = solve_tdoa(
            reference,
            &diffs,
            Point::new(10.0, 10.0),
            &TdoaSolverConfig::default(),
            &mut ws,
        )
        .unwrap();
        assert!(fix.point.dist(tx) < 1e-6, "err {}", fix.point.dist(tx));
        assert!(fix.residual_m < 1e-8);
        assert_eq!(fix.n_anchors, 4);
    }

    #[test]
    fn noisy_fix_stays_sub_meter_inside_the_hull() {
        let (reference, anchors) = square_aps();
        let tx = Point::new(13.0, 6.0);
        let noise = [0.12, -0.09, 0.07];
        let diffs = range_diffs_for(
            tx,
            reference,
            -0.05,
            &anchors
                .iter()
                .zip(noise)
                .map(|(&a, n)| (a, n))
                .collect::<Vec<_>>(),
        );
        let mut ws = GnWorkspace::default();
        let fix = solve_tdoa(
            reference,
            &diffs,
            Point::new(10.0, 10.0),
            &TdoaSolverConfig::default(),
            &mut ws,
        )
        .unwrap();
        assert!(fix.point.dist(tx) < 1.0, "err {}", fix.point.dist(tx));
    }

    #[test]
    fn cold_seed_far_away_still_converges_via_centroid() {
        let (reference, anchors) = square_aps();
        let tx = Point::new(4.0, 16.0);
        let diffs = range_diffs_for(
            tx,
            reference,
            0.0,
            &anchors.iter().map(|&a| (a, 0.0)).collect::<Vec<_>>(),
        );
        let mut ws = GnWorkspace::default();
        let fix = solve_tdoa(
            reference,
            &diffs,
            Point::new(500.0, -800.0),
            &TdoaSolverConfig::default(),
            &mut ws,
        )
        .unwrap();
        assert!(fix.point.dist(tx) < 1e-3, "err {}", fix.point.dist(tx));
    }

    #[test]
    fn under_determined_and_inconsistent_inputs_rejected() {
        let (reference, anchors) = square_aps();
        let mut ws = GnWorkspace::default();
        // One diff (two APs): under-determined.
        let one = vec![RangeDiff {
            anchor: anchors[0],
            diff_m: 1.0,
        }];
        assert!(solve_tdoa(
            reference,
            &one,
            Point::new(5.0, 5.0),
            &TdoaSolverConfig::default(),
            &mut ws
        )
        .is_err());
        // Range differences no geometry can satisfy, with a tight cap.
        let broken: Vec<RangeDiff> = anchors
            .iter()
            .map(|&a| RangeDiff {
                anchor: a,
                diff_m: 500.0,
            })
            .collect();
        let cfg = TdoaSolverConfig {
            max_residual_m: 0.05,
            ..Default::default()
        };
        assert!(solve_tdoa(reference, &broken, Point::new(5.0, 5.0), &cfg, &mut ws).is_err());
    }

    #[test]
    fn clock_residual_degrades_error_monotonically() {
        // The fleet's gating rationale in miniature: a shared pair
        // residual of c·δ meters biases every diff; bigger δ, bigger
        // position error.
        let (reference, anchors) = square_aps();
        let tx = Point::new(9.0, 11.0);
        let mut ws = GnWorkspace::default();
        let mut err_at = |bias_m: f64| {
            let diffs = range_diffs_for(
                tx,
                reference,
                0.0,
                &anchors
                    .iter()
                    .enumerate()
                    .map(|(i, &a)| (a, bias_m * [1.0, -0.6, 0.8][i]))
                    .collect::<Vec<_>>(),
            );
            solve_tdoa(
                reference,
                &diffs,
                Point::new(10.0, 10.0),
                &TdoaSolverConfig::default(),
                &mut ws,
            )
            .unwrap()
            .point
            .dist(tx)
        };
        let (small, large) = (err_at(0.05), err_at(0.8));
        assert!(small < large, "bias 0.05 m → {small}, bias 0.8 m → {large}");
    }
}
