//! Multi-AP fleet layer: N sharded [`ServiceEngine`]s, inter-AP clock
//! sync, one-way TDoA fixes and roaming handoff.
//!
//! The paper's deployment unit is a single AP measuring round-trip
//! time-of-flight, one full band sweep per client per fix. That shape
//! cannot reach the north star ("heavy traffic from millions of users"):
//! every fix costs the serving AP ~29–84 ms of exclusive air, and a
//! client crossing cells restarts ACQUIRE from nothing. The
//! [`FleetEngine`] layers three mechanisms over the single-AP engine to
//! fix that, without touching the per-AP physics:
//!
//! 1. **Sharding** — each AP is its own [`ServiceEngine`] with its own
//!    [`MediumArbiter`] (its own channel/medium). Shards share one
//!    [`PlanCache`]; their RNG streams are disjoint by construction
//!    ([`shard_seed`]), so a fleet run is bit-identical to N
//!    independent single-AP runs when the fleet features are off (the
//!    `sync_disabled` pin in `tests/fleet.rs`).
//! 2. **Clock sync** ([`ClockSync`]) — a reference-broadcast model after
//!    OpenWiFiSync: every `interval` a sync round re-disciplines each
//!    AP's oscillator to residual offset `~N(0, jitter_ns²)` plus a
//!    residual drift `~N(0, drift_ppb²)` that grows the offset until the
//!    next round. Beacon airtime is charged to every shard's arbiter.
//!    The model *advertises* a conservative pair residual bound; TDoA is
//!    gated on that bound, not on the (hidden) truth offsets.
//! 3. **One-way TDoA** — once APs are synchronized below
//!    [`TdoaConfig::residual_threshold_ns`], a client's single
//!    transmission ("blast") timestamped at ≥ 3 APs yields a hyperbolic
//!    fix via [`crate::localization::tdoa`]: fleet fix cost is one
//!    short blast, not a per-AP band sweep, so the fix rate is set by
//!    the blast cadence instead of sweep airtime.
//!
//! Roaming ties the three together: clients move through the shared
//! [`Environment`]; at each window boundary an association policy hands
//! a client off to the nearest AP (with hysteresis), and the client's
//! tracker/anomaly state migrates with it ([`MigratedClient`]) so the
//! first sweep at the new AP runs in TRACK — no re-ACQUIRE. The report
//! counts handoff-gap sweeps (post-handoff ACQUIRE sweeps before the
//! first TRACK) so the migration claim is measurable.
//!
//! See `docs/FLEET.md` for the topology diagram, the clock-sync math
//! and the TDoA vs. round-trip trade-off table.

use crate::config::ChronosConfig;
use crate::engine::{mix_seed, ServiceEngine, WindowReport};
use crate::localization::tdoa::{solve_tdoa, RangeDiff, TdoaSolverConfig};
use crate::pipeline::SweepPipeline;
use crate::runtime::{PoolJob, WorkerRuntime};
use crate::service::ServiceConfig;
use crate::tracker::{PositionTracker, TrackMode, TrackerConfig};
use chronos_link::event::EventQueue;
use chronos_link::time::{Duration, Instant};
use chronos_math::constants::C_M_PER_NS;
use chronos_math::lstsq::GnWorkspace;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::environment::Environment;
use chronos_rf::geometry::Point;
use chronos_rf::hardware::{ideal_device, AntennaArray};
use chronos_rf::noise::complex_gaussian;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[cfg(doc)]
use crate::engine::MigratedClient;
#[cfg(doc)]
use crate::plan::PlanCache;
#[cfg(doc)]
use chronos_link::arbiter::MediumArbiter;

/// Domain-separation salts keeping the fleet's RNG streams disjoint
/// from each other and from every shard's sweep streams.
const SHARD_SALT: u64 = 0x5ee0_1f1e_e7a9_c0de;
const SYNC_SALT: u64 = 0xc10c_0ffe_7d21_f7aa;
const BLAST_SALT: u64 = 0xb1a5_7b1a_57b1_a570;

/// How the fleet localizes its clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetRangingMode {
    /// The paper's path: every client occupies a slot in its serving
    /// AP's [`ServiceEngine`] and gets round-trip sweeps at that AP's
    /// cadence. Fleet features reduce to association + handoff.
    RoundTrip,
    /// One-way blasts timestamped across the fleet, solved
    /// hyperbolically. Clients do not occupy shard slots; shards carry
    /// only sync-beacon (and blast) airtime.
    Tdoa,
}

/// Reference-broadcast synchronization parameters (OpenWiFiSync model).
#[derive(Debug, Clone, Copy)]
pub struct ClockSyncConfig {
    /// Time between sync rounds.
    pub interval: Duration,
    /// Airtime one round's reference broadcast occupies on *each*
    /// shard's medium.
    pub beacon_airtime: Duration,
    /// Post-round residual offset standard deviation per AP, ns.
    pub jitter_ns: f64,
    /// Residual (post-discipline) oscillator drift standard deviation
    /// per AP, parts per billion — grows the offset between rounds.
    pub drift_ppb: f64,
}

impl Default for ClockSyncConfig {
    fn default() -> Self {
        ClockSyncConfig {
            interval: Duration::from_millis(100),
            beacon_airtime: Duration::from_millis(1),
            jitter_ns: 0.4,
            drift_ppb: 0.5,
        }
    }
}

/// One sync round's outcome: the fleet's clock state until the next.
#[derive(Debug, Clone)]
struct SyncEpoch {
    at: Instant,
    /// Truth residual offset per AP at `at`, ns (hidden from the
    /// estimator — it only biases blast timestamps).
    offsets_ns: Vec<f64>,
    /// Truth residual drift per AP, ppb (grows the offset until the
    /// next round).
    drifts_ppb: Vec<f64>,
}

/// The fleet's clock model: truth per-AP offset/drift trajectories plus
/// the advertised residual bound that gates TDoA eligibility.
#[derive(Debug, Clone)]
pub struct ClockSync {
    cfg: ClockSyncConfig,
    n_aps: usize,
    epochs: Vec<SyncEpoch>,
    next_round: Instant,
    rounds: u64,
}

impl ClockSync {
    fn new(cfg: ClockSyncConfig, n_aps: usize) -> Self {
        ClockSync {
            cfg,
            n_aps,
            epochs: Vec::new(),
            next_round: Instant::ZERO,
            rounds: 0,
        }
    }

    /// Sync rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Executes one round at `at`: every AP re-disciplines to a fresh
    /// offset/drift draw. RNG streams are keyed by (seed, round, AP) so
    /// the trajectory is invariant to window splits.
    fn run_round(&mut self, seed: u64, at: Instant) {
        let mut offsets_ns = Vec::with_capacity(self.n_aps);
        let mut drifts_ppb = Vec::with_capacity(self.n_aps);
        for ap in 0..self.n_aps {
            let mut rng = StdRng::seed_from_u64(mix_seed(seed ^ SYNC_SALT, self.rounds + 1, ap));
            offsets_ns.push(self.cfg.jitter_ns * complex_gaussian(&mut rng, 1.0).re);
            drifts_ppb.push(self.cfg.drift_ppb * complex_gaussian(&mut rng, 1.0).re);
        }
        self.epochs.push(SyncEpoch {
            at,
            offsets_ns,
            drifts_ppb,
        });
        self.rounds += 1;
        self.next_round = at + self.cfg.interval;
    }

    fn epoch_at(&self, t: Instant) -> Option<&SyncEpoch> {
        self.epochs.iter().rev().find(|e| e.at <= t)
    }

    /// Truth clock offset of AP `ap` at time `t`, ns — the post-round
    /// residual plus accumulated residual drift. Infinite before the
    /// first round (unsynchronized).
    pub fn offset_ns(&self, ap: usize, t: Instant) -> f64 {
        match self.epoch_at(t) {
            None => f64::INFINITY,
            Some(e) => {
                let dt_ns = t.saturating_since(e.at).as_nanos() as f64;
                e.offsets_ns[ap] + e.drifts_ppb[ap] * 1e-9 * dt_ns
            }
        }
    }

    /// The *advertised* bound on any AP pair's clock offset at `t`, ns:
    /// twice the per-AP 3-sigma envelope
    /// `3·(jitter_ns + drift_ppb·10⁻⁹·Δt_ns)`. Conservative by
    /// construction — TDoA eligibility thresholds this bound, never the
    /// hidden truth offsets. Infinite before the first round.
    pub fn pair_residual_bound_ns(&self, t: Instant) -> f64 {
        match self.epoch_at(t) {
            None => f64::INFINITY,
            Some(e) => {
                let dt_ns = t.saturating_since(e.at).as_nanos() as f64;
                2.0 * 3.0 * (self.cfg.jitter_ns + self.cfg.drift_ppb * 1e-9 * dt_ns)
            }
        }
    }
}

/// One-way blast / TDoA parameters.
#[derive(Debug, Clone, Copy)]
pub struct TdoaConfig {
    /// Per-client blast cadence. This — not sweep airtime — sets the
    /// TDoA fix rate.
    pub cadence: Duration,
    /// Airtime one blast occupies on each receiving AP's medium.
    pub blast_airtime: Duration,
    /// Per-AP arrival-timestamp noise standard deviation, ns
    /// (sampling-edge + detection jitter).
    pub timestamp_noise_ns: f64,
    /// An AP pair participates in TDoA only while
    /// [`ClockSync::pair_residual_bound_ns`] is at or below this, ns.
    pub residual_threshold_ns: f64,
    /// Minimum APs (reference included) that must hear a blast for a
    /// fix attempt.
    pub min_anchors: usize,
    /// APs farther than this from the client do not hear the blast,
    /// meters.
    pub max_range_m: f64,
    /// Hyperbolic solver knobs.
    pub solver: TdoaSolverConfig,
}

impl Default for TdoaConfig {
    fn default() -> Self {
        TdoaConfig {
            cadence: Duration::from_millis(25),
            blast_airtime: Duration::from_micros(500),
            timestamp_noise_ns: 0.5,
            residual_threshold_ns: 5.0,
            min_anchors: 3,
            max_range_m: 60.0,
            solver: TdoaSolverConfig::default(),
        }
    }
}

/// Association / handoff policy.
#[derive(Debug, Clone, Copy)]
pub struct HandoffConfig {
    /// A client hands off only when the nearest AP is closer than the
    /// serving AP by more than this margin, meters (ping-pong damping).
    pub hysteresis_m: f64,
    /// Whether tracker/anomaly state migrates with the client
    /// ([`ServiceEngine::extract_client`] →
    /// [`ServiceEngine::join_migrated`]). Off = the paper's baseline:
    /// every handoff restarts ACQUIRE at the new AP.
    pub migrate_state: bool,
}

impl Default for HandoffConfig {
    fn default() -> Self {
        HandoffConfig {
            hysteresis_m: 2.0,
            migrate_state: true,
        }
    }
}

/// Full fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-shard engine policy. Fleet features assume
    /// [`crate::service::LocalizationMode::Position`];
    /// [`FleetConfig::position`] builds the standard shape.
    pub service: ServiceConfig,
    /// Estimator configuration for round-trip sweeps.
    pub chronos: ChronosConfig,
    /// Round-trip sweeps or one-way TDoA.
    pub mode: FleetRangingMode,
    /// Clock-sync model; `None` disables sync entirely (`sync_disabled`:
    /// no beacons, no synchronized pairs, hence no TDoA fixes — and a
    /// round-trip fleet degenerates to N independent engines, bit for
    /// bit).
    pub clock: Option<ClockSyncConfig>,
    /// Blast/TDoA parameters (ignored in round-trip mode).
    pub tdoa: TdoaConfig,
    /// Association policy.
    pub handoff: HandoffConfig,
    /// SNR model anchor shared by every client context (see
    /// [`client_context`]).
    pub snr_at_1m_db: f64,
    /// Worker threads of the fleet's shared pool, and with it the shard
    /// execution strategy of [`FleetEngine::run_window`]:
    ///
    /// - `None` (default): auto — `thread_count() - 1` pool workers
    ///   (the helping fleet driver is the extra lane), shard windows run
    ///   **in parallel** when that leaves at least one worker and the
    ///   fleet has more than one shard.
    /// - `Some(0)`: the strictly serial shard loop (the pre-parallel
    ///   comparison path). Shards still share one pool for their own
    ///   sweep batches when the service is multi-threaded.
    /// - `Some(n)`: exactly `n` pool workers, shard-parallel windows.
    ///
    /// Every strategy produces bitwise-identical [`FleetWindowReport`]s
    /// — see the `run_window` docs for why — so this knob trades wall
    /// clock and core count only.
    pub workers: Option<usize>,
}

impl FleetConfig {
    /// The standard fleet shape: position-mode adaptive shards, clock
    /// sync on, state-migrating handoff, in the given ranging mode.
    pub fn position(tracker: TrackerConfig, mode: FleetRangingMode) -> Self {
        FleetConfig {
            service: ServiceConfig::position(tracker),
            chronos: ChronosConfig::default(),
            mode,
            clock: Some(ClockSyncConfig::default()),
            tdoa: TdoaConfig::default(),
            handoff: HandoffConfig::default(),
            snr_at_1m_db: 60.0,
            workers: None,
        }
    }
}

/// The per-shard seed: shard `ap` of a fleet run seeded `seed` runs
/// exactly like a standalone [`ServiceEngine`] run seeded
/// `shard_seed(seed, ap)` — the equivalence `tests/fleet.rs` pins.
pub fn shard_seed(seed: u64, ap: usize) -> u64 {
    mix_seed(seed ^ SHARD_SALT, 0, ap)
}

/// Builds the measurement context the fleet gives a client: a
/// single-antenna client device at `client_pos` (world frame) ranging
/// against an AP-array device at `ap_pos`, in the shared environment.
/// Public so tests can construct the *identical* context for standalone
/// control engines.
pub fn client_context(
    env: &Environment,
    client_pos: Point,
    ap_pos: Point,
    snr_at_1m_db: f64,
) -> MeasurementContext {
    let mut ctx = MeasurementContext::new(
        env.clone(),
        ideal_device(AntennaArray::single()),
        client_pos,
        ideal_device(AntennaArray::access_point()),
        ap_pos,
    );
    ctx.snr.snr_at_1m_db = snr_at_1m_db;
    ctx
}

/// One client's fleet-level state.
#[derive(Debug, Clone)]
struct FleetClient {
    /// World position (callers move it via
    /// [`FleetEngine::set_client_pos`]).
    pos: Point,
    /// Serving AP index.
    serving: usize,
    /// Slot index in the serving shard (round-trip mode only).
    slot: Option<usize>,
    /// World-frame fused track (TDoA mode only).
    tracker: PositionTracker,
    /// Blast ordinal — the client's TDoA RNG-stream counter (same role
    /// as the engine's sweep ordinal).
    blasts: u64,
    /// Set at handoff; cleared by the first post-handoff TRACK outcome.
    /// ACQUIRE outcomes seen while set count as handoff-gap sweeps.
    awaiting_track: bool,
}

/// One TDoA blast's outcome (the one-way analogue of
/// [`crate::service::ClientOutcome`]; all positions world-frame).
#[derive(Debug, Clone)]
pub struct TdoaOutcome {
    /// Fleet client index.
    pub client: usize,
    /// The client's blast ordinal (0 for its first blast).
    pub blast: u64,
    /// Blast time on the fleet clock.
    pub at: Instant,
    /// APs that heard the blast and passed the sync gate (reference
    /// included); 0 when the blast was dropped before solving.
    pub n_anchors: usize,
    /// Hyperbolic fix, when the solver produced one.
    pub fix: Option<Point>,
    /// RMS range-difference residual of the fix, meters.
    pub residual_m: Option<f64>,
    /// Ground-truth client position when the blast fired.
    pub truth_pos: Point,
    /// Absolute 2-D error of the raw fix, meters.
    pub pos_error_m: Option<f64>,
    /// Fused (tracker) position after absorbing this blast.
    pub tracked_pos: Option<Point>,
    /// Absolute 2-D error of the fused position, meters.
    pub tracked_pos_error_m: Option<f64>,
    /// Mode the client's fleet tracker was in when the blast fired.
    pub mode: TrackMode,
    /// Anomaly score after absorbing this blast.
    pub anomaly_score: f64,
}

/// One fleet window's result: per-shard [`WindowReport`]s (round-trip
/// sweeps, per-AP utilization including beacon/blast airtime) plus the
/// fleet-level TDoA outcomes and roaming accounting.
#[derive(Debug, Clone)]
pub struct FleetWindowReport {
    /// Window start on the fleet clock.
    pub started: Instant,
    /// Window end.
    pub ended: Instant,
    /// Per-AP shard reports, indexed by AP. `outcomes` hold each
    /// shard's own round-trip sweeps (client indices are *shard slot*
    /// indices — see [`FleetEngine::client_of_slot`]); utilization
    /// includes sync-beacon and blast airtime charged to that shard.
    pub shard_reports: Vec<WindowReport>,
    /// TDoA blast outcomes, in blast order (TDoA mode only).
    pub tdoa_outcomes: Vec<TdoaOutcome>,
    /// Clients handed off at this window's boundary.
    pub handoffs: usize,
    /// Post-handoff ACQUIRE sweeps observed this window before each
    /// migrated client's first TRACK sweep — 0 when state migration is
    /// doing its job (round-trip mode; TDoA clients never re-acquire at
    /// a handoff).
    pub handoff_gap_sweeps: usize,
    /// Sync rounds executed this window.
    pub sync_rounds: usize,
    /// Fleet population at the window's end.
    pub n_clients: usize,
}

impl FleetWindowReport {
    /// The window's length of simulated time.
    pub fn span(&self) -> Duration {
        self.ended.saturating_since(self.started)
    }

    /// Successful position fixes across the fleet this window: raw
    /// round-trip fixes plus solved TDoA blasts.
    pub fn fixes(&self) -> usize {
        let rt: usize = self
            .shard_reports
            .iter()
            .flat_map(|r| &r.outcomes)
            .filter(|o| o.position.is_some())
            .count();
        let td = self
            .tdoa_outcomes
            .iter()
            .filter(|o| o.fix.is_some())
            .count();
        rt + td
    }

    /// Fleet fix throughput normalized per client: fixes per second of
    /// window time, divided by the population.
    pub fn fix_rate_per_client(&self) -> f64 {
        let span = self.span().as_secs_f64();
        if span <= 0.0 || self.n_clients == 0 {
            0.0
        } else {
            self.fixes() as f64 / span / self.n_clients as f64
        }
    }

    /// Raw-fix position errors across both paths, meters (error
    /// magnitudes are frame-invariant, so shard-frame round-trip errors
    /// and world-frame TDoA errors pool directly).
    pub fn pos_errors_m(&self) -> Vec<f64> {
        let mut errs: Vec<f64> = self
            .shard_reports
            .iter()
            .flat_map(|r| &r.outcomes)
            .filter_map(|o| o.pos_error_m)
            .collect();
        errs.extend(self.tdoa_outcomes.iter().filter_map(|o| o.pos_error_m));
        errs
    }

    /// Median raw-fix error, meters.
    pub fn median_pos_error_m(&self) -> Option<f64> {
        percentile(self.pos_errors_m(), 0.50)
    }

    /// 90th-percentile raw-fix error, meters.
    pub fn p90_pos_error_m(&self) -> Option<f64> {
        percentile(self.pos_errors_m(), 0.90)
    }
}

/// Nearest-rank percentile over an unsorted sample.
fn percentile(mut xs: Vec<f64>, q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((xs.len() as f64 * q).ceil() as usize).clamp(1, xs.len()) - 1;
    Some(xs[idx])
}

/// N sharded [`ServiceEngine`]s under one association policy, clock
/// model and blast scheduler — see the module docs for the design.
pub struct FleetEngine {
    cfg: FleetConfig,
    env: Environment,
    aps: Vec<Point>,
    shards: Vec<ServiceEngine>,
    /// `slot_owner[ap][slot]` = fleet client occupying (or having
    /// occupied) that shard slot.
    slot_owner: Vec<Vec<usize>>,
    clients: Vec<FleetClient>,
    sync: Option<ClockSync>,
    /// Pending blasts (TDoA mode), keyed by fleet client index.
    blasts: EventQueue<usize>,
    clock: Instant,
    gn_ws: GnWorkspace,
    /// The fleet-wide worker pool (shard windows *and* every shard's
    /// sweep batches), when one exists — see [`FleetConfig::workers`].
    runtime: Option<std::sync::Arc<WorkerRuntime>>,
    /// Pool workers serving shard-level jobs; 0 = serial shard loop.
    shard_workers: usize,
    /// The fleet driver's own helping pipeline for pool submissions
    /// (shard-window driver batches, plan prewarm).
    pipeline: SweepPipeline,
}

impl FleetEngine {
    /// Builds a fleet of one shard per AP position, all sharing `env`
    /// and one plan cache. Panics if `aps` is empty.
    pub fn new(cfg: FleetConfig, env: Environment, aps: Vec<Point>) -> Self {
        assert!(!aps.is_empty(), "a fleet needs at least one AP");
        let mut shards = Vec::with_capacity(aps.len());
        let first = ServiceEngine::new(cfg.service.clone());
        let plans = std::sync::Arc::clone(first.plans());
        shards.push(first);
        for _ in 1..aps.len() {
            shards.push(ServiceEngine::with_cache(
                cfg.service.clone(),
                std::sync::Arc::clone(&plans),
            ));
        }
        // One persistent worker pool for the whole fleet, sized by
        // [`FleetConfig::workers`]: with shard-level workers the pool
        // runs whole shard windows concurrently (the coarse ring) *and*
        // every shard's sweep batches (the fine ring); with 0 shard
        // workers the shard loop stays serial but shards still share
        // one sweep pool when the service is multi-threaded. Either
        // way, the fleet never spawns a thread after this constructor.
        let threads = shards[0].thread_count();
        let shard_workers = if aps.len() > 1 {
            cfg.workers.unwrap_or_else(|| threads.saturating_sub(1))
        } else {
            0
        };
        let pool_workers = if shard_workers > 0 {
            shard_workers
        } else if threads > 1 && aps.len() > 1 {
            threads - 1
        } else {
            0
        };
        let mut runtime = None;
        if pool_workers > 0 {
            let rt = std::sync::Arc::new(WorkerRuntime::new(pool_workers));
            for shard in &mut shards {
                shard.set_runtime(std::sync::Arc::clone(&rt));
            }
            runtime = Some(rt);
        }
        let sync = cfg.clock.map(|c| ClockSync::new(c, aps.len()));
        FleetEngine {
            shards,
            slot_owner: vec![Vec::new(); aps.len()],
            clients: Vec::new(),
            sync,
            blasts: EventQueue::new(),
            clock: Instant::ZERO,
            gn_ws: GnWorkspace::default(),
            runtime,
            shard_workers,
            pipeline: SweepPipeline::new(),
            cfg,
            env,
            aps,
        }
    }

    /// AP positions, world frame.
    pub fn aps(&self) -> &[Point] {
        &self.aps
    }

    /// Read access to a shard.
    pub fn shard(&self, ap: usize) -> &ServiceEngine {
        &self.shards[ap]
    }

    /// The fleet's population.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// The fleet clock (windows advance it).
    pub fn clock(&self) -> Instant {
        self.clock
    }

    /// The clock-sync model, when enabled.
    pub fn clock_sync(&self) -> Option<&ClockSync> {
        self.sync.as_ref()
    }

    /// The fleet's shared worker pool, when one exists (see
    /// [`FleetConfig::workers`]). Benches read its allocation counter.
    pub fn runtime(&self) -> Option<&std::sync::Arc<WorkerRuntime>> {
        self.runtime.as_ref()
    }

    /// Pool workers serving shard-level window jobs; 0 means
    /// [`FleetEngine::run_window`] runs its shard loop serially.
    pub fn shard_workers(&self) -> usize {
        self.shard_workers
    }

    /// Pre-builds every distinct NDFT plan the fleet's clients will
    /// request, **once across the whole fleet**: shards share one plan
    /// cache, so the job list is deduplicated across shards and each
    /// distinct plan is built exactly once (in parallel on the shared
    /// pool when there is one) instead of once per shard. Purely an
    /// opt-in warm-up with identical steady-state results — see
    /// [`ServiceEngine::prewarm_plans`], which this supersedes for
    /// fleets. Call after the population is added. Returns the number
    /// of distinct plans built or found resident.
    pub fn prewarm_plans(&mut self) -> usize {
        let mut jobs = Vec::new();
        for shard in &self.shards {
            shard.plan_prewarm_jobs(&mut jobs);
        }
        match &self.runtime {
            Some(rt) if jobs.len() > 1 => {
                rt.run_batch(&jobs, &mut self.pipeline);
            }
            _ => {
                for job in &jobs {
                    job.run(&mut self.pipeline);
                }
            }
        }
        jobs.len()
    }

    /// A client's current serving AP.
    pub fn serving_ap(&self, client: usize) -> usize {
        self.clients[client].serving
    }

    /// A client's current (truth) world position.
    pub fn client_pos(&self, client: usize) -> Point {
        self.clients[client].pos
    }

    /// Resolves a shard outcome's slot index to the fleet client that
    /// owned it (slots are never reused, so the mapping is total).
    pub fn client_of_slot(&self, ap: usize, slot: usize) -> usize {
        self.slot_owner[ap][slot]
    }

    /// The fleet-level world-frame tracker of a TDoA client.
    pub fn tdoa_tracker(&self, client: usize) -> &PositionTracker {
        &self.clients[client].tracker
    }

    fn nearest_ap(&self, pos: Point) -> usize {
        (0..self.aps.len())
            .min_by(|&a, &b| {
                pos.dist(self.aps[a])
                    .partial_cmp(&pos.dist(self.aps[b]))
                    .unwrap()
            })
            .expect("non-empty fleet")
    }

    /// Adds a client at a world position, associated with the nearest
    /// AP. Round-trip mode gives it a slot in that shard; TDoA mode
    /// schedules its blast cadence. Returns the fleet client index.
    pub fn add_client(&mut self, pos: Point) -> usize {
        let serving = self.nearest_ap(pos);
        let id = self.clients.len();
        let tracker_cfg = self.cfg.service.adaptive.unwrap_or_default();
        let slot = match self.cfg.mode {
            FleetRangingMode::RoundTrip => {
                let ctx = client_context(&self.env, pos, self.aps[serving], self.cfg.snr_at_1m_db);
                let slot = self.shards[serving].join(ctx, self.cfg.chronos.clone());
                debug_assert_eq!(self.slot_owner[serving].len(), slot);
                self.slot_owner[serving].push(id);
                Some(slot)
            }
            FleetRangingMode::Tdoa => {
                // Stagger first blasts across the cadence so a large
                // population doesn't fire in lockstep.
                let phase = Duration::from_nanos(
                    (id as u64).wrapping_mul(97_777_777) % self.cfg.tdoa.cadence.as_nanos().max(1),
                );
                self.blasts.schedule(self.clock + phase, id);
                None
            }
        };
        self.clients.push(FleetClient {
            pos,
            serving,
            slot,
            tracker: PositionTracker::new(tracker_cfg),
            blasts: 0,
            awaiting_track: false,
        });
        id
    }

    /// Moves a client (truth teleport; walkers call this every window).
    /// Round-trip geometry updates immediately; association is only
    /// re-evaluated at the next window boundary.
    pub fn set_client_pos(&mut self, client: usize, pos: Point) {
        self.clients[client].pos = pos;
        if let Some(slot) = self.clients[client].slot {
            let serving = self.clients[client].serving;
            self.shards[serving].session_mut(slot).ctx.initiator_pos = pos;
        }
    }

    /// Runs the association policy over every client: hand off to the
    /// nearest AP when it beats the serving AP by more than the
    /// hysteresis margin. Returns the number of handoffs.
    fn run_handoffs(&mut self) -> usize {
        let mut handoffs = 0;
        for id in 0..self.clients.len() {
            let (pos, serving) = (self.clients[id].pos, self.clients[id].serving);
            let nearest = self.nearest_ap(pos);
            if nearest == serving
                || pos.dist(self.aps[serving]) - pos.dist(self.aps[nearest])
                    <= self.cfg.handoff.hysteresis_m
            {
                continue;
            }
            handoffs += 1;
            match self.cfg.mode {
                FleetRangingMode::Tdoa => {
                    // The reference AP changes; the world-frame track
                    // is frame-free and just continues.
                    self.clients[id].serving = nearest;
                }
                FleetRangingMode::RoundTrip => {
                    let slot = self.clients[id].slot.expect("round-trip client has a slot");
                    let ctx =
                        client_context(&self.env, pos, self.aps[nearest], self.cfg.snr_at_1m_db);
                    let new_slot = if self.cfg.handoff.migrate_state {
                        let mut state = self.shards[serving]
                            .extract_client(slot)
                            .expect("handoff of an active client");
                        state.translate(self.aps[serving].sub(self.aps[nearest]));
                        self.shards[nearest].join_migrated(ctx, self.cfg.chronos.clone(), state)
                    } else {
                        self.shards[serving].leave(slot);
                        self.shards[nearest].join(ctx, self.cfg.chronos.clone())
                    };
                    debug_assert_eq!(self.slot_owner[nearest].len(), new_slot);
                    self.slot_owner[nearest].push(id);
                    self.clients[id].serving = nearest;
                    self.clients[id].slot = Some(new_slot);
                    self.clients[id].awaiting_track = true;
                }
            }
        }
        handoffs
    }

    /// Processes sync rounds and TDoA blasts due strictly before
    /// `ended`, in time order (rounds win ties so a blast at a round
    /// instant sees the fresh clock state). Beacon and blast airtime is
    /// charged to shard arbiters *before* the shards run their window,
    /// so it lands in their utilization and contends with round-trip
    /// admissions.
    fn pump_fleet_events(
        &mut self,
        seed: u64,
        ended: Instant,
        outcomes: &mut Vec<TdoaOutcome>,
    ) -> usize {
        let mut rounds = 0;
        loop {
            let t_sync = self
                .sync
                .as_ref()
                .map(|s| s.next_round)
                .filter(|&t| t < ended);
            let t_blast = self.blasts.peek_time().filter(|&t| t < ended);
            let sync_first = match (t_sync, t_blast) {
                (None, None) => return rounds,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(ts), Some(tb)) => ts <= tb,
            };
            if sync_first {
                let ts = t_sync.expect("sync_first implies a due round");
                let sync = self.sync.as_mut().expect("t_sync implies sync");
                sync.run_round(seed, ts);
                let beacon = sync.cfg.beacon_airtime;
                rounds += 1;
                for shard in &mut self.shards {
                    shard.charge_airtime(ts, beacon);
                }
            } else {
                let (t, client) = self.blasts.pop().expect("peeked");
                outcomes.push(self.run_blast(seed, t, client));
                self.blasts.schedule(t + self.cfg.tdoa.cadence, client);
            }
        }
    }

    /// Executes one blast: the client transmits once; every in-range,
    /// sync-eligible AP timestamps the arrival; the serving AP is the
    /// TDoA reference. Timestamp error per AP = truth clock offset
    /// (hidden) + detection noise. The blast charges
    /// [`TdoaConfig::blast_airtime`] on every listening shard.
    fn run_blast(&mut self, seed: u64, t: Instant, client: usize) -> TdoaOutcome {
        let cfg = self.cfg.tdoa;
        let c = &mut self.clients[client];
        let blast = c.blasts;
        c.blasts += 1;
        let (pos, serving) = (c.pos, c.serving);
        let mode = c.tracker.mode();
        let mut rng = StdRng::seed_from_u64(mix_seed(seed ^ BLAST_SALT, blast + 1, client));
        let bound_ns = self
            .sync
            .as_ref()
            .map(|s| s.pair_residual_bound_ns(t))
            .unwrap_or(f64::INFINITY);
        // Anchors in AP-index order: the RNG draw sequence is a pure
        // function of geometry, so results are schedule-invariant.
        let mut anchors: Vec<(usize, f64)> = Vec::new(); // (ap, timestamp err, m)
        for ap in 0..self.aps.len() {
            let in_range = pos.dist(self.aps[ap]) <= cfg.max_range_m;
            let eligible = ap == serving || bound_ns <= cfg.residual_threshold_ns;
            if !(in_range && eligible) {
                continue;
            }
            let noise_ns = cfg.timestamp_noise_ns * complex_gaussian(&mut rng, 1.0).re;
            let offset_ns = self
                .sync
                .as_ref()
                .map(|s| s.offset_ns(ap, t))
                .unwrap_or(f64::INFINITY);
            anchors.push((ap, C_M_PER_NS * (offset_ns + noise_ns)));
        }
        let mut out = TdoaOutcome {
            client,
            blast,
            at: t,
            n_anchors: 0,
            fix: None,
            residual_m: None,
            truth_pos: pos,
            pos_error_m: None,
            tracked_pos: None,
            tracked_pos_error_m: None,
            mode,
            anomaly_score: 0.0,
        };
        let heard_serving = anchors.iter().any(|&(ap, _)| ap == serving);
        if anchors.len() < cfg.min_anchors || !heard_serving {
            // Not enough fleet to solve: no fix, but the tracker still
            // sees the miss (mode machine + anomaly accounting).
            let upd = self.clients[client].tracker.observe(t, None, false);
            out.anomaly_score = upd.anomaly_score;
            return out;
        }
        for &(ap, _) in &anchors {
            // A blast is overheard, not scheduled: it happens at `t` on
            // the client's cadence no matter what this AP's arbiter
            // thinks, so it books the air at its true instant (O(1))
            // instead of competing for an admission grant it would
            // ignore anyway.
            self.shards[ap].charge_airtime_at(t, cfg.blast_airtime);
        }
        out.n_anchors = anchors.len();
        let err_ref = anchors
            .iter()
            .find(|&&(ap, _)| ap == serving)
            .map(|&(_, e)| e)
            .expect("serving AP heard the blast");
        let reference = self.aps[serving];
        let diffs: Vec<RangeDiff> = anchors
            .iter()
            .filter(|&&(ap, _)| ap != serving)
            .map(|&(ap, err)| RangeDiff {
                anchor: self.aps[ap],
                diff_m: (pos.dist(self.aps[ap]) - pos.dist(reference)) + (err - err_ref),
            })
            .collect();
        let prior = self.clients[client]
            .tracker
            .filter()
            .predicted_position()
            .unwrap_or(reference);
        let fix = solve_tdoa(reference, &diffs, prior, &cfg.solver, &mut self.gn_ws).ok();
        let upd = self.clients[client]
            .tracker
            .observe(t, fix.map(|f| f.point), true);
        out.anomaly_score = upd.anomaly_score;
        if let Some(f) = fix {
            out.fix = Some(f.point);
            out.residual_m = Some(f.residual_m);
            out.pos_error_m = Some(f.point.dist(pos));
        }
        out.tracked_pos = upd.fused;
        out.tracked_pos_error_m = upd.fused.map(|p| p.dist(pos));
        out
    }

    /// Advances the whole fleet by `window`: handoffs at the boundary,
    /// then sync rounds + blasts in time order, then every shard's
    /// round-trip window. `seed` follows the same convention as
    /// [`ServiceEngine::run_until`] — reuse one seed across windows for
    /// a reproducible run; shard `ap` consumes [`shard_seed`]`(seed,
    /// ap)`, so a `sync_disabled` round-trip fleet is bit-identical to
    /// standalone engines run with those seeds.
    ///
    /// ## Two-level parallelism
    ///
    /// Everything fleet-wide — handoffs, sync rounds, TDoA blasts,
    /// airtime pre-charges — runs serially here at the window boundary;
    /// the shard windows between boundaries share no mutable state
    /// (each shard owns its clients, events, and RNG stream; the plan
    /// cache is content-addressed), so with a pool
    /// ([`FleetConfig::workers`]) they run concurrently as coarse
    /// driver jobs, each of which may itself fan its multi-client
    /// sweep batches onto the *same* pool as fine tasks. Results land
    /// in ordinal slots and each shard is seeded independently, so
    /// every [`FleetWindowReport`] field is bitwise identical across
    /// worker counts and vs. the serial loop, except two pieces of
    /// execution metadata: `shard_reports[..].wall` (host wall clock)
    /// and `shard_reports[..].cache.hits` — a *lookup* count that
    /// depends on per-pipeline plan-memo warmth, hence on which worker
    /// ran which sweep (true for any multi-threaded engine, not just
    /// fleets). `cache.misses` and the entry counts are invariant.
    pub fn run_window(&mut self, seed: u64, window: Duration) -> FleetWindowReport {
        let started = self.clock;
        let ended = started + window;
        let handoffs = self.run_handoffs();
        let mut tdoa_outcomes = Vec::new();
        let sync_rounds = self.pump_fleet_events(seed, ended, &mut tdoa_outcomes);
        let parallel = self.shard_workers > 0 && self.shards.len() > 1;
        let mut shard_reports: Vec<WindowReport> = if parallel {
            let jobs: Vec<ShardWindowJob> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(ap, shard)| ShardWindowJob {
                    shard: std::sync::Mutex::new(Some(shard)),
                    seed: shard_seed(seed, ap),
                    ended,
                })
                .collect();
            self.runtime
                .as_ref()
                .expect("parallel fleet has a pool")
                .run_driver_batch(&jobs, &mut self.pipeline)
        } else {
            self.shards
                .iter_mut()
                .enumerate()
                .map(|(ap, shard)| shard.run_until(shard_seed(seed, ap), ended))
                .collect()
        };
        // The plan cache is shared, so mid-run per-shard snapshots of
        // its counters are schedule-dependent. The *post-window* miss
        // and entry totals are not (each distinct plan is built — and
        // counts a miss — exactly once), so stamp one boundary snapshot
        // on every shard report in both execution strategies to keep
        // reports comparable. The hit total stays execution metadata:
        // it counts cache *lookups*, which pipeline-local plan memos
        // absorb at a rate set by sweep-to-worker placement.
        let cache = self.shards[0].plans().stats();
        for report in &mut shard_reports {
            report.cache = cache;
        }
        // Handoff-gap accounting: post-handoff ACQUIRE sweeps at the
        // new AP, until the first TRACK sweep clears the flag.
        let mut handoff_gap_sweeps = 0;
        for (ap, report) in shard_reports.iter().enumerate() {
            for o in &report.outcomes {
                let id = self.slot_owner[ap][o.client];
                let c = &mut self.clients[id];
                if !(c.awaiting_track && c.serving == ap && c.slot == Some(o.client)) {
                    continue;
                }
                if o.mode == TrackMode::Track {
                    c.awaiting_track = false;
                } else {
                    handoff_gap_sweeps += 1;
                }
            }
        }
        self.clock = ended;
        FleetWindowReport {
            started,
            ended,
            shard_reports,
            tdoa_outcomes,
            handoffs,
            handoff_gap_sweeps,
            sync_rounds,
            n_clients: self.clients.len(),
        }
    }
}

/// One shard's `run_until` window as a coarse pool job
/// ([`WorkerRuntime::run_driver_batch`]). The `Mutex<Option<&mut ..>>`
/// smuggles the exclusive shard borrow through the `&self` job
/// interface; each job is executed exactly once, so the `take` never
/// observes `None`.
struct ShardWindowJob<'a> {
    shard: std::sync::Mutex<Option<&'a mut ServiceEngine>>,
    seed: u64,
    ended: Instant,
}

impl PoolJob for ShardWindowJob<'_> {
    type Output = WindowReport;

    fn run(&self, _pipeline: &mut SweepPipeline) -> WindowReport {
        let shard = self
            .shard
            .lock()
            .expect("shard job lock")
            .take()
            .expect("shard window job runs exactly once");
        shard.run_until(self.seed, self.ended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::testbed::ap_grid;

    fn quick_chronos() -> ChronosConfig {
        ChronosConfig {
            max_iters: 120,
            grid_step_ns: 0.5,
            ..ChronosConfig::ideal()
        }
    }

    fn small_fleet(mode: FleetRangingMode) -> FleetEngine {
        let mut cfg = FleetConfig::position(TrackerConfig::default(), mode);
        cfg.chronos = quick_chronos();
        FleetEngine::new(cfg, Environment::free_space(), ap_grid(4, 20.0))
    }

    #[test]
    fn clock_sync_bound_tightens_after_a_round_and_grows_with_drift() {
        let mut sync = ClockSync::new(ClockSyncConfig::default(), 4);
        assert!(sync.pair_residual_bound_ns(Instant::ZERO).is_infinite());
        sync.run_round(7, Instant::ZERO);
        let b0 = sync.pair_residual_bound_ns(Instant::ZERO);
        let b1 = sync.pair_residual_bound_ns(Instant::ZERO + Duration::from_millis(90));
        assert!(b0.is_finite() && b0 > 0.0);
        assert!(b1 > b0, "drift grows the bound: {b0} -> {b1}");
        // Offsets are ~sub-ns draws, far inside the 3-sigma advert.
        for ap in 0..4 {
            assert!(sync.offset_ns(ap, Instant::ZERO).abs() <= b0);
        }
    }

    #[test]
    fn clock_sync_trajectory_is_deterministic_per_seed() {
        let mut a = ClockSync::new(ClockSyncConfig::default(), 3);
        let mut b = ClockSync::new(ClockSyncConfig::default(), 3);
        a.run_round(42, Instant::ZERO);
        b.run_round(42, Instant::ZERO);
        let t = Instant::ZERO + Duration::from_millis(10);
        for ap in 0..3 {
            assert_eq!(a.offset_ns(ap, t).to_bits(), b.offset_ns(ap, t).to_bits());
        }
        let mut c = ClockSync::new(ClockSyncConfig::default(), 3);
        c.run_round(43, Instant::ZERO);
        assert_ne!(a.offset_ns(0, t).to_bits(), c.offset_ns(0, t).to_bits());
    }

    #[test]
    fn tdoa_fleet_produces_sub_meter_fixes_at_blast_cadence() {
        let mut fleet = small_fleet(FleetRangingMode::Tdoa);
        let c0 = fleet.add_client(Point::new(8.0, 7.0));
        let c1 = fleet.add_client(Point::new(14.0, 12.0));
        let report = fleet.run_window(1, Duration::from_secs_f64(0.5));
        assert!(report.sync_rounds >= 4, "rounds: {}", report.sync_rounds);
        let fixes = report.fixes();
        // ~20 blasts per client in 500 ms at the 25 ms default cadence.
        assert!(fixes >= 30, "fixes: {fixes}");
        let med = report.median_pos_error_m().unwrap();
        assert!(med < 1.0, "median error {med} m");
        // Both clients got fixes and their fleet trackers converged.
        for c in [c0, c1] {
            assert!(fleet.tdoa_tracker(c).filter().is_initialized());
        }
        // No round-trip sweeps anywhere: shards carry only beacon/blast
        // airtime.
        for r in &report.shard_reports {
            assert!(r.outcomes.is_empty());
            assert!(r.utilization > 0.0, "beacons+blasts show in utilization");
        }
    }

    #[test]
    fn sync_disabled_tdoa_fleet_yields_no_fixes() {
        let mut cfg = FleetConfig::position(TrackerConfig::default(), FleetRangingMode::Tdoa);
        cfg.chronos = quick_chronos();
        cfg.clock = None;
        let mut fleet = FleetEngine::new(cfg, Environment::free_space(), ap_grid(4, 20.0));
        fleet.add_client(Point::new(8.0, 7.0));
        let report = fleet.run_window(1, Duration::from_secs_f64(0.3));
        assert_eq!(report.sync_rounds, 0);
        assert_eq!(report.fixes(), 0, "unsynchronized pairs are gated out");
        assert!(!report.tdoa_outcomes.is_empty(), "blasts still fire");
    }

    #[test]
    fn roundtrip_fleet_reports_shard_outcomes_and_handoffs() {
        let mut fleet = small_fleet(FleetRangingMode::RoundTrip);
        let c = fleet.add_client(Point::new(5.0, 5.0));
        assert_eq!(fleet.serving_ap(c), 0);
        let r1 = fleet.run_window(1, Duration::from_secs_f64(0.4));
        assert!(r1.shard_reports[0].outcomes.len() > 1, "client swept");
        assert_eq!(r1.handoffs, 0);
        // Walk the client into AP 1's cell; next window hands it off.
        fleet.set_client_pos(c, Point::new(17.0, 5.0));
        let r2 = fleet.run_window(1, Duration::from_secs_f64(0.4));
        assert_eq!(r2.handoffs, 1);
        assert_eq!(fleet.serving_ap(c), 1);
        assert!(
            r2.shard_reports[1]
                .outcomes
                .iter()
                .any(|o| { fleet.client_of_slot(1, o.client) == c && o.position.is_some() }),
            "client ranges at the new AP"
        );
    }
}
