//! End-to-end Chronos sessions: protocol sweep -> CSI synthesis -> ToF ->
//! localization.
//!
//! A [`ChronosSession`] pairs two simulated devices (paper §11's "two
//! Chronos devices in monitor mode"). Each call to [`ChronosSession::sweep`]
//! runs the channel-hopping protocol over the discrete-event link
//! simulation, synthesizes forward/reverse CSI at the exact instants the
//! protocol captured packets, and pushes everything through the estimation
//! pipeline — once per receive antenna, since localization needs a
//! time-of-flight per antenna (§8).
//!
//! The ACK antenna rotates across the exchanges of a band so every receive
//! antenna collects reciprocal (forward *and* reverse) measurements.

use crate::config::ChronosConfig;
use crate::error::ChronosError;
use crate::localization::{AntennaRange, LocalizerConfig, Position};
use crate::plan::PlanCache;
use crate::tof::{BandSample, TofEstimate, TofEstimator};
use chronos_link::sweep::{run_sweep, SweepConfig, SweepResult};
use chronos_link::time::Instant;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::ofdm::SubcarrierLayout;
use rand::Rng;
use std::sync::Arc;

/// Output of one localization sweep.
#[derive(Debug, Clone)]
pub struct SweepOutput {
    /// Per-receive-antenna time-of-flight estimates (index = antenna).
    pub tofs: Vec<Result<TofEstimate, ChronosError>>,
    /// The estimated transmitter position in the receiver's frame, when at
    /// least two antennas produced usable distances.
    pub position: Result<Position, ChronosError>,
    /// Every consistent localization candidate, best residual first. One
    /// entry for a well-conditioned 3+-antenna fix; the mirror pair when
    /// only two antennas produced usable ranges (callers with a motion
    /// prior disambiguate — see
    /// [`crate::tracker::PositionTracker::resolve`]). Empty when
    /// localization failed.
    pub position_candidates: Vec<Position>,
    /// Link-layer result (duration, loss counters, busy intervals).
    pub link: SweepResult,
}

impl SweepOutput {
    /// Distance estimate of antenna `idx`, if it succeeded, meters.
    pub fn distance_m(&self, idx: usize) -> Option<f64> {
        self.tofs
            .get(idx)
            .and_then(|r| r.as_ref().ok())
            .map(|t| t.distance_m)
    }

    /// Mean distance across successful antennas, meters.
    pub fn mean_distance_m(&self) -> Option<f64> {
        let ds: Vec<f64> = (0..self.tofs.len())
            .filter_map(|i| self.distance_m(i))
            .collect();
        if ds.is_empty() {
            None
        } else {
            Some(ds.iter().sum::<f64>() / ds.len() as f64)
        }
    }
}

/// A paired-device Chronos session.
#[derive(Debug, Clone)]
pub struct ChronosSession {
    /// Physical measurement context (devices, environment, noise).
    pub ctx: MeasurementContext,
    /// Link-layer sweep configuration.
    pub sweep_cfg: SweepConfig,
    /// Estimator configuration.
    pub config: ChronosConfig,
    /// Localizer configuration.
    pub localizer: LocalizerConfig,
    /// Subcarrier layout reported by the hardware.
    pub layout: SubcarrierLayout,
    /// Optional shared plan cache; when present the estimation hot path
    /// (NDFT operators, operator norms, lobe tables, spline plans) is
    /// borrowed from the cache instead of rebuilt per sweep. Many
    /// sessions may share one cache — see [`crate::service`].
    pub plans: Option<Arc<PlanCache>>,
}

impl ChronosSession {
    /// Creates a session with standard sweep and Intel 5300 reporting.
    pub fn new(ctx: MeasurementContext, config: ChronosConfig) -> Self {
        ChronosSession {
            ctx,
            sweep_cfg: SweepConfig::standard(),
            config,
            localizer: LocalizerConfig::default(),
            layout: SubcarrierLayout::intel5300(),
            plans: None,
        }
    }

    /// Creates a session whose estimator borrows precomputed plans from a
    /// shared [`PlanCache`]. Estimates are identical to an uncached
    /// session; only the redundant per-sweep plan construction goes away.
    pub fn with_cache(
        ctx: MeasurementContext,
        config: ChronosConfig,
        plans: Arc<PlanCache>,
    ) -> Self {
        let mut s = ChronosSession::new(ctx, config);
        s.plans = Some(plans);
        s
    }

    /// The estimator this session sweeps with (cache-aware).
    fn estimator(&self) -> TofEstimator {
        match &self.plans {
            Some(cache) => TofEstimator::with_cache(self.config.clone(), Arc::clone(cache)),
            None => TofEstimator::new(self.config.clone()),
        }
    }

    /// Runs one full localization sweep starting at `t`.
    pub fn sweep<R: Rng + ?Sized>(&self, rng: &mut R, t: Instant) -> SweepOutput {
        self.sweep_with(&self.sweep_cfg, rng, t)
    }

    /// Runs one sweep under an explicit link configuration — used by the
    /// multi-client service, whose airtime arbiter hands each client a
    /// contention-adjusted copy of its sweep config.
    pub fn sweep_with<R: Rng + ?Sized>(
        &self,
        sweep_cfg: &SweepConfig,
        rng: &mut R,
        t: Instant,
    ) -> SweepOutput {
        let mut pipeline = crate::pipeline::SweepPipeline::new();
        self.sweep_with_pipeline(sweep_cfg, rng, t, &mut pipeline)
    }

    /// [`ChronosSession::sweep_with`] over a reusable
    /// [`SweepPipeline`](crate::pipeline::SweepPipeline):
    /// the estimation hot path (splice → NDFT/ISTA → profile → first
    /// path → localization) borrows every intermediate from the
    /// pipeline's scratch arena instead of allocating per sweep. Results
    /// are bitwise identical to the scratch-free path — this *is* the
    /// implementation behind [`ChronosSession::sweep_with`], which merely
    /// hands in a throwaway pipeline. The engine keeps one pipeline per
    /// worker and feeds it every sweep (see [`crate::pipeline`]).
    pub fn sweep_with_pipeline<R: Rng + ?Sized>(
        &self,
        sweep_cfg: &SweepConfig,
        rng: &mut R,
        t: Instant,
        pipeline: &mut crate::pipeline::SweepPipeline,
    ) -> SweepOutput {
        let link = run_sweep(sweep_cfg, t, rng);
        let n_rx = self.ctx.responder.antennas.len();
        let plan = &sweep_cfg.plan;

        // Collect per-antenna, per-band measurement sets. The ACK antenna
        // rotates per exchange within each band.
        let mut per_antenna: Vec<Vec<BandSample>> = (0..n_rx)
            .map(|_| {
                (0..plan.len())
                    .map(|_| BandSample {
                        measurements: Vec::new(),
                    })
                    .collect()
            })
            .collect();

        let mut exchange_idx_per_band = vec![0usize; plan.len()];
        for op in &link.measurements {
            let band = &plan[op.band_index];
            let k = exchange_idx_per_band[op.band_index];
            exchange_idx_per_band[op.band_index] += 1;
            let antenna = k % n_rx;
            let m = self.ctx.measure_pair_at(
                rng,
                band,
                &self.layout,
                0,
                antenna,
                op.t_forward.as_secs_f64(),
                op.t_reverse.as_secs_f64(),
            );
            per_antenna[antenna][op.band_index].measurements.push(m);
        }

        // Estimate per antenna, over the pipeline's scratch arena.
        let estimator = self.estimator();
        let tofs: Vec<Result<TofEstimate, ChronosError>> = per_antenna
            .iter()
            .map(|bands| {
                let non_empty: Vec<BandSample> = bands
                    .iter()
                    .filter(|b| !b.measurements.is_empty())
                    .cloned()
                    .collect();
                if !link.complete && non_empty.len() < 5 {
                    return Err(ChronosError::SweepIncomplete {
                        measured: non_empty.len(),
                        planned: plan.len(),
                    });
                }
                pipeline.estimate(&estimator, &non_empty)
            })
            .collect();

        // Localize from per-antenna distances.
        let antenna_positions = self.ctx.responder.antennas.positions();
        let ranges: Vec<AntennaRange> = tofs
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                r.as_ref().ok().map(|t| AntennaRange {
                    antenna: antenna_positions[i],
                    distance_m: t.distance_m,
                })
            })
            .collect();
        let mut position_candidates = Vec::new();
        let located = if ranges.len() >= 2 {
            pipeline.locate_all(&ranges, &self.localizer, &mut position_candidates)
        } else {
            Err(ChronosError::NoConsistentPosition)
        };
        let position = match located {
            Ok(()) => Ok(position_candidates[0]),
            Err(e) => {
                position_candidates.clear();
                Err(e)
            }
        };

        SweepOutput {
            tofs,
            position,
            position_candidates,
            link,
        }
    }

    /// One-time constant calibration (paper §7 obs. 2): runs `n` sweeps at
    /// the session's current (known) geometry and sets
    /// `config.calibration_ns` so estimates match the true distance.
    /// Returns the calibration constant.
    pub fn calibrate<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> f64 {
        let true_d = self.ctx.initiator_pos.dist(self.ctx.responder_pos);
        let mut raw = Vec::new();
        self.config.calibration_ns = 0.0;
        for i in 0..n {
            let out = self.sweep(rng, Instant::from_millis(200 * i as u64));
            for tof in out.tofs.iter().flatten() {
                raw.push(tof.tof_ns);
            }
        }
        let offset = crate::ranging::calibrate_offset(&raw, true_d);
        if offset.is_finite() {
            self.config.calibration_ns = offset;
        }
        self.config.calibration_ns
    }

    /// Ground-truth distance between the device origins (simulation-only;
    /// used by the harness).
    pub fn truth_distance_m(&self) -> f64 {
        self.ctx.initiator_pos.dist(self.ctx.responder_pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::environment::Environment;
    use chronos_rf::geometry::Point;
    use chronos_rf::hardware::{ideal_device, AntennaArray, Intel5300};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ideal_session(d: f64) -> ChronosSession {
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            ideal_device(AntennaArray::single()),
            Point::new(0.0, 0.0),
            ideal_device(AntennaArray::laptop()),
            Point::new(d, 0.0),
        );
        ctx.snr.snr_at_1m_db = 60.0;
        let mut s = ChronosSession::new(ctx, ChronosConfig::ideal());
        s.sweep_cfg.medium.loss_prob = 0.0;
        s
    }

    fn intel_session(seed: u64, d: f64) -> ChronosSession {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            Intel5300::mobile(&mut rng),
            Point::new(0.0, 0.0),
            Intel5300::laptop(&mut rng),
            Point::new(d, 0.0),
        );
        ctx.snr.snr_at_1m_db = 45.0;
        ChronosSession::new(ctx, ChronosConfig::default())
    }

    #[test]
    fn ideal_sweep_recovers_distances() {
        let s = ideal_session(4.0);
        let mut rng = StdRng::seed_from_u64(1);
        let out = s.sweep(&mut rng, Instant::ZERO);
        assert!(out.link.complete);
        for (i, tof) in out.tofs.iter().enumerate() {
            let tof = tof.as_ref().expect("estimate");
            // True distance differs per antenna by the array offsets.
            let ant = s
                .ctx
                .responder
                .antennas
                .world_positions(s.ctx.responder_pos)[i];
            let truth = ant.dist(s.ctx.initiator_pos);
            assert!(
                (tof.distance_m - truth).abs() < 0.15,
                "antenna {i}: {} vs {truth}",
                tof.distance_m
            );
        }
    }

    #[test]
    fn ideal_sweep_localizes() {
        let s = ideal_session(3.0);
        let mut rng = StdRng::seed_from_u64(2);
        let out = s.sweep(&mut rng, Instant::ZERO);
        let pos = out.position.as_ref().expect("position");
        // Truth in the receiver's frame: initiator at -d on x. The
        // transmitter lies almost along the antenna baseline, the worst
        // geometry for lateral resolution, so the tolerance reflects the
        // paper's sub-meter (58 cm median) regime rather than cm-level.
        let truth = s.ctx.initiator_pos.sub(s.ctx.responder_pos);
        assert!(
            pos.point.dist(truth) < 1.2,
            "pos {:?} truth {:?}",
            pos.point,
            truth
        );
        // The raw per-antenna distances are tight even when lateral GDOP
        // smears the position; the position's radial component inherits a
        // little of that smear through the nonlinear fit.
        let md = out.mean_distance_m().unwrap();
        assert!((md - 3.0).abs() < 0.1, "mean distance {md}");
        assert!(
            (pos.point.norm() - 3.0).abs() < 0.4,
            "range {}",
            pos.point.norm()
        );
    }

    #[test]
    fn intel_session_needs_calibration() {
        // Uncalibrated Intel devices carry hardware delays: estimates are
        // biased; after calibrate() the bias is gone.
        let mut s = intel_session(3, 5.0);
        let mut rng = StdRng::seed_from_u64(4);
        let before = s.sweep(&mut rng, Instant::ZERO);
        let d_before = before.mean_distance_m().expect("estimate");
        let bias_before = (d_before - 5.0).abs();
        assert!(
            bias_before > 0.5,
            "expected hardware bias, got {bias_before}"
        );

        let offset = s.calibrate(&mut rng, 3);
        assert!(offset > 0.0, "offset {offset}");
        let after = s.sweep(&mut rng, Instant::from_millis(5000));
        let d_after = after.mean_distance_m().expect("estimate");
        assert!((d_after - 5.0).abs() < 0.3, "calibrated distance {d_after}");
    }

    #[test]
    fn antenna_rotation_covers_all_antennas() {
        let s = ideal_session(2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let out = s.sweep(&mut rng, Instant::ZERO);
        // All three antennas produced estimates (each got 1 exchange per
        // band with measures_per_band = 3).
        assert_eq!(out.tofs.len(), 3);
        assert!(out.tofs.iter().all(|t| t.is_ok()));
    }

    #[test]
    fn output_helpers() {
        let s = ideal_session(2.0);
        let mut rng = StdRng::seed_from_u64(6);
        let out = s.sweep(&mut rng, Instant::ZERO);
        assert!(out.distance_m(0).is_some());
        assert!(out.distance_m(99).is_none());
        let mean = out.mean_distance_m().unwrap();
        assert!((mean - 2.0).abs() < 0.3, "mean {mean}");
    }
}
