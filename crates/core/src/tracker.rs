//! Online per-client distance tracking and the adaptive sweep mode
//! machine.
//!
//! A full Chronos fix sweeps all 35 bands; at service scale that per-fix
//! airtime — not compute — caps how many clients one access point can
//! localize (the `EpochReport::sweeps_per_sec_airtime` ceiling). But a
//! client being ranged every ~100 ms does not *need* a cold-start fix
//! every epoch: its distance is a slowly varying physical quantity, and
//! a constant-velocity filter carries an excellent prior between fixes.
//! With that prior in hand, a **subset** of bands (chosen for low
//! grating-lobe ambiguity, [`chronos_rf::subset`]) suffices to refine
//! the estimate, and the innovation of each fix tells the scheduler when
//! the prior has gone stale and a full re-acquisition is due.
//!
//! The module has two layers:
//!
//! * [`DistanceFilter`] — a 2-state (distance, radial velocity) Kalman
//!   filter with a white-acceleration process model. It exposes the
//!   predicted distance, the innovation of each measurement, and the
//!   innovation variance, so callers can gate outliers in sigma units.
//! * [`ClientTracker`] — the per-client mode machine driving the
//!   scheduler: **ACQUIRE** (full sweep every epoch, converging the
//!   filter) ⇄ **TRACK** (subset sweeps, filter-fused output), with
//!   transitions on good-fix streaks, innovation spikes (client moved in
//!   a way the model cannot explain — e.g. picked up and carried), and
//!   repeated incomplete sweeps.
//!
//! Tuning guidance — what the knobs trade off and how to pick them —
//! lives in `docs/TRACKING.md`.

use crate::localization::Position;
use chronos_link::time::Instant;
use chronos_rf::geometry::Point;

/// Which sweep the scheduler should issue for a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrackMode {
    /// Cold or invalidated prior: sweep the full band plan.
    Acquire,
    /// Converged prior: sweep a low-ambiguity band subset and fuse the
    /// fix into the filter.
    Track,
}

/// Tracker policy knobs. Defaults suit a walking-speed indoor client
/// ranged every ~100 ms; `docs/TRACKING.md` documents the tuning story.
#[derive(Debug, Clone, Copy)]
pub struct TrackerConfig {
    /// White-acceleration process noise, m/s² (standard deviation). The
    /// model's allowance for unmodeled motion: higher tracks maneuvers
    /// faster but trusts single fixes more.
    pub process_noise_mps2: f64,
    /// Per-fix measurement noise, meters (standard deviation of one
    /// sweep's distance estimate; the paper's LOS regime is ~0.1–0.15 m).
    pub measurement_noise_m: f64,
    /// Innovation gate in standard deviations: a fix whose innovation
    /// exceeds `gate_sigma · √S` (S = innovation variance) is treated as
    /// a track break — the filter re-seeds and the mode machine drops to
    /// ACQUIRE.
    pub gate_sigma: f64,
    /// Consecutive successful full-sweep fixes required before leaving
    /// ACQUIRE for TRACK.
    pub acquire_fixes: usize,
    /// Consecutive missed fixes (incomplete sweep or no estimate)
    /// tolerated in TRACK before falling back to ACQUIRE.
    pub max_missed: usize,
    /// TRACK-mode subset size (bands per sweep). Sizes below ~8 trade
    /// steeply rising grating-lobe ambiguity for little extra airtime —
    /// see the subset-selection rationale in `docs/TRACKING.md`.
    pub track_bands: usize,
    /// Per-client anomaly-score accumulation knobs (see
    /// `docs/ADVERSARIAL.md`).
    pub anomaly: AnomalyConfig,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            process_noise_mps2: 2.0,
            measurement_noise_m: 0.15,
            gate_sigma: 5.0,
            acquire_fixes: 2,
            max_missed: 2,
            track_bands: 12,
            anomaly: AnomalyConfig::default(),
        }
    }
}

/// Knobs for the per-client anomaly score: an EWMA of normalized
/// innovation magnitudes plus a run counter of consecutive gated or
/// missed sweeps. The score is what the service-level quarantine policy
/// thresholds (see `chronos_core::service::QuarantineConfig` and the
/// math in `docs/ADVERSARIAL.md`).
#[derive(Debug, Clone, Copy)]
pub struct AnomalyConfig {
    /// EWMA smoothing factor in `(0, 1]`: the weight of the newest
    /// normalized innovation. Higher reacts faster, lower holds evidence
    /// longer.
    pub ewma_alpha: f64,
    /// Clamp on any single observation's contribution, in sigmas. A
    /// teleport-grade innovation is astronomical in sigma units; the
    /// clamp keeps one sample from saturating the score forever.
    pub sigma_clamp: f64,
    /// Score contribution per element of the current gate-miss run. Each
    /// consecutive gated or missed sweep adds this much on top of the
    /// EWMA term.
    pub miss_weight: f64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            ewma_alpha: 0.3,
            sigma_clamp: 16.0,
            miss_weight: 1.0,
        }
    }
}

/// Per-client anomaly evidence: the state behind the scalar score.
///
/// Deliberately *not* cleared on re-ACQUIRE: the gate re-seeds the filter
/// at a spoofed fix within one sweep, so any evidence tied to mode
/// transitions would vanish as fast as the attack creates it. Recovery is
/// instead governed by the EWMA decay under clean fixes plus the
/// service's quarantine hysteresis. A client that leaves and rejoins gets
/// a fresh tracker and therefore a zeroed score (tested in
/// `tests/engine.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyScore {
    /// EWMA of clamped normalized innovations, sigmas.
    pub ewma_sigmas: f64,
    /// Consecutive gated-or-missed sweeps ending now.
    pub run: usize,
}

impl AnomalyScore {
    fn fresh() -> Self {
        AnomalyScore {
            ewma_sigmas: 0.0,
            run: 0,
        }
    }

    /// The scalar score the quarantine policy thresholds:
    /// `ewma + miss_weight · run`.
    pub fn value(&self, cfg: &AnomalyConfig) -> f64 {
        self.ewma_sigmas + cfg.miss_weight * self.run as f64
    }

    fn absorb_sigmas(&mut self, cfg: &AnomalyConfig, sigmas: f64) {
        let clamped = sigmas.min(cfg.sigma_clamp);
        self.ewma_sigmas += cfg.ewma_alpha * (clamped - self.ewma_sigmas);
    }

    /// A fix passed the gate and was fused: absorb its (small) innovation
    /// and break any miss run.
    fn observe_fused(&mut self, cfg: &AnomalyConfig, sigmas: f64) {
        self.absorb_sigmas(cfg, sigmas);
        self.run = 0;
    }

    /// A fix tripped the gate: absorb the (clamped) spike and extend the
    /// run.
    fn observe_gated(&mut self, cfg: &AnomalyConfig, sigmas: f64) {
        self.absorb_sigmas(cfg, sigmas);
        self.run += 1;
    }

    /// The sweep produced no fusable fix: extend the run.
    fn observe_miss(&mut self) {
        self.run += 1;
    }
}

/// A 2-state constant-velocity Kalman filter over distance.
///
/// State `x = [d, v]` (meters, meters/second), white-acceleration
/// process noise of density `q²`, scalar distance measurements with
/// noise `r²`. Uninitialized until the first measurement seeds it.
///
/// ```
/// use chronos_core::tracker::DistanceFilter;
///
/// let mut f = DistanceFilter::new(2.0, 0.15);
/// f.update(5.0);                      // seed at the first fix
/// for _ in 0..20 {
///     f.predict(0.1);                 // 100 ms between fixes...
///     f.update(5.0 + 0.02);           // ...all near 5.02 m
/// }
/// let d = f.predicted_distance().unwrap();
/// assert!((d - 5.02).abs() < 0.05, "converged to {d}");
/// assert!(f.velocity().unwrap().abs() < 0.2, "static client");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DistanceFilter {
    /// Process noise (acceleration std), m/s².
    q: f64,
    /// Measurement noise std, m.
    r: f64,
    /// State estimate, present after the first update.
    state: Option<[f64; 2]>,
    /// Covariance [[p00, p01], [p01, p11]].
    p: [f64; 3],
}

/// One measurement's innovation statistics.
#[derive(Debug, Clone, Copy)]
pub struct Innovation {
    /// Measurement minus predicted distance, meters.
    pub nu_m: f64,
    /// Innovation variance `S = P₀₀ + R`, meters².
    pub s_m2: f64,
}

impl Innovation {
    /// The innovation in standard deviations, `|ν| / √S`.
    pub fn sigmas(&self) -> f64 {
        self.nu_m.abs() / self.s_m2.sqrt().max(1e-12)
    }
}

impl DistanceFilter {
    /// Creates an empty filter with the given noise standard deviations.
    pub fn new(process_noise_mps2: f64, measurement_noise_m: f64) -> Self {
        DistanceFilter {
            q: process_noise_mps2,
            r: measurement_noise_m,
            state: None,
            p: [0.0; 3],
        }
    }

    /// Whether the filter holds a state (a first fix has been fused).
    pub fn is_initialized(&self) -> bool {
        self.state.is_some()
    }

    /// Propagates the state `dt_s` seconds forward under the constant-
    /// velocity model, inflating covariance by the white-acceleration
    /// process noise. No-op before initialization.
    pub fn predict(&mut self, dt_s: f64) {
        let Some(x) = self.state.as_mut() else { return };
        let dt = dt_s.max(0.0);
        x[0] += x[1] * dt;
        let [p00, p01, p11] = self.p;
        let q2 = self.q * self.q;
        // P ← F P Fᵀ + Q, F = [[1, dt], [0, 1]],
        // Q = q² [[dt⁴/4, dt³/2], [dt³/2, dt²]].
        let n00 = p00 + 2.0 * dt * p01 + dt * dt * p11 + q2 * dt.powi(4) / 4.0;
        let n01 = p01 + dt * p11 + q2 * dt.powi(3) / 2.0;
        let n11 = p11 + q2 * dt * dt;
        self.p = [n00, n01, n11];
    }

    /// The innovation a measurement `z_m` *would* produce right now,
    /// without fusing it — the outlier gate reads this before deciding
    /// whether to call [`DistanceFilter::update`].
    pub fn innovation(&self, z_m: f64) -> Option<Innovation> {
        let x = self.state.as_ref()?;
        Some(Innovation {
            nu_m: z_m - x[0],
            s_m2: self.p[0] + self.r * self.r,
        })
    }

    /// Fuses a distance measurement. The first call seeds the state at
    /// the measurement with zero velocity and a large velocity variance;
    /// later calls run the standard scalar Kalman update. Returns the
    /// innovation (zero for the seeding fix).
    pub fn update(&mut self, z_m: f64) -> Innovation {
        match self.state.as_mut() {
            None => {
                self.state = Some([z_m, 0.0]);
                // Confident in position (one fix), agnostic in velocity.
                self.p = [self.r * self.r, 0.0, 4.0];
                Innovation {
                    nu_m: 0.0,
                    s_m2: self.r * self.r,
                }
            }
            Some(x) => {
                let [p00, p01, p11] = self.p;
                let s = p00 + self.r * self.r;
                let nu = z_m - x[0];
                let k0 = p00 / s;
                let k1 = p01 / s;
                x[0] += k0 * nu;
                x[1] += k1 * nu;
                // Joseph-free standard form: P ← (I − K H) P.
                self.p = [(1.0 - k0) * p00, (1.0 - k0) * p01, p11 - k1 * p01];
                Innovation { nu_m: nu, s_m2: s }
            }
        }
    }

    /// Current (post-predict) distance estimate, meters.
    pub fn predicted_distance(&self) -> Option<f64> {
        self.state.map(|x| x[0])
    }

    /// Current radial-velocity estimate, m/s (positive = receding).
    pub fn velocity(&self) -> Option<f64> {
        self.state.map(|x| x[1])
    }

    /// Distance-estimate standard deviation, meters.
    pub fn sigma_m(&self) -> Option<f64> {
        self.state.map(|_| self.p[0].max(0.0).sqrt())
    }

    /// Drops the state (track break): the next update re-seeds.
    pub fn reset(&mut self) {
        self.state = None;
        self.p = [0.0; 3];
    }

    /// Shifts the distance estimate by `delta_m` without touching
    /// velocity or covariance — a coordinate-frame change, not new
    /// information. No-op before initialization. Used by fleet handoff
    /// to re-express a migrated track in the new serving AP's frame.
    pub fn shift(&mut self, delta_m: f64) {
        if let Some(x) = self.state.as_mut() {
            x[0] += delta_m;
        }
    }
}

/// What one epoch's fix did to a client's track.
#[derive(Debug, Clone, Copy)]
pub struct TrackUpdate {
    /// Mode the sweep was issued under.
    pub mode: TrackMode,
    /// Mode for the *next* epoch, after this fix was absorbed.
    pub next_mode: TrackMode,
    /// Filter prediction for this epoch, before fusing the fix, meters.
    pub predicted_m: Option<f64>,
    /// Fused (post-update) distance, meters — the tracker's output.
    pub fused_m: Option<f64>,
    /// Innovation of the fix, when one was fused or gated.
    pub innovation: Option<Innovation>,
    /// Whether the fix was rejected by the innovation gate (track break).
    pub gated: bool,
    /// The client's anomaly score after absorbing this sweep.
    pub anomaly_score: f64,
}

/// Per-client tracking state machine: a [`DistanceFilter`] plus the
/// ACQUIRE ⇄ TRACK mode logic the adaptive scheduler consults.
#[derive(Debug, Clone)]
pub struct ClientTracker {
    cfg: TrackerConfig,
    filter: DistanceFilter,
    mode: TrackMode,
    /// Consecutive successful fixes in the current ACQUIRE stint.
    good_streak: usize,
    /// Consecutive missed fixes in the current TRACK stint.
    missed: usize,
    /// Simulated time of the last absorbed epoch.
    last_t: Option<Instant>,
    /// Accumulated anomaly evidence (survives re-ACQUIRE by design).
    anomaly: AnomalyScore,
}

impl ClientTracker {
    /// A fresh tracker in ACQUIRE mode.
    pub fn new(cfg: TrackerConfig) -> Self {
        ClientTracker {
            filter: DistanceFilter::new(cfg.process_noise_mps2, cfg.measurement_noise_m),
            cfg,
            mode: TrackMode::Acquire,
            good_streak: 0,
            missed: 0,
            last_t: None,
            anomaly: AnomalyScore::fresh(),
        }
    }

    /// The mode the next sweep should be issued under.
    pub fn mode(&self) -> TrackMode {
        self.mode
    }

    /// Consecutive missed fixes in the current TRACK stint.
    pub fn missed(&self) -> usize {
        self.missed
    }

    /// Consecutive successful fixes in the current ACQUIRE stint.
    pub fn good_streak(&self) -> usize {
        self.good_streak
    }

    /// The accumulated anomaly evidence.
    pub fn anomaly(&self) -> AnomalyScore {
        self.anomaly
    }

    /// The scalar anomaly score the quarantine policy thresholds.
    pub fn anomaly_score(&self) -> f64 {
        self.anomaly.value(&self.cfg.anomaly)
    }

    /// Drops back to ACQUIRE, explicitly clearing the mode machine's
    /// transient counters (`good_streak`, `missed`) so they cannot leak
    /// into the next stint. The anomaly evidence is deliberately *not*
    /// cleared here — see [`AnomalyScore`].
    fn reacquire(&mut self) {
        self.mode = TrackMode::Acquire;
        self.good_streak = 0;
        self.missed = 0;
    }

    /// Bands the next sweep should cover: `None` = the full plan
    /// (ACQUIRE), `Some(k)` = a k-band subset (TRACK).
    pub fn requested_bands(&self) -> Option<usize> {
        match self.mode {
            TrackMode::Acquire => None,
            TrackMode::Track => Some(self.cfg.track_bands),
        }
    }

    /// Read access to the underlying filter.
    pub fn filter(&self) -> &DistanceFilter {
        &self.filter
    }

    /// Absorbs one epoch's fix at simulated time `t`: advances the filter
    /// by the elapsed time, applies the innovation gate, fuses or rejects
    /// the measurement, and steps the mode machine.
    ///
    /// `fix_m` is the sweep's distance estimate (`None` when the sweep
    /// produced no usable estimate); `link_complete` is whether the
    /// link-layer sweep covered its whole plan.
    pub fn observe(&mut self, t: Instant, fix_m: Option<f64>, link_complete: bool) -> TrackUpdate {
        let mode = self.mode;
        let dt_s = self
            .last_t
            .map(|prev| t.saturating_since(prev).as_secs_f64())
            .unwrap_or(0.0);
        self.last_t = Some(t);
        self.filter.predict(dt_s);
        let predicted_m = self.filter.predicted_distance();

        let mut gated = false;
        let mut innovation = None;
        match fix_m {
            Some(z) if link_complete => {
                let pre = self.filter.innovation(z);
                if let Some(inn) = pre {
                    if inn.sigmas() > self.cfg.gate_sigma {
                        // Track break: the world moved in a way the model
                        // cannot explain. Re-seed at the new fix so the
                        // next ACQUIRE stint converges there.
                        gated = true;
                        innovation = Some(inn);
                        self.anomaly.observe_gated(&self.cfg.anomaly, inn.sigmas());
                        self.filter.reset();
                        self.filter.update(z);
                        self.reacquire();
                    }
                }
                if !gated {
                    let inn = self.filter.update(z);
                    self.anomaly.observe_fused(&self.cfg.anomaly, inn.sigmas());
                    innovation = Some(inn);
                    self.missed = 0;
                    self.good_streak += 1;
                    if self.mode == TrackMode::Acquire && self.good_streak >= self.cfg.acquire_fixes
                    {
                        self.mode = TrackMode::Track;
                        self.missed = 0;
                    }
                }
            }
            _ => {
                // No estimate, or an incomplete sweep: a miss. An
                // incomplete subset sweep can still estimate from the
                // bands that survived, but those degraded fixes carry
                // elevated ghost-peak risk, so they are not fused —
                // repeated incomplete sweeps re-ACQUIRE instead.
                self.anomaly.observe_miss();
                self.good_streak = 0;
                self.missed += 1;
                if self.mode == TrackMode::Track && self.missed >= self.cfg.max_missed {
                    self.reacquire();
                }
            }
        }

        TrackUpdate {
            mode,
            next_mode: self.mode,
            predicted_m,
            fused_m: self.filter.predicted_distance(),
            innovation,
            gated,
            anomaly_score: self.anomaly_score(),
        }
    }
}

/// One 2-D position measurement's innovation statistics.
#[derive(Debug, Clone, Copy)]
pub struct PositionInnovation {
    /// Measurement minus predicted position, meters.
    pub nu: Point,
    /// Innovation variance of the x axis, meters².
    pub s_x_m2: f64,
    /// Innovation variance of the y axis, meters².
    pub s_y_m2: f64,
}

impl PositionInnovation {
    /// The innovation's Mahalanobis distance in standard deviations,
    /// `√(νₓ²/Sₓ + ν_y²/S_y)` — the position-space generalization of
    /// [`Innovation::sigmas`].
    pub fn sigmas(&self) -> f64 {
        let sx = self.s_x_m2.max(1e-12);
        let sy = self.s_y_m2.max(1e-12);
        (self.nu.x * self.nu.x / sx + self.nu.y * self.nu.y / sy).sqrt()
    }
}

/// A 4-state (x, y, vx, vy) constant-velocity Kalman filter over 2-D
/// position — the planar generalization of [`DistanceFilter`].
///
/// Under a white-acceleration process model with isotropic noise and
/// per-axis position measurements, the 4×4 covariance stays block
/// diagonal per axis, so the filter decomposes exactly into two
/// independent [`DistanceFilter`]s sharing their scalar update math.
///
/// ```
/// use chronos_core::tracker::PositionFilter;
/// use chronos_rf::geometry::Point;
///
/// let mut f = PositionFilter::new(2.0, 0.2);
/// f.update(Point::new(3.0, 4.0));          // seed at the first fix
/// for _ in 0..20 {
///     f.predict(0.1);                      // 100 ms between fixes...
///     f.update(Point::new(3.0, 4.05));     // ...all near (3, 4.05)
/// }
/// let p = f.predicted_position().unwrap();
/// assert!(p.dist(Point::new(3.0, 4.05)) < 0.05, "converged to {p:?}");
/// assert!(f.velocity().unwrap().norm() < 0.3, "static client");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PositionFilter {
    x: DistanceFilter,
    y: DistanceFilter,
}

impl PositionFilter {
    /// Creates an empty filter with the given noise standard deviations
    /// (process noise in m/s² per axis, measurement noise in meters per
    /// axis).
    pub fn new(process_noise_mps2: f64, measurement_noise_m: f64) -> Self {
        PositionFilter {
            x: DistanceFilter::new(process_noise_mps2, measurement_noise_m),
            y: DistanceFilter::new(process_noise_mps2, measurement_noise_m),
        }
    }

    /// Whether the filter holds a state (a first fix has been fused).
    pub fn is_initialized(&self) -> bool {
        self.x.is_initialized()
    }

    /// Propagates the state `dt_s` seconds forward under the constant-
    /// velocity model. No-op before initialization.
    pub fn predict(&mut self, dt_s: f64) {
        self.x.predict(dt_s);
        self.y.predict(dt_s);
    }

    /// The innovation a position measurement *would* produce right now,
    /// without fusing it — the outlier gate reads this first.
    pub fn innovation(&self, z: Point) -> Option<PositionInnovation> {
        let ix = self.x.innovation(z.x)?;
        let iy = self.y.innovation(z.y)?;
        Some(PositionInnovation {
            nu: Point::new(ix.nu_m, iy.nu_m),
            s_x_m2: ix.s_m2,
            s_y_m2: iy.s_m2,
        })
    }

    /// Fuses a position measurement; the first call seeds the state at
    /// the measurement with zero velocity. Returns the innovation.
    pub fn update(&mut self, z: Point) -> PositionInnovation {
        let ix = self.x.update(z.x);
        let iy = self.y.update(z.y);
        PositionInnovation {
            nu: Point::new(ix.nu_m, iy.nu_m),
            s_x_m2: ix.s_m2,
            s_y_m2: iy.s_m2,
        }
    }

    /// Current (post-predict) position estimate, meters.
    pub fn predicted_position(&self) -> Option<Point> {
        Some(Point::new(
            self.x.predicted_distance()?,
            self.y.predicted_distance()?,
        ))
    }

    /// Current velocity estimate, m/s.
    pub fn velocity(&self) -> Option<Point> {
        Some(Point::new(self.x.velocity()?, self.y.velocity()?))
    }

    /// Position-estimate standard deviation, meters (RSS of the two axis
    /// sigmas).
    pub fn sigma_m(&self) -> Option<f64> {
        let sx = self.x.sigma_m()?;
        let sy = self.y.sigma_m()?;
        Some(sx.hypot(sy))
    }

    /// Drops the state (track break): the next update re-seeds.
    pub fn reset(&mut self) {
        self.x.reset();
        self.y.reset();
    }

    /// Translates the position estimate by `delta` without touching
    /// velocity or covariance — a pure coordinate-frame change (the
    /// client did not move; the origin did). No-op before
    /// initialization.
    pub fn translate(&mut self, delta: Point) {
        self.x.shift(delta.x);
        self.y.shift(delta.y);
    }
}

/// What one epoch's position fix did to a client's track.
#[derive(Debug, Clone, Copy)]
pub struct PositionTrackUpdate {
    /// Mode the sweep was issued under.
    pub mode: TrackMode,
    /// Mode for the *next* epoch, after this fix was absorbed.
    pub next_mode: TrackMode,
    /// Filter prediction for this epoch, before fusing the fix.
    pub predicted: Option<Point>,
    /// Fused (post-update) position — the tracker's output.
    pub fused: Option<Point>,
    /// Innovation of the fix, when one was fused or gated.
    pub innovation: Option<PositionInnovation>,
    /// Whether the fix was rejected by the innovation gate (track break).
    pub gated: bool,
    /// The client's anomaly score after absorbing this sweep.
    pub anomaly_score: f64,
}

/// Per-client 2-D position tracking state machine: a [`PositionFilter`]
/// plus the same ACQUIRE ⇄ TRACK mode logic as [`ClientTracker`], with
/// innovation gating in position space and mirror-ambiguity resolution
/// against the motion prior (paper §8's mobility heuristic).
#[derive(Debug, Clone)]
pub struct PositionTracker {
    cfg: TrackerConfig,
    filter: PositionFilter,
    mode: TrackMode,
    good_streak: usize,
    missed: usize,
    last_t: Option<Instant>,
    /// Accumulated anomaly evidence (survives re-ACQUIRE by design).
    anomaly: AnomalyScore,
}

impl PositionTracker {
    /// A fresh tracker in ACQUIRE mode. The [`TrackerConfig`] noise knobs
    /// are interpreted per axis; `gate_sigma` gates the 2-D Mahalanobis
    /// innovation distance.
    pub fn new(cfg: TrackerConfig) -> Self {
        PositionTracker {
            filter: PositionFilter::new(cfg.process_noise_mps2, cfg.measurement_noise_m),
            cfg,
            mode: TrackMode::Acquire,
            good_streak: 0,
            missed: 0,
            last_t: None,
            anomaly: AnomalyScore::fresh(),
        }
    }

    /// The mode the next sweep should be issued under.
    pub fn mode(&self) -> TrackMode {
        self.mode
    }

    /// Consecutive missed fixes in the current TRACK stint.
    pub fn missed(&self) -> usize {
        self.missed
    }

    /// Consecutive successful fixes in the current ACQUIRE stint.
    pub fn good_streak(&self) -> usize {
        self.good_streak
    }

    /// The accumulated anomaly evidence.
    pub fn anomaly(&self) -> AnomalyScore {
        self.anomaly
    }

    /// The scalar anomaly score the quarantine policy thresholds.
    pub fn anomaly_score(&self) -> f64 {
        self.anomaly.value(&self.cfg.anomaly)
    }

    /// Drops back to ACQUIRE, explicitly clearing the mode machine's
    /// transient counters — see [`ClientTracker::reacquire`]; the anomaly
    /// evidence survives.
    fn reacquire(&mut self) {
        self.mode = TrackMode::Acquire;
        self.good_streak = 0;
        self.missed = 0;
    }

    /// Bands the next sweep should cover: `None` = the full plan
    /// (ACQUIRE), `Some(k)` = a k-band subset (TRACK).
    pub fn requested_bands(&self) -> Option<usize> {
        match self.mode {
            TrackMode::Acquire => None,
            TrackMode::Track => Some(self.cfg.track_bands),
        }
    }

    /// Read access to the underlying filter.
    pub fn filter(&self) -> &PositionFilter {
        &self.filter
    }

    /// Re-expresses the track in a new local frame: `delta` is
    /// `old_origin − new_origin` in world coordinates and is added to
    /// the position estimate. Velocity, covariance, mode machine, and
    /// anomaly evidence are untouched — a handoff is a coordinate
    /// change, not a track break.
    pub fn translate(&mut self, delta: Point) {
        self.filter.translate(delta);
    }

    /// Picks the localization candidate to fuse from a best-first list
    /// (see [`crate::localization::locate_all`]).
    ///
    /// A two-antenna fix is ambiguous between a point and its mirror
    /// across the antenna baseline; once the filter holds a motion prior,
    /// the candidate nearest the predicted position wins (§8's mobility
    /// disambiguation — the true point moves consistently with the prior,
    /// the mirror jumps). Cold trackers fall back to the solver's
    /// best-residual ordering.
    pub fn resolve(&self, candidates: &[Position]) -> Option<Position> {
        if candidates.is_empty() {
            return None;
        }
        match self.filter.predicted_position() {
            None => Some(candidates[0]),
            Some(prior) => candidates
                .iter()
                .min_by(|a, b| {
                    a.point
                        .dist(prior)
                        .partial_cmp(&b.point.dist(prior))
                        .unwrap()
                })
                .copied(),
        }
    }

    /// Absorbs one epoch's position fix at simulated time `t`: advances
    /// the filter by the elapsed time, applies the innovation gate in
    /// position space, fuses or rejects the measurement, and steps the
    /// mode machine. Semantics mirror [`ClientTracker::observe`].
    pub fn observe(
        &mut self,
        t: Instant,
        fix: Option<Point>,
        link_complete: bool,
    ) -> PositionTrackUpdate {
        let mode = self.mode;
        let dt_s = self
            .last_t
            .map(|prev| t.saturating_since(prev).as_secs_f64())
            .unwrap_or(0.0);
        self.last_t = Some(t);
        self.filter.predict(dt_s);
        let predicted = self.filter.predicted_position();

        let mut gated = false;
        let mut innovation = None;
        match fix {
            Some(z) if link_complete => {
                let pre = self.filter.innovation(z);
                if let Some(inn) = pre {
                    if inn.sigmas() > self.cfg.gate_sigma {
                        // Track break: re-seed at the new fix so the next
                        // ACQUIRE stint converges there.
                        gated = true;
                        innovation = Some(inn);
                        self.anomaly.observe_gated(&self.cfg.anomaly, inn.sigmas());
                        self.filter.reset();
                        self.filter.update(z);
                        self.reacquire();
                    }
                }
                if !gated {
                    let inn = self.filter.update(z);
                    self.anomaly.observe_fused(&self.cfg.anomaly, inn.sigmas());
                    innovation = Some(inn);
                    self.missed = 0;
                    self.good_streak += 1;
                    if self.mode == TrackMode::Acquire && self.good_streak >= self.cfg.acquire_fixes
                    {
                        self.mode = TrackMode::Track;
                        self.missed = 0;
                    }
                }
            }
            _ => {
                // No fix (localization failed, e.g. NLOS antennas
                // rejected below the two-range floor) or an incomplete
                // sweep: a miss. Degraded fixes are not fused.
                self.anomaly.observe_miss();
                self.good_streak = 0;
                self.missed += 1;
                if self.mode == TrackMode::Track && self.missed >= self.cfg.max_missed {
                    self.reacquire();
                }
            }
        }

        PositionTrackUpdate {
            mode,
            next_mode: self.mode,
            predicted,
            fused: self.filter.predicted_position(),
            innovation,
            gated,
            anomaly_score: self.anomaly_score(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_link::time::Duration;

    fn at(epoch: u64) -> Instant {
        Instant::ZERO + Duration::from_millis(100 * epoch)
    }

    #[test]
    fn filter_converges_on_static_distance() {
        let mut f = DistanceFilter::new(2.0, 0.15);
        f.update(7.0);
        for i in 0..30 {
            f.predict(0.1);
            // Deterministic ±5 cm dither around 7 m.
            let z = 7.0 + if i % 2 == 0 { 0.05 } else { -0.05 };
            f.update(z);
        }
        assert!((f.predicted_distance().unwrap() - 7.0).abs() < 0.05);
        assert!(f.velocity().unwrap().abs() < 0.1);
        assert!(f.sigma_m().unwrap() < 0.15);
    }

    #[test]
    fn filter_learns_constant_velocity() {
        let mut f = DistanceFilter::new(2.0, 0.1);
        // Client receding at 1.5 m/s, fixed 100 ms cadence.
        for i in 0..40 {
            f.predict(if i == 0 { 0.0 } else { 0.1 });
            f.update(3.0 + 1.5 * 0.1 * i as f64);
        }
        let v = f.velocity().unwrap();
        assert!((v - 1.5).abs() < 0.2, "velocity {v}");
        // Prediction leads the last fix by about one step's motion.
        f.predict(0.1);
        let d = f.predicted_distance().unwrap();
        let expect = 3.0 + 1.5 * 0.1 * 40.0;
        assert!((d - expect).abs() < 0.1, "predicted {d} expected {expect}");
    }

    #[test]
    fn innovation_is_measured_in_sigmas() {
        let mut f = DistanceFilter::new(1.0, 0.1);
        f.update(5.0);
        f.predict(0.1);
        let small = f.innovation(5.02).unwrap();
        let large = f.innovation(9.0).unwrap();
        assert!(small.sigmas() < 1.0);
        assert!(large.sigmas() > 10.0);
        assert!(large.nu_m > 3.9);
    }

    #[test]
    fn tracker_promotes_after_streak_and_requests_subset() {
        let mut t = ClientTracker::new(TrackerConfig::default());
        assert_eq!(t.mode(), TrackMode::Acquire);
        assert_eq!(t.requested_bands(), None);
        let u0 = t.observe(at(0), Some(4.0), true);
        assert_eq!(u0.next_mode, TrackMode::Acquire, "one fix is not a streak");
        let u1 = t.observe(at(1), Some(4.01), true);
        assert_eq!(u1.next_mode, TrackMode::Track);
        assert_eq!(
            t.requested_bands(),
            Some(TrackerConfig::default().track_bands)
        );
    }

    #[test]
    fn innovation_spike_forces_reacquire_and_reseeds() {
        let mut t = ClientTracker::new(TrackerConfig::default());
        for i in 0..4 {
            t.observe(at(i), Some(4.0), true);
        }
        assert_eq!(t.mode(), TrackMode::Track);
        // Teleport: 4 m → 12 m between epochs.
        let u = t.observe(at(4), Some(12.0), true);
        assert!(u.gated, "teleport must trip the gate");
        assert_eq!(u.next_mode, TrackMode::Acquire);
        // Filter re-seeded at the new location.
        assert!((t.filter().predicted_distance().unwrap() - 12.0).abs() < 1e-9);
        // Two good fixes at the new spot re-promote.
        t.observe(at(5), Some(12.0), true);
        let u = t.observe(at(6), Some(12.01), true);
        assert_eq!(u.next_mode, TrackMode::Track);
    }

    #[test]
    fn repeated_misses_force_reacquire() {
        let cfg = TrackerConfig {
            max_missed: 2,
            ..Default::default()
        };
        let mut t = ClientTracker::new(cfg);
        t.observe(at(0), Some(6.0), true);
        t.observe(at(1), Some(6.0), true);
        assert_eq!(t.mode(), TrackMode::Track);
        let u = t.observe(at(2), None, false);
        assert_eq!(u.next_mode, TrackMode::Track, "one miss is tolerated");
        let u = t.observe(at(3), None, false);
        assert_eq!(u.next_mode, TrackMode::Acquire, "second miss demotes");
    }

    #[test]
    fn incomplete_track_sweeps_are_misses_even_with_estimates() {
        // A chronically lossy medium: subset sweeps keep producing
        // estimates from partial band coverage. Those degraded fixes
        // must not be fused, and repeated incomplete sweeps re-ACQUIRE.
        let cfg = TrackerConfig {
            max_missed: 2,
            ..Default::default()
        };
        let mut t = ClientTracker::new(cfg);
        t.observe(at(0), Some(6.0), true);
        t.observe(at(1), Some(6.0), true);
        assert_eq!(t.mode(), TrackMode::Track);
        let before = t.filter().predicted_distance().unwrap();
        let u = t.observe(at(2), Some(6.4), false);
        assert!(u.innovation.is_none(), "degraded fix must not be fused");
        assert_eq!(
            t.filter().predicted_distance().unwrap().to_bits(),
            before.to_bits()
        );
        let u = t.observe(at(3), Some(6.4), false);
        assert_eq!(
            u.next_mode,
            TrackMode::Acquire,
            "repeated incomplete sweeps re-acquire"
        );
    }

    #[test]
    fn incomplete_acquire_sweep_does_not_count_toward_streak() {
        let mut t = ClientTracker::new(TrackerConfig::default());
        t.observe(at(0), Some(5.0), true);
        // Incomplete sweep in ACQUIRE: estimate (if any) is not trusted.
        let u = t.observe(at(1), Some(5.0), false);
        assert_eq!(u.next_mode, TrackMode::Acquire);
        t.observe(at(2), Some(5.0), true);
        let u = t.observe(at(3), Some(5.0), true);
        assert_eq!(u.next_mode, TrackMode::Track);
    }

    #[test]
    fn position_filter_learns_planar_velocity() {
        let mut f = PositionFilter::new(2.0, 0.1);
        // Walker moving at (0.8, -0.6) m/s, fixed 100 ms cadence.
        for i in 0..40 {
            f.predict(if i == 0 { 0.0 } else { 0.1 });
            let t = 0.1 * i as f64;
            f.update(Point::new(1.0 + 0.8 * t, 5.0 - 0.6 * t));
        }
        let v = f.velocity().unwrap();
        assert!((v.x - 0.8).abs() < 0.2, "vx {}", v.x);
        assert!((v.y + 0.6).abs() < 0.2, "vy {}", v.y);
        assert!(f.sigma_m().unwrap() < 0.2);
    }

    #[test]
    fn position_innovation_is_mahalanobis() {
        let mut f = PositionFilter::new(1.0, 0.1);
        f.update(Point::new(2.0, 2.0));
        f.predict(0.1);
        let small = f.innovation(Point::new(2.02, 1.99)).unwrap();
        let large = f.innovation(Point::new(6.0, -1.0)).unwrap();
        assert!(small.sigmas() < 1.0);
        assert!(large.sigmas() > 10.0);
        // Moving on one axis only still registers.
        let one_axis = f.innovation(Point::new(2.0, 5.0)).unwrap();
        assert!(one_axis.sigmas() > 10.0);
    }

    #[test]
    fn position_tracker_promotes_gates_and_reacquires() {
        let mut t = PositionTracker::new(TrackerConfig::default());
        assert_eq!(t.mode(), TrackMode::Acquire);
        assert_eq!(t.requested_bands(), None);
        t.observe(at(0), Some(Point::new(3.0, 1.0)), true);
        let u = t.observe(at(1), Some(Point::new(3.01, 1.0)), true);
        assert_eq!(u.next_mode, TrackMode::Track);
        assert_eq!(
            t.requested_bands(),
            Some(TrackerConfig::default().track_bands)
        );
        // Teleport across the room: gate trips, filter re-seeds.
        let u = t.observe(at(2), Some(Point::new(-5.0, 8.0)), true);
        assert!(u.gated);
        assert_eq!(u.next_mode, TrackMode::Acquire);
        let p = t.filter().predicted_position().unwrap();
        assert!(p.dist(Point::new(-5.0, 8.0)) < 1e-9);
    }

    #[test]
    fn position_tracker_misses_demote() {
        let cfg = TrackerConfig {
            max_missed: 2,
            ..Default::default()
        };
        let mut t = PositionTracker::new(cfg);
        t.observe(at(0), Some(Point::new(1.0, 1.0)), true);
        t.observe(at(1), Some(Point::new(1.0, 1.0)), true);
        assert_eq!(t.mode(), TrackMode::Track);
        t.observe(at(2), None, true);
        let u = t.observe(at(3), None, true);
        assert_eq!(u.next_mode, TrackMode::Acquire);
    }

    #[test]
    fn resolve_prefers_candidate_near_motion_prior() {
        use crate::localization::Position;
        let mk = |x: f64, y: f64, r: f64| Position {
            point: Point::new(x, y),
            residual_m: r,
            n_used: 2,
        };
        let mut t = PositionTracker::new(TrackerConfig::default());
        // Cold tracker: best residual wins regardless of geometry.
        let cold = t
            .resolve(&[mk(1.0, 2.0, 0.01), mk(1.0, -2.0, 0.02)])
            .unwrap();
        assert!(cold.point.dist(Point::new(1.0, 2.0)) < 1e-9);
        assert!(t.resolve(&[]).is_none());
        // Warm tracker near (1, -2): the mirror pair resolves to the
        // candidate consistent with the prior even when its residual ties.
        t.observe(at(0), Some(Point::new(1.0, -2.0)), true);
        t.observe(at(1), Some(Point::new(1.0, -2.0)), true);
        let warm = t
            .resolve(&[mk(1.0, 2.0, 0.01), mk(1.0, -2.0, 0.01)])
            .unwrap();
        assert!(warm.point.dist(Point::new(1.0, -2.0)) < 1e-9);
    }

    #[test]
    fn reacquire_clears_transient_counters_on_gate() {
        // Satellite: the gated path's counter reset is explicit
        // (`reacquire`) and observable — no stale miss/streak state can
        // leak into the next ACQUIRE stint.
        let mut t = ClientTracker::new(TrackerConfig::default());
        for i in 0..4 {
            t.observe(at(i), Some(4.0), true);
        }
        assert_eq!(t.mode(), TrackMode::Track);
        t.observe(at(4), None, false); // bank one miss in TRACK
        assert_eq!(t.missed(), 1);
        let u = t.observe(at(5), Some(12.0), true); // gate trips
        assert!(u.gated);
        assert_eq!(t.missed(), 0, "gate must clear the miss counter");
        assert_eq!(t.good_streak(), 0, "gate must clear the streak");
        // The cleared miss counter means a single TRACK-stint miss from a
        // past life cannot combine with one fresh miss to demote early.
        t.observe(at(6), Some(12.0), true);
        t.observe(at(7), Some(12.0), true);
        assert_eq!(t.mode(), TrackMode::Track);
        let u = t.observe(at(8), None, false);
        assert_eq!(u.next_mode, TrackMode::Track, "fresh stint, fresh budget");
    }

    #[test]
    fn reacquire_clears_counters_on_miss_demotion() {
        let cfg = TrackerConfig {
            max_missed: 2,
            ..Default::default()
        };
        let mut t = ClientTracker::new(cfg);
        t.observe(at(0), Some(6.0), true);
        t.observe(at(1), Some(6.0), true);
        assert_eq!(t.mode(), TrackMode::Track);
        t.observe(at(2), None, false);
        t.observe(at(3), None, false);
        assert_eq!(t.mode(), TrackMode::Acquire);
        assert_eq!(t.missed(), 0, "demotion must reset the miss counter");
        assert_eq!(t.good_streak(), 0);

        // Position tracker mirrors the contract.
        let mut p = PositionTracker::new(cfg);
        p.observe(at(0), Some(Point::new(1.0, 1.0)), true);
        p.observe(at(1), Some(Point::new(1.0, 1.0)), true);
        assert_eq!(p.mode(), TrackMode::Track);
        p.observe(at(2), None, true);
        p.observe(at(3), None, true);
        assert_eq!(p.mode(), TrackMode::Acquire);
        assert_eq!(p.missed(), 0);
        assert_eq!(p.good_streak(), 0);
    }

    #[test]
    fn anomaly_score_survives_reacquire_and_decays_clean() {
        let mut t = ClientTracker::new(TrackerConfig::default());
        for i in 0..4 {
            t.observe(at(i), Some(4.0), true);
        }
        let baseline = t.anomaly_score();
        assert!(baseline < 1.0, "clean track must score low: {baseline}");
        // A teleport trips the gate: score jumps and survives the mode
        // drop (the transient counters reset, the evidence does not).
        let u = t.observe(at(4), Some(12.0), true);
        assert!(u.gated);
        assert_eq!(u.next_mode, TrackMode::Acquire);
        let spiked = t.anomaly_score();
        assert!(spiked > 3.0, "gate spike must register: {spiked}");
        assert_eq!(t.anomaly().run, 1);
        assert_eq!(t.missed(), 0, "counters reset, score kept");
        // Clean fixes at the new location decay the EWMA and break the run.
        let mut prev = spiked;
        for i in 5..15 {
            t.observe(at(i), Some(12.0), true);
            assert!(t.anomaly_score() <= prev + 1e-12);
            prev = t.anomaly_score();
        }
        assert_eq!(t.anomaly().run, 0);
        assert!(t.anomaly_score() < 1.0, "score must decay: {}", prev);
    }

    #[test]
    fn anomaly_run_accumulates_misses() {
        let cfg = TrackerConfig::default();
        let mut t = ClientTracker::new(cfg);
        t.observe(at(0), Some(5.0), true);
        for i in 1..=4 {
            t.observe(at(i), None, false);
            assert_eq!(t.anomaly().run, i as usize);
        }
        // Each miss adds miss_weight to the score.
        assert!(t.anomaly_score() >= 4.0 * cfg.anomaly.miss_weight);
        // One clean fix breaks the run.
        t.observe(at(5), Some(5.0), true);
        assert_eq!(t.anomaly().run, 0);
    }

    #[test]
    fn position_anomaly_mirrors_distance_semantics() {
        let mut t = PositionTracker::new(TrackerConfig::default());
        for i in 0..4 {
            t.observe(at(i), Some(Point::new(2.0, 3.0)), true);
        }
        assert!(t.anomaly_score() < 1.0);
        let u = t.observe(at(4), Some(Point::new(-6.0, 9.0)), true);
        assert!(u.gated);
        assert!(u.anomaly_score > 3.0);
        assert!(t.anomaly_score() > 3.0);
        // Score is clamped: even an absurd teleport cannot exceed
        // clamp + run contribution.
        let cfg = TrackerConfig::default();
        assert!(t.anomaly_score() <= cfg.anomaly.sigma_clamp + cfg.anomaly.miss_weight);
    }

    #[test]
    fn filter_reset_clears_state() {
        let mut f = DistanceFilter::new(1.0, 0.1);
        f.update(3.0);
        assert!(f.is_initialized());
        f.reset();
        assert!(!f.is_initialized());
        assert!(f.predicted_distance().is_none());
        assert!(f.innovation(3.0).is_none());
    }
}
