//! The persistent worker runtime: long-lived estimation threads fed by a
//! bounded lock-free MPMC ring.
//!
//! PR 4's engine spawned a fresh `std::thread::scope` per same-instant
//! batch — correct, but a thread spawn + join per batch on the hot
//! scheduling path, and every spawn re-derived its worker/pipeline
//! pairing. This module replaces that with a [`WorkerRuntime`]: a fixed
//! pool of threads created **once**, each owning its
//! [`SweepPipeline`] scratch arena for the lifetime of the pool (so the
//! PR-5 zero-allocation warmth is never thrown away), pulling work from a
//! [`TokenRing`] — a Vyukov-style bounded MPMC queue whose slots carry a
//! sequence token instead of a lock.
//!
//! ## Determinism
//!
//! Every submitted job writes its result into its own ordinal slot of the
//! batch's output buffer, so the caller reads results in submission order
//! no matter which worker ran what, in what order, or how the queue
//! interleaved producers. Combined with the engine's seeding contract
//! (each sweep owns an RNG seeded from its client/counter, never from
//! schedule state), `WindowReport`s remain **bitwise identical across
//! thread counts** — the `{1, 2, 8}`-worker determinism tests in
//! `tests/engine.rs` run against this runtime.
//!
//! ## Blocking discipline
//!
//! Workers spin briefly when the ring runs dry, then park
//! (`std::thread::park`); submitters unpark the pool once per batch, not
//! per job. The submitting thread does not idle either: it *helps* — it
//! drains the ring through its own pipeline until the batch completes, so
//! a full ring can never deadlock (an un-enqueued job just runs inline)
//! and a single-core host loses nothing to hand-off latency.
//!
//! ## Two job tiers
//!
//! The runtime carries two rings over one pool of threads. The **fine**
//! ring holds estimation-sized jobs (per-client sweep batches, plan
//! builds) submitted by [`WorkerRuntime::run_batch`]. The **coarse**
//! ring, fed by [`WorkerRuntime::run_driver_batch`], holds *driver*
//! jobs — a fleet shard's whole scheduling window — which themselves
//! submit fine batches back into the same pool from inside their `run`.
//! Workers prefer coarse work (a shard window keeps a core busy for the
//! whole window) and fall back to fine work, so spare workers drain the
//! sweep batches the busy shards emit. The wait graph stays acyclic:
//! coarse jobs wait only on fine tasks, fine tasks never wait on the
//! pool, and every submitter drains the ring it submitted to — so the
//! shared rings cannot deadlock (the nested-submission proptest in
//! `tests/properties.rs` exercises this).
//!
//! See `docs/SCHEDULING.md` for startup/shutdown, queue sizing and the
//! determinism note.

use crate::pipeline::SweepPipeline;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A batch job the pool can run: borrow-only access to its inputs, one
/// owned output. The runtime guarantees `run` is called at most once per
/// job and that all jobs of a batch finish before
/// [`WorkerRuntime::run_batch`] returns, which is what makes the borrowed
/// inputs sound across the pool's `'static` threads.
pub trait PoolJob: Sync {
    /// The per-job result, written into the batch's ordinal output slot.
    type Output: Send;
    /// Runs the job on a worker-owned (or the submitter's) pipeline.
    fn run(&self, pipeline: &mut SweepPipeline) -> Self::Output;
}

/// The engine's unit of work: one admitted sweep, run on whichever
/// pipeline the pool hands it.
impl PoolJob for crate::pipeline::BatchSweep<'_> {
    type Output = crate::session::SweepOutput;
    fn run(&self, pipeline: &mut SweepPipeline) -> Self::Output {
        pipeline.run_sweep(self)
    }
}

/// Per-batch completion state, owned by the submitting stack frame.
struct BatchState {
    /// Jobs not yet finished (successfully or by panic).
    remaining: AtomicUsize,
    /// Set when any job panicked; the submitter re-raises after the
    /// batch drains (matching the old scoped-join behavior).
    poisoned: AtomicBool,
}

/// One type-erased unit of work in the ring: raw pointers into the
/// submitting frame (job input, output slot, batch state) plus the
/// monomorphized runner that knows the concrete types.
///
/// Soundness: the submitter blocks in [`WorkerRuntime::run_batch`] until
/// `remaining` hits zero, so every pointer outlives every access.
struct Task {
    job: *const (),
    out: *mut (),
    state: *const BatchState,
    run: unsafe fn(*const (), *mut (), &mut SweepPipeline) -> bool,
    /// Whether this task's allocations count toward
    /// [`WorkerRuntime::worker_allocations`]. Fine (estimation) tasks
    /// are counted — they carry the steady-state zero-allocation
    /// contract. Coarse driver jobs are not: a shard window allocates
    /// by design (event queues, report assembly), identically in serial
    /// and parallel, and probing them would also double-count the fine
    /// tasks they run inline while helping.
    counted: bool,
}

// SAFETY: the pointers reference the submitter's frame, which outlives
// the task (the submitter blocks until the batch completes), and `J:
// Sync` / `J::Output: Send` bound the data actually shared or moved.
unsafe impl Send for Task {}

/// Runs one job of type `J`, writing the output slot on success.
/// Returns `false` if the job panicked (the output slot stays
/// uninitialized and the batch is poisoned by the caller).
unsafe fn run_erased<J: PoolJob>(
    job: *const (),
    out: *mut (),
    pipeline: &mut SweepPipeline,
) -> bool {
    let job = &*(job as *const J);
    match catch_unwind(AssertUnwindSafe(|| job.run(pipeline))) {
        Ok(v) => {
            (out as *mut J::Output).write(v);
            true
        }
        Err(_) => false,
    }
}

/// One slot of the [`TokenRing`]: a sequence token plus the payload
/// cell. The token encodes the slot's turn — see the queue docs.
struct Slot<T> {
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free MPMC queue (Vyukov's token/slot ring).
///
/// Each slot carries a sequence number. A producer claims position `p`
/// by CAS on the enqueue cursor when `slot.seq == p` (the slot's
/// "produce" token), writes the value, then publishes `seq = p + 1`. A
/// consumer claims `p` when `seq == p + 1`, reads, and re-arms the slot
/// for the next lap with `seq = p + capacity`. No slot is ever accessed
/// without holding its token, so there are no locks and no ABA window.
///
/// `push` returns the value back on a full ring instead of blocking —
/// callers decide (the runtime's submitter runs the job inline).
pub struct TokenRing<T> {
    buf: Box<[Slot<T>]>,
    mask: usize,
    enqueue: AtomicUsize,
    dequeue: AtomicUsize,
}

// SAFETY: slots hand exclusive access over via the seq token protocol;
// moving `T` between threads requires `T: Send`.
unsafe impl<T: Send> Sync for TokenRing<T> {}
unsafe impl<T: Send> Send for TokenRing<T> {}

impl<T> TokenRing<T> {
    /// A ring with at least `capacity` slots (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buf: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        TokenRing {
            buf,
            mask: cap - 1,
            enqueue: AtomicUsize::new(0),
            dequeue: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Enqueues `v`, or returns it if the ring is full.
    pub fn push(&self, v: T) -> Result<(), T> {
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Our turn to produce: claim the position.
                match self.enqueue.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave us exclusive ownership of
                        // this slot until we publish seq below.
                        unsafe { (*slot.val.get()).write(v) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                // The slot still holds last lap's value: full.
                return Err(v);
            } else {
                pos = self.enqueue.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest value, or `None` if the ring is empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.dequeue.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave us exclusive ownership of
                        // this slot until we re-arm seq below.
                        let v = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(v);
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue.load(Ordering::Relaxed);
            }
        }
    }

    /// Whether the ring currently holds no values (racy, advisory).
    pub fn is_empty(&self) -> bool {
        let pos = self.dequeue.load(Ordering::Relaxed);
        let slot = &self.buf[pos & self.mask];
        slot.seq.load(Ordering::Acquire) as isize - pos.wrapping_add(1) as isize != 0
    }
}

impl<T> Drop for TokenRing<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

/// Shared state between the pool's threads and submitters.
struct RuntimeShared {
    /// Fine-grained estimation tasks (sweep batches, plan builds).
    ring: TokenRing<Task>,
    /// Coarse driver jobs (e.g. one fleet shard's whole window), which
    /// may themselves submit fine batches. Workers drain this ring
    /// first; see the module docs for the deadlock-freedom argument.
    coarse: TokenRing<Task>,
    shutdown: AtomicBool,
    /// Desired worker count; threads with an index at or beyond this
    /// retire at their next idle check (see [`WorkerRuntime::resize`]).
    target: AtomicUsize,
    /// Batches completed over the runtime's lifetime (reporting only).
    batches: AtomicU64,
    /// Heap allocations performed by worker threads while *running
    /// jobs*, summed over the pool's lifetime. Only meaningful under the
    /// counting allocator of `chronos-bench`, where it backs the
    /// allocs-stay-zero gate on the persistent-worker path; elsewhere
    /// it stays 0 because the hook is unset.
    worker_allocs: AtomicU64,
}

/// A hook letting the bench harness observe per-thread allocation
/// deltas around each job (see `chronos-bench/src/alloc_count.rs`).
/// Returns the calling thread's allocation counter.
pub type AllocProbe = fn() -> u64;

static ALLOC_PROBE: std::sync::OnceLock<AllocProbe> = std::sync::OnceLock::new();

/// Installs the thread-local allocation probe (first caller wins). The
/// bench harness points this at its counting allocator so
/// [`WorkerRuntime::worker_allocations`] reports true worker-side
/// allocations per job.
pub fn set_alloc_probe(probe: AllocProbe) {
    let _ = ALLOC_PROBE.set(probe);
}

/// The persistent worker pool: `workers` long-lived threads, each owning
/// one [`SweepPipeline`] for its lifetime, plus a submitter that helps.
///
/// Created once per engine (or shared by every shard of a fleet) and
/// reused for every batch until drop; dropping sets the shutdown flag,
/// unparks and joins the pool.
pub struct WorkerRuntime {
    shared: Arc<RuntimeShared>,
    /// Live pool threads, index-aligned with their worker indices. The
    /// mutex serializes [`WorkerRuntime::resize`] against the per-batch
    /// unpark sweep; batches only ever take it uncontended and briefly.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerRuntime")
            .field("workers", &self.workers())
            .field("ring_capacity", &self.shared.ring.capacity())
            .field("batches", &self.shared.batches.load(Ordering::Relaxed))
            .finish()
    }
}

/// Ring capacity: generous relative to any same-instant due batch (the
/// engine batches at most one job per client per instant); overflow is
/// handled by running the job inline, so this is a throughput knob, not
/// a correctness bound.
const RING_CAPACITY: usize = 1024;

/// Dry-ring pops a worker attempts before parking.
const IDLE_SPINS: u32 = 64;

impl WorkerRuntime {
    /// Spawns a pool of `workers` threads (clamped to at least 1), each
    /// allocating its own pipeline up front. This is the *only* moment
    /// the runtime creates threads — the spin-up cost is paid once, here,
    /// never per batch.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(RuntimeShared {
            ring: TokenRing::with_capacity(RING_CAPACITY),
            coarse: TokenRing::with_capacity(RING_CAPACITY),
            shutdown: AtomicBool::new(false),
            target: AtomicUsize::new(workers),
            batches: AtomicU64::new(0),
            worker_allocs: AtomicU64::new(0),
        });
        let handles = (0..workers).map(|i| spawn_worker(&shared, i)).collect();
        WorkerRuntime {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Number of pool threads (excluding the helping submitter).
    pub fn workers(&self) -> usize {
        self.handles.lock().expect("pool handles").len()
    }

    /// Resizes the pool to `workers` threads (clamped to at least 1).
    ///
    /// Growing spawns fresh threads immediately (each allocating its
    /// pipeline up front, like [`WorkerRuntime::new`]). Shrinking lowers
    /// the target and joins the excess threads — each retires at its
    /// next idle check, so its warm pipeline is dropped; the surviving
    /// threads keep theirs. Call between batches: resizing concurrently
    /// with `run_batch`/`run_driver_batch`/`prewarm` blocks those
    /// submitters on the handle lock and can strand a shrinking join
    /// behind queued work.
    pub fn resize(&self, workers: usize) {
        let workers = workers.max(1);
        let mut handles = self.handles.lock().expect("pool handles");
        self.shared.target.store(workers, Ordering::Release);
        if workers < handles.len() {
            for h in handles.iter() {
                h.thread().unpark();
            }
            for h in handles.drain(workers..) {
                let _ = h.join();
            }
        } else {
            for i in handles.len()..workers {
                handles.push(spawn_worker(&self.shared, i));
            }
        }
    }

    /// Batches completed over the runtime's lifetime.
    pub fn batches_run(&self) -> u64 {
        self.shared.batches.load(Ordering::Relaxed)
    }

    /// Heap allocations performed while running **fine** (estimation)
    /// tasks — [`run_batch`](WorkerRuntime::run_batch) jobs and
    /// [`prewarm`](WorkerRuntime::prewarm) jobs, wherever they execute
    /// (pool thread, helping submitter, or a coarse job draining its own
    /// nested batch) — summed over the runtime's lifetime. Coarse driver
    /// jobs submitted via
    /// [`run_driver_batch`](WorkerRuntime::run_driver_batch) are *not*
    /// probed: a shard window allocates by design (event queues, report
    /// assembly — engine-side work that is identical in serial and
    /// parallel), and probing the outer job would double-count the fine
    /// tasks it helps with. This is the counter behind the
    /// allocs-stay-zero gates in `BENCH_throughput.json` and
    /// `BENCH_fleet.json`; zero unless the bench alloc probe is
    /// installed ([`set_alloc_probe`]).
    pub fn worker_allocations(&self) -> u64 {
        self.shared.worker_allocs.load(Ordering::Relaxed)
    }

    /// Wakes every pool thread (one permit store per thread; a no-op for
    /// threads already running).
    fn unpark_all(&self) {
        for h in self.handles.lock().expect("pool handles").iter() {
            h.thread().unpark();
        }
    }

    /// Runs a batch: enqueues every job, wakes the pool, helps drain the
    /// ring through `local` (the submitter's own pipeline), and returns
    /// the outputs **in submission order**.
    ///
    /// Safe to call from *inside* a coarse driver job (see
    /// [`WorkerRuntime::run_driver_batch`]): the nested submitter helps
    /// drain the fine ring only, so it can never pick up another driver
    /// job and recurse.
    ///
    /// Panics if any job panicked, after the whole batch has drained —
    /// the same observable contract as the old per-batch scoped join.
    pub fn run_batch<J: PoolJob>(&self, jobs: &[J], local: &mut SweepPipeline) -> Vec<J::Output> {
        let n = jobs.len();
        let mut outs: Vec<MaybeUninit<J::Output>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
        let state = BatchState {
            remaining: AtomicUsize::new(n),
            poisoned: AtomicBool::new(false),
        };
        for (job, out) in jobs.iter().zip(outs.iter_mut()) {
            let task = Task {
                job: job as *const J as *const (),
                out: out.as_mut_ptr() as *mut (),
                state: &state,
                run: run_erased::<J>,
                counted: true,
            };
            if let Err(task) = self.shared.ring.push(task) {
                // Full ring: the submitter is the backpressure valve.
                execute_task(task, local, Some(&self.shared));
            }
        }
        // One wake per batch: unpark is a no-op permit store for already
        // running workers.
        self.unpark_all();
        // Help until the ring is dry, then wait out in-flight stragglers.
        while let Some(task) = self.shared.ring.pop() {
            execute_task(task, local, Some(&self.shared));
        }
        while state.remaining.load(Ordering::Acquire) > 0 {
            // A worker still owns a task of ours (or of a sibling shard's
            // batch); yield rather than burn the core it needs.
            std::thread::yield_now();
        }
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        if state.poisoned.load(Ordering::Acquire) {
            panic!("engine worker panicked");
        }
        // SAFETY: remaining == 0 and the batch was not poisoned, so every
        // slot was written exactly once.
        outs.into_iter()
            .map(|o| unsafe { o.assume_init() })
            .collect()
    }

    /// Runs a batch of **coarse driver jobs** — units the size of a whole
    /// fleet-shard window, which may themselves call
    /// [`WorkerRuntime::run_batch`] on this same runtime from inside
    /// their `run`. Results return in submission order, so a fleet's
    /// per-AP reports keep their AP indexing no matter which worker ran
    /// which shard.
    ///
    /// Top-level only: call from the thread that owns the runtime (the
    /// fleet driver), never from inside a pool job. While waiting, the
    /// submitter helps with coarse jobs first (it is one more shard-sized
    /// execution lane) and otherwise drains the fine ring, so the busy
    /// shards' sweep batches still make progress through it.
    ///
    /// Driver jobs are excluded from [`WorkerRuntime::worker_allocations`]
    /// — see that method's docs for the exact contract.
    ///
    /// Panics if any job panicked, after the whole batch has drained.
    pub fn run_driver_batch<J: PoolJob>(
        &self,
        jobs: &[J],
        local: &mut SweepPipeline,
    ) -> Vec<J::Output> {
        let n = jobs.len();
        let mut outs: Vec<MaybeUninit<J::Output>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
        let state = BatchState {
            remaining: AtomicUsize::new(n),
            poisoned: AtomicBool::new(false),
        };
        for (job, out) in jobs.iter().zip(outs.iter_mut()) {
            let task = Task {
                job: job as *const J as *const (),
                out: out.as_mut_ptr() as *mut (),
                state: &state,
                run: run_erased::<J>,
                counted: false,
            };
            if let Err(task) = self.shared.coarse.push(task) {
                execute_task(task, local, Some(&self.shared));
            }
        }
        self.unpark_all();
        loop {
            // Coarse first: an idle driver thread is a full extra shard
            // lane, not just a sweep helper.
            if let Some(task) = self.shared.coarse.pop() {
                execute_task(task, local, Some(&self.shared));
                continue;
            }
            if state.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            // Shards still running on workers: drain the fine batches
            // they emit rather than spinning.
            if let Some(task) = self.shared.ring.pop() {
                execute_task(task, local, Some(&self.shared));
                continue;
            }
            std::thread::yield_now();
        }
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        if state.poisoned.load(Ordering::Acquire) {
            panic!("engine worker panicked");
        }
        // SAFETY: remaining == 0 and the batch was not poisoned, so every
        // slot was written exactly once.
        outs.into_iter()
            .map(|o| unsafe { o.assume_init() })
            .collect()
    }

    /// Runs `job` exactly once on **every** pool thread, returning the
    /// per-worker outputs (in no particular order).
    ///
    /// Job-to-worker assignment in [`WorkerRuntime::run_batch`] is racy
    /// by design, so a fixed number of ordinary batches can never
    /// guarantee a given worker has run anything — a late-waking thread
    /// can sleep through all of them and pay its one-time scratch-arena
    /// growth later, on the measured (or latency-sensitive) path. This
    /// call makes warm-up deterministic: each task holds its worker at a
    /// barrier until all `workers()` threads have claimed one, so no
    /// thread can run two, and the submitter does not help. The
    /// every-worker guarantee assumes no concurrent `run_batch` is
    /// draining the ring (call it right after construction, or between
    /// batches); a panicking job still releases the barrier (arrival is
    /// a drop guard) and poisons the batch like `run_batch`.
    pub fn prewarm<J: PoolJob>(&self, job: &J) -> Vec<J::Output> {
        /// Wraps the caller's job with a barrier arrival on completion
        /// (including unwinds, so a panicking job cannot strand the
        /// other workers at the barrier).
        struct Sentinel<'a, J> {
            inner: &'a J,
            barrier: &'a std::sync::Barrier,
        }
        impl<J: PoolJob> PoolJob for Sentinel<'_, J> {
            type Output = J::Output;
            fn run(&self, pipeline: &mut SweepPipeline) -> J::Output {
                struct Arrive<'b>(&'b std::sync::Barrier);
                impl Drop for Arrive<'_> {
                    fn drop(&mut self) {
                        self.0.wait();
                    }
                }
                let _arrive = Arrive(self.barrier);
                self.inner.run(pipeline)
            }
        }

        let n = self.workers();
        let barrier = std::sync::Barrier::new(n + 1); // workers + this thread
        let jobs: Vec<Sentinel<'_, J>> = (0..n)
            .map(|_| Sentinel {
                inner: job,
                barrier: &barrier,
            })
            .collect();
        let mut outs: Vec<MaybeUninit<J::Output>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
        let state = BatchState {
            remaining: AtomicUsize::new(n),
            poisoned: AtomicBool::new(false),
        };
        for (j, out) in jobs.iter().zip(outs.iter_mut()) {
            let mut task = Task {
                job: j as *const Sentinel<'_, J> as *const (),
                out: out.as_mut_ptr() as *mut (),
                state: &state,
                run: run_erased::<Sentinel<'_, J>>,
                counted: true,
            };
            // Unlike run_batch, the submitter must not execute these
            // inline (it would strand a worker without a task), so keep
            // retrying on a full ring while the pool drains it.
            loop {
                match self.shared.ring.push(task) {
                    Ok(()) => break,
                    Err(back) => {
                        task = back;
                        self.unpark_all();
                        std::thread::yield_now();
                    }
                }
            }
        }
        self.unpark_all();
        // Arrive as the (n+1)-th participant instead of helping: the
        // barrier releases only once every worker holds a task.
        barrier.wait();
        while state.remaining.load(Ordering::Acquire) > 0 {
            std::thread::yield_now();
        }
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        if state.poisoned.load(Ordering::Acquire) {
            panic!("engine worker panicked");
        }
        // SAFETY: remaining == 0 without poisoning, so every slot was
        // written exactly once.
        outs.into_iter()
            .map(|o| unsafe { o.assume_init() })
            .collect()
    }
}

impl Drop for WorkerRuntime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let handles = self.handles.get_mut().expect("pool handles");
        for h in handles.iter() {
            h.thread().unpark();
        }
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Spawns pool thread `idx`, which retires when the runtime shrinks its
/// target below `idx` (see [`WorkerRuntime::resize`]).
fn spawn_worker(shared: &Arc<RuntimeShared>, idx: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("chronos-worker-{idx}"))
        .spawn(move || worker_main(&shared, idx))
        .expect("spawn chronos worker")
}

/// Runs one task on `pipeline`, updating the batch state (and, for
/// counted tasks, the worker-side allocation tally when `shared` is
/// given and the probe is installed). Returns `false` if the job
/// panicked, so worker threads can retire a possibly corrupted scratch
/// arena.
fn execute_task(task: Task, pipeline: &mut SweepPipeline, shared: Option<&RuntimeShared>) -> bool {
    let probe = shared
        .filter(|_| task.counted)
        .and_then(|_| ALLOC_PROBE.get().copied());
    let before = probe.map(|p| p()).unwrap_or(0);
    // SAFETY: the submitter keeps job/out/state alive until `remaining`
    // reaches zero, which happens only after this call finishes.
    let ok = unsafe { (task.run)(task.job, task.out, pipeline) };
    if let (Some(p), Some(shared)) = (probe, shared) {
        shared
            .worker_allocs
            .fetch_add(p().saturating_sub(before), Ordering::Relaxed);
    }
    let state = unsafe { &*task.state };
    if !ok {
        state.poisoned.store(true, Ordering::Release);
    }
    state.remaining.fetch_sub(1, Ordering::Release);
    ok
}

/// The worker thread body: pop-run until shutdown (or retirement by
/// [`WorkerRuntime::resize`]), with a spin-then-park idle policy. Coarse
/// driver jobs are preferred over fine tasks — a shard window keeps the
/// core busy end-to-end, and the fine batches it emits are drained by
/// whoever is free. The pipeline lives here — allocated once at spawn,
/// warmed by the first batches, reused until the pool drops (or the
/// thread retires).
fn worker_main(shared: &RuntimeShared, idx: usize) {
    let mut pipeline = SweepPipeline::new();
    let mut dry: u32 = 0;
    loop {
        match shared.coarse.pop().or_else(|| shared.ring.pop()) {
            Some(task) => {
                dry = 0;
                if !execute_task(task, &mut pipeline, Some(shared)) {
                    // The job unwound mid-estimation; scratch invariants
                    // may be broken, so start a fresh arena.
                    pipeline = SweepPipeline::new();
                }
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Retire only when idle: a shrinking resize never
                // abandons a task mid-flight.
                if idx >= shared.target.load(Ordering::Acquire) {
                    return;
                }
                dry += 1;
                if dry < IDLE_SPINS {
                    std::hint::spin_loop();
                } else {
                    // Park consumes a pending unpark permit, so a wake
                    // issued between our failed pop and this call returns
                    // immediately — no lost-wakeup window.
                    std::thread::park();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SquareJob(u64);
    impl PoolJob for SquareJob {
        type Output = u64;
        fn run(&self, _pipeline: &mut SweepPipeline) -> u64 {
            self.0 * self.0
        }
    }

    #[test]
    fn ring_is_fifo_when_single_threaded() {
        let ring = TokenRing::with_capacity(8);
        for i in 0..5 {
            ring.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_rejects_overflow_and_recovers() {
        let ring = TokenRing::with_capacity(4);
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.push(99), Err(99));
        assert_eq!(ring.pop(), Some(0));
        ring.push(99).unwrap();
        assert_eq!(
            (0..4).filter_map(|_| ring.pop()).collect::<Vec<_>>(),
            vec![1, 2, 3, 99]
        );
    }

    #[test]
    fn ring_wraps_many_laps() {
        let ring = TokenRing::with_capacity(2);
        for lap in 0..1000u64 {
            ring.push(lap).unwrap();
            assert_eq!(ring.pop(), Some(lap));
        }
    }

    #[test]
    fn batch_results_arrive_in_submission_order() {
        let rt = WorkerRuntime::new(3);
        let mut local = SweepPipeline::new();
        let jobs: Vec<SquareJob> = (0..257).map(SquareJob).collect();
        let outs = rt.run_batch(&jobs, &mut local);
        let expect: Vec<u64> = (0..257u64).map(|v| v * v).collect();
        assert_eq!(outs, expect);
        assert_eq!(rt.batches_run(), 1);
    }

    #[test]
    fn pool_survives_many_batches_without_respawn() {
        let rt = WorkerRuntime::new(2);
        let mut local = SweepPipeline::new();
        for round in 0..50u64 {
            let jobs: Vec<SquareJob> = (round..round + 7).map(SquareJob).collect();
            let outs = rt.run_batch(&jobs, &mut local);
            assert_eq!(outs.len(), 7);
        }
        assert_eq!(rt.workers(), 2);
        assert_eq!(rt.batches_run(), 50);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        // Hammer the ring from several real producer threads against one
        // consuming main thread; every token must arrive exactly once and
        // each producer's own tokens must stay in its submission order.
        let ring = Arc::new(TokenRing::with_capacity(16));
        let producers = 4;
        let per = 500usize;
        let mut handles = Vec::new();
        for p in 0..producers {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let mut v = (p, i);
                    loop {
                        match ring.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut seen = vec![Vec::new(); producers];
        let mut got = 0;
        while got < producers * per {
            if let Some((p, i)) = ring.pop() {
                seen[p].push(i);
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.pop(), None);
        for (p, s) in seen.iter().enumerate() {
            assert_eq!(s.len(), per, "producer {p} lost tokens");
            assert!(s.windows(2).all(|w| w[0] < w[1]), "producer {p} reordered");
        }
    }

    #[test]
    fn prewarm_runs_once_on_every_worker() {
        struct TidJob(std::sync::Mutex<Vec<std::thread::ThreadId>>);
        impl PoolJob for TidJob {
            type Output = std::thread::ThreadId;
            fn run(&self, _pipeline: &mut SweepPipeline) -> std::thread::ThreadId {
                let tid = std::thread::current().id();
                self.0.lock().unwrap().push(tid);
                tid
            }
        }
        let rt = WorkerRuntime::new(3);
        let job = TidJob(std::sync::Mutex::new(Vec::new()));
        let outs = rt.prewarm(&job);
        assert_eq!(outs.len(), 3);
        let tids = job.0.into_inner().unwrap();
        assert_eq!(tids.len(), 3, "each worker must run the job exactly once");
        let distinct: std::collections::HashSet<_> = tids.iter().copied().collect();
        assert_eq!(distinct.len(), 3, "no worker may claim two prewarm tasks");
        assert!(
            !distinct.contains(&std::thread::current().id()),
            "the submitter must not steal a prewarm task"
        );
        // The pool is still serviceable afterwards.
        let mut local = SweepPipeline::new();
        assert_eq!(rt.run_batch(&[SquareJob(6)], &mut local), vec![36]);
    }

    #[test]
    fn resize_grows_and_shrinks_and_stays_serviceable() {
        let rt = WorkerRuntime::new(1);
        assert_eq!(rt.workers(), 1);
        let mut local = SweepPipeline::new();
        let jobs: Vec<SquareJob> = (0..31).map(SquareJob).collect();
        let expect: Vec<u64> = (0..31u64).map(|v| v * v).collect();
        assert_eq!(rt.run_batch(&jobs, &mut local), expect);
        rt.resize(4);
        assert_eq!(rt.workers(), 4);
        assert_eq!(rt.run_batch(&jobs, &mut local), expect);
        // Prewarm after a grow reaches every live worker.
        assert_eq!(rt.prewarm(&SquareJob(3)).len(), 4);
        rt.resize(2);
        assert_eq!(rt.workers(), 2);
        assert_eq!(rt.run_batch(&jobs, &mut local), expect);
        // Clamped like the constructor.
        rt.resize(0);
        assert_eq!(rt.workers(), 1);
        assert_eq!(rt.run_batch(&jobs, &mut local), expect);
    }

    /// A coarse driver job that submits fine batches back into the same
    /// runtime from inside its `run` — the fleet-shard shape.
    struct NestedJob<'a> {
        rt: &'a WorkerRuntime,
        base: u64,
        inner: usize,
    }
    impl PoolJob for NestedJob<'_> {
        type Output = u64;
        fn run(&self, pipeline: &mut SweepPipeline) -> u64 {
            let jobs: Vec<SquareJob> = (self.base..self.base + self.inner as u64)
                .map(SquareJob)
                .collect();
            self.rt.run_batch(&jobs, pipeline).iter().sum()
        }
    }

    #[test]
    fn driver_batch_runs_jobs_that_submit_nested_fine_batches() {
        for workers in [1usize, 2, 4] {
            let rt = WorkerRuntime::new(workers);
            let mut local = SweepPipeline::new();
            let jobs: Vec<NestedJob<'_>> = (0..6)
                .map(|i| NestedJob {
                    rt: &rt,
                    base: i * 10,
                    inner: 7,
                })
                .collect();
            let outs = rt.run_driver_batch(&jobs, &mut local);
            let expect: Vec<u64> = (0..6u64)
                .map(|i| (i * 10..i * 10 + 7).map(|v| v * v).sum())
                .collect();
            assert_eq!(outs, expect, "workers={workers}");
            // Ordinary fine batches still work on the same pool.
            assert_eq!(rt.run_batch(&[SquareJob(5)], &mut local), vec![25]);
        }
    }

    #[test]
    fn driver_batch_survives_coarse_ring_overflow() {
        // More driver jobs than ring slots would be absurd in practice;
        // emulate the overflow path with a tiny pool and enough jobs to
        // lap the submitter several times.
        let rt = WorkerRuntime::new(1);
        let mut local = SweepPipeline::new();
        let jobs: Vec<NestedJob<'_>> = (0..40)
            .map(|i| NestedJob {
                rt: &rt,
                base: i,
                inner: 3,
            })
            .collect();
        let outs = rt.run_driver_batch(&jobs, &mut local);
        assert_eq!(outs.len(), 40);
        for (i, out) in outs.iter().enumerate() {
            let base = i as u64;
            let expect: u64 = (base..base + 3).map(|v| v * v).sum();
            assert_eq!(*out, expect);
        }
    }

    #[test]
    fn worker_panic_poisons_the_batch() {
        struct Bomb(bool);
        impl PoolJob for Bomb {
            type Output = ();
            fn run(&self, _pipeline: &mut SweepPipeline) {
                if self.0 {
                    panic!("boom");
                }
            }
        }
        let rt = WorkerRuntime::new(2);
        let mut local = SweepPipeline::new();
        let jobs = vec![Bomb(false), Bomb(true), Bomb(false)];
        let res = catch_unwind(AssertUnwindSafe(|| rt.run_batch(&jobs, &mut local)));
        assert!(res.is_err(), "poisoned batch must re-raise");
        // The pool is still serviceable afterwards.
        let outs = rt.run_batch(&[SquareJob(9)], &mut local);
        assert_eq!(outs, vec![81]);
    }
}
