//! The end-to-end time-of-flight estimator (paper §4–§7 assembled).
//!
//! Input: per-band forward/reverse CSI measurement sets (one set per band,
//! several packet exchanges each). Output: a [`TofEstimate`] carrying the
//! descaled, calibrated time-of-flight and the multipath profiles that
//! produced it.
//!
//! Steps:
//! 1. combine each band's exchanges into a CFO-free [`BandProduct`]
//!    ([`crate::reciprocity`]);
//! 2. split products into delay-scale groups ([`crate::quirk`]);
//! 3. per group: sparse inverse-NDFT ([`crate::ista`]), first-peak rule
//!    with matched-filter refinement ([`crate::profile`]);
//! 4. fuse group candidates: the widest (finest-resolution) group wins,
//!    and the coarse 2.4 GHz group, when present and unaliased, must agree
//!    within tolerance or the sample is flagged.

use crate::config::ChronosConfig;
use crate::error::ChronosError;
use crate::ista::{debias_into, solve_planned_into, DebiasScratch, IstaConfig};
use crate::ndft::{Ndft, TauGrid};
use crate::phase::Interpolation;
use crate::pipeline::{EstimatorScratch, PlanMemo, SelectScratch};
use crate::plan::{NdftPlan, PlanCache};
use crate::profile::MultipathProfile;
use crate::quirk::{group_by_scale_into, BandGroupSamples};
use crate::reciprocity::{combine_band_planned, BandProduct};
use chronos_math::peaks::PeakConfig;
use chronos_math::spline::SplinePlan;
use chronos_math::Complex64;
use chronos_rf::csi::Measurement;
use std::sync::Arc;

/// All measurements of one band (the exchanges of one dwell).
#[derive(Debug, Clone)]
pub struct BandSample {
    /// The exchanges captured while dwelling on this band.
    pub measurements: Vec<Measurement>,
}

/// One group's inversion output.
#[derive(Debug, Clone)]
pub struct GroupEstimate {
    /// Delay scale of the group.
    pub delay_scale: f64,
    /// Bands in the group.
    pub n_bands: usize,
    /// The multipath profile (profile-domain delays).
    pub profile: MultipathProfile,
    /// Descaled first-peak delay, ns (before calibration).
    pub raw_tof_ns: f64,
}

/// The estimator's result.
#[derive(Debug, Clone)]
pub struct TofEstimate {
    /// Calibrated time-of-flight, ns.
    pub tof_ns: f64,
    /// Equivalent distance, meters.
    pub distance_m: f64,
    /// Per-group details (primary group first).
    pub groups: Vec<GroupEstimate>,
    /// Whether the coarse 2.4 GHz check (if run) agreed with the primary
    /// estimate.
    pub cross_check_ok: bool,
}

/// The compact, allocation-free estimator result: everything a tracking
/// service needs from a sweep, without the profile payload of
/// [`TofEstimate`]. Produced by
/// [`crate::pipeline::SweepPipeline::estimate_fix`]; scalar fields agree
/// bit for bit with the full estimate's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TofFix {
    /// Calibrated time-of-flight, ns.
    pub tof_ns: f64,
    /// Equivalent distance, meters.
    pub distance_m: f64,
    /// Whether the coarse 2.4 GHz check (if run) agreed with the primary
    /// estimate.
    pub cross_check_ok: bool,
    /// Delay-scale groups that produced a candidate.
    pub n_groups: usize,
    /// Bands in the primary (winning) group.
    pub primary_bands: usize,
}

/// One group's scalar outcome inside the scratch pipeline (the
/// profile-free core of [`GroupEstimate`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GroupFix {
    pub(crate) delay_scale: f64,
    pub(crate) n_bands: usize,
    pub(crate) raw_tof_ns: f64,
}

/// The configured estimator.
#[derive(Debug, Clone)]
pub struct TofEstimator {
    /// Configuration.
    pub config: ChronosConfig,
    /// Interpolation backend for zero-subcarrier recovery.
    pub interpolation: Interpolation,
    /// Optional shared plan cache. With a cache, NDFT operators, operator
    /// norms, lobe tables and spline factorizations are built once and
    /// reused across every call (and every other estimator holding the
    /// same cache); without one they are rebuilt per estimate. Results
    /// are identical either way.
    pub plans: Option<Arc<PlanCache>>,
}

impl TofEstimator {
    /// Creates an estimator with the given configuration and the paper's
    /// cubic-spline interpolation. Plans are rebuilt per call; use
    /// [`TofEstimator::with_cache`] to share them.
    pub fn new(config: ChronosConfig) -> Self {
        TofEstimator {
            config,
            interpolation: Interpolation::CubicSpline,
            plans: None,
        }
    }

    /// Creates an estimator that reuses plans from a shared [`PlanCache`].
    pub fn with_cache(config: ChronosConfig, plans: Arc<PlanCache>) -> Self {
        TofEstimator {
            config,
            interpolation: Interpolation::CubicSpline,
            plans: Some(plans),
        }
    }

    /// The NDFT plan for one band group: from the shared cache when
    /// present, built fresh otherwise. Both paths construct the plan with
    /// identical arithmetic. The lobe scan uses the configured grid span
    /// (not the grid's rounded-up extent), matching the pre-plan code.
    fn plan_for(&self, freqs_hz: &[f64], grid: TauGrid) -> Arc<NdftPlan> {
        let lobe_span_ns = self.config.grid_span_ns;
        match &self.plans {
            Some(cache) => cache.ndft_plan(freqs_hz, grid, lobe_span_ns),
            None => Arc::new(NdftPlan::new(freqs_hz, grid, lobe_span_ns)),
        }
    }

    /// The spline plan for the capture layout the band samples use, via
    /// the scratch memo (the cache lookup — which builds a hashing key —
    /// is paid once per layout per scratch, not per sweep). Per-call
    /// fitting stays exact without a cache.
    fn spline_plan_memo(
        &self,
        bands: &[BandSample],
        scratch: &mut EstimatorScratch,
    ) -> Option<Arc<SplinePlan>> {
        let cache = self.plans.as_ref()?;
        let first = bands.iter().find_map(|b| b.measurements.first())?;
        scratch.xs.clear();
        scratch
            .xs
            .extend(first.forward.layout.indices().iter().map(|k| *k as f64));
        if let Some((_, plan)) = scratch
            .spline_memo
            .iter()
            .find(|(xs, _)| xs.as_slice() == scratch.xs.as_slice())
        {
            return Some(Arc::clone(plan));
        }
        let plan = cache.spline_plan(&scratch.xs).ok()?;
        // Bound the memo: a worker serving unboundedly many distinct
        // layouts falls back to the shared cache instead of growing (and
        // linearly scanning) forever. Real deployments use a handful of
        // layouts, so the cap is never reached.
        if scratch.spline_memo.len() >= crate::pipeline::PLAN_MEMO_CAP {
            scratch.spline_memo.clear();
        }
        scratch
            .spline_memo
            .push((scratch.xs.clone(), Arc::clone(&plan)));
        Some(plan)
    }

    /// The NDFT plan for one band group via the scratch memo: the shared
    /// cache (or a fresh build) is consulted once per distinct
    /// `(bands, grid)`; every later sweep through the same scratch reuses
    /// the memoized `Arc` without constructing a cache key.
    fn plan_for_memo(
        &self,
        freqs_hz: &[f64],
        grid: TauGrid,
        memo: &mut Vec<PlanMemo>,
    ) -> Arc<NdftPlan> {
        let lobe_span = self.config.grid_span_ns;
        if let Some(e) = memo.iter().find(|e| {
            e.grid == grid
                && e.lobe_span.to_bits() == lobe_span.to_bits()
                && e.freqs.as_slice() == freqs_hz
        }) {
            return Arc::clone(&e.plan);
        }
        let plan = self.plan_for(freqs_hz, grid);
        // Bound the memo (see `spline_plan_memo`): beyond the cap a
        // worker leans on the shared cache rather than growing forever.
        if memo.len() >= crate::pipeline::PLAN_MEMO_CAP {
            memo.clear();
        }
        memo.push(PlanMemo {
            freqs: freqs_hz.to_vec(),
            grid,
            lobe_span,
            plan: Arc::clone(&plan),
        });
        plan
    }

    /// Combines raw band samples into CFO-free products.
    pub fn products(&self, bands: &[BandSample]) -> Result<Vec<BandProduct>, ChronosError> {
        let mut scratch = EstimatorScratch::new();
        let mut out = Vec::new();
        self.products_into(bands, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`TofEstimator::products`] into a reusable output buffer, with
    /// spline plans served from the scratch memo. Identical results.
    pub(crate) fn products_into(
        &self,
        bands: &[BandSample],
        scratch: &mut EstimatorScratch,
        out: &mut Vec<BandProduct>,
    ) -> Result<(), ChronosError> {
        let spline_plan = self.spline_plan_memo(bands, scratch);
        out.clear();
        for b in bands.iter().filter(|b| !b.measurements.is_empty()) {
            out.push(combine_band_planned(
                &b.measurements,
                self.interpolation,
                self.config.mode,
                spline_plan.as_deref(),
            )?);
        }
        Ok(())
    }

    /// Runs the full estimation pipeline.
    pub fn estimate(&self, bands: &[BandSample]) -> Result<TofEstimate, ChronosError> {
        let products = self.products(bands)?;
        self.estimate_from_products(&products)
    }

    /// Estimation from precomputed products (used by ablations that
    /// synthesize products directly).
    pub fn estimate_from_products(
        &self,
        products: &[BandProduct],
    ) -> Result<TofEstimate, ChronosError> {
        let mut scratch = EstimatorScratch::new();
        self.estimate_from_products_with(products, &mut scratch)
    }

    /// [`TofEstimator::estimate_from_products`] over a reusable scratch
    /// arena: the whole solver path (ISTA, debias, peak selection, CLEAN
    /// refinement) runs allocation-free; only the returned
    /// [`TofEstimate`] — profiles included — is freshly allocated.
    /// Results are bitwise identical to the scratch-free path.
    pub fn estimate_from_products_with(
        &self,
        products: &[BandProduct],
        scratch: &mut EstimatorScratch,
    ) -> Result<TofEstimate, ChronosError> {
        let fix = self.estimate_scaled(products, scratch, true)?;
        Ok(TofEstimate {
            tof_ns: fix.tof_ns,
            distance_m: fix.distance_m,
            groups: std::mem::take(&mut scratch.profiles),
            cross_check_ok: fix.cross_check_ok,
        })
    }

    /// The zero-allocation estimation entry point: products in, a compact
    /// [`TofFix`] out, every intermediate borrowed from the scratch.
    /// Scalars agree bit for bit with
    /// [`TofEstimator::estimate_from_products`].
    pub fn estimate_fix_with(
        &self,
        products: &[BandProduct],
        scratch: &mut EstimatorScratch,
    ) -> Result<TofFix, ChronosError> {
        self.estimate_scaled(products, scratch, false)
    }

    /// The shared estimation body behind both the allocating and the
    /// zero-alloc entry points. Groups products by delay scale, inverts
    /// each group through the scratch solver, selects and refines the
    /// first physical path, and fuses the group candidates. When
    /// `want_profiles` is set, `scratch.profiles` additionally receives
    /// the per-group [`GroupEstimate`]s (primary first) for
    /// [`TofEstimate`] assembly.
    fn estimate_scaled(
        &self,
        products: &[BandProduct],
        scratch: &mut EstimatorScratch,
        want_profiles: bool,
    ) -> Result<TofFix, ChronosError> {
        let mut groups = std::mem::take(&mut scratch.groups);
        let result = self.estimate_scaled_inner(products, &mut groups, scratch, want_profiles);
        scratch.groups = groups;
        result
    }

    fn estimate_scaled_inner(
        &self,
        products: &[BandProduct],
        groups: &mut Vec<BandGroupSamples>,
        scratch: &mut EstimatorScratch,
        want_profiles: bool,
    ) -> Result<TofFix, ChronosError> {
        group_by_scale_into(
            products,
            groups,
            &mut scratch.group_pool,
            &mut scratch.order,
        );
        // Primary group: the one with the most bands (ties: finest scale,
        // which sorts first).
        let primary_idx = groups
            .iter()
            .enumerate()
            .max_by_key(|(_, g)| g.len())
            .map(|(i, _)| i)
            .ok_or(ChronosError::TooFewBands { got: 0, need: 5 })?;
        if groups[primary_idx].len() < 5 {
            return Err(ChronosError::TooFewBands {
                got: groups[primary_idx].len(),
                need: 5,
            });
        }

        let primary_bands = groups[primary_idx].len();
        scratch.fixes.clear();
        scratch.profiles.clear();
        let mut primary_error: Option<ChronosError> = None;
        for g in groups.iter() {
            if g.len() < 5 {
                continue; // not enough bands to invert meaningfully
            }
            let grid = TauGrid::span(self.config.grid_span_ns, self.config.grid_step_ns);
            let plan = self.plan_for_memo(&g.freqs_hz, grid, &mut scratch.plan_memo);
            let ndft = &plan.ndft;
            let ista_cfg = IstaConfig {
                alpha_rel: self.config.alpha_rel,
                max_iters: self.config.max_iters,
                epsilon: self.config.epsilon,
                accelerated: self.config.accelerated,
            };
            solve_planned_into(&plan, &g.values, &ista_cfg, &mut scratch.ista);
            if self.config.debias {
                // Overdetermined refit: at most half as many atoms as bands.
                let max_atoms = (g.len() / 2).max(3);
                debias_into(
                    ndft,
                    &g.values,
                    scratch.ista.solution(),
                    max_atoms,
                    3,
                    &mut scratch.debias,
                    &mut scratch.p_final,
                );
            } else {
                scratch.p_final.clear();
                scratch.p_final.extend_from_slice(scratch.ista.solution());
            }
            chronos_math::cvec::magnitudes_into(&scratch.p_final, &mut scratch.mags);
            let res_ns = crate::profile::resolution_ns(&g.freqs_hz);
            // Group frequencies are kept ascending by `group_by_scale`.
            let veto_ns = crate::profile::cluster_resolution_ns_sorted(&g.freqs_hz, 150e6);
            let min_sep = crate::profile::min_sep_bins(res_ns, grid.step_ns);
            // Physical prior: a genuine first peak cannot descale below the
            // calibration constant — that would mean negative distance.
            // (2 ns of margin tolerates calibration error.)
            let min_profile_x = (self.config.calibration_ns - 2.0).max(0.0) * g.delay_scale;
            // Grating-lobe offsets of this group's band plan: content at D
            // leaks coherent ghosts to D - offset, which first-peak
            // selection must suspect. Precomputed in the plan.
            let lobes = &plan.lobe_offsets;
            // A failure of a *secondary* group (e.g. the coarse 2.4 GHz
            // check aliasing outside the grid) must not kill the estimate;
            // only the primary group's failure is fatal.
            let peak = match select_first_path(
                ndft,
                &g.values,
                &scratch.p_final,
                &scratch.mags,
                self.config.peak_dominance,
                min_sep,
                veto_ns,
                self.config.sidelobe_veto_ratio,
                min_profile_x,
                self.config.atom_snr_min,
                lobes,
                &mut scratch.select,
                &mut scratch.debias,
            ) {
                Ok(p) => p,
                Err(e) => {
                    if g.len() == primary_bands {
                        primary_error = Some(e);
                    }
                    continue;
                }
            };
            let refined = crate::profile::refine_first_peak_clean_into(
                ndft,
                &g.values,
                &scratch.p_final,
                &peak,
                min_sep,
                res_ns,
                &mut scratch.refine,
            );
            let raw_tof_ns = refined / g.delay_scale;
            scratch.fixes.push(GroupFix {
                delay_scale: g.delay_scale,
                n_bands: g.len(),
                raw_tof_ns,
            });
            if want_profiles {
                scratch.profiles.push(GroupEstimate {
                    delay_scale: g.delay_scale,
                    n_bands: g.len(),
                    profile: MultipathProfile {
                        start_ns: grid.start_ns,
                        step_ns: grid.step_ns,
                        magnitudes: scratch.mags.clone(),
                        delay_scale: g.delay_scale,
                    },
                    raw_tof_ns,
                });
            }
        }
        if let Some(e) = primary_error {
            return Err(e);
        }
        if scratch.fixes.is_empty() {
            return Err(ChronosError::NoDominantPath);
        }

        // Primary: most bands. (A couple of groups at most — the stable
        // sorts stay in their allocation-free insertion regime.)
        scratch.fixes.sort_by_key(|e| std::cmp::Reverse(e.n_bands));
        if want_profiles {
            scratch
                .profiles
                .sort_by_key(|e| std::cmp::Reverse(e.n_bands));
        }
        let primary = scratch.fixes[0];
        let mut cross_check_ok = true;
        if self.config.use_24ghz_check && scratch.fixes.len() > 1 {
            // The coarse group agrees if some alias of its estimate is
            // within tolerance of the primary.
            let coarse = scratch.fixes[1];
            let alias_period = self.config.grid_span_ns / coarse.delay_scale;
            let diff = (primary.raw_tof_ns - coarse.raw_tof_ns).rem_euclid(alias_period);
            let dist = diff.min(alias_period - diff);
            cross_check_ok = dist < 2.5;
        }

        let tof_ns = primary.raw_tof_ns - self.config.calibration_ns;
        Ok(TofFix {
            tof_ns,
            distance_m: chronos_math::constants::ns_to_m(tof_ns),
            cross_check_ok,
            n_groups: scratch.fixes.len(),
            primary_bands: primary.n_bands,
        })
    }
}

/// Chooses the first *physical path* peak, distinguishing a genuine weak
/// direct path from a sidelobe artifact by **model comparison**.
///
/// The Wi-Fi band plan's clustered spectrum gives the NDFT a fringed point
/// response, so the sparse solution sometimes carries a small artifact atom
/// shortly before a strong peak. Magnitude ratios cannot tell that artifact
/// apart from a genuinely attenuated direct path (the paper's NLOS regime),
/// but a refit can: remove the candidate atom from the support, least-
/// squares refit the rest, and compare residuals. A *real* path leaves
/// `~n * |a|^2` of unexplained energy when dropped; an artifact's energy is
/// re-absorbed by the neighboring atoms. `energy_factor` (0..1) scales the
/// acceptance threshold — higher demands more unexplained energy, i.e.
/// vetoes more aggressively.
/// Whether `CHRONOS_DEBUG_PEAKS` diagnostics are enabled. Read once: an
/// environment lookup allocates on most platforms, which would break the
/// hot path's zero-alloc contract if checked per candidate.
fn debug_peaks() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("CHRONOS_DEBUG_PEAKS").is_some())
}

/// `||h - F p||^2` with the forward image staged in `fit`.
fn resid_sq(ndft: &Ndft, h: &[Complex64], p: &[Complex64], fit: &mut Vec<Complex64>) -> f64 {
    ndft.forward_into(p, fit);
    fit.iter()
        .zip(h.iter())
        .map(|(a, b)| (*a - *b).norm_sq())
        .sum::<f64>()
}

#[allow(clippy::too_many_arguments)]
fn select_first_path(
    ndft: &Ndft,
    h: &[Complex64],
    p_final: &[Complex64],
    mags: &[f64],
    dominance: f64,
    min_sep: usize,
    veto_window_ns: f64,
    energy_factor: f64,
    min_profile_x_ns: f64,
    atom_snr_min: f64,
    lobe_offsets_ns: &[f64],
    sel: &mut SelectScratch,
    debias_ws: &mut DebiasScratch,
) -> Result<chronos_math::peaks::Peak, ChronosError> {
    // The one grid every delay index and x-coordinate below refers to —
    // taken from the operator itself so a mismatch is unrepresentable.
    let grid = ndft.grid();
    let r_with = resid_sq(ndft, h, p_final, &mut sel.fit);

    // Dominant peaks past the physical-prior cutoff (the profile's
    // `dominant_peaks` + filter, over the scratch magnitude buffer).
    chronos_math::peaks::find_peaks_into(
        mags,
        grid.start_ns,
        grid.step_ns,
        &PeakConfig {
            dominance,
            min_separation: min_sep.max(1),
        },
        &mut sel.peak_cands,
        &mut sel.peaks_all,
    );
    sel.peaks.clear();
    sel.peaks.extend(
        sel.peaks_all
            .iter()
            .filter(|p| p.x >= min_profile_x_ns)
            .copied(),
    );
    if sel.peaks.is_empty() {
        return Err(ChronosError::NoDominantPath);
    }

    'candidates: for i in 0..sel.peaks.len() {
        let cand = sel.peaks[i];
        // CLEANed matched-filter response with the candidate's
        // neighborhood removed from the model.
        sel.model.clear();
        sel.model.extend_from_slice(p_final);
        let lo = cand.index.saturating_sub(min_sep);
        let hi = (cand.index + min_sep).min(sel.model.len().saturating_sub(1));
        for z in sel.model.iter_mut().take(hi + 1).skip(lo) {
            *z = Complex64::ZERO;
        }
        ndft.forward_into(&sel.model, &mut sel.fit);
        sel.residual.clear();
        sel.residual
            .extend(h.iter().zip(sel.fit.iter()).map(|(a, b)| *a - *b));
        let mf_at = ndft.matched_filter(&sel.residual, cand.x);

        // Quiet-zone significance test: every genuine squared-channel term
        // lies at/after the direct term, so the profile *before* the first
        // real path holds only noise, aliases and solver leakage. The
        // candidate's cleaned matched-filter response must stand well above
        // the median response of the region before it.
        let zone_hi = cand.x - 2.0 * grid.step_ns * min_sep as f64;
        if zone_hi > 4.0 * grid.step_ns {
            let step = (zone_hi / 24.0).max(grid.step_ns);
            sel.quiet.clear();
            let mut x = 0.0;
            while x < zone_hi {
                sel.quiet.push(ndft.matched_filter(&sel.residual, x));
                x += step;
            }
            if sel.quiet.len() >= 6 {
                let floor = chronos_math::stats::median_inplace(&mut sel.quiet);
                if debug_peaks() {
                    eprintln!(
                        "[peaks] cand x={:.2} mag={:.4} mf={:.4} quiet_floor={:.4}",
                        cand.x, cand.magnitude, mf_at, floor
                    );
                }
                if mf_at < atom_snr_min * floor {
                    continue 'candidates; // not significant above leakage
                }
            }
        }

        // Sidelobe/ghost model-comparison test: refit without the
        // candidate; an artifact's (sidelobe fringe, grating ghost,
        // garbage-collector atom) energy is re-absorbed by the remaining
        // support, while a real path leaves ~n*|a|^2 unexplained. Run it
        // for every candidate that is not the strongest peak — the
        // strongest peak is always physical.
        //
        // A grating ghost's true source may be *absent* from the sparse
        // support (the ghost atom stole its energy), so the refit is
        // seeded with candidate-image atoms at every grating-lobe offset
        // after the candidate: if one of those explains the data, the
        // candidate was the ghost.
        let _ = (veto_window_ns, r_with);
        let suspicious = sel
            .peaks
            .iter()
            .skip(i + 1)
            .any(|later| later.magnitude > cand.magnitude);
        if suspicious {
            // Ghost-source hypotheses: a grating ghost has exactly ONE
            // source, one lobe offset away. Each hypothesis gets the
            // existing support minus the candidate, plus a single seeded
            // source atom; the baseline keeps the candidate (same refit
            // budget everywhere, so the comparison is fair). Seeding all
            // offsets at once would hand the alternative an overcomplete
            // basis that can explain *any* atom — hence one at a time.
            debias_into(ndft, h, p_final, 18, 3, debias_ws, &mut sel.debias_out);
            let r_a = resid_sq(ndft, h, &sel.debias_out, &mut sel.fit);

            // Cluster lobe offsets within 4 ns (fringes of one envelope).
            sel.clusters.clear();
            for d in lobe_offsets_ns {
                if sel
                    .clusters
                    .last()
                    .map(|c| (d - c).abs() > 4.0)
                    .unwrap_or(true)
                {
                    sel.clusters.push(*d);
                }
            }

            // `sel.model` already holds the support minus the candidate's
            // neighborhood (built for the CLEANed matched filter above).

            // Hypotheses: no alternative source, or one seed per cluster.
            debias_into(ndft, h, &sel.model, 18, 3, debias_ws, &mut sel.debias_out);
            let mut r_b_best = resid_sq(ndft, h, &sel.debias_out, &mut sel.fit);
            for ci in 0..sel.clusters.len() {
                let d = sel.clusters[ci];
                let x_img = cand.x + d;
                let idx = ((x_img - grid.start_ns) / grid.step_ns).round() as isize;
                if idx < 0 || (idx as usize) >= sel.model.len() {
                    continue;
                }
                sel.hyp.clear();
                let model = &sel.model;
                sel.hyp.extend_from_slice(model);
                if sel.hyp[idx as usize].abs() < 1e-12 {
                    sel.hyp[idx as usize] = Complex64::from_re(cand.magnitude);
                }
                debias_into(ndft, h, &sel.hyp, 18, 3, debias_ws, &mut sel.debias_out);
                let r = resid_sq(ndft, h, &sel.debias_out, &mut sel.fit);
                r_b_best = r_b_best.min(r);
            }
            // Accept only when removing the candidate hurts the fit in
            // *relative* terms: the best alternative's residual energy must
            // exceed the baseline's by the configured factor. Absolute
            // (n*|a|^2-scaled) thresholds fail both ways — too strict in
            // dense multipath where neighbors legitimately absorb part of
            // any atom's footprint, too lax against noise atoms whose
            // removal always costs their own (noise) energy.
            let relative_ok = r_a > 0.0 && r_b_best >= (1.0 + energy_factor) * r_a;
            if debug_peaks() {
                eprintln!(
                    "[veto] cand x={:.2} mag={:.4} r_a={:.4} r_b={:.4} rel={}",
                    cand.x, cand.magnitude, r_a, r_b_best, relative_ok
                );
            }
            if !relative_ok {
                continue 'candidates; // artifact: an alternative explains it
            }
        }
        return Ok(cand);
    }
    // Every candidate vetoed: fall back to the strongest peak (a safe,
    // always-physical choice).
    sel.peaks
        .iter()
        .copied()
        .max_by(|a, b| a.magnitude.partial_cmp(&b.magnitude).unwrap())
        .ok_or(ChronosError::NoDominantPath)
}

/// Synthesizes a [`BandProduct`] directly from path delays — a test/ablation
/// helper that bypasses CSI synthesis (genie products).
pub fn genie_product(freq_hz: f64, paths: &[(f64, f64)], delay_scale: f64) -> BandProduct {
    use std::f64::consts::PI;
    let mut h = Complex64::ZERO;
    for (tau_ns, a) in paths {
        h += Complex64::from_polar(*a, -2.0 * PI * freq_hz * tau_ns * 1e-9);
    }
    let value = match delay_scale as u32 {
        2 => h * h,
        8 => (h * h).powi(4),
        _ => h,
    };
    BandProduct {
        freq_hz,
        value,
        exchanges: 1,
        delay_scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::bands::{band_plan, band_plan_5ghz};

    fn genie_products_5g(paths: &[(f64, f64)]) -> Vec<BandProduct> {
        band_plan_5ghz()
            .iter()
            .map(|b| genie_product(b.center_hz, paths, 2.0))
            .collect()
    }

    #[test]
    fn single_path_estimate_subnanosecond() {
        let est = TofEstimator::new(ChronosConfig::ideal());
        let tau = 17.3;
        let r = est
            .estimate_from_products(&genie_products_5g(&[(tau, 1.0)]))
            .unwrap();
        assert!((r.tof_ns - tau).abs() < 0.05, "tof {}", r.tof_ns);
        assert!((r.distance_m - chronos_math::constants::ns_to_m(tau)).abs() < 0.02);
    }

    #[test]
    fn multipath_first_peak_wins() {
        let est = TofEstimator::new(ChronosConfig::ideal());
        let paths = [(10.0, 0.8), (14.0, 1.0), (21.0, 0.6)];
        let r = est
            .estimate_from_products(&genie_products_5g(&paths))
            .unwrap();
        assert!((r.tof_ns - 10.0).abs() < 0.25, "tof {}", r.tof_ns);
    }

    #[test]
    fn calibration_shifts_estimate() {
        let mut cfg = ChronosConfig::ideal();
        cfg.calibration_ns = 6.0;
        let est = TofEstimator::new(cfg);
        let r = est
            .estimate_from_products(&genie_products_5g(&[(16.0, 1.0)]))
            .unwrap();
        assert!((r.tof_ns - 10.0).abs() < 0.05, "tof {}", r.tof_ns);
    }

    #[test]
    fn mixed_groups_fuse_with_cross_check() {
        // 5 GHz at scale 2 plus 2.4 GHz at scale 8, consistent truth.
        let tau = 9.4;
        let mut products = genie_products_5g(&[(tau, 1.0)]);
        for b in band_plan().iter().filter(|b| b.group.is_2g4()) {
            products.push(genie_product(b.center_hz, &[(tau, 1.0)], 8.0));
        }
        let est = TofEstimator::new(ChronosConfig::default());
        let r = est.estimate_from_products(&products).unwrap();
        assert!((r.tof_ns - tau).abs() < 0.1, "tof {}", r.tof_ns);
        assert!(r.cross_check_ok);
        assert_eq!(r.groups.len(), 2);
        assert_eq!(r.groups[0].n_bands, 24); // 5 GHz primary
    }

    #[test]
    fn inconsistent_coarse_group_flags_cross_check() {
        let mut products = genie_products_5g(&[(9.4, 1.0)]);
        // Coarse group sees a *different* (inconsistent) delay.
        for b in band_plan().iter().filter(|b| b.group.is_2g4()) {
            products.push(genie_product(b.center_hz, &[(18.0, 1.0)], 8.0));
        }
        let est = TofEstimator::new(ChronosConfig::default());
        let r = est.estimate_from_products(&products).unwrap();
        assert!(
            (r.tof_ns - 9.4).abs() < 0.2,
            "primary unaffected: {}",
            r.tof_ns
        );
        assert!(!r.cross_check_ok, "cross-check should flag inconsistency");
    }

    #[test]
    fn too_few_bands_rejected() {
        let est = TofEstimator::new(ChronosConfig::ideal());
        let products: Vec<BandProduct> = band_plan_5ghz()
            .iter()
            .take(3)
            .map(|b| genie_product(b.center_hz, &[(5.0, 1.0)], 2.0))
            .collect();
        assert!(matches!(
            est.estimate_from_products(&products),
            Err(ChronosError::TooFewBands { got: 3, need: 5 })
        ));
    }

    #[test]
    fn profile_has_sparse_dominant_peaks() {
        let est = TofEstimator::new(ChronosConfig::ideal());
        let paths = [(8.0, 1.0), (12.5, 0.7), (18.0, 0.5), (26.0, 0.35)];
        let r = est
            .estimate_from_products(&genie_products_5g(&paths))
            .unwrap();
        let count = r.groups[0].profile.peak_count(0.15);
        // 4 paths -> up to 10 squared-channel terms; a split atom may add
        // one more. Must stay sparse regardless.
        assert!((3..=12).contains(&count), "count {count}");
    }

    #[test]
    fn close_range_accuracy_paper_example() {
        // The paper's running example: 0.6 m, tau = 2 ns.
        let est = TofEstimator::new(ChronosConfig::ideal());
        let tau = chronos_math::constants::m_to_ns(0.6);
        let r = est
            .estimate_from_products(&genie_products_5g(&[(tau, 1.0)]))
            .unwrap();
        assert!((r.tof_ns - tau).abs() < 0.05, "tof {}", r.tof_ns);
    }

    #[test]
    fn empty_input_is_error() {
        let est = TofEstimator::new(ChronosConfig::ideal());
        assert!(est.estimate_from_products(&[]).is_err());
        assert!(est.estimate(&[]).is_err());
    }
}
