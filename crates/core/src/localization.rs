//! Device-to-device localization from per-antenna distances (paper §8).
//!
//! A multi-antenna receiver measures the transmitter's time-of-flight to
//! each of its antennas; multiplying by the speed of light gives one
//! distance circle per antenna, and the transmitter sits at their
//! intersection. With two antennas the intersection is ambiguous (two
//! mirror points); a third, non-collinear antenna disambiguates, or — when
//! the receiver can move — the mobility heuristic of §8 does.
//!
//! The solver is a damped Gauss–Newton least squares over candidate starts
//! (both mirror seeds), preceded by triangle-inequality consistency
//! filtering on the distance set (§12.2's "discard estimates that do not
//! fit the geometry of the relative antenna placements").

use crate::error::ChronosError;
use chronos_math::lstsq::{GaussNewton, GnWorkspace, Residuals};
use chronos_rf::geometry::Point;

pub mod tdoa;

/// One antenna's distance observation.
#[derive(Debug, Clone, Copy)]
pub struct AntennaRange {
    /// Antenna position in the receiver's local frame, meters.
    pub antenna: Point,
    /// Measured distance to the transmitter, meters.
    pub distance_m: f64,
}

/// A located transmitter.
#[derive(Debug, Clone, Copy)]
pub struct Position {
    /// Estimated transmitter position in the receiver's frame.
    pub point: Point,
    /// Root-mean-square circle residual at the solution, meters.
    pub residual_m: f64,
    /// How many antenna ranges the solution used (after outlier
    /// rejection).
    pub n_used: usize,
}

struct CircleResiduals<'a> {
    ranges: &'a [AntennaRange],
}

impl Residuals for CircleResiduals<'_> {
    fn len(&self) -> usize {
        self.ranges.len()
    }
    fn eval(&self, p: &[f64], out: &mut [f64]) {
        for (i, r) in self.ranges.iter().enumerate() {
            let d = Point::new(p[0], p[1]).dist(r.antenna);
            out[i] = d - r.distance_m;
        }
    }
}

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct LocalizerConfig {
    /// Slack for the geometric consistency test: ranges `i` and `j` are
    /// mutually consistent when `|d_i - d_j| <= separation_ij + tol`
    /// (the triangle inequality — the paper's "estimates that do not fit
    /// the geometry of the relative antenna placements").
    pub consistency_tol_m: f64,
    /// Maximum acceptable RMS residual before declaring no consistent
    /// position, meters.
    pub max_residual_m: f64,
}

impl Default for LocalizerConfig {
    fn default() -> Self {
        LocalizerConfig {
            consistency_tol_m: 0.5,
            max_residual_m: 1.5,
        }
    }
}

/// Intersects the two circles centered at `a` and `b`; returns 0, 1 or 2
/// candidate points. Degenerate (concentric) inputs return an empty set.
pub fn circle_intersection(a: Point, ra: f64, b: Point, rb: f64) -> Vec<Point> {
    let mut out = Vec::new();
    circle_intersection_into(a, ra, b, rb, &mut out);
    out
}

/// [`circle_intersection`] into a caller-provided buffer.
pub fn circle_intersection_into(a: Point, ra: f64, b: Point, rb: f64, out: &mut Vec<Point>) {
    out.clear();
    let d = a.dist(b);
    if d < 1e-9 {
        return;
    }
    // No intersection: circles too far apart or nested. Fall back to the
    // nearest-approach point (useful as a least-squares seed).
    let x = (d * d - rb * rb + ra * ra) / (2.0 * d);
    let h2 = ra * ra - x * x;
    let ex = b.sub(a).scale(1.0 / d);
    let base = a.add(ex.scale(x));
    if h2 <= 0.0 {
        out.push(base);
        return;
    }
    let h = h2.sqrt();
    let ey = Point::new(-ex.y, ex.x);
    out.push(base.add(ey.scale(h)));
    out.push(base.sub(ey.scale(h)));
}

/// Locates the transmitter from per-antenna ranges.
///
/// Needs at least two usable ranges. With exactly two, returns the
/// candidate on the positive-y side of the antenna baseline (callers
/// resolve the ambiguity via a third antenna or mobility; see
/// [`disambiguate_by_motion`] and [`locate_all`]).
pub fn locate(ranges: &[AntennaRange], cfg: &LocalizerConfig) -> Result<Position, ChronosError> {
    locate_all(ranges, cfg).map(|mut c| c.remove(0))
}

/// Drops ranges that violate the triangle inequality against the rest of
/// the set (a bad ToF differs from another antenna's by more than their
/// separation allows), iteratively removing the worst offender (ties keep
/// the highest index, matching the historical `max_by_key`).
fn triangle_filter_into(
    ranges: &[AntennaRange],
    cfg: &LocalizerConfig,
    usable: &mut Vec<AntennaRange>,
) {
    usable.clear();
    usable.extend_from_slice(ranges);
    while usable.len() > 2 {
        let mut worst_idx = 0usize;
        let mut worst = 0usize;
        for (i, ri) in usable.iter().enumerate() {
            let count = usable
                .iter()
                .filter(|rj| {
                    let sep = ri.antenna.dist(rj.antenna);
                    (ri.distance_m - rj.distance_m).abs() > sep + cfg.consistency_tol_m
                })
                .count();
            if count >= worst {
                worst = count;
                worst_idx = i;
            }
        }
        if worst == 0 {
            break;
        }
        usable.remove(worst_idx);
    }
}

/// Gauss–Newton fits from both mirror seeds into `out`: the distinct
/// converged candidates sorted best-residual first.
fn fit_candidates_into(
    usable: &[AntennaRange],
    seeds: &mut Vec<Point>,
    gn_ws: &mut GnWorkspace,
    out: &mut Vec<Position>,
) {
    out.clear();
    let (i, j) = widest_pair(usable);
    circle_intersection_into(
        usable[i].antenna,
        usable[i].distance_m,
        usable[j].antenna,
        usable[j].distance_m,
        seeds,
    );
    if seeds.is_empty() {
        seeds.push(Point::new(0.0, usable[0].distance_m));
    }

    let gn = GaussNewton {
        max_iters: 200,
        ..Default::default()
    };
    let problem = CircleResiduals { ranges: usable };
    for seed in seeds.iter() {
        let fit = gn.minimize_with(&problem, &[seed.x, seed.y], gn_ws);
        let p = Point::new(gn_ws.params[0], gn_ws.params[1]);
        if !p.x.is_finite() || !p.y.is_finite() {
            continue;
        }
        let rms = (fit.cost / usable.len() as f64).sqrt();
        // With a well-conditioned (3+ antenna) set both seeds converge to
        // the same minimum; keep only genuinely distinct solutions.
        if out.iter().any(|c| c.point.dist(p) < 0.05) {
            continue;
        }
        out.push(Position {
            point: p,
            residual_m: rms,
            n_used: usable.len(),
        });
    }
    // Stable sort: ties (the exact two-range mirror pair) keep seed order,
    // i.e. the positive-y candidate first. (At most two candidates — the
    // sort never leaves its allocation-free insertion regime.)
    out.sort_by(|a, b| a.residual_m.partial_cmp(&b.residual_m).unwrap());
}

/// Locates the transmitter from per-antenna ranges, returning *every*
/// consistent candidate, best residual first.
///
/// With three or more well-conditioned ranges this is a single point;
/// with two ranges (or a near-degenerate third) it is the mirror pair
/// across the antenna baseline, which callers disambiguate with a motion
/// prior (§8's mobility heuristic — see
/// [`crate::tracker::PositionTracker::resolve`]) or
/// [`disambiguate_by_motion`].
///
/// NLOS handling is two-staged: ranges violating the triangle inequality
/// against the rest of the set are rejected outright, and when the
/// surviving set still fits worse than `max_residual_m` (a biased but
/// geometrically consistent through-wall ToF), the antenna with the
/// largest circle residual at the best fit is dropped and the remainder
/// refit — the paper's "discard estimates that do not fit the geometry"
/// (§12.2) extended to soft NLOS bias.
pub fn locate_all(
    ranges: &[AntennaRange],
    cfg: &LocalizerConfig,
) -> Result<Vec<Position>, ChronosError> {
    let mut ws = LocateScratch::default();
    let mut out = Vec::new();
    locate_all_into(ranges, cfg, &mut ws, &mut out)?;
    Ok(out)
}

/// Reusable working storage for [`locate_all_into`]: the filtered range
/// set, candidate buffers, seed points and the Gauss–Newton workspace.
#[derive(Debug, Clone, Default)]
pub struct LocateScratch {
    usable: Vec<AntennaRange>,
    cands: Vec<Position>,
    refit: Vec<Position>,
    seeds: Vec<Point>,
    gn: GnWorkspace,
}

/// [`locate_all`] into a reusable workspace and output buffer — identical
/// results (bit for bit), zero heap allocations once the workspace has
/// seen the antenna count.
pub fn locate_all_into(
    ranges: &[AntennaRange],
    cfg: &LocalizerConfig,
    ws: &mut LocateScratch,
    out: &mut Vec<Position>,
) -> Result<(), ChronosError> {
    out.clear();
    if ranges.len() < 2 {
        return Err(ChronosError::NoConsistentPosition);
    }
    let LocateScratch {
        usable,
        cands,
        refit,
        seeds,
        gn,
    } = ws;
    triangle_filter_into(ranges, cfg, usable);
    fit_candidates_into(usable, seeds, gn, cands);

    // Residual-based NLOS rejection: while the best fit is inconsistent
    // and we can spare an antenna, drop the worst-fitting range.
    while cands
        .first()
        .is_none_or(|c| c.residual_m > cfg.max_residual_m)
        && usable.len() > 3
    {
        let best = match cands.first() {
            Some(b) => *b,
            None => break,
        };
        let worst = usable
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let ra = (best.point.dist(a.antenna) - a.distance_m).abs();
                let rb = (best.point.dist(b.antenna) - b.distance_m).abs();
                ra.partial_cmp(&rb).unwrap()
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        usable.remove(worst);
        fit_candidates_into(usable, seeds, gn, refit);
        if refit.is_empty() {
            break;
        }
        std::mem::swap(cands, refit);
    }

    cands.retain(|c| c.residual_m <= cfg.max_residual_m);
    if cands.is_empty() {
        return Err(ChronosError::NoConsistentPosition);
    }
    out.extend_from_slice(cands);
    Ok(())
}

/// Picks the pair of ranges with the widest antenna separation (best
/// geometry for seeding).
fn widest_pair(ranges: &[AntennaRange]) -> (usize, usize) {
    let mut best = (0, 1);
    let mut best_d = -1.0;
    for i in 0..ranges.len() {
        for j in (i + 1)..ranges.len() {
            let d = ranges[i].antenna.dist(ranges[j].antenna);
            if d > best_d {
                best_d = d;
                best = (i, j);
            }
        }
    }
    best
}

/// The §8 mobility disambiguation: given the two mirror candidates and a
/// second measurement taken after the receiver moved by `motion` (in its
/// own frame), keep the candidate whose predicted distance change matches
/// the observed one.
pub fn disambiguate_by_motion(
    candidates: (Point, Point),
    motion: Point,
    distance_before_m: f64,
    distance_after_m: f64,
) -> Point {
    let predict = |c: Point| (c.sub(motion).norm() - c.norm()).abs();
    let observed = (distance_after_m - distance_before_m).abs();
    let e0 = (predict(candidates.0) - observed).abs();
    let e1 = (predict(candidates.1) - observed).abs();
    if e0 <= e1 {
        candidates.0
    } else {
        candidates.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::hardware::AntennaArray;

    fn ranges_for(tx: Point, array: &AntennaArray, noise: &[f64]) -> Vec<AntennaRange> {
        array
            .positions()
            .iter()
            .enumerate()
            .map(|(i, a)| AntennaRange {
                antenna: *a,
                distance_m: a.dist(tx) + noise.get(i).copied().unwrap_or(0.0),
            })
            .collect()
    }

    #[test]
    fn exact_three_antenna_fix() {
        let array = AntennaArray::laptop();
        let tx = Point::new(2.5, 4.0);
        let ranges = ranges_for(tx, &array, &[]);
        let pos = locate(&ranges, &LocalizerConfig::default()).unwrap();
        assert!(pos.point.dist(tx) < 1e-4, "err {}", pos.point.dist(tx));
        assert!(pos.residual_m < 1e-6);
        assert_eq!(pos.n_used, 3);
    }

    #[test]
    fn noisy_three_antenna_fix_sub_meter() {
        let array = AntennaArray::access_point();
        let tx = Point::new(-3.0, 6.5);
        let ranges = ranges_for(tx, &array, &[0.05, -0.04, 0.06]);
        let pos = locate(&ranges, &LocalizerConfig::default()).unwrap();
        assert!(pos.point.dist(tx) < 0.6, "err {}", pos.point.dist(tx));
    }

    #[test]
    fn wider_array_is_more_accurate() {
        // §10's antenna-separation trade-off, in its geometric essence:
        // same range noise, larger baseline -> smaller position error.
        let tx = Point::new(1.5, 5.0);
        let noise = [0.08, -0.06, 0.07];
        let small = locate(
            &ranges_for(tx, &AntennaArray::laptop(), &noise),
            &LocalizerConfig::default(),
        )
        .unwrap();
        let large = locate(
            &ranges_for(tx, &AntennaArray::access_point(), &noise),
            &LocalizerConfig::default(),
        )
        .unwrap();
        assert!(
            large.point.dist(tx) < small.point.dist(tx),
            "large {} small {}",
            large.point.dist(tx),
            small.point.dist(tx)
        );
    }

    #[test]
    fn outlier_antenna_rejected() {
        let array = AntennaArray::access_point();
        let tx = Point::new(2.0, 3.0);
        // Third antenna's range is wildly wrong (NLOS-style outlier).
        let mut ranges = ranges_for(tx, &array, &[0.01, -0.01, 0.0]);
        ranges[2].distance_m += 4.0;
        let pos = locate(&ranges, &LocalizerConfig::default()).unwrap();
        assert!(pos.point.dist(tx) < 0.5, "err {}", pos.point.dist(tx));
        assert!(pos.n_used < 3, "outlier not dropped");
    }

    #[test]
    fn two_antennas_give_mirror_candidate() {
        let a = Point::new(-0.5, 0.0);
        let b = Point::new(0.5, 0.0);
        let tx = Point::new(0.3, 2.0);
        let ranges = vec![
            AntennaRange {
                antenna: a,
                distance_m: a.dist(tx),
            },
            AntennaRange {
                antenna: b,
                distance_m: b.dist(tx),
            },
        ];
        let pos = locate(&ranges, &LocalizerConfig::default()).unwrap();
        // Either tx or its mirror across the baseline.
        let mirror = Point::new(tx.x, -tx.y);
        assert!(pos.point.dist(tx) < 1e-3 || pos.point.dist(mirror) < 1e-3);
    }

    #[test]
    fn circle_intersection_cases() {
        // Two clean intersections.
        let pts = circle_intersection(Point::new(0.0, 0.0), 5.0, Point::new(6.0, 0.0), 5.0);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!((p.dist(Point::new(0.0, 0.0)) - 5.0).abs() < 1e-9);
            assert!((p.dist(Point::new(6.0, 0.0)) - 5.0).abs() < 1e-9);
        }
        // Tangent-ish / disjoint: nearest-approach fallback.
        let pts = circle_intersection(Point::new(0.0, 0.0), 1.0, Point::new(10.0, 0.0), 1.0);
        assert_eq!(pts.len(), 1);
        // Concentric: empty.
        assert!(
            circle_intersection(Point::new(0.0, 0.0), 1.0, Point::new(0.0, 0.0), 2.0).is_empty()
        );
    }

    #[test]
    fn motion_disambiguation_picks_correct_side() {
        let truth = Point::new(1.0, 3.0);
        let mirror = Point::new(1.0, -3.0);
        // Receiver moves toward +y by 1 m: distance to truth shrinks,
        // distance to mirror grows.
        let motion = Point::new(0.0, 1.0);
        let before = truth.norm();
        let after = truth.sub(motion).norm();
        let picked = disambiguate_by_motion((truth, mirror), motion, before, after);
        assert!(picked.dist(truth) < 1e-9);
        // Swapped candidate order gives the same answer.
        let picked2 = disambiguate_by_motion((mirror, truth), motion, before, after);
        assert!(picked2.dist(truth) < 1e-9);
    }

    #[test]
    fn locate_all_returns_mirror_pair_for_two_antennas() {
        let a = Point::new(-0.5, 0.0);
        let b = Point::new(0.5, 0.0);
        let tx = Point::new(0.4, 1.8);
        let ranges = vec![
            AntennaRange {
                antenna: a,
                distance_m: a.dist(tx),
            },
            AntennaRange {
                antenna: b,
                distance_m: b.dist(tx),
            },
        ];
        let cands = locate_all(&ranges, &LocalizerConfig::default()).unwrap();
        assert_eq!(cands.len(), 2, "two-antenna fix must expose both mirrors");
        let mirror = Point::new(tx.x, -tx.y);
        // Positive-y candidate first (documented tie-break), mirror second.
        assert!(cands[0].point.dist(tx) < 1e-3, "{:?}", cands[0].point);
        assert!(cands[1].point.dist(mirror) < 1e-3, "{:?}", cands[1].point);
    }

    #[test]
    fn locate_all_collapses_to_one_candidate_with_third_antenna() {
        let array = AntennaArray::access_point();
        let tx = Point::new(1.0, 4.0);
        let ranges = ranges_for(tx, &array, &[]);
        let cands = locate_all(&ranges, &LocalizerConfig::default()).unwrap();
        assert_eq!(cands.len(), 1, "third antenna must disambiguate");
        assert!(cands[0].point.dist(tx) < 1e-3);
    }

    #[test]
    fn soft_nlos_bias_rejected_by_residual_with_four_antennas() {
        // Four antennas; one carries a through-wall bias small enough to
        // survive the triangle test but large enough to wreck the fit.
        let array = AntennaArray::custom(vec![
            Point::new(-0.6, 0.0),
            Point::new(0.6, 0.0),
            Point::new(0.0, 0.8),
            Point::new(0.0, -0.6),
        ]);
        let tx = Point::new(1.5, 3.0);
        let mut ranges = ranges_for(tx, &array, &[0.01, -0.01, 0.0, 0.0]);
        ranges[3].distance_m += 0.9;
        let cfg = LocalizerConfig {
            consistency_tol_m: 1.5,
            max_residual_m: 0.3,
        };
        let cands = locate_all(&ranges, &cfg).unwrap();
        assert!(cands[0].n_used < 4, "biased antenna not dropped");
        assert!(
            cands[0].point.dist(tx) < 0.3,
            "err {}",
            cands[0].point.dist(tx)
        );
    }

    #[test]
    fn single_antenna_cannot_locate() {
        let ranges = vec![AntennaRange {
            antenna: Point::new(0.0, 0.0),
            distance_m: 3.0,
        }];
        assert!(locate(&ranges, &LocalizerConfig::default()).is_err());
    }

    #[test]
    fn absurd_residual_rejected() {
        // Mutually impossible distances with a tight residual cap.
        let ranges = vec![
            AntennaRange {
                antenna: Point::new(-0.5, 0.0),
                distance_m: 1.0,
            },
            AntennaRange {
                antenna: Point::new(0.5, 0.0),
                distance_m: 9.0,
            },
            AntennaRange {
                antenna: Point::new(0.0, 0.4),
                distance_m: 4.0,
            },
        ];
        let cfg = LocalizerConfig {
            consistency_tol_m: 100.0,
            max_residual_m: 0.05,
        };
        assert!(locate(&ranges, &cfg).is_err());
    }
}
