//! The non-uniform discrete Fourier transform over Wi-Fi band centers
//! (paper §6.1).
//!
//! Measurements live at the scattered band center frequencies
//! `{f_1, ..., f_n}`; the multipath profile lives on a uniform delay grid
//! `{tau_1, ..., tau_m}`. The forward operator is the `n x m` matrix
//! `F[i][k] = e^{-j 2 pi f_i tau_k}` (the paper's Fourier matrix). This
//! module materializes `F`, applies it and its adjoint, and estimates its
//! spectral norm by power iteration — the step size the proximal-gradient
//! solver needs.

use chronos_math::cvec;
use chronos_math::Complex64;
use std::f64::consts::PI;

/// A uniform delay grid in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauGrid {
    /// First grid point, ns.
    pub start_ns: f64,
    /// Grid step, ns.
    pub step_ns: f64,
    /// Number of points.
    pub len: usize,
}

impl TauGrid {
    /// Grid covering `[0, span)` with the given step.
    pub fn span(span_ns: f64, step_ns: f64) -> Self {
        assert!(span_ns > 0.0 && step_ns > 0.0, "grid must be positive");
        TauGrid {
            start_ns: 0.0,
            step_ns,
            len: (span_ns / step_ns).ceil() as usize,
        }
    }

    /// The delay at grid index `k`, ns.
    #[inline]
    pub fn tau_at(&self, k: usize) -> f64 {
        self.start_ns + k as f64 * self.step_ns
    }

    /// All grid delays.
    pub fn taus(&self) -> Vec<f64> {
        (0..self.len).map(|k| self.tau_at(k)).collect()
    }
}

/// The materialized NDFT operator.
///
/// The matrix is stored as one contiguous row-major buffer so the
/// forward/adjoint loops — the innermost loops of the whole estimator —
/// stream memory linearly. Construction (and the power iteration for the
/// operator norm) is the expensive part; sessions that sweep the same band
/// plan should build the operator once via a `PlanCache` and share it.
#[derive(Debug, Clone)]
pub struct Ndft {
    freqs_hz: Vec<f64>,
    grid: TauGrid,
    /// Row-major `n x m` matrix entries, row `i` = frequency `i`.
    mat: Vec<Complex64>,
    /// Column-major copy (`m x n`, column `k` contiguous): the forward
    /// transform walks *columns* so it can skip the zero entries of a
    /// sparse profile while streaming memory linearly. Same entries as
    /// `mat`, copied at construction.
    mat_t: Vec<Complex64>,
    /// Structure-of-arrays copies of `mat`/`mat_t` (split re/im planes)
    /// for the lane-chunked kernels of the `simd` feature. Same entries,
    /// copied at construction.
    #[cfg(feature = "simd")]
    split: SplitMats,
}

/// Split re/im planes of the operator for the `simd` lane kernels.
#[cfg(feature = "simd")]
#[derive(Debug, Clone, Default)]
struct SplitMats {
    /// Row-major real parts of `mat`.
    mat_re: Vec<f64>,
    /// Row-major imaginary parts of `mat`.
    mat_im: Vec<f64>,
    /// Column-major real parts (`mat_t`).
    mat_t_re: Vec<f64>,
    /// Column-major imaginary parts (`mat_t`).
    mat_t_im: Vec<f64>,
}

impl Ndft {
    /// Builds the operator for measurement frequencies `freqs_hz` and the
    /// delay grid `grid`.
    ///
    /// # Panics
    /// Panics if `freqs_hz` is empty or the grid has no points.
    pub fn new(freqs_hz: &[f64], grid: TauGrid) -> Self {
        assert!(!freqs_hz.is_empty(), "need at least one frequency");
        assert!(grid.len > 0, "grid must be non-empty");
        let mut mat = Vec::with_capacity(freqs_hz.len() * grid.len);
        for f in freqs_hz {
            for k in 0..grid.len {
                let tau_s = grid.tau_at(k) * 1e-9;
                mat.push(Complex64::cis(-2.0 * PI * f * tau_s));
            }
        }
        let n = freqs_hz.len();
        let m = grid.len;
        let mut mat_t = Vec::with_capacity(n * m);
        for k in 0..m {
            for i in 0..n {
                mat_t.push(mat[i * m + k]);
            }
        }
        #[cfg(feature = "simd")]
        let split = SplitMats {
            mat_re: mat.iter().map(|z| z.re).collect(),
            mat_im: mat.iter().map(|z| z.im).collect(),
            mat_t_re: mat_t.iter().map(|z| z.re).collect(),
            mat_t_im: mat_t.iter().map(|z| z.im).collect(),
        };
        Ndft {
            freqs_hz: freqs_hz.to_vec(),
            grid,
            mat,
            mat_t,
            #[cfg(feature = "simd")]
            split,
        }
    }

    /// Number of measurement frequencies (rows).
    pub fn n_freqs(&self) -> usize {
        self.freqs_hz.len()
    }

    /// Number of grid delays (columns).
    pub fn n_taus(&self) -> usize {
        self.grid.len
    }

    /// The delay grid.
    pub fn grid(&self) -> TauGrid {
        self.grid
    }

    /// The measurement frequencies.
    pub fn freqs_hz(&self) -> &[f64] {
        &self.freqs_hz
    }

    /// Forward transform: `h = F p` (profile -> measurements).
    ///
    /// Exactly-zero profile entries are skipped: each would contribute a
    /// literal `acc += a * 0`, which leaves every finite accumulator
    /// unchanged (at most the sign of an all-zero row's zero differs, and
    /// IEEE-754 zero signs are value-equal). The proximal-gradient
    /// iterates are sparse after the first few SPARSIFY steps, so this
    /// turns the solver's dense `n x m` forward pass into an
    /// `n x nnz(p)` one — the single largest win of the scratch pipeline.
    pub fn forward(&self, p: &[Complex64]) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.forward_into(p, &mut out);
        out
    }

    /// [`Ndft::forward`] into a caller-provided buffer (no allocation
    /// once `out` has capacity).
    ///
    /// Walks the transposed (column-major) operator so skipping a zero
    /// profile entry skips one contiguous column. For every output row
    /// the surviving terms still accumulate in ascending grid order —
    /// exactly the dense row loop's order with its zero terms removed —
    /// so the result is unchanged.
    pub fn forward_into(&self, p: &[Complex64], out: &mut Vec<Complex64>) {
        assert_eq!(p.len(), self.grid.len, "forward: profile length mismatch");
        let n = self.freqs_hz.len();
        out.clear();
        out.resize(n, Complex64::ZERO);
        for (col, b) in self.mat_t.chunks_exact(n).zip(p.iter()) {
            if b.re == 0.0 && b.im == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(col.iter()) {
                *o += *a * *b;
            }
        }
    }

    /// Adjoint transform: `p = F* h` (measurements -> profile domain).
    pub fn adjoint(&self, h: &[Complex64]) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.adjoint_into(h, &mut out);
        out
    }

    /// [`Ndft::adjoint`] into a caller-provided buffer (no allocation
    /// once `out` has capacity).
    pub fn adjoint_into(&self, h: &[Complex64], out: &mut Vec<Complex64>) {
        assert_eq!(
            h.len(),
            self.freqs_hz.len(),
            "adjoint: measurement length mismatch"
        );
        out.clear();
        out.resize(self.grid.len, Complex64::ZERO);
        for (row, hi) in self.mat.chunks_exact(self.grid.len).zip(h.iter()) {
            for (o, a) in out.iter_mut().zip(row.iter()) {
                *o += a.conj() * *hi;
            }
        }
    }

    /// Matched-filter (Bartlett) response at an arbitrary, off-grid delay:
    /// `|sum_i h_i e^{+j 2 pi f_i tau}|`. Used for sub-grid peak
    /// refinement.
    pub fn matched_filter(&self, h: &[Complex64], tau_ns: f64) -> f64 {
        assert_eq!(
            h.len(),
            self.freqs_hz.len(),
            "matched_filter: length mismatch"
        );
        let tau_s = tau_ns * 1e-9;
        let mut acc = Complex64::ZERO;
        for (f, hi) in self.freqs_hz.iter().zip(h.iter()) {
            acc += *hi * Complex64::cis(2.0 * PI * f * tau_s);
        }
        acc.abs()
    }

    /// Estimates the spectral norm `||F||_2` by power iteration on `F* F`.
    pub fn op_norm(&self, iters: usize) -> f64 {
        let m = self.grid.len;
        // Deterministic start vector with mild structure.
        let mut v: Vec<Complex64> = (0..m)
            .map(|k| Complex64::cis(0.37 * k as f64) / (m as f64).sqrt())
            .collect();
        let mut norm = 1.0;
        for _ in 0..iters.max(1) {
            let fv = self.forward(&v);
            let mut w = self.adjoint(&fv);
            norm = cvec::norm2(&w);
            if norm == 0.0 {
                return 0.0;
            }
            cvec::scale_in_place(&mut w, 1.0 / norm);
            v = w;
        }
        // norm approximates the largest eigenvalue of F*F = ||F||^2.
        norm.sqrt()
    }
}

/// The lane-chunked structure-of-arrays kernels of the `simd` feature:
/// the same forward/adjoint operators over split re/im planes, written
/// so LLVM vectorizes them into packed f64 arithmetic. The scalar
/// [`Ndft::forward_into`]/[`Ndft::adjoint_into`] above remain the single
/// source of truth; these belong to the tolerance tier (agreement within
/// 1e-12 relative, pinned by proptests in `tests/properties.rs`).
#[cfg(feature = "simd")]
impl Ndft {
    /// [`Ndft::forward_into`] over split re/im slices: `h = F p` with
    /// the same zero-column skipping (an entry is skipped only when both
    /// planes are exactly zero, matching the scalar predicate).
    ///
    /// The output rows are few (`n` = band count, ~12) but every
    /// surviving column update is an independent 4-lane axpy, so the
    /// whole pass is `n_nnz` packed complex multiply-accumulates.
    pub fn forward_split_into(
        &self,
        p_re: &[f64],
        p_im: &[f64],
        out_re: &mut Vec<f64>,
        out_im: &mut Vec<f64>,
    ) {
        assert_eq!(
            p_re.len(),
            self.grid.len,
            "forward: profile length mismatch"
        );
        assert_eq!(
            p_im.len(),
            self.grid.len,
            "forward: profile length mismatch"
        );
        let n = self.freqs_hz.len();
        out_re.clear();
        out_re.resize(n, 0.0);
        out_im.clear();
        out_im.resize(n, 0.0);
        for (k, (br, bi)) in p_re.iter().zip(p_im.iter()).enumerate() {
            if *br == 0.0 && *bi == 0.0 {
                continue;
            }
            let col_re = &self.split.mat_t_re[k * n..(k + 1) * n];
            let col_im = &self.split.mat_t_im[k * n..(k + 1) * n];
            axpy_complex_split(col_re, col_im, *br, *bi, out_re, out_im);
        }
    }

    /// Support-restricted forward transform with on-the-fly FISTA
    /// extrapolation: `h = F y` where
    /// `y = p + beta * (p - prev)` is never materialized.
    ///
    /// `supp_p`/`supp_prev` are the ascending nonzero index lists of the
    /// two iterates (collected for free by
    /// [`Ndft::fused_prox_step_split`]); `y` can only be nonzero on
    /// their merge, so the full-grid zero scan of
    /// [`Ndft::forward_split_into`] disappears — the pass is
    /// `nnz` contiguous 12-wide axpys and nothing else.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_extrapolated_split(
        &self,
        p_re: &[f64],
        p_im: &[f64],
        prev_re: &[f64],
        prev_im: &[f64],
        beta: f64,
        supp_p: &[u32],
        supp_prev: &[u32],
        out_re: &mut Vec<f64>,
        out_im: &mut Vec<f64>,
    ) {
        use chronos_math::lanes::fmadd;
        let m = self.grid.len;
        assert!(
            p_re.len() == m && p_im.len() == m && prev_re.len() == m && prev_im.len() == m,
            "forward: profile length mismatch"
        );
        let n = self.freqs_hz.len();
        out_re.clear();
        out_re.resize(n, 0.0);
        out_im.clear();
        out_im.resize(n, 0.0);
        // Two-pointer merge of the sorted support lists.
        let (mut a, mut b) = (0usize, 0usize);
        loop {
            let k = match (supp_p.get(a), supp_prev.get(b)) {
                (Some(&x), Some(&y)) => {
                    if x <= y {
                        a += 1;
                        if x == y {
                            b += 1;
                        }
                        x
                    } else {
                        b += 1;
                        y
                    }
                }
                (Some(&x), None) => {
                    a += 1;
                    x
                }
                (None, Some(&y)) => {
                    b += 1;
                    y
                }
                (None, None) => break,
            } as usize;
            let yr = fmadd(beta, p_re[k] - prev_re[k], p_re[k]);
            let yi = fmadd(beta, p_im[k] - prev_im[k], p_im[k]);
            if yr == 0.0 && yi == 0.0 {
                continue;
            }
            let col_re = &self.split.mat_t_re[k * n..(k + 1) * n];
            let col_im = &self.split.mat_t_im[k * n..(k + 1) * n];
            axpy_complex_split(col_re, col_im, yr, yi, out_re, out_im);
        }
    }

    /// The fused proximal-gradient step over split planes: one pass over
    /// the grid computing
    /// `next = soft_thresh((p + beta (p - prev)) - g2 * F* fy)` plus the
    /// convergence sums, returning `(|next - p|_2^2, |p|_2^2)`. The
    /// FISTA extrapolation point `y` is computed in registers from the
    /// two iterates (`beta = 0` degrades to plain ISTA), and the
    /// ascending nonzero index list of `next` is pushed into `supp_next`
    /// so the next iteration's forward pass
    /// ([`Ndft::forward_extrapolated_split`]) touches only the support.
    ///
    /// This is the solver's dominant kernel. Fusing the adjoint GEMV
    /// with the extrapolation, gradient step, SPARSIFY and both
    /// reductions keeps each grid tile in registers for the whole
    /// iteration body: the operator planes stream through once and
    /// `next` is written once, instead of the adjoint
    /// re-reading/re-writing a full-grid gradient buffer per measurement
    /// row and the elementwise ops making four more passes. The work is
    /// split into two passes: pass A is branchless and free of
    /// `sqrt`/divide (the below-threshold zeroing compares *squared*
    /// magnitudes, cached in the caller-provided `sq` scratch plane), so
    /// it vectorizes end to end; pass B applies the shrink scale only to
    /// the handful of bins that survived the threshold and harvests the
    /// support with a predictable scalar branch.
    ///
    /// Reductions are lane-reassociated and the shrink magnitude uses
    /// `sqrt` instead of the scalar tier's `hypot`, so this kernel
    /// belongs to the tolerance tier (see `docs/PIPELINE.md`).
    #[allow(clippy::too_many_arguments)]
    pub fn fused_prox_step_split(
        &self,
        fy_re: &[f64],
        fy_im: &[f64],
        p_re: &[f64],
        p_im: &[f64],
        prev_re: &[f64],
        prev_im: &[f64],
        beta: f64,
        g2: f64,
        thresh: f64,
        next_re: &mut [f64],
        next_im: &mut [f64],
        sq: &mut [f64],
        supp_next: &mut Vec<u32>,
    ) -> (f64, f64) {
        use chronos_math::lanes::{fmadd, LANES};
        const TILE: usize = 2 * LANES;
        let n = self.freqs_hz.len();
        let m = self.grid.len;
        assert_eq!(fy_re.len(), n, "fused step: measurement length mismatch");
        assert_eq!(fy_im.len(), n, "fused step: measurement length mismatch");
        assert!(
            p_re.len() == m
                && p_im.len() == m
                && prev_re.len() == m
                && prev_im.len() == m
                && next_re.len() == m
                && next_im.len() == m,
            "fused step: grid length mismatch"
        );
        assert_eq!(sq.len(), m, "fused step: sq scratch length mismatch");
        supp_next.clear();
        let t2 = thresh * thresh;
        let mut pnorm = [0.0f64; TILE];
        let main = m - m % TILE;
        // Pass A — branchless and sqrt/div-free, so it vectorizes end to
        // end: adjoint GEMV tile, extrapolation, gradient step, the
        // below-threshold zeroing (a select against the *squared*
        // threshold) and the |p|^2 reduction. Candidate magnitudes land
        // in `sq`, surviving candidates stay un-shrunk in `next` for
        // pass B.
        for c in (0..main).step_by(TILE) {
            // Adjoint tile: grad[c..c+TILE] = sum_i conj(F[i]) * fy_i,
            // accumulated in registers across all measurement rows.
            let mut gr = [0.0f64; TILE];
            let mut gi = [0.0f64; TILE];
            for i in 0..n {
                let hr = fy_re[i];
                let hi = fy_im[i];
                let row_re = &self.split.mat_re[i * m + c..i * m + c + TILE];
                let row_im = &self.split.mat_im[i * m + c..i * m + c + TILE];
                for l in 0..TILE {
                    gr[l] = fmadd(row_re[l], hr, fmadd(row_im[l], hi, gr[l]));
                    gi[l] = fmadd(row_re[l], hi, fmadd(-row_im[l], hr, gi[l]));
                }
            }
            for l in 0..TILE {
                let k = c + l;
                let yr = fmadd(beta, p_re[k] - prev_re[k], p_re[k]);
                let yi = fmadd(beta, p_im[k] - prev_im[k], p_im[k]);
                let cr = yr - g2 * gr[l];
                let ci = yi - g2 * gi[l];
                let sq_v = fmadd(cr, cr, ci * ci);
                sq[k] = sq_v;
                let keep = sq_v > t2;
                next_re[k] = if keep { cr } else { 0.0 };
                next_im[k] = if keep { ci } else { 0.0 };
                pnorm[l] = fmadd(p_re[k], p_re[k], fmadd(p_im[k], p_im[k], pnorm[l]));
            }
        }
        let mut pnorm_tail = 0.0f64;
        for k in main..m {
            let mut gr = 0.0f64;
            let mut gi_acc = 0.0f64;
            for i in 0..n {
                let ar = self.split.mat_re[i * m + k];
                let ai = self.split.mat_im[i * m + k];
                gr = fmadd(ar, fy_re[i], fmadd(ai, fy_im[i], gr));
                gi_acc = fmadd(ar, fy_im[i], fmadd(-ai, fy_re[i], gi_acc));
            }
            let yr = fmadd(beta, p_re[k] - prev_re[k], p_re[k]);
            let yi = fmadd(beta, p_im[k] - prev_im[k], p_im[k]);
            let cr = yr - g2 * gr;
            let ci = yi - g2 * gi_acc;
            let sq_v = fmadd(cr, cr, ci * ci);
            sq[k] = sq_v;
            let keep = sq_v > t2;
            next_re[k] = if keep { cr } else { 0.0 };
            next_im[k] = if keep { ci } else { 0.0 };
            pnorm_tail = fmadd(p_re[k], p_re[k], fmadd(p_im[k], p_im[k], pnorm_tail));
        }
        let pnorm2 = pnorm.iter().sum::<f64>() + pnorm_tail;
        // Pass B — the expensive shrink (sqrt + divide) runs only on the
        // few dozen candidates that survived the threshold, while the
        // support harvest scans the cached squared magnitudes with a
        // predictable branch. The delta reduction is computed as a
        // correction on |p|^2: a zeroed bin contributes |p_k|^2 to
        // |next - p|^2 exactly, so only surviving bins need their
        // |next_k - p_k|^2 - |p_k|^2 adjustment.
        let mut delta2 = pnorm2;
        for k in 0..m {
            let sq_v = sq[k];
            if sq_v <= t2 {
                continue;
            }
            supp_next.push(k as u32);
            let mag = sq_v.sqrt();
            let s = ((mag - thresh) / mag).max(0.0);
            let nr = next_re[k] * s;
            let ni = next_im[k] * s;
            next_re[k] = nr;
            next_im[k] = ni;
            let dr = nr - p_re[k];
            let di = ni - p_im[k];
            delta2 += fmadd(dr, dr, di * di) - fmadd(p_re[k], p_re[k], p_im[k] * p_im[k]);
        }
        // Cancellation in the correction can drive a tiny positive sum
        // fractionally negative; clamp so the caller's sqrt stays real.
        (delta2.max(0.0), pnorm2)
    }

    /// [`Ndft::adjoint_into`] over split re/im slices: `p = F* h`.
    ///
    /// This is the dense dominant kernel of the solver (`n x m` complex
    /// MACs per FISTA iteration); each row contributes a conjugated
    /// 4-lane axpy across the full grid.
    pub fn adjoint_split_into(
        &self,
        h_re: &[f64],
        h_im: &[f64],
        out_re: &mut Vec<f64>,
        out_im: &mut Vec<f64>,
    ) {
        assert_eq!(
            h_re.len(),
            self.freqs_hz.len(),
            "adjoint: measurement length mismatch"
        );
        assert_eq!(
            h_im.len(),
            self.freqs_hz.len(),
            "adjoint: measurement length mismatch"
        );
        let m = self.grid.len;
        out_re.clear();
        out_re.resize(m, 0.0);
        out_im.clear();
        out_im.resize(m, 0.0);
        for (i, (hr, hi)) in h_re.iter().zip(h_im.iter()).enumerate() {
            let row_re = &self.split.mat_re[i * m..(i + 1) * m];
            let row_im = &self.split.mat_im[i * m..(i + 1) * m];
            // conj(a) * h = (a_re*h_re + a_im*h_im) + j(a_re*h_im - a_im*h_re)
            axpy_conj_split(row_re, row_im, *hr, *hi, out_re, out_im);
        }
    }
}

/// `out += a * b` over split planes for a complex scalar `b`
/// (`(br, bi)`), 4 lanes at a time.
#[cfg(feature = "simd")]
fn axpy_complex_split(
    a_re: &[f64],
    a_im: &[f64],
    br: f64,
    bi: f64,
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    use chronos_math::lanes::{fmadd, LANES};
    let n = a_re.len();
    let main = n - n % LANES;
    for c in (0..main).step_by(LANES) {
        for l in 0..LANES {
            let ar = a_re[c + l];
            let ai = a_im[c + l];
            out_re[c + l] = fmadd(ar, br, fmadd(-ai, bi, out_re[c + l]));
            out_im[c + l] = fmadd(ar, bi, fmadd(ai, br, out_im[c + l]));
        }
    }
    for k in main..n {
        let ar = a_re[k];
        let ai = a_im[k];
        out_re[k] = fmadd(ar, br, fmadd(-ai, bi, out_re[k]));
        out_im[k] = fmadd(ar, bi, fmadd(ai, br, out_im[k]));
    }
}

/// `out += conj(a) * h` over split planes for a complex scalar `h`
/// (`(hr, hi)`), 4 lanes at a time.
#[cfg(feature = "simd")]
fn axpy_conj_split(
    a_re: &[f64],
    a_im: &[f64],
    hr: f64,
    hi: f64,
    out_re: &mut [f64],
    out_im: &mut [f64],
) {
    use chronos_math::lanes::{fmadd, LANES};
    let n = a_re.len();
    let main = n - n % LANES;
    for c in (0..main).step_by(LANES) {
        for l in 0..LANES {
            let ar = a_re[c + l];
            let ai = a_im[c + l];
            out_re[c + l] = fmadd(ar, hr, fmadd(ai, hi, out_re[c + l]));
            out_im[c + l] = fmadd(ar, hi, fmadd(-ai, hr, out_im[c + l]));
        }
    }
    for k in main..n {
        let ar = a_re[k];
        let ai = a_im[k];
        out_re[k] = fmadd(ar, hr, fmadd(ai, hi, out_re[k]));
        out_im[k] = fmadd(ar, hi, fmadd(-ai, hr, out_im[k]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::bands::band_plan_5ghz;

    fn freqs() -> Vec<f64> {
        band_plan_5ghz().iter().map(|b| b.center_hz).collect()
    }

    #[test]
    fn grid_basics() {
        let g = TauGrid::span(200.0, 0.25);
        assert_eq!(g.len, 800);
        assert_eq!(g.tau_at(0), 0.0);
        assert!((g.tau_at(4) - 1.0).abs() < 1e-12);
        assert_eq!(g.taus().len(), 800);
    }

    #[test]
    fn forward_of_delta_is_steering_vector() {
        let f = freqs();
        let grid = TauGrid::span(50.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        // A delta at grid index 20 (tau = 10 ns).
        let mut p = vec![Complex64::ZERO; grid.len];
        p[20] = Complex64::ONE;
        let h = ndft.forward(&p);
        for (hi, fi) in h.iter().zip(f.iter()) {
            let expected = Complex64::cis(-2.0 * PI * fi * 10e-9);
            assert!(hi.approx_eq(expected, 1e-12));
        }
    }

    #[test]
    fn adjoint_is_true_adjoint() {
        // <F p, h> == <p, F* h> for random-ish vectors.
        let f = vec![2.4e9, 5.18e9, 5.32e9, 5.825e9];
        let grid = TauGrid::span(20.0, 1.0);
        let ndft = Ndft::new(&f, grid);
        let p: Vec<Complex64> = (0..grid.len)
            .map(|k| Complex64::from_polar(1.0 / (k + 1) as f64, k as f64))
            .collect();
        let h: Vec<Complex64> = (0..f.len())
            .map(|i| Complex64::from_polar(1.0, -0.4 * i as f64))
            .collect();
        let lhs = cvec::dot(&ndft.forward(&p), &h);
        let rhs = cvec::dot(&p, &ndft.adjoint(&h));
        assert!(lhs.approx_eq(rhs, 1e-9), "{lhs} vs {rhs}");
    }

    #[test]
    fn matched_filter_peaks_at_true_delay() {
        let f = freqs();
        let grid = TauGrid::span(50.0, 0.25);
        let ndft = Ndft::new(&f, grid);
        let tau_true = 13.37;
        let h: Vec<Complex64> = f
            .iter()
            .map(|fi| Complex64::cis(-2.0 * PI * fi * tau_true * 1e-9))
            .collect();
        let at_true = ndft.matched_filter(&h, tau_true);
        assert!((at_true - f.len() as f64).abs() < 1e-9, "{at_true}");
        // Strictly smaller a little away.
        assert!(ndft.matched_filter(&h, tau_true + 0.3) < at_true);
        assert!(ndft.matched_filter(&h, tau_true - 0.3) < at_true);
    }

    #[test]
    fn op_norm_close_to_bruteforce_for_tiny_case() {
        // For a single frequency, F is a row of unit-modulus entries:
        // ||F||_2 = sqrt(m).
        let grid = TauGrid::span(10.0, 1.0);
        let ndft = Ndft::new(&[5e9], grid);
        let n = ndft.op_norm(50);
        assert!((n - (grid.len as f64).sqrt()).abs() < 1e-6, "{n}");
    }

    #[test]
    fn op_norm_upper_bounds_gain() {
        let f = freqs();
        let grid = TauGrid::span(100.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let norm = ndft.op_norm(60);
        // Gain on a specific vector never exceeds the norm.
        let p: Vec<Complex64> = (0..grid.len)
            .map(|k| Complex64::cis(1.1 * k as f64))
            .collect();
        let gain = cvec::norm2(&ndft.forward(&p)) / cvec::norm2(&p);
        assert!(gain <= norm * (1.0 + 1e-6), "gain {gain} norm {norm}");
        // And the norm is within the trivial bound sqrt(n * m).
        assert!(norm <= ((f.len() * grid.len) as f64).sqrt() + 1e-9);
    }

    #[test]
    fn sparse_forward_matches_dense_bruteforce() {
        // The zero-skipping forward must equal the dense sum exactly on a
        // sparse profile (skipped terms are exact zeros).
        let f = freqs();
        let grid = TauGrid::span(50.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let mut p = vec![Complex64::ZERO; grid.len];
        p[7] = Complex64::from_polar(0.8, 1.1);
        p[40] = Complex64::from_polar(0.3, -0.4);
        p[41] = Complex64::from_polar(0.1, 2.0);
        let fast = ndft.forward(&p);
        for (i, out) in fast.iter().enumerate() {
            let mut dense = Complex64::ZERO;
            for (k, pk) in p.iter().enumerate() {
                dense += ndft.mat[i * grid.len + k] * *pk;
            }
            assert_eq!(out.re.to_bits(), dense.re.to_bits(), "row {i}");
            assert_eq!(out.im.to_bits(), dense.im.to_bits(), "row {i}");
        }
        // Into-variants reuse capacity and agree with the Vec-returning ones.
        let mut buf = Vec::new();
        ndft.forward_into(&p, &mut buf);
        assert_eq!(buf, fast);
        let h: Vec<Complex64> = (0..f.len())
            .map(|i| Complex64::cis(0.2 * i as f64))
            .collect();
        let mut adj = Vec::new();
        ndft.adjoint_into(&h, &mut adj);
        assert_eq!(adj, ndft.adjoint(&h));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn forward_length_checked() {
        let ndft = Ndft::new(&[5e9], TauGrid::span(10.0, 1.0));
        let _ = ndft.forward(&[Complex64::ONE; 3]);
    }
}
