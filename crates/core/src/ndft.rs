//! The non-uniform discrete Fourier transform over Wi-Fi band centers
//! (paper §6.1).
//!
//! Measurements live at the scattered band center frequencies
//! `{f_1, ..., f_n}`; the multipath profile lives on a uniform delay grid
//! `{tau_1, ..., tau_m}`. The forward operator is the `n x m` matrix
//! `F[i][k] = e^{-j 2 pi f_i tau_k}` (the paper's Fourier matrix). This
//! module materializes `F`, applies it and its adjoint, and estimates its
//! spectral norm by power iteration — the step size the proximal-gradient
//! solver needs.

use chronos_math::cvec;
use chronos_math::Complex64;
use std::f64::consts::PI;

/// A uniform delay grid in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauGrid {
    /// First grid point, ns.
    pub start_ns: f64,
    /// Grid step, ns.
    pub step_ns: f64,
    /// Number of points.
    pub len: usize,
}

impl TauGrid {
    /// Grid covering `[0, span)` with the given step.
    pub fn span(span_ns: f64, step_ns: f64) -> Self {
        assert!(span_ns > 0.0 && step_ns > 0.0, "grid must be positive");
        TauGrid {
            start_ns: 0.0,
            step_ns,
            len: (span_ns / step_ns).ceil() as usize,
        }
    }

    /// The delay at grid index `k`, ns.
    #[inline]
    pub fn tau_at(&self, k: usize) -> f64 {
        self.start_ns + k as f64 * self.step_ns
    }

    /// All grid delays.
    pub fn taus(&self) -> Vec<f64> {
        (0..self.len).map(|k| self.tau_at(k)).collect()
    }
}

/// The materialized NDFT operator.
///
/// The matrix is stored as one contiguous row-major buffer so the
/// forward/adjoint loops — the innermost loops of the whole estimator —
/// stream memory linearly. Construction (and the power iteration for the
/// operator norm) is the expensive part; sessions that sweep the same band
/// plan should build the operator once via a `PlanCache` and share it.
#[derive(Debug, Clone)]
pub struct Ndft {
    freqs_hz: Vec<f64>,
    grid: TauGrid,
    /// Row-major `n x m` matrix entries, row `i` = frequency `i`.
    mat: Vec<Complex64>,
    /// Column-major copy (`m x n`, column `k` contiguous): the forward
    /// transform walks *columns* so it can skip the zero entries of a
    /// sparse profile while streaming memory linearly. Same entries as
    /// `mat`, copied at construction.
    mat_t: Vec<Complex64>,
}

impl Ndft {
    /// Builds the operator for measurement frequencies `freqs_hz` and the
    /// delay grid `grid`.
    ///
    /// # Panics
    /// Panics if `freqs_hz` is empty or the grid has no points.
    pub fn new(freqs_hz: &[f64], grid: TauGrid) -> Self {
        assert!(!freqs_hz.is_empty(), "need at least one frequency");
        assert!(grid.len > 0, "grid must be non-empty");
        let mut mat = Vec::with_capacity(freqs_hz.len() * grid.len);
        for f in freqs_hz {
            for k in 0..grid.len {
                let tau_s = grid.tau_at(k) * 1e-9;
                mat.push(Complex64::cis(-2.0 * PI * f * tau_s));
            }
        }
        let n = freqs_hz.len();
        let m = grid.len;
        let mut mat_t = Vec::with_capacity(n * m);
        for k in 0..m {
            for i in 0..n {
                mat_t.push(mat[i * m + k]);
            }
        }
        Ndft {
            freqs_hz: freqs_hz.to_vec(),
            grid,
            mat,
            mat_t,
        }
    }

    /// Number of measurement frequencies (rows).
    pub fn n_freqs(&self) -> usize {
        self.freqs_hz.len()
    }

    /// Number of grid delays (columns).
    pub fn n_taus(&self) -> usize {
        self.grid.len
    }

    /// The delay grid.
    pub fn grid(&self) -> TauGrid {
        self.grid
    }

    /// The measurement frequencies.
    pub fn freqs_hz(&self) -> &[f64] {
        &self.freqs_hz
    }

    /// Forward transform: `h = F p` (profile -> measurements).
    ///
    /// Exactly-zero profile entries are skipped: each would contribute a
    /// literal `acc += a * 0`, which leaves every finite accumulator
    /// unchanged (at most the sign of an all-zero row's zero differs, and
    /// IEEE-754 zero signs are value-equal). The proximal-gradient
    /// iterates are sparse after the first few SPARSIFY steps, so this
    /// turns the solver's dense `n x m` forward pass into an
    /// `n x nnz(p)` one — the single largest win of the scratch pipeline.
    pub fn forward(&self, p: &[Complex64]) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.forward_into(p, &mut out);
        out
    }

    /// [`Ndft::forward`] into a caller-provided buffer (no allocation
    /// once `out` has capacity).
    ///
    /// Walks the transposed (column-major) operator so skipping a zero
    /// profile entry skips one contiguous column. For every output row
    /// the surviving terms still accumulate in ascending grid order —
    /// exactly the dense row loop's order with its zero terms removed —
    /// so the result is unchanged.
    pub fn forward_into(&self, p: &[Complex64], out: &mut Vec<Complex64>) {
        assert_eq!(p.len(), self.grid.len, "forward: profile length mismatch");
        let n = self.freqs_hz.len();
        out.clear();
        out.resize(n, Complex64::ZERO);
        for (col, b) in self.mat_t.chunks_exact(n).zip(p.iter()) {
            if b.re == 0.0 && b.im == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(col.iter()) {
                *o += *a * *b;
            }
        }
    }

    /// Adjoint transform: `p = F* h` (measurements -> profile domain).
    pub fn adjoint(&self, h: &[Complex64]) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.adjoint_into(h, &mut out);
        out
    }

    /// [`Ndft::adjoint`] into a caller-provided buffer (no allocation
    /// once `out` has capacity).
    pub fn adjoint_into(&self, h: &[Complex64], out: &mut Vec<Complex64>) {
        assert_eq!(
            h.len(),
            self.freqs_hz.len(),
            "adjoint: measurement length mismatch"
        );
        out.clear();
        out.resize(self.grid.len, Complex64::ZERO);
        for (row, hi) in self.mat.chunks_exact(self.grid.len).zip(h.iter()) {
            for (o, a) in out.iter_mut().zip(row.iter()) {
                *o += a.conj() * *hi;
            }
        }
    }

    /// Matched-filter (Bartlett) response at an arbitrary, off-grid delay:
    /// `|sum_i h_i e^{+j 2 pi f_i tau}|`. Used for sub-grid peak
    /// refinement.
    pub fn matched_filter(&self, h: &[Complex64], tau_ns: f64) -> f64 {
        assert_eq!(
            h.len(),
            self.freqs_hz.len(),
            "matched_filter: length mismatch"
        );
        let tau_s = tau_ns * 1e-9;
        let mut acc = Complex64::ZERO;
        for (f, hi) in self.freqs_hz.iter().zip(h.iter()) {
            acc += *hi * Complex64::cis(2.0 * PI * f * tau_s);
        }
        acc.abs()
    }

    /// Estimates the spectral norm `||F||_2` by power iteration on `F* F`.
    pub fn op_norm(&self, iters: usize) -> f64 {
        let m = self.grid.len;
        // Deterministic start vector with mild structure.
        let mut v: Vec<Complex64> = (0..m)
            .map(|k| Complex64::cis(0.37 * k as f64) / (m as f64).sqrt())
            .collect();
        let mut norm = 1.0;
        for _ in 0..iters.max(1) {
            let fv = self.forward(&v);
            let mut w = self.adjoint(&fv);
            norm = cvec::norm2(&w);
            if norm == 0.0 {
                return 0.0;
            }
            cvec::scale_in_place(&mut w, 1.0 / norm);
            v = w;
        }
        // norm approximates the largest eigenvalue of F*F = ||F||^2.
        norm.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::bands::band_plan_5ghz;

    fn freqs() -> Vec<f64> {
        band_plan_5ghz().iter().map(|b| b.center_hz).collect()
    }

    #[test]
    fn grid_basics() {
        let g = TauGrid::span(200.0, 0.25);
        assert_eq!(g.len, 800);
        assert_eq!(g.tau_at(0), 0.0);
        assert!((g.tau_at(4) - 1.0).abs() < 1e-12);
        assert_eq!(g.taus().len(), 800);
    }

    #[test]
    fn forward_of_delta_is_steering_vector() {
        let f = freqs();
        let grid = TauGrid::span(50.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        // A delta at grid index 20 (tau = 10 ns).
        let mut p = vec![Complex64::ZERO; grid.len];
        p[20] = Complex64::ONE;
        let h = ndft.forward(&p);
        for (hi, fi) in h.iter().zip(f.iter()) {
            let expected = Complex64::cis(-2.0 * PI * fi * 10e-9);
            assert!(hi.approx_eq(expected, 1e-12));
        }
    }

    #[test]
    fn adjoint_is_true_adjoint() {
        // <F p, h> == <p, F* h> for random-ish vectors.
        let f = vec![2.4e9, 5.18e9, 5.32e9, 5.825e9];
        let grid = TauGrid::span(20.0, 1.0);
        let ndft = Ndft::new(&f, grid);
        let p: Vec<Complex64> = (0..grid.len)
            .map(|k| Complex64::from_polar(1.0 / (k + 1) as f64, k as f64))
            .collect();
        let h: Vec<Complex64> = (0..f.len())
            .map(|i| Complex64::from_polar(1.0, -0.4 * i as f64))
            .collect();
        let lhs = cvec::dot(&ndft.forward(&p), &h);
        let rhs = cvec::dot(&p, &ndft.adjoint(&h));
        assert!(lhs.approx_eq(rhs, 1e-9), "{lhs} vs {rhs}");
    }

    #[test]
    fn matched_filter_peaks_at_true_delay() {
        let f = freqs();
        let grid = TauGrid::span(50.0, 0.25);
        let ndft = Ndft::new(&f, grid);
        let tau_true = 13.37;
        let h: Vec<Complex64> = f
            .iter()
            .map(|fi| Complex64::cis(-2.0 * PI * fi * tau_true * 1e-9))
            .collect();
        let at_true = ndft.matched_filter(&h, tau_true);
        assert!((at_true - f.len() as f64).abs() < 1e-9, "{at_true}");
        // Strictly smaller a little away.
        assert!(ndft.matched_filter(&h, tau_true + 0.3) < at_true);
        assert!(ndft.matched_filter(&h, tau_true - 0.3) < at_true);
    }

    #[test]
    fn op_norm_close_to_bruteforce_for_tiny_case() {
        // For a single frequency, F is a row of unit-modulus entries:
        // ||F||_2 = sqrt(m).
        let grid = TauGrid::span(10.0, 1.0);
        let ndft = Ndft::new(&[5e9], grid);
        let n = ndft.op_norm(50);
        assert!((n - (grid.len as f64).sqrt()).abs() < 1e-6, "{n}");
    }

    #[test]
    fn op_norm_upper_bounds_gain() {
        let f = freqs();
        let grid = TauGrid::span(100.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let norm = ndft.op_norm(60);
        // Gain on a specific vector never exceeds the norm.
        let p: Vec<Complex64> = (0..grid.len)
            .map(|k| Complex64::cis(1.1 * k as f64))
            .collect();
        let gain = cvec::norm2(&ndft.forward(&p)) / cvec::norm2(&p);
        assert!(gain <= norm * (1.0 + 1e-6), "gain {gain} norm {norm}");
        // And the norm is within the trivial bound sqrt(n * m).
        assert!(norm <= ((f.len() * grid.len) as f64).sqrt() + 1e-9);
    }

    #[test]
    fn sparse_forward_matches_dense_bruteforce() {
        // The zero-skipping forward must equal the dense sum exactly on a
        // sparse profile (skipped terms are exact zeros).
        let f = freqs();
        let grid = TauGrid::span(50.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let mut p = vec![Complex64::ZERO; grid.len];
        p[7] = Complex64::from_polar(0.8, 1.1);
        p[40] = Complex64::from_polar(0.3, -0.4);
        p[41] = Complex64::from_polar(0.1, 2.0);
        let fast = ndft.forward(&p);
        for (i, out) in fast.iter().enumerate() {
            let mut dense = Complex64::ZERO;
            for (k, pk) in p.iter().enumerate() {
                dense += ndft.mat[i * grid.len + k] * *pk;
            }
            assert_eq!(out.re.to_bits(), dense.re.to_bits(), "row {i}");
            assert_eq!(out.im.to_bits(), dense.im.to_bits(), "row {i}");
        }
        // Into-variants reuse capacity and agree with the Vec-returning ones.
        let mut buf = Vec::new();
        ndft.forward_into(&p, &mut buf);
        assert_eq!(buf, fast);
        let h: Vec<Complex64> = (0..f.len())
            .map(|i| Complex64::cis(0.2 * i as f64))
            .collect();
        let mut adj = Vec::new();
        ndft.adjoint_into(&h, &mut adj);
        assert_eq!(adj, ndft.adjoint(&h));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn forward_length_checked() {
        let ndft = Ndft::new(&[5e9], TauGrid::span(10.0, 1.0));
        let _ = ndft.forward(&[Complex64::ONE; 3]);
    }
}
