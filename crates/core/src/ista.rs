//! Sparse inverse-NDFT by proximal gradient descent — the paper's
//! Algorithm 1 (§6.2).
//!
//! The inversion problem is under-determined (tens of measurements, hundreds
//! of grid delays), so Chronos regularizes it with an L1 penalty that favors
//! profiles with few dominant paths:
//!
//! ```text
//! minimize  || h - F p ||_2^2  +  alpha * || p ||_1
//! ```
//!
//! The solver alternates a gradient step on the smooth term with a complex
//! soft-threshold (the paper's SPARSIFY): magnitudes shrink by the
//! threshold, phases are preserved, and anything below the threshold
//! becomes exactly zero. We also provide FISTA acceleration (Nesterov
//! momentum) as a documented extension — same fixed points, fewer
//! iterations — selectable via [`IstaConfig::accelerated`].

use crate::ndft::Ndft;
use chronos_math::cmatrix::CMat;
use chronos_math::cvec;
use chronos_math::Complex64;

/// Solver settings.
#[derive(Debug, Clone, Copy)]
pub struct IstaConfig {
    /// Sparsity weight relative to `max |F* h|`. 0 disables shrinkage;
    /// 1 zeroes every component on the first step.
    pub alpha_rel: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on `||p_{t+1} - p_t||_2` (the paper's
    /// epsilon), relative to `||p_t||_2 + 1`.
    pub epsilon: f64,
    /// Enable FISTA momentum.
    pub accelerated: bool,
}

impl Default for IstaConfig {
    fn default() -> Self {
        IstaConfig {
            alpha_rel: 0.12,
            max_iters: 400,
            epsilon: 1e-6,
            accelerated: true,
        }
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone)]
pub struct IstaSolution {
    /// The sparse profile over the NDFT's delay grid.
    pub p: Vec<Complex64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the epsilon criterion was met before the cap.
    pub converged: bool,
    /// Final data-fit residual `||h - F p||_2`.
    pub residual: f64,
}

/// Complex soft-threshold: shrinks magnitude by `t`, zeroing anything
/// smaller (the paper's SPARSIFY function, generalized to complex values).
pub fn sparsify(p: &mut [Complex64], t: f64) {
    if t <= 0.0 {
        return;
    }
    for z in p.iter_mut() {
        let mag = z.abs();
        if mag <= t {
            *z = Complex64::ZERO;
        } else {
            *z = z.scale((mag - t) / mag);
        }
    }
}

/// Runs the sparse inversion of `h` under the operator `ndft`.
///
/// Computes the operator norm by power iteration on every call; when the
/// same operator is inverted repeatedly (every sweep of every client),
/// use [`solve_planned`] with a shared [`crate::plan::NdftPlan`] instead —
/// it produces bit-identical solutions without the per-call norm.
pub fn solve(ndft: &Ndft, h: &[Complex64], cfg: &IstaConfig) -> IstaSolution {
    solve_with_norm(ndft, h, cfg, ndft.op_norm(crate::plan::OP_NORM_ITERS))
}

/// Sparse inversion reusing a precomputed plan (see
/// [`crate::plan::PlanCache`]). Identical arithmetic to [`solve`]; the
/// plan only supplies the already-computed spectral norm.
pub fn solve_planned(
    plan: &crate::plan::NdftPlan,
    h: &[Complex64],
    cfg: &IstaConfig,
) -> IstaSolution {
    solve_with_norm(&plan.ndft, h, cfg, plan.op_norm)
}

/// The shared solver body: proximal gradient with the step size derived
/// from the supplied spectral norm.
fn solve_with_norm(ndft: &Ndft, h: &[Complex64], cfg: &IstaConfig, op_norm: f64) -> IstaSolution {
    let m = ndft.n_taus();
    assert_eq!(
        h.len(),
        ndft.n_freqs(),
        "solve: measurement length mismatch"
    );

    // Step size: 1 / L with L = 2 ||F||^2 (gradient of ||h - Fp||^2 is
    // 2 F*(Fp - h)); power iteration gives ||F||.
    let op_norm = op_norm.max(1e-12);
    let gamma = 1.0 / (2.0 * op_norm * op_norm);

    // Threshold from the adjoint image of the data: alpha_rel = 1 would
    // zero the first iterate entirely.
    let atb = ndft.adjoint(h);
    let alpha = cfg.alpha_rel * cvec::norm_inf(&atb) * 2.0; // matches L scaling
    let thresh = gamma * alpha;

    let mut p = vec![Complex64::ZERO; m];
    let mut y = p.clone(); // FISTA extrapolation point
    let mut t_momentum = 1.0f64;
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..cfg.max_iters {
        iterations += 1;
        // Gradient step at y: y - gamma * 2 F*(F y - h).
        let fy = ndft.forward(&y);
        let mut resid = fy;
        for (r, hi) in resid.iter_mut().zip(h.iter()) {
            *r -= *hi;
        }
        let grad = ndft.adjoint(&resid);
        let mut next: Vec<Complex64> = y
            .iter()
            .zip(grad.iter())
            .map(|(yi, gi)| *yi - gi.scale(2.0 * gamma))
            .collect();
        sparsify(&mut next, thresh);

        let delta = cvec::dist2(&next, &p);
        let scale = cvec::norm2(&p) + 1.0;

        if cfg.accelerated {
            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t_momentum * t_momentum).sqrt());
            let beta = (t_momentum - 1.0) / t_next;
            y = next
                .iter()
                .zip(p.iter())
                .map(|(n, o)| *n + (*n - *o).scale(beta))
                .collect();
            t_momentum = t_next;
        } else {
            y = next.clone();
        }
        p = next;

        if delta < cfg.epsilon * scale {
            converged = true;
            break;
        }
    }

    let fit = ndft.forward(&p);
    let mut resid = fit;
    for (r, hi) in resid.iter_mut().zip(h.iter()) {
        *r -= *hi;
    }
    let residual = cvec::norm2(&resid);

    IstaSolution {
        p,
        iterations,
        converged,
        residual,
    }
}

/// LASSO **debiasing**: refits the amplitudes of the detected support by
/// unpenalized least squares, undoing the soft-threshold's shrinkage bias.
///
/// The L1 penalty that makes support detection work also shrinks every
/// surviving amplitude by roughly the threshold — enough to push a weak
/// direct path below the peak-dominance cut, and to leave spurious sidelobe
/// atoms with inflated relative weight. The standard cure is a two-step
/// estimator: keep ISTA's support, solve `min ||h - F_S w||_2` on it.
///
/// At most `max_atoms` strongest support atoms are refit (the system must
/// stay overdetermined: `max_atoms <= n_freqs / 2` is sensible), separated
/// by at least `min_sep` grid bins to avoid near-collinear columns. The
/// returned vector is zero off the refit support.
pub fn debias(
    ndft: &Ndft,
    h: &[Complex64],
    p: &[Complex64],
    max_atoms: usize,
    min_sep: usize,
) -> Vec<Complex64> {
    assert_eq!(p.len(), ndft.n_taus(), "debias: profile length mismatch");
    // Rank support by magnitude.
    let mut idx: Vec<usize> = (0..p.len()).filter(|k| p[*k].abs() > 1e-12).collect();
    idx.sort_by(|a, b| p[*b].abs().partial_cmp(&p[*a].abs()).unwrap());
    let mut chosen: Vec<usize> = Vec::new();
    for k in idx {
        if chosen.len() >= max_atoms {
            break;
        }
        if chosen.iter().all(|c| c.abs_diff(k) >= min_sep.max(1)) {
            chosen.push(k);
        }
    }
    if chosen.is_empty() {
        return vec![Complex64::ZERO; p.len()];
    }
    chosen.sort_unstable();

    // Build the atom matrix: columns are steering vectors at the chosen
    // grid delays.
    let grid = ndft.grid();
    let cols: Vec<Vec<Complex64>> = chosen
        .iter()
        .map(|k| {
            let tau_s = grid.tau_at(*k) * 1e-9;
            ndft.freqs_hz()
                .iter()
                .map(|f| Complex64::cis(-2.0 * std::f64::consts::PI * f * tau_s))
                .collect()
        })
        .collect();
    let a = CMat::from_cols(&cols);
    let mut out = vec![Complex64::ZERO; p.len()];
    match a.lstsq(h) {
        Ok(w) => {
            for (k, wi) in chosen.iter().zip(w.iter()) {
                out[*k] = *wi;
            }
            out
        }
        // Refit can fail for pathological supports; fall back to the
        // biased estimate rather than nothing.
        Err(_) => p.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndft::TauGrid;
    use chronos_rf::bands::band_plan_5ghz;
    use std::f64::consts::PI;

    fn freqs() -> Vec<f64> {
        band_plan_5ghz().iter().map(|b| b.center_hz).collect()
    }

    fn channel_for(paths: &[(f64, f64)], freqs: &[f64]) -> Vec<Complex64> {
        freqs
            .iter()
            .map(|f| {
                let mut h = Complex64::ZERO;
                for (tau_ns, a) in paths {
                    h += Complex64::from_polar(*a, -2.0 * PI * f * tau_ns * 1e-9);
                }
                h
            })
            .collect()
    }

    #[test]
    fn sparsify_behaviour() {
        let mut p = vec![
            Complex64::from_polar(1.0, 0.3),
            Complex64::from_polar(0.05, -1.0),
            Complex64::ZERO,
        ];
        sparsify(&mut p, 0.1);
        assert!((p[0].abs() - 0.9).abs() < 1e-12);
        assert!((p[0].arg() - 0.3).abs() < 1e-12, "phase must be preserved");
        assert_eq!(p[1], Complex64::ZERO);
        assert_eq!(p[2], Complex64::ZERO);
        // Zero threshold is a no-op.
        let mut q = vec![Complex64::from_polar(0.5, 1.0)];
        sparsify(&mut q, 0.0);
        assert!((q[0].abs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recovers_single_path_on_grid() {
        let f = freqs();
        let grid = TauGrid::span(50.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(10.0, 1.0)], &f);
        let sol = solve(&ndft, &h, &IstaConfig::default());
        // The largest component must sit at tau = 10 ns (index 20).
        let (idx, _) = sol
            .p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert_eq!(idx, 20, "peak at {} ns", grid.tau_at(idx));
        assert!(sol.residual < 0.3 * (f.len() as f64).sqrt());
    }

    #[test]
    fn recovers_three_paths_fig4() {
        // The paper's Fig. 4 scenario: 5.2, 10, 16 ns with falling power.
        let f = freqs();
        let grid = TauGrid::span(40.0, 0.2);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(5.2, 1.0), (10.0, 0.7), (16.0, 0.4)], &f);
        let sol = solve(
            &ndft,
            &h,
            &IstaConfig {
                alpha_rel: 0.08,
                ..Default::default()
            },
        );
        let mags: Vec<f64> = sol.p.iter().map(|z| z.abs()).collect();
        let peaks = chronos_math::peaks::find_peaks(
            &mags,
            0.0,
            0.2,
            &chronos_math::peaks::PeakConfig {
                dominance: 0.2,
                min_separation: 4,
            },
        );
        assert!(peaks.len() >= 3, "found {} peaks", peaks.len());
        assert!((peaks[0].x - 5.2).abs() < 0.4, "first peak {}", peaks[0].x);
        // Find peaks near 10 and 16.
        assert!(peaks.iter().any(|p| (p.x - 10.0).abs() < 0.5));
        assert!(peaks.iter().any(|p| (p.x - 16.0).abs() < 0.6));
    }

    #[test]
    fn solution_is_sparse() {
        let f = freqs();
        let grid = TauGrid::span(100.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(7.0, 1.0), (22.0, 0.5)], &f);
        let sol = solve(&ndft, &h, &IstaConfig::default());
        let nonzero = sol.p.iter().filter(|z| z.abs() > 1e-9).count();
        // 200 grid points, but only a handful alive.
        assert!(nonzero < 30, "nonzero {nonzero}");
        assert!(nonzero >= 2);
    }

    #[test]
    fn larger_alpha_is_sparser() {
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(5.0, 1.0), (9.0, 0.6), (14.0, 0.3), (20.0, 0.2)], &f);
        let count = |alpha: f64| {
            let sol = solve(
                &ndft,
                &h,
                &IstaConfig {
                    alpha_rel: alpha,
                    ..Default::default()
                },
            );
            sol.p.iter().filter(|z| z.abs() > 1e-9).count()
        };
        assert!(
            count(0.4) <= count(0.05),
            "{} > {}",
            count(0.4),
            count(0.05)
        );
    }

    #[test]
    fn ista_and_fista_agree() {
        let f = freqs();
        let grid = TauGrid::span(50.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(12.0, 1.0), (19.0, 0.5)], &f);
        let plain = solve(
            &ndft,
            &h,
            &IstaConfig {
                accelerated: false,
                max_iters: 4000,
                epsilon: 1e-9,
                ..Default::default()
            },
        );
        let fast = solve(
            &ndft,
            &h,
            &IstaConfig {
                accelerated: true,
                max_iters: 4000,
                epsilon: 1e-9,
                ..Default::default()
            },
        );
        // Peak locations agree.
        let argmax = |p: &[Complex64]| {
            p.iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(argmax(&plain.p), argmax(&fast.p));
        // FISTA converges in fewer iterations.
        assert!(
            fast.iterations <= plain.iterations,
            "{} vs {}",
            fast.iterations,
            plain.iterations
        );
    }

    #[test]
    fn noise_does_not_create_spurious_dominant_peaks() {
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let mut h = channel_for(&[(8.0, 1.0)], &f);
        // Deterministic pseudo-noise at ~5% amplitude.
        for (i, z) in h.iter_mut().enumerate() {
            *z += Complex64::from_polar(0.05, (i as f64 * 2.399) % (2.0 * PI));
        }
        let sol = solve(&ndft, &h, &IstaConfig::default());
        let mags: Vec<f64> = sol.p.iter().map(|z| z.abs()).collect();
        let peaks = chronos_math::peaks::find_peaks(
            &mags,
            0.0,
            0.5,
            &chronos_math::peaks::PeakConfig {
                dominance: 0.3,
                min_separation: 3,
            },
        );
        assert_eq!(peaks.len(), 1, "spurious peaks: {peaks:?}");
        assert!((peaks[0].x - 8.0).abs() < 0.5);
    }

    #[test]
    fn empty_measurement_panics_cleanly() {
        let ndft = Ndft::new(&[5e9], TauGrid::span(10.0, 1.0));
        let sol = solve(&ndft, &[Complex64::ZERO], &IstaConfig::default());
        // All-zero input: all-zero output, converged.
        assert!(sol.p.iter().all(|z| *z == Complex64::ZERO));
        assert!(sol.converged);
    }

    #[test]
    fn planned_solve_is_bitwise_identical() {
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.5);
        let plan = crate::plan::NdftPlan::new(&f, grid, 60.0);
        let h = channel_for(&[(9.0, 1.0), (14.0, 0.5)], &f);
        let a = solve(&plan.ndft, &h, &IstaConfig::default());
        let b = solve_planned(&plan, &h, &IstaConfig::default());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.residual.to_bits(), b.residual.to_bits());
        for (x, y) in a.p.iter().zip(b.p.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn debias_restores_shrunk_amplitudes() {
        // ISTA shrinks every survivor by ~the threshold; the refit must
        // recover the physical amplitudes.
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let true_amps = [(10.0, 1.0), (20.0, 0.4)];
        let h = channel_for(&true_amps, &f);
        let sol = solve(
            &ndft,
            &h,
            &IstaConfig {
                alpha_rel: 0.25,
                ..Default::default()
            },
        );
        let biased_max = sol.p.iter().map(|z| z.abs()).fold(0.0, f64::max);
        assert!(biased_max < 1.0, "expected shrinkage, max {biased_max}");
        let d = debias(&ndft, &h, &sol.p, 6, 3);
        let at = |tau: f64| {
            let idx = (tau / 0.5).round() as usize;
            d[idx.saturating_sub(1)..=(idx + 1).min(d.len() - 1)]
                .iter()
                .map(|z| z.abs())
                .fold(0.0, f64::max)
        };
        assert!((at(10.0) - 1.0).abs() < 0.1, "strong atom {}", at(10.0));
        assert!((at(20.0) - 0.4).abs() < 0.1, "weak atom {}", at(20.0));
    }

    #[test]
    fn debias_zero_off_support() {
        let f = freqs();
        let grid = TauGrid::span(40.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(12.0, 1.0)], &f);
        let sol = solve(&ndft, &h, &IstaConfig::default());
        let d = debias(&ndft, &h, &sol.p, 5, 3);
        let nonzero = d.iter().filter(|z| z.abs() > 1e-12).count();
        assert!(nonzero <= 5, "nonzero {nonzero}");
    }

    #[test]
    fn debias_respects_max_atoms_and_separation() {
        let f = freqs();
        let grid = TauGrid::span(40.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(8.0, 1.0), (9.0, 0.9), (25.0, 0.5)], &f);
        let sol = solve(
            &ndft,
            &h,
            &IstaConfig {
                alpha_rel: 0.05,
                ..Default::default()
            },
        );
        let d = debias(&ndft, &h, &sol.p, 2, 4);
        let support: Vec<usize> = (0..d.len()).filter(|k| d[*k].abs() > 1e-12).collect();
        assert!(support.len() <= 2, "support {support:?}");
        for w in support.windows(2) {
            assert!(w[1] - w[0] >= 4, "separation violated: {support:?}");
        }
    }

    #[test]
    fn debias_on_empty_solution_is_zero() {
        let ndft = Ndft::new(&freqs(), TauGrid::span(20.0, 1.0));
        let p = vec![Complex64::ZERO; 20];
        let h = vec![Complex64::ONE; ndft.n_freqs()];
        let d = debias(&ndft, &h, &p, 5, 2);
        assert!(d.iter().all(|z| *z == Complex64::ZERO));
    }

    #[test]
    fn debias_improves_data_fit() {
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.25);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(7.3, 1.0), (15.1, 0.6)], &f);
        let sol = solve(
            &ndft,
            &h,
            &IstaConfig {
                alpha_rel: 0.2,
                ..Default::default()
            },
        );
        let d = debias(&ndft, &h, &sol.p, 8, 3);
        let resid = |p: &[Complex64]| {
            let fit = ndft.forward(p);
            fit.iter()
                .zip(h.iter())
                .map(|(a, b)| (*a - *b).norm_sq())
                .sum::<f64>()
                .sqrt()
        };
        assert!(
            resid(&d) <= resid(&sol.p) + 1e-9,
            "debias worsened fit: {} vs {}",
            resid(&d),
            resid(&sol.p)
        );
    }
}
