//! Sparse inverse-NDFT by proximal gradient descent — the paper's
//! Algorithm 1 (§6.2).
//!
//! The inversion problem is under-determined (tens of measurements, hundreds
//! of grid delays), so Chronos regularizes it with an L1 penalty that favors
//! profiles with few dominant paths:
//!
//! ```text
//! minimize  || h - F p ||_2^2  +  alpha * || p ||_1
//! ```
//!
//! The solver alternates a gradient step on the smooth term with a complex
//! soft-threshold (the paper's SPARSIFY): magnitudes shrink by the
//! threshold, phases are preserved, and anything below the threshold
//! becomes exactly zero. We also provide FISTA acceleration (Nesterov
//! momentum) as a documented extension — same fixed points, fewer
//! iterations — selectable via [`IstaConfig::accelerated`].

use crate::ndft::Ndft;
use chronos_math::cmatrix::CMat;
use chronos_math::cvec;
use chronos_math::Complex64;

/// Solver settings.
#[derive(Debug, Clone, Copy)]
pub struct IstaConfig {
    /// Sparsity weight relative to `max |F* h|`. 0 disables shrinkage;
    /// 1 zeroes every component on the first step.
    pub alpha_rel: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on `||p_{t+1} - p_t||_2` (the paper's
    /// epsilon), relative to `||p_t||_2 + 1`.
    pub epsilon: f64,
    /// Enable FISTA momentum.
    pub accelerated: bool,
}

impl Default for IstaConfig {
    fn default() -> Self {
        IstaConfig {
            alpha_rel: 0.12,
            max_iters: 400,
            epsilon: 1e-6,
            accelerated: true,
        }
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone)]
pub struct IstaSolution {
    /// The sparse profile over the NDFT's delay grid.
    pub p: Vec<Complex64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the epsilon criterion was met before the cap.
    pub converged: bool,
    /// Final data-fit residual `||h - F p||_2`.
    pub residual: f64,
}

/// Complex soft-threshold: shrinks magnitude by `t`, zeroing anything
/// smaller (the paper's SPARSIFY function, generalized to complex values).
pub fn sparsify(p: &mut [Complex64], t: f64) {
    if t <= 0.0 {
        return;
    }
    for z in p.iter_mut() {
        let mag = z.abs();
        if mag <= t {
            *z = Complex64::ZERO;
        } else {
            *z = z.scale((mag - t) / mag);
        }
    }
}

/// Reusable solver buffers: the iterates, extrapolation point and
/// forward/adjoint images [`solve_planned_into`] ping-pongs between.
///
/// Allocated once (typically per engine worker, inside a
/// [`crate::pipeline::SweepPipeline`]); every later solve of any size up
/// to the largest seen reuses the capacity, so steady-state inversions
/// perform **zero heap allocations**.
#[derive(Debug, Clone, Default)]
pub struct IstaScratch {
    /// Current iterate; holds the solution after a solve.
    p: Vec<Complex64>,
    /// FISTA extrapolation point.
    y: Vec<Complex64>,
    /// Gradient-step target, swapped with `p` each iteration.
    next: Vec<Complex64>,
    /// Forward image / residual buffer (measurement length).
    fy: Vec<Complex64>,
    /// Adjoint image / gradient buffer (grid length).
    grad: Vec<Complex64>,
    /// Structure-of-arrays mirrors of the iterates for the lane-chunked
    /// solver of the `simd` feature.
    #[cfg(feature = "simd")]
    split: SplitScratch,
}

/// Split re/im planes of every solver buffer (the `simd` fast path).
/// The FISTA extrapolation point `y` is never materialized — the fused
/// kernel recomputes it in registers from the current and previous
/// iterates — so the scratch holds the two iterates plus their nonzero
/// index lists instead.
#[cfg(feature = "simd")]
#[derive(Debug, Clone, Default)]
struct SplitScratch {
    p_re: Vec<f64>,
    p_im: Vec<f64>,
    prev_re: Vec<f64>,
    prev_im: Vec<f64>,
    next_re: Vec<f64>,
    next_im: Vec<f64>,
    fy_re: Vec<f64>,
    fy_im: Vec<f64>,
    grad_re: Vec<f64>,
    grad_im: Vec<f64>,
    h_re: Vec<f64>,
    h_im: Vec<f64>,
    /// Ascending nonzero indices of `p` / `prev` / `next`.
    supp_p: Vec<u32>,
    supp_prev: Vec<u32>,
    supp_next: Vec<u32>,
}

impl IstaScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The sparse profile produced by the most recent
    /// [`solve_planned_into`] call.
    pub fn solution(&self) -> &[Complex64] {
        &self.p
    }
}

/// Scalar outcome of a scratch solve; the profile stays in the scratch.
#[derive(Debug, Clone, Copy)]
pub struct IstaStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the epsilon criterion was met before the cap.
    pub converged: bool,
    /// Final data-fit residual `||h - F p||_2`.
    pub residual: f64,
}

/// Runs the sparse inversion of `h` under the operator `ndft`.
///
/// Computes the operator norm by power iteration on every call; when the
/// same operator is inverted repeatedly (every sweep of every client),
/// use [`solve_planned`] with a shared [`crate::plan::NdftPlan`] instead —
/// it produces bit-identical solutions without the per-call norm.
pub fn solve(ndft: &Ndft, h: &[Complex64], cfg: &IstaConfig) -> IstaSolution {
    solve_with_norm(ndft, h, cfg, ndft.op_norm(crate::plan::OP_NORM_ITERS))
}

/// Sparse inversion reusing a precomputed plan (see
/// [`crate::plan::PlanCache`]). Identical arithmetic to [`solve`]; the
/// plan only supplies the already-computed spectral norm.
pub fn solve_planned(
    plan: &crate::plan::NdftPlan,
    h: &[Complex64],
    cfg: &IstaConfig,
) -> IstaSolution {
    solve_with_norm(&plan.ndft, h, cfg, plan.op_norm)
}

/// [`solve_planned`] into a reusable scratch arena: identical arithmetic
/// (bit for bit — pinned by a proptest in `tests/alloc.rs`), zero heap
/// allocations once the scratch has seen the problem size. The solution
/// is read from [`IstaScratch::solution`].
pub fn solve_planned_into(
    plan: &crate::plan::NdftPlan,
    h: &[Complex64],
    cfg: &IstaConfig,
    scratch: &mut IstaScratch,
) -> IstaStats {
    solve_dispatch(&plan.ndft, h, cfg, plan.op_norm, scratch)
}

/// [`solve_planned_into`] pinned to the scalar reference body regardless
/// of the `simd` feature — the single source of truth the tolerance tier
/// is measured against. Scalar builds dispatch here anyway; `simd`
/// builds use it in the kernel-agreement proptests and wherever exact
/// reproducibility across builds matters more than speed.
pub fn solve_planned_into_scalar(
    plan: &crate::plan::NdftPlan,
    h: &[Complex64],
    cfg: &IstaConfig,
    scratch: &mut IstaScratch,
) -> IstaStats {
    solve_with_norm_into(&plan.ndft, h, cfg, plan.op_norm, scratch)
}

/// Feature dispatch: the lane-chunked structure-of-arrays body under
/// `simd`, the scalar reference body otherwise.
fn solve_dispatch(
    ndft: &Ndft,
    h: &[Complex64],
    cfg: &IstaConfig,
    op_norm: f64,
    scratch: &mut IstaScratch,
) -> IstaStats {
    #[cfg(feature = "simd")]
    {
        solve_with_norm_into_simd(ndft, h, cfg, op_norm, scratch)
    }
    #[cfg(not(feature = "simd"))]
    {
        solve_with_norm_into(ndft, h, cfg, op_norm, scratch)
    }
}

/// The shared solver body: proximal gradient with the step size derived
/// from the supplied spectral norm.
fn solve_with_norm(ndft: &Ndft, h: &[Complex64], cfg: &IstaConfig, op_norm: f64) -> IstaSolution {
    let mut scratch = IstaScratch::new();
    let stats = solve_dispatch(ndft, h, cfg, op_norm, &mut scratch);
    IstaSolution {
        p: scratch.p,
        iterations: stats.iterations,
        converged: stats.converged,
        residual: stats.residual,
    }
}

/// The solver body over caller-provided buffers. The FISTA extrapolation
/// ping-pongs `p`/`next` (a pointer swap) instead of cloning the iterate
/// every step; all arithmetic — order included — matches the historical
/// per-iteration-allocating loop exactly.
fn solve_with_norm_into(
    ndft: &Ndft,
    h: &[Complex64],
    cfg: &IstaConfig,
    op_norm: f64,
    scratch: &mut IstaScratch,
) -> IstaStats {
    let m = ndft.n_taus();
    assert_eq!(
        h.len(),
        ndft.n_freqs(),
        "solve: measurement length mismatch"
    );

    // Step size: 1 / L with L = 2 ||F||^2 (gradient of ||h - Fp||^2 is
    // 2 F*(Fp - h)); power iteration gives ||F||.
    let op_norm = op_norm.max(1e-12);
    let gamma = 1.0 / (2.0 * op_norm * op_norm);

    // Threshold from the adjoint image of the data: alpha_rel = 1 would
    // zero the first iterate entirely.
    ndft.adjoint_into(h, &mut scratch.grad);
    let alpha = cfg.alpha_rel * cvec::norm_inf(&scratch.grad) * 2.0; // matches L scaling
    let thresh = gamma * alpha;

    let IstaScratch {
        p,
        y,
        next,
        fy,
        grad,
        ..
    } = scratch;
    p.clear();
    p.resize(m, Complex64::ZERO);
    y.clear();
    y.resize(m, Complex64::ZERO); // FISTA extrapolation point
    next.clear();
    next.resize(m, Complex64::ZERO);
    let mut t_momentum = 1.0f64;
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..cfg.max_iters {
        iterations += 1;
        // Gradient step at y: y - gamma * 2 F*(F y - h).
        ndft.forward_into(y, fy);
        for (r, hi) in fy.iter_mut().zip(h.iter()) {
            *r -= *hi;
        }
        ndft.adjoint_into(fy, grad);
        for ((n, yi), gi) in next.iter_mut().zip(y.iter()).zip(grad.iter()) {
            *n = *yi - gi.scale(2.0 * gamma);
        }
        sparsify(next, thresh);

        let delta = cvec::dist2(next, p);
        let scale = cvec::norm2(p) + 1.0;

        if cfg.accelerated {
            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t_momentum * t_momentum).sqrt());
            let beta = (t_momentum - 1.0) / t_next;
            for ((yi, n), o) in y.iter_mut().zip(next.iter()).zip(p.iter()) {
                *yi = *n + (*n - *o).scale(beta);
            }
            t_momentum = t_next;
        } else {
            y.copy_from_slice(next);
        }
        // `p <- next`; the old iterate's buffer becomes the next target
        // (fully overwritten before it is read again).
        std::mem::swap(p, next);

        if delta < cfg.epsilon * scale {
            converged = true;
            break;
        }
    }

    ndft.forward_into(p, fy);
    for (r, hi) in fy.iter_mut().zip(h.iter()) {
        *r -= *hi;
    }
    let residual = cvec::norm2(fy);

    IstaStats {
        iterations,
        converged,
        residual,
    }
}

/// The lane-chunked structure-of-arrays solver body (the `simd` fast
/// path): identical algorithm and iteration structure to
/// [`solve_with_norm_into`], with every complex buffer split into re/im
/// planes so the gradient/momentum/threshold loops and the NDFT kernels
/// vectorize. Reductions use the 4-accumulator lanes of
/// [`chronos_math::lanes`], so iterates drift within the tolerance tier
/// (≤ 1e-12 relative per kernel application) rather than matching the
/// scalar body bitwise; the final solution is published back to the
/// interleaved [`IstaScratch::solution`] buffer.
#[cfg(feature = "simd")]
fn solve_with_norm_into_simd(
    ndft: &Ndft,
    h: &[Complex64],
    cfg: &IstaConfig,
    op_norm: f64,
    scratch: &mut IstaScratch,
) -> IstaStats {
    use chronos_math::lanes;

    let m = ndft.n_taus();
    assert_eq!(
        h.len(),
        ndft.n_freqs(),
        "solve: measurement length mismatch"
    );

    let op_norm = op_norm.max(1e-12);
    let gamma = 1.0 / (2.0 * op_norm * op_norm);

    let SplitScratch {
        p_re,
        p_im,
        prev_re,
        prev_im,
        next_re,
        next_im,
        fy_re,
        fy_im,
        grad_re,
        grad_im,
        h_re,
        h_im,
        supp_p,
        supp_prev,
        supp_next,
    } = &mut scratch.split;

    h_re.clear();
    h_re.extend(h.iter().map(|z| z.re));
    h_im.clear();
    h_im.extend(h.iter().map(|z| z.im));

    ndft.adjoint_split_into(h_re, h_im, grad_re, grad_im);
    let alpha = cfg.alpha_rel * lanes::norm_inf_split(grad_re, grad_im) * 2.0;
    let thresh = gamma * alpha;

    for buf in [
        &mut *p_re,
        &mut *p_im,
        &mut *prev_re,
        &mut *prev_im,
        &mut *next_re,
        &mut *next_im,
    ] {
        buf.clear();
        buf.resize(m, 0.0);
    }
    // Support lists hold at most m indices; reserving the worst case up
    // front makes scratch warmth independent of the measurement (a
    // pool-warmed arena stays allocation-free even when a later client's
    // support is larger than the warm-up client's).
    for supp in [&mut *supp_p, &mut *supp_prev, &mut *supp_next] {
        supp.clear();
        supp.reserve(m);
    }
    let g2 = 2.0 * gamma;
    let mut t_momentum = 1.0f64;
    // Momentum coefficient of the *current* extrapolation point:
    // y = p + beta * (p - prev). Zero for the first iteration (y_1 = 0)
    // and permanently zero for plain (non-accelerated) ISTA.
    let mut beta = 0.0f64;
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..cfg.max_iters {
        iterations += 1;
        // fy = F y - h, with y recomputed on its (tiny) support — then
        // one fused register-tiled pass computes
        // `next = SPARSIFY(y - g2 * F* fy)` together with both
        // convergence reductions and the support of `next`. Neither the
        // extrapolation point nor the gradient ever hits memory as a
        // full-grid buffer (see [`Ndft::fused_prox_step_split`]).
        ndft.forward_extrapolated_split(
            p_re, p_im, prev_re, prev_im, beta, supp_p, supp_prev, fy_re, fy_im,
        );
        for (r, hv) in fy_re.iter_mut().zip(h_re.iter()) {
            *r -= *hv;
        }
        for (r, hv) in fy_im.iter_mut().zip(h_im.iter()) {
            *r -= *hv;
        }
        // `grad_re` is idle inside the loop (only the startup alpha
        // estimate used it), so it doubles as the squared-magnitude
        // scratch plane for the fused kernel's shrink pass.
        let (delta2, pnorm2) = ndft.fused_prox_step_split(
            fy_re, fy_im, p_re, p_im, prev_re, prev_im, beta, g2, thresh, next_re, next_im,
            grad_re, supp_next,
        );
        let delta = delta2.sqrt();
        let scale = pnorm2.sqrt() + 1.0;

        // Momentum coefficient for the next iteration's extrapolation.
        if cfg.accelerated {
            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t_momentum * t_momentum).sqrt());
            beta = (t_momentum - 1.0) / t_next;
            t_momentum = t_next;
        }
        // Rotate iterates: prev <- p, p <- next (plus their supports).
        std::mem::swap(prev_re, p_re);
        std::mem::swap(prev_im, p_im);
        std::mem::swap(p_re, next_re);
        std::mem::swap(p_im, next_im);
        std::mem::swap(supp_prev, supp_p);
        std::mem::swap(supp_p, supp_next);

        if delta < cfg.epsilon * scale {
            converged = true;
            break;
        }
    }

    // Final residual ||F p - h||: beta = 0 reduces the extrapolated
    // forward to a plain support-restricted `F p`.
    ndft.forward_extrapolated_split(
        p_re, p_im, prev_re, prev_im, 0.0, supp_p, supp_prev, fy_re, fy_im,
    );
    for (r, hv) in fy_re.iter_mut().zip(h_re.iter()) {
        *r -= *hv;
    }
    for (r, hv) in fy_im.iter_mut().zip(h_im.iter()) {
        *r -= *hv;
    }
    let residual = lanes::norm2_split(fy_re, fy_im);

    // Publish the interleaved solution so `IstaScratch::solution()` and
    // everything downstream (debias, profile extraction) see one format.
    scratch.p.clear();
    scratch.p.extend(
        p_re.iter()
            .zip(p_im.iter())
            .map(|(r, i)| Complex64::new(*r, *i)),
    );

    IstaStats {
        iterations,
        converged,
        residual,
    }
}

/// LASSO **debiasing**: refits the amplitudes of the detected support by
/// unpenalized least squares, undoing the soft-threshold's shrinkage bias.
///
/// The L1 penalty that makes support detection work also shrinks every
/// surviving amplitude by roughly the threshold — enough to push a weak
/// direct path below the peak-dominance cut, and to leave spurious sidelobe
/// atoms with inflated relative weight. The standard cure is a two-step
/// estimator: keep ISTA's support, solve `min ||h - F_S w||_2` on it.
///
/// At most `max_atoms` strongest support atoms are refit (the system must
/// stay overdetermined: `max_atoms <= n_freqs / 2` is sensible), separated
/// by at least `min_sep` grid bins to avoid near-collinear columns. The
/// returned vector is zero off the refit support.
pub fn debias(
    ndft: &Ndft,
    h: &[Complex64],
    p: &[Complex64],
    max_atoms: usize,
    min_sep: usize,
) -> Vec<Complex64> {
    let mut ws = DebiasScratch::default();
    let mut out = Vec::new();
    debias_into(ndft, h, p, max_atoms, min_sep, &mut ws, &mut out);
    out
}

/// Reusable working storage for [`debias_into`]: support ranking, the
/// atom matrix and the least-squares workspace.
#[derive(Debug, Clone, Default)]
pub struct DebiasScratch {
    idx: Vec<usize>,
    chosen: Vec<usize>,
    atoms: CMat,
    lstsq: chronos_math::cmatrix::CLstsqScratch,
    w: Vec<Complex64>,
}

/// [`debias`] into a reusable workspace and output buffer — identical
/// results, zero heap allocations once the buffers have seen the problem
/// size.
pub fn debias_into(
    ndft: &Ndft,
    h: &[Complex64],
    p: &[Complex64],
    max_atoms: usize,
    min_sep: usize,
    ws: &mut DebiasScratch,
    out: &mut Vec<Complex64>,
) {
    assert_eq!(p.len(), ndft.n_taus(), "debias: profile length mismatch");
    // Rank support by magnitude (ties broken by grid index, which the
    // filter produced in ascending order — the stable-sort order).
    ws.idx.clear();
    ws.idx.extend((0..p.len()).filter(|k| p[*k].abs() > 1e-12));
    ws.idx.sort_unstable_by(|a, b| {
        p[*b]
            .abs()
            .partial_cmp(&p[*a].abs())
            .unwrap()
            .then(a.cmp(b))
    });
    let chosen = &mut ws.chosen;
    chosen.clear();
    for k in ws.idx.iter().copied() {
        if chosen.len() >= max_atoms {
            break;
        }
        if chosen.iter().all(|c| c.abs_diff(k) >= min_sep.max(1)) {
            chosen.push(k);
        }
    }
    if chosen.is_empty() {
        out.clear();
        out.resize(p.len(), Complex64::ZERO);
        return;
    }
    chosen.sort_unstable();

    // Build the atom matrix: columns are steering vectors at the chosen
    // grid delays.
    let grid = ndft.grid();
    ws.atoms.reset(ndft.n_freqs(), chosen.len());
    for (j, k) in chosen.iter().enumerate() {
        let tau_s = grid.tau_at(*k) * 1e-9;
        for (i, f) in ndft.freqs_hz().iter().enumerate() {
            ws.atoms.set(
                i,
                j,
                Complex64::cis(-2.0 * std::f64::consts::PI * f * tau_s),
            );
        }
    }
    // Under `simd` the normal-equations build (`A^H A`, `A^H b`) is
    // lane-chunked; the scalar build stays the exact-tier source of
    // truth (refit weights agree to ≤ 1e-12 relative — pinned by
    // `debias_simd_tracks_scalar_reference` and the kernel proptest in
    // `tests/properties.rs`).
    #[cfg(feature = "simd")]
    let refit = ws.atoms.lstsq_into_lanes(h, &mut ws.lstsq, &mut ws.w);
    #[cfg(not(feature = "simd"))]
    let refit = ws.atoms.lstsq_into(h, &mut ws.lstsq, &mut ws.w);
    match refit {
        Ok(()) => {
            out.clear();
            out.resize(p.len(), Complex64::ZERO);
            for (k, wi) in chosen.iter().zip(ws.w.iter()) {
                out[*k] = *wi;
            }
        }
        // Refit can fail for pathological supports; fall back to the
        // biased estimate rather than nothing.
        Err(_) => {
            out.clear();
            out.extend_from_slice(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndft::TauGrid;
    use chronos_rf::bands::band_plan_5ghz;
    use std::f64::consts::PI;

    fn freqs() -> Vec<f64> {
        band_plan_5ghz().iter().map(|b| b.center_hz).collect()
    }

    fn channel_for(paths: &[(f64, f64)], freqs: &[f64]) -> Vec<Complex64> {
        freqs
            .iter()
            .map(|f| {
                let mut h = Complex64::ZERO;
                for (tau_ns, a) in paths {
                    h += Complex64::from_polar(*a, -2.0 * PI * f * tau_ns * 1e-9);
                }
                h
            })
            .collect()
    }

    #[test]
    fn sparsify_behaviour() {
        let mut p = vec![
            Complex64::from_polar(1.0, 0.3),
            Complex64::from_polar(0.05, -1.0),
            Complex64::ZERO,
        ];
        sparsify(&mut p, 0.1);
        assert!((p[0].abs() - 0.9).abs() < 1e-12);
        assert!((p[0].arg() - 0.3).abs() < 1e-12, "phase must be preserved");
        assert_eq!(p[1], Complex64::ZERO);
        assert_eq!(p[2], Complex64::ZERO);
        // Zero threshold is a no-op.
        let mut q = vec![Complex64::from_polar(0.5, 1.0)];
        sparsify(&mut q, 0.0);
        assert!((q[0].abs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recovers_single_path_on_grid() {
        let f = freqs();
        let grid = TauGrid::span(50.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(10.0, 1.0)], &f);
        let sol = solve(&ndft, &h, &IstaConfig::default());
        // The largest component must sit at tau = 10 ns (index 20).
        let (idx, _) = sol
            .p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert_eq!(idx, 20, "peak at {} ns", grid.tau_at(idx));
        assert!(sol.residual < 0.3 * (f.len() as f64).sqrt());
    }

    #[test]
    fn recovers_three_paths_fig4() {
        // The paper's Fig. 4 scenario: 5.2, 10, 16 ns with falling power.
        let f = freqs();
        let grid = TauGrid::span(40.0, 0.2);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(5.2, 1.0), (10.0, 0.7), (16.0, 0.4)], &f);
        let sol = solve(
            &ndft,
            &h,
            &IstaConfig {
                alpha_rel: 0.08,
                ..Default::default()
            },
        );
        let mags: Vec<f64> = sol.p.iter().map(|z| z.abs()).collect();
        let peaks = chronos_math::peaks::find_peaks(
            &mags,
            0.0,
            0.2,
            &chronos_math::peaks::PeakConfig {
                dominance: 0.2,
                min_separation: 4,
            },
        );
        assert!(peaks.len() >= 3, "found {} peaks", peaks.len());
        assert!((peaks[0].x - 5.2).abs() < 0.4, "first peak {}", peaks[0].x);
        // Find peaks near 10 and 16.
        assert!(peaks.iter().any(|p| (p.x - 10.0).abs() < 0.5));
        assert!(peaks.iter().any(|p| (p.x - 16.0).abs() < 0.6));
    }

    #[test]
    fn solution_is_sparse() {
        let f = freqs();
        let grid = TauGrid::span(100.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(7.0, 1.0), (22.0, 0.5)], &f);
        let sol = solve(&ndft, &h, &IstaConfig::default());
        let nonzero = sol.p.iter().filter(|z| z.abs() > 1e-9).count();
        // 200 grid points, but only a handful alive.
        assert!(nonzero < 30, "nonzero {nonzero}");
        assert!(nonzero >= 2);
    }

    #[test]
    fn larger_alpha_is_sparser() {
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(5.0, 1.0), (9.0, 0.6), (14.0, 0.3), (20.0, 0.2)], &f);
        let count = |alpha: f64| {
            let sol = solve(
                &ndft,
                &h,
                &IstaConfig {
                    alpha_rel: alpha,
                    ..Default::default()
                },
            );
            sol.p.iter().filter(|z| z.abs() > 1e-9).count()
        };
        assert!(
            count(0.4) <= count(0.05),
            "{} > {}",
            count(0.4),
            count(0.05)
        );
    }

    #[test]
    fn ista_and_fista_agree() {
        let f = freqs();
        let grid = TauGrid::span(50.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(12.0, 1.0), (19.0, 0.5)], &f);
        let plain = solve(
            &ndft,
            &h,
            &IstaConfig {
                accelerated: false,
                max_iters: 4000,
                epsilon: 1e-9,
                ..Default::default()
            },
        );
        let fast = solve(
            &ndft,
            &h,
            &IstaConfig {
                accelerated: true,
                max_iters: 4000,
                epsilon: 1e-9,
                ..Default::default()
            },
        );
        // Peak locations agree.
        let argmax = |p: &[Complex64]| {
            p.iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(argmax(&plain.p), argmax(&fast.p));
        // FISTA converges in fewer iterations.
        assert!(
            fast.iterations <= plain.iterations,
            "{} vs {}",
            fast.iterations,
            plain.iterations
        );
    }

    #[test]
    fn noise_does_not_create_spurious_dominant_peaks() {
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let mut h = channel_for(&[(8.0, 1.0)], &f);
        // Deterministic pseudo-noise at ~5% amplitude.
        for (i, z) in h.iter_mut().enumerate() {
            *z += Complex64::from_polar(0.05, (i as f64 * 2.399) % (2.0 * PI));
        }
        let sol = solve(&ndft, &h, &IstaConfig::default());
        let mags: Vec<f64> = sol.p.iter().map(|z| z.abs()).collect();
        let peaks = chronos_math::peaks::find_peaks(
            &mags,
            0.0,
            0.5,
            &chronos_math::peaks::PeakConfig {
                dominance: 0.3,
                min_separation: 3,
            },
        );
        assert_eq!(peaks.len(), 1, "spurious peaks: {peaks:?}");
        assert!((peaks[0].x - 8.0).abs() < 0.5);
    }

    #[test]
    fn empty_measurement_panics_cleanly() {
        let ndft = Ndft::new(&[5e9], TauGrid::span(10.0, 1.0));
        let sol = solve(&ndft, &[Complex64::ZERO], &IstaConfig::default());
        // All-zero input: all-zero output, converged.
        assert!(sol.p.iter().all(|z| *z == Complex64::ZERO));
        assert!(sol.converged);
    }

    /// A literal transcription of the pre-refactor solver loop (fresh
    /// `Vec` per iteration, `clone()`-based FISTA extrapolation), kept
    /// only to pin the ping-pong rewrite bit for bit.
    fn reference_solve(
        ndft: &Ndft,
        h: &[Complex64],
        cfg: &IstaConfig,
        op_norm: f64,
    ) -> IstaSolution {
        let m = ndft.n_taus();
        let op_norm = op_norm.max(1e-12);
        let gamma = 1.0 / (2.0 * op_norm * op_norm);
        let atb = ndft.adjoint(h);
        let alpha = cfg.alpha_rel * chronos_math::cvec::norm_inf(&atb) * 2.0;
        let thresh = gamma * alpha;
        let mut p = vec![Complex64::ZERO; m];
        let mut y = p.clone();
        let mut t_momentum = 1.0f64;
        let mut iterations = 0;
        let mut converged = false;
        for _ in 0..cfg.max_iters {
            iterations += 1;
            let fy = ndft.forward(&y);
            let mut resid = fy;
            for (r, hi) in resid.iter_mut().zip(h.iter()) {
                *r -= *hi;
            }
            let grad = ndft.adjoint(&resid);
            let mut next: Vec<Complex64> = y
                .iter()
                .zip(grad.iter())
                .map(|(yi, gi)| *yi - gi.scale(2.0 * gamma))
                .collect();
            sparsify(&mut next, thresh);
            let delta = chronos_math::cvec::dist2(&next, &p);
            let scale = chronos_math::cvec::norm2(&p) + 1.0;
            if cfg.accelerated {
                let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t_momentum * t_momentum).sqrt());
                let beta = (t_momentum - 1.0) / t_next;
                y = next
                    .iter()
                    .zip(p.iter())
                    .map(|(n, o)| *n + (*n - *o).scale(beta))
                    .collect();
                t_momentum = t_next;
            } else {
                y = next.clone();
            }
            p = next;
            if delta < cfg.epsilon * scale {
                converged = true;
                break;
            }
        }
        let fit = ndft.forward(&p);
        let mut resid = fit;
        for (r, hi) in resid.iter_mut().zip(h.iter()) {
            *r -= *hi;
        }
        let residual = chronos_math::cvec::norm2(&resid);
        IstaSolution {
            p,
            iterations,
            converged,
            residual,
        }
    }

    #[test]
    fn ping_pong_buffers_pin_reference_convergence() {
        // Exact-tier contract: the two-buffer FISTA extrapolation must
        // reproduce the clone-per-iteration reference exactly — same
        // iterates, same iteration count, same residual — for both the
        // accelerated and plain solvers, including a reused scratch.
        // Pinned on the scalar entry point, which stays the source of
        // truth in every build (under `simd`, `solve_planned_into`
        // dispatches to the tolerance tier instead and is covered by
        // `simd_solver_tracks_scalar_reference`).
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.5);
        let plan = crate::plan::NdftPlan::new(&f, grid, 60.0);
        let mut scratch = IstaScratch::new();
        for accelerated in [true, false] {
            let cfg = IstaConfig {
                accelerated,
                ..Default::default()
            };
            for paths in [
                vec![(9.0, 1.0), (14.0, 0.5)],
                vec![(5.5, 0.4), (21.0, 1.0), (33.0, 0.3)],
            ] {
                let h = channel_for(&paths, &f);
                let want = reference_solve(&plan.ndft, &h, &cfg, plan.op_norm);
                let stats = solve_planned_into_scalar(&plan, &h, &cfg, &mut scratch);
                assert_eq!(stats.iterations, want.iterations, "acc={accelerated}");
                assert_eq!(stats.converged, want.converged);
                assert_eq!(stats.residual.to_bits(), want.residual.to_bits());
                assert_eq!(scratch.solution().len(), want.p.len());
                for (a, b) in scratch.solution().iter().zip(want.p.iter()) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits());
                    assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
            }
        }
    }

    /// Tolerance-tier contract: the lane-chunked solver follows the
    /// scalar reference closely enough that the downstream support-based
    /// debias refit erases the difference — same iterate shape, relative
    /// solution drift bounded far below the profile peak scale.
    #[cfg(feature = "simd")]
    #[test]
    fn simd_solver_tracks_scalar_reference() {
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.5);
        let plan = crate::plan::NdftPlan::new(&f, grid, 60.0);
        let mut scalar = IstaScratch::new();
        let mut simd = IstaScratch::new();
        for accelerated in [true, false] {
            let cfg = IstaConfig {
                accelerated,
                ..Default::default()
            };
            for paths in [
                vec![(9.0, 1.0), (14.0, 0.5)],
                vec![(5.5, 0.4), (21.0, 1.0), (33.0, 0.3)],
            ] {
                let h = channel_for(&paths, &f);
                let a = solve_planned_into_scalar(&plan, &h, &cfg, &mut scalar);
                let b = solve_planned_into(&plan, &h, &cfg, &mut simd);
                assert_eq!(a.converged, b.converged, "acc={accelerated}");
                let peak = scalar
                    .solution()
                    .iter()
                    .map(|z| z.abs())
                    .fold(0.0f64, f64::max);
                let drift = scalar
                    .solution()
                    .iter()
                    .zip(simd.solution().iter())
                    .map(|(x, y)| (*x - *y).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    drift <= 1e-6 * peak.max(1e-12),
                    "acc={accelerated} drift {drift:e} vs peak {peak:e}"
                );
                assert!((a.residual - b.residual).abs() <= 1e-6 * a.residual.max(1e-9));
            }
        }
    }

    #[test]
    fn debias_into_matches_debias_with_warm_scratch() {
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(10.0, 1.0), (20.0, 0.4)], &f);
        let sol = solve(&ndft, &h, &IstaConfig::default());
        let fresh = debias(&ndft, &h, &sol.p, 6, 3);
        let mut ws = DebiasScratch::default();
        let mut out = Vec::new();
        for _ in 0..3 {
            debias_into(&ndft, &h, &sol.p, 6, 3, &mut ws, &mut out);
            assert_eq!(out.len(), fresh.len());
            for (a, b) in out.iter().zip(fresh.iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    /// Under `simd`, `debias_into` lane-chunks the normal-equations
    /// build. Re-deriving the support from the lanes output and refitting
    /// it with the scalar `lstsq_into` must reproduce the same weights to
    /// the tolerance tier (≤ 1e-12 relative).
    #[cfg(feature = "simd")]
    #[test]
    fn debias_simd_tracks_scalar_reference() {
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(10.0, 1.0), (20.0, 0.4), (31.0, 0.25)], &f);
        let sol = solve(&ndft, &h, &IstaConfig::default());
        let d = debias(&ndft, &h, &sol.p, 6, 3);
        let chosen: Vec<usize> = (0..d.len()).filter(|k| d[*k] != Complex64::ZERO).collect();
        assert!(!chosen.is_empty());
        let mut atoms = CMat::zeros(ndft.n_freqs(), chosen.len());
        for (j, k) in chosen.iter().enumerate() {
            let tau_s = grid.tau_at(*k) * 1e-9;
            for (i, fc) in ndft.freqs_hz().iter().enumerate() {
                atoms.set(
                    i,
                    j,
                    Complex64::cis(-2.0 * std::f64::consts::PI * fc * tau_s),
                );
            }
        }
        let mut ws = chronos_math::cmatrix::CLstsqScratch::default();
        let mut w = Vec::new();
        atoms.lstsq_into(&h, &mut ws, &mut w).unwrap();
        for (k, scalar) in chosen.iter().zip(w.iter()) {
            let lanes = d[*k];
            assert!(
                (lanes - *scalar).abs() <= 1e-12 * scalar.abs().max(1.0),
                "atom {k}: {lanes} vs {scalar}"
            );
        }
    }

    #[test]
    fn planned_solve_is_bitwise_identical() {
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.5);
        let plan = crate::plan::NdftPlan::new(&f, grid, 60.0);
        let h = channel_for(&[(9.0, 1.0), (14.0, 0.5)], &f);
        let a = solve(&plan.ndft, &h, &IstaConfig::default());
        let b = solve_planned(&plan, &h, &IstaConfig::default());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.residual.to_bits(), b.residual.to_bits());
        for (x, y) in a.p.iter().zip(b.p.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn debias_restores_shrunk_amplitudes() {
        // ISTA shrinks every survivor by ~the threshold; the refit must
        // recover the physical amplitudes.
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let true_amps = [(10.0, 1.0), (20.0, 0.4)];
        let h = channel_for(&true_amps, &f);
        let sol = solve(
            &ndft,
            &h,
            &IstaConfig {
                alpha_rel: 0.25,
                ..Default::default()
            },
        );
        let biased_max = sol.p.iter().map(|z| z.abs()).fold(0.0, f64::max);
        assert!(biased_max < 1.0, "expected shrinkage, max {biased_max}");
        let d = debias(&ndft, &h, &sol.p, 6, 3);
        let at = |tau: f64| {
            let idx = (tau / 0.5).round() as usize;
            d[idx.saturating_sub(1)..=(idx + 1).min(d.len() - 1)]
                .iter()
                .map(|z| z.abs())
                .fold(0.0, f64::max)
        };
        assert!((at(10.0) - 1.0).abs() < 0.1, "strong atom {}", at(10.0));
        assert!((at(20.0) - 0.4).abs() < 0.1, "weak atom {}", at(20.0));
    }

    #[test]
    fn debias_zero_off_support() {
        let f = freqs();
        let grid = TauGrid::span(40.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(12.0, 1.0)], &f);
        let sol = solve(&ndft, &h, &IstaConfig::default());
        let d = debias(&ndft, &h, &sol.p, 5, 3);
        let nonzero = d.iter().filter(|z| z.abs() > 1e-12).count();
        assert!(nonzero <= 5, "nonzero {nonzero}");
    }

    #[test]
    fn debias_respects_max_atoms_and_separation() {
        let f = freqs();
        let grid = TauGrid::span(40.0, 0.5);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(8.0, 1.0), (9.0, 0.9), (25.0, 0.5)], &f);
        let sol = solve(
            &ndft,
            &h,
            &IstaConfig {
                alpha_rel: 0.05,
                ..Default::default()
            },
        );
        let d = debias(&ndft, &h, &sol.p, 2, 4);
        let support: Vec<usize> = (0..d.len()).filter(|k| d[*k].abs() > 1e-12).collect();
        assert!(support.len() <= 2, "support {support:?}");
        for w in support.windows(2) {
            assert!(w[1] - w[0] >= 4, "separation violated: {support:?}");
        }
    }

    #[test]
    fn debias_on_empty_solution_is_zero() {
        let ndft = Ndft::new(&freqs(), TauGrid::span(20.0, 1.0));
        let p = vec![Complex64::ZERO; 20];
        let h = vec![Complex64::ONE; ndft.n_freqs()];
        let d = debias(&ndft, &h, &p, 5, 2);
        assert!(d.iter().all(|z| *z == Complex64::ZERO));
    }

    #[test]
    fn debias_improves_data_fit() {
        let f = freqs();
        let grid = TauGrid::span(60.0, 0.25);
        let ndft = Ndft::new(&f, grid);
        let h = channel_for(&[(7.3, 1.0), (15.1, 0.6)], &f);
        let sol = solve(
            &ndft,
            &h,
            &IstaConfig {
                alpha_rel: 0.2,
                ..Default::default()
            },
        );
        let d = debias(&ndft, &h, &sol.p, 8, 3);
        let resid = |p: &[Complex64]| {
            let fit = ndft.forward(p);
            fit.iter()
                .zip(h.iter())
                .map(|(a, b)| (*a - *b).norm_sq())
                .sum::<f64>()
                .sqrt()
        };
        assert!(
            resid(&d) <= resid(&sol.p) + 1e-9,
            "debias worsened fit: {} vs {}",
            resid(&d),
            resid(&sol.p)
        );
    }
}
