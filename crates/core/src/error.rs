//! Error types of the estimation pipeline.

use std::fmt;

/// Errors the Chronos pipeline can report.
///
/// The estimator is deliberately conservative: rather than returning a
/// garbage time-of-flight it reports *why* an estimate is unavailable, so
/// callers (the localization layer, the drone controller) can skip the
/// sample — the paper's systems do the same via outlier rejection.
#[derive(Debug, Clone, PartialEq)]
pub enum ChronosError {
    /// Not enough band measurements to invert the NDFT meaningfully.
    TooFewBands {
        /// Bands supplied.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// The sparse inversion produced no dominant peak (all-noise profile).
    NoDominantPath,
    /// A capture had malformed content (wrong subcarrier count, NaNs).
    BadCapture(&'static str),
    /// Localization could not find a consistent position.
    NoConsistentPosition,
    /// The band sweep failed (protocol fail-safe fired before coverage).
    SweepIncomplete {
        /// Bands actually measured.
        measured: usize,
        /// Bands planned.
        planned: usize,
    },
}

impl fmt::Display for ChronosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChronosError::TooFewBands { got, need } => {
                write!(f, "too few band measurements: got {got}, need {need}")
            }
            ChronosError::NoDominantPath => {
                write!(f, "no dominant path found in multipath profile")
            }
            ChronosError::BadCapture(why) => write!(f, "malformed CSI capture: {why}"),
            ChronosError::NoConsistentPosition => {
                write!(f, "distance set admits no consistent position")
            }
            ChronosError::SweepIncomplete { measured, planned } => {
                write!(
                    f,
                    "band sweep incomplete: {measured}/{planned} bands measured"
                )
            }
        }
    }
}

impl std::error::Error for ChronosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ChronosError::TooFewBands { got: 2, need: 5 }
            .to_string()
            .contains("got 2"));
        assert!(ChronosError::NoDominantPath
            .to_string()
            .contains("dominant"));
        assert!(ChronosError::SweepIncomplete {
            measured: 10,
            planned: 35
        }
        .to_string()
        .contains("10/35"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ChronosError::NoDominantPath);
    }
}
