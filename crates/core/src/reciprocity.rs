//! Carrier-frequency-offset elimination via channel reciprocity (paper §7).
//!
//! A CSI measured at the receiver rotates with the CFO as `e^{+j w t}`;
//! the CSI the transmitter measures for the receiver's ACK rotates with the
//! *opposite* sign, `e^{-j w t}`. Their product therefore cancels the
//! rotation and yields `kappa * h^2` — the squared channel up to a
//! device constant. The pipeline feeds these squared channels to the
//! inverse NDFT; the first profile peak then falls at **twice** the
//! time-of-flight.
//!
//! Residual error: forward and reverse captures are separated by one
//! protocol turnaround (tens of microseconds), leaving a small phase
//! residue `w * dt`. Averaging the product across the exchanges of one
//! band suppresses its jitter (the constant part is removed by the
//! one-time calibration, §7 observation 2).

use crate::config::QuirkMode;
use crate::error::ChronosError;
use crate::phase::{interpolate_h0_planned, Interpolation};
use chronos_math::spline::SplinePlan;
use chronos_math::Complex64;
use chronos_rf::csi::Measurement;

/// The combined, CFO-free measurement of one band: the complex value the
/// NDFT consumes, plus how many exchanges were averaged.
#[derive(Debug, Clone, Copy)]
pub struct BandProduct {
    /// Center frequency of the band, Hz.
    pub freq_hz: f64,
    /// Averaged forward x reverse zero-subcarrier product. For quirked
    /// 2.4 GHz bands this is the *fourth power* of the per-exchange product
    /// (see [`crate::quirk`]), making its phase quirk-free.
    pub value: Complex64,
    /// Number of exchanges averaged.
    pub exchanges: usize,
    /// Delay scale of this value relative to the true time-of-flight:
    /// 2 for plain products (h^2), 8 for quirked fourth powers (h^8).
    pub delay_scale: f64,
}

/// Combines the forward/reverse exchanges of one band into a [`BandProduct`].
///
/// `measurements` must all belong to the same band and antenna pair. In
/// [`QuirkMode::Intel5300`], 2.4 GHz products are raised to the fourth
/// power *before* averaging (each exchange carries an independent
/// multiple-of-pi/2 offset which the fourth power collapses; averaging
/// first would mix incompatible offsets).
pub fn combine_band(
    measurements: &[Measurement],
    interpolation: Interpolation,
    mode: QuirkMode,
) -> Result<BandProduct, ChronosError> {
    combine_band_planned(measurements, interpolation, mode, None)
}

/// [`combine_band`] with an optional shared spline factorization for the
/// zero-subcarrier interpolation (see
/// [`crate::phase::interpolate_h0_planned`]). Identical results; the plan
/// only skips redundant per-capture refactorization.
pub fn combine_band_planned(
    measurements: &[Measurement],
    interpolation: Interpolation,
    mode: QuirkMode,
    spline_plan: Option<&SplinePlan>,
) -> Result<BandProduct, ChronosError> {
    let first = measurements
        .first()
        .ok_or(ChronosError::TooFewBands { got: 0, need: 1 })?;
    let band = first.forward.band;
    let quirked = mode == QuirkMode::Intel5300 && band.group.is_2g4();

    let mut acc = Complex64::ZERO;
    let mut n = 0usize;
    for m in measurements {
        debug_assert_eq!(m.forward.band.channel, band.channel, "mixed bands");
        let h_f = interpolate_h0_planned(&m.forward, interpolation, quirked, spline_plan)?;
        let h_r = interpolate_h0_planned(&m.reverse, interpolation, quirked, spline_plan)?;
        let p = h_f * h_r;
        let contribution = if quirked { p.powi(4) } else { p };
        acc += contribution;
        n += 1;
    }
    let value = acc / n as f64;
    Ok(BandProduct {
        freq_hz: band.center_hz,
        value,
        exchanges: n,
        delay_scale: if quirked { 8.0 } else { 2.0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_rf::bands::band_by_channel;
    use chronos_rf::csi::MeasurementContext;
    use chronos_rf::environment::Environment;
    use chronos_rf::geometry::Point;
    use chronos_rf::hardware::{ideal_device, AntennaArray, Intel5300};
    use chronos_rf::ofdm::SubcarrierLayout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn make_ctx(d: f64, with_cfo: bool) -> MeasurementContext {
        let mut di = ideal_device(AntennaArray::single());
        let mut dr = ideal_device(AntennaArray::single());
        if with_cfo {
            di.oscillator_ppm = 8.0;
            dr.oscillator_ppm = -5.0;
        }
        let mut c = MeasurementContext::new(
            Environment::free_space(),
            di,
            Point::new(0.0, 0.0),
            dr,
            Point::new(d, 0.0),
        );
        c.snr.snr_at_1m_db = 300.0;
        c.turnaround_s = 1e-7;
        c.turnaround_jitter_s = 0.0;
        c
    }

    fn exchanges(ctx: &MeasurementContext, channel: u16, n: usize, seed: u64) -> Vec<Measurement> {
        let mut rng = StdRng::seed_from_u64(seed);
        let band = band_by_channel(channel).unwrap();
        let layout = SubcarrierLayout::intel5300();
        (0..n)
            .map(|i| ctx.measure_pair(&mut rng, &band, &layout, 0, 0, 1.0 + i as f64 * 1e-3))
            .collect()
    }

    #[test]
    fn product_phase_is_twice_channel_phase() {
        // No CFO, ideal devices: product phase = 2 * (-2 pi f tau).
        let d = 1.2;
        let ctx = make_ctx(d, false);
        let ms = exchanges(&ctx, 44, 3, 1);
        let bp = combine_band(&ms, Interpolation::CubicSpline, QuirkMode::Ideal).unwrap();
        let tau_s = chronos_math::constants::m_to_ns(d) * 1e-9;
        let expected = chronos_math::unwrap::wrap_to_pi(-4.0 * PI * bp.freq_hz * tau_s);
        assert!(
            chronos_math::unwrap::angular_distance(bp.value.arg(), expected) < 1e-3,
            "{} vs {expected}",
            bp.value.arg()
        );
        assert_eq!(bp.exchanges, 3);
        assert_eq!(bp.delay_scale, 2.0);
    }

    #[test]
    fn cfo_cancelled_by_product() {
        // With CFO the raw forward phase at t=1s is garbage, but the
        // product still matches the CFO-free product phase.
        let d = 2.5;
        let with = make_ctx(d, true);
        let without = make_ctx(d, false);
        let bp_with = combine_band(
            &exchanges(&with, 64, 3, 2),
            Interpolation::CubicSpline,
            QuirkMode::Ideal,
        )
        .unwrap();
        let bp_without = combine_band(
            &exchanges(&without, 64, 3, 3),
            Interpolation::CubicSpline,
            QuirkMode::Ideal,
        )
        .unwrap();
        // Residual from the tiny turnaround (1e-7 s x ~70 kHz) is small.
        assert!(
            chronos_math::unwrap::angular_distance(bp_with.value.arg(), bp_without.value.arg())
                < 0.1,
            "{} vs {}",
            bp_with.value.arg(),
            bp_without.value.arg()
        );
    }

    #[test]
    fn quirked_band_uses_fourth_power() {
        let d = 1.5;
        let mut rng = StdRng::seed_from_u64(4);
        let mut ctx = make_ctx(d, false);
        ctx.initiator = Intel5300::mobile(&mut rng);
        ctx.responder = Intel5300::mobile(&mut rng);
        // Make the 5300s noise-free and delay-free for exactness.
        for dev in [&mut ctx.initiator, &mut ctx.responder] {
            dev.detection_delay.median_ns = 0.0;
            dev.detection_delay.std_ns = 0.0;
            dev.oscillator_ppm = 0.0;
            dev.hw_delay_ns = 0.0;
            dev.kappa = Complex64::ONE;
        }
        let ms = exchanges(&ctx, 6, 2, 5);
        let bp = combine_band(&ms, Interpolation::CubicSpline, QuirkMode::Intel5300).unwrap();
        assert_eq!(bp.delay_scale, 8.0);
        // Phase should match -2 pi f (8 tau) mod 2 pi.
        let tau_s = chronos_math::constants::m_to_ns(d) * 1e-9;
        let expected = chronos_math::unwrap::wrap_to_pi(-2.0 * PI * bp.freq_hz * 8.0 * tau_s);
        assert!(
            chronos_math::unwrap::angular_distance(bp.value.arg(), expected) < 2e-2,
            "{} vs {expected}",
            bp.value.arg()
        );
    }

    #[test]
    fn ideal_mode_keeps_24ghz_at_scale_two() {
        let ctx = make_ctx(2.0, false);
        let ms = exchanges(&ctx, 6, 2, 6);
        let bp = combine_band(&ms, Interpolation::CubicSpline, QuirkMode::Ideal).unwrap();
        assert_eq!(bp.delay_scale, 2.0);
    }

    #[test]
    fn averaging_reduces_noise() {
        let mut ctx = make_ctx(3.0, true);
        ctx.snr.snr_at_1m_db = 30.0;
        let spread = |n: usize, seed: u64| {
            let mut phases = Vec::new();
            for trial in 0..30 {
                let ms = exchanges(&ctx, 52, n, seed + trial);
                let bp = combine_band(&ms, Interpolation::CubicSpline, QuirkMode::Ideal).unwrap();
                phases.push(bp.value.arg());
            }
            chronos_math::stats::std_dev(&phases)
        };
        let one = spread(1, 100);
        let five = spread(5, 200);
        assert!(
            five < one,
            "averaging did not help: 1 -> {one}, 5 -> {five}"
        );
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            combine_band(&[], Interpolation::CubicSpline, QuirkMode::Ideal),
            Err(ChronosError::TooFewBands { .. })
        ));
    }

    #[test]
    fn kappa_affects_phase_constantly_across_bands() {
        // Device kappas rotate the product by the same constant on every
        // band — verified here so the "constant phase is harmless to the
        // profile magnitude" argument holds.
        let d = 2.0;
        let mut ctx = make_ctx(d, false);
        ctx.initiator.kappa = Complex64::from_polar(1.0, 0.7);
        ctx.responder.kappa = Complex64::from_polar(1.0, -0.2);
        let clean = make_ctx(d, false);
        let mut diffs = Vec::new();
        for ch in [36u16, 64, 100, 140, 165] {
            let a = combine_band(
                &exchanges(&ctx, ch, 2, 7),
                Interpolation::CubicSpline,
                QuirkMode::Ideal,
            )
            .unwrap();
            let b = combine_band(
                &exchanges(&clean, ch, 2, 8),
                Interpolation::CubicSpline,
                QuirkMode::Ideal,
            )
            .unwrap();
            diffs.push(chronos_math::unwrap::wrap_to_pi(
                a.value.arg() - b.value.arg(),
            ));
        }
        let first = diffs[0];
        for d in &diffs {
            assert!(
                chronos_math::unwrap::angular_distance(*d, first) < 2e-2,
                "kappa phase varies across bands: {diffs:?}"
            );
        }
        // And it equals the sum of the two kappa phases.
        assert!(
            chronos_math::unwrap::angular_distance(first, 0.5) < 2e-2,
            "{first}"
        );
    }
}
