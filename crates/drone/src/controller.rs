//! The negative-feedback distance controller (paper §9).
//!
//! The paper's controller is deliberately simple: measure the current
//! distance to the user's device; if the user is closer than the target,
//! take a discrete step away, and vice versa. Its accuracy comes not from
//! control sophistication but from the *synergy with Chronos* the paper
//! highlights: the loop invokes ranging many times per second, so it can
//! average measurements and reject outliers, holding distance far more
//! tightly (4.2 cm RMSE) than a single-shot estimate would allow.
//!
//! [`DistanceController`] implements that measurement pipeline (sliding
//! window, MAD outlier rejection, mean of survivors) and the proportional
//! step policy.

use chronos_core::ranging::{combine_ranges, RangeEstimate};
use std::collections::VecDeque;

/// Controller tuning.
///
/// The loop is a textbook PI(D) negative-feedback controller (the paper
/// cites the feedback-loop literature for it): proportional action tracks,
/// integral action zeroes the steady-state error a *walking* user would
/// otherwise induce (a ramp disturbance against a velocity-type actuator),
/// and a little derivative damping suppresses overshoot at waypoint turns.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Desired distance to the user, meters (the paper uses 1.4 m).
    pub target_m: f64,
    /// Proportional gain: commanded step per meter of error.
    pub gain: f64,
    /// Integral gain per tick (zeroes ramp error from a walking user).
    pub gain_i: f64,
    /// Derivative gain (damping on the error rate).
    pub gain_d: f64,
    /// Anti-windup clamp on the error integral, meters.
    pub integral_clamp_m: f64,
    /// Maximum commanded step per tick, meters.
    pub max_step_m: f64,
    /// Sliding window length (number of recent measurements averaged).
    pub window: usize,
    /// MAD multiplier for outlier rejection inside the window.
    pub outlier_k: f64,
    /// Deadband: no correction when the smoothed error is below this,
    /// meters. Avoids hunting on measurement noise.
    pub deadband_m: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            target_m: 1.4,
            gain: 0.55,
            gain_i: 0.15,
            gain_d: 0.25,
            integral_clamp_m: 0.6,
            max_step_m: 0.15,
            window: 3,
            outlier_k: 3.0,
            deadband_m: 0.003,
        }
    }
}

/// The distance-holding controller.
#[derive(Debug, Clone)]
pub struct DistanceController {
    /// Tuning parameters.
    pub config: ControllerConfig,
    history: VecDeque<RangeEstimate>,
    /// Latest pre-filtered distance, when an upstream tracker (not the
    /// raw sweep) feeds the loop. Takes priority over the window.
    filtered_m: Option<f64>,
    integral_m: f64,
    last_error_m: Option<f64>,
}

impl DistanceController {
    /// Creates a controller.
    pub fn new(config: ControllerConfig) -> Self {
        DistanceController {
            config,
            history: VecDeque::new(),
            filtered_m: None,
            integral_m: 0.0,
            last_error_m: None,
        }
    }

    /// Feeds one raw distance measurement (meters). Non-finite inputs are
    /// ignored (a failed sweep contributes nothing). Raw measurements go
    /// through the sliding window + MAD outlier rejection; feeding one
    /// also switches the controller back to the raw pipeline (clears any
    /// [`DistanceController::observe_filtered`] value).
    pub fn observe(&mut self, distance_m: f64) {
        if !distance_m.is_finite() || distance_m < 0.0 {
            return;
        }
        self.filtered_m = None;
        self.history.push_back(RangeEstimate {
            distance_m,
            tof_ns: chronos_math::constants::m_to_ns(distance_m),
        });
        while self.history.len() > self.config.window {
            self.history.pop_front();
        }
    }

    /// Feeds one *already filtered* distance (meters) — the output of a
    /// [`chronos_core::tracker`] Kalman filter, which has its own
    /// innovation gate and smoothing.
    ///
    /// The §9 window/MAD pipeline exists to de-noise raw sweep estimates;
    /// running tracker output through it as well would double-smooth (two
    /// cascaded low-pass stages), adding lag against a walking user for
    /// no noise benefit. Filtered inputs therefore bypass the window:
    /// [`DistanceController::smoothed_distance`] reports them as-is until
    /// a raw [`DistanceController::observe`] switches the pipeline back.
    pub fn observe_filtered(&mut self, distance_m: f64) {
        if !distance_m.is_finite() || distance_m < 0.0 {
            return;
        }
        self.filtered_m = Some(distance_m);
    }

    /// The de-noised current distance estimate, if any measurements
    /// exist: the latest tracker-filtered value when one is being fed,
    /// otherwise the MAD-gated window mean of raw measurements.
    pub fn smoothed_distance(&self) -> Option<f64> {
        if let Some(d) = self.filtered_m {
            return Some(d);
        }
        let v: Vec<RangeEstimate> = self.history.iter().cloned().collect();
        combine_ranges(&v, self.config.outlier_k)
    }

    /// The signed radial correction to fly, meters: positive = move away
    /// from the user, negative = move closer. Zero without measurements.
    ///
    /// Advances the controller's internal (integral/derivative) state, so
    /// call it exactly once per control tick.
    pub fn correction(&mut self) -> f64 {
        let Some(d) = self.smoothed_distance() else {
            return 0.0;
        };
        let err = d - self.config.target_m; // >0: too far -> move closer
        let derr = self.last_error_m.map(|e| err - e).unwrap_or(0.0);
        self.last_error_m = Some(err);
        self.integral_m = (self.integral_m + err)
            .clamp(-self.config.integral_clamp_m, self.config.integral_clamp_m);
        if err.abs() < self.config.deadband_m && self.integral_m.abs() < self.config.deadband_m {
            return 0.0;
        }
        // Move along the user-drone axis: if too far (err > 0) the drone
        // steps toward the user, i.e. correction is negative (radially).
        let u = self.config.gain * err
            + self.config.gain_i * self.integral_m
            + self.config.gain_d * derr;
        (-u).clamp(-self.config.max_step_m, self.config.max_step_m)
    }

    /// Number of buffered measurements.
    pub fn window_fill(&self) -> usize {
        self.history.len()
    }

    /// Clears all controller state (e.g., after losing the user).
    pub fn reset(&mut self) {
        self.history.clear();
        self.filtered_m = None;
        self.integral_m = 0.0;
        self.last_error_m = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> DistanceController {
        DistanceController::new(ControllerConfig::default())
    }

    #[test]
    fn no_measurements_no_correction() {
        let mut c = ctl();
        assert_eq!(c.correction(), 0.0);
        assert!(c.smoothed_distance().is_none());
    }

    #[test]
    fn too_far_steps_closer() {
        let mut c = ctl();
        for _ in 0..5 {
            c.observe(2.0); // target 1.4 -> too far
        }
        let corr = c.correction();
        assert!(corr < 0.0, "corr {corr}");
    }

    #[test]
    fn too_close_steps_away() {
        let mut c = ctl();
        for _ in 0..5 {
            c.observe(0.9);
        }
        assert!(c.correction() > 0.0);
    }

    #[test]
    fn correction_clamped() {
        let mut c = ctl();
        for _ in 0..5 {
            c.observe(10.0);
        }
        assert!((c.correction() + c.config.max_step_m).abs() < 1e-12);
    }

    #[test]
    fn deadband_suppresses_jitter() {
        let mut c = ctl();
        for _ in 0..8 {
            c.observe(1.401); // 1 mm error < 3 mm deadband
        }
        assert_eq!(c.correction(), 0.0);
    }

    #[test]
    fn outliers_rejected_in_window() {
        let mut c = ctl();
        for _ in 0..7 {
            c.observe(1.40);
        }
        c.observe(5.0); // a single NLOS-style outlier
        let d = c.smoothed_distance().unwrap();
        assert!((d - 1.40).abs() < 0.01, "smoothed {d}");
    }

    #[test]
    fn window_is_bounded() {
        let mut c = ctl();
        for i in 0..100 {
            c.observe(1.0 + i as f64 * 0.001);
        }
        assert_eq!(c.window_fill(), c.config.window);
    }

    #[test]
    fn ignores_garbage_inputs() {
        let mut c = ctl();
        c.observe(f64::NAN);
        c.observe(f64::INFINITY);
        c.observe(-3.0);
        assert_eq!(c.window_fill(), 0);
    }

    #[test]
    fn filtered_input_bypasses_the_window() {
        // A tracker-filtered value must be used verbatim — not averaged
        // with (or MAD-gated against) stale raw window content, which
        // would double-smooth.
        let mut c = ctl();
        for _ in 0..5 {
            c.observe(3.0); // stale raw history
        }
        c.observe_filtered(1.45);
        assert_eq!(c.smoothed_distance(), Some(1.45));
        // Each tick's filtered value replaces the last.
        c.observe_filtered(1.50);
        assert_eq!(c.smoothed_distance(), Some(1.50));
        // Garbage filtered inputs are ignored, keeping the previous feed.
        c.observe_filtered(f64::NAN);
        c.observe_filtered(-2.0);
        assert_eq!(c.smoothed_distance(), Some(1.50));
    }

    #[test]
    fn raw_observe_switches_back_to_window_pipeline() {
        let mut c = ctl();
        c.observe_filtered(9.0);
        for _ in 0..5 {
            c.observe(1.40);
        }
        let d = c.smoothed_distance().unwrap();
        assert!(
            (d - 1.40).abs() < 1e-9,
            "window should win after raw feed, got {d}"
        );
    }

    #[test]
    fn reset_clears_filtered_feed() {
        let mut c = ctl();
        c.observe_filtered(2.0);
        c.reset();
        assert!(c.smoothed_distance().is_none());
    }

    #[test]
    fn reset_clears_history() {
        let mut c = ctl();
        c.observe(1.0);
        let _ = c.correction();
        c.reset();
        assert_eq!(c.window_fill(), 0);
        assert_eq!(c.correction(), 0.0);
    }

    #[test]
    fn integral_action_builds_against_persistent_error() {
        // A constant 5 cm error: the commanded step must grow tick over
        // tick as the integral accumulates (what zeroes ramp tracking).
        let mut c = ctl();
        for _ in 0..5 {
            c.observe(1.45);
        }
        let first = c.correction();
        for _ in 0..6 {
            c.observe(1.45);
            let _ = c.correction();
        }
        c.observe(1.45);
        let later = c.correction();
        assert!(
            later.abs() > first.abs(),
            "integral not building: {first} vs {later}"
        );
    }

    #[test]
    fn averaging_beats_single_sample() {
        // Noisy measurements around 1.4: smoothed error < typical sample
        // error — the §9 synergy in miniature. The window covers the last
        // `config.window` samples, so judge only those.
        let mut c = ctl();
        let noise = [0.05, -0.06, 0.03, -0.03, 0.02];
        for n in noise {
            c.observe(1.4 + n);
        }
        let d = c.smoothed_distance().unwrap();
        // Smoothed estimate lands closer to the truth than the worst
        // sample in the window (0.03 m here).
        let worst = noise[noise.len() - c.config.window..]
            .iter()
            .fold(0.0f64, |m, n| m.max(n.abs()));
        assert!((d - 1.4).abs() <= worst + 1e-9, "smoothed {d}");
    }
}
