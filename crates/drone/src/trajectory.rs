//! Walking-user trajectories in the motion-capture room (paper §12.4).
//!
//! "The user walks along a randomly chosen trajectory" inside a 6 m x 5 m
//! room. We generate seeded waypoint paths: the user picks a random point
//! in the room (with a wall margin), walks toward it at walking speed with
//! mild speed jitter, then picks another.

use chronos_rf::geometry::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random-waypoint walking trajectory.
#[derive(Debug, Clone)]
pub struct WalkTrajectory {
    rng: StdRng,
    /// Room width, meters.
    pub room_w: f64,
    /// Room height, meters.
    pub room_h: f64,
    /// Wall margin, meters.
    pub margin: f64,
    /// Nominal walking speed, m/s.
    pub speed: f64,
    position: Point,
    target: Point,
}

impl WalkTrajectory {
    /// Creates a trajectory in the paper's 6 m x 5 m room.
    pub fn new(seed: u64) -> Self {
        Self::in_room(seed, 6.0, 5.0)
    }

    /// Creates a trajectory in a custom room.
    pub fn in_room(seed: u64, room_w: f64, room_h: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let margin = 0.5;
        let position = Point::new(
            rng.gen_range(margin..room_w - margin),
            rng.gen_range(margin..room_h - margin),
        );
        let target = Point::new(
            rng.gen_range(margin..room_w - margin),
            rng.gen_range(margin..room_h - margin),
        );
        WalkTrajectory {
            rng,
            room_w,
            room_h,
            margin,
            speed: 0.7,
            position,
            target,
        }
    }

    /// Current position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Advances the walk by `dt` seconds and returns the new position.
    pub fn step(&mut self, dt: f64) -> Point {
        let mut remaining = self.speed * (1.0 + self.rng.gen_range(-0.2..0.2)) * dt.max(0.0);
        while remaining > 0.0 {
            let to_target = self.target.sub(self.position);
            let d = to_target.norm();
            if d <= remaining {
                self.position = self.target;
                remaining -= d;
                self.target = Point::new(
                    self.rng.gen_range(self.margin..self.room_w - self.margin),
                    self.rng.gen_range(self.margin..self.room_h - self.margin),
                );
            } else {
                self.position = self.position.add(to_target.scale(remaining / d));
                remaining = 0.0;
            }
        }
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_room() {
        let mut w = WalkTrajectory::new(7);
        for _ in 0..5000 {
            let p = w.step(0.084);
            assert!(p.x >= w.margin - 1e-9 && p.x <= w.room_w - w.margin + 1e-9);
            assert!(p.y >= w.margin - 1e-9 && p.y <= w.room_h - w.margin + 1e-9);
        }
    }

    #[test]
    fn moves_at_walking_speed() {
        let mut w = WalkTrajectory::new(8);
        let mut total = 0.0;
        let mut prev = w.position();
        let dt = 0.084;
        let steps = 2000;
        for _ in 0..steps {
            let p = w.step(dt);
            total += prev.dist(p);
            prev = p;
        }
        let avg_speed = total / (steps as f64 * dt);
        assert!((avg_speed - 0.7).abs() < 0.15, "avg speed {avg_speed}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = WalkTrajectory::new(42);
        let mut b = WalkTrajectory::new(42);
        for _ in 0..100 {
            assert_eq!(a.step(0.1), b.step(0.1));
        }
        let mut c = WalkTrajectory::new(43);
        let mut differs = false;
        let mut a2 = WalkTrajectory::new(42);
        for _ in 0..100 {
            if a2.step(0.1).dist(c.step(0.1)) > 1e-9 {
                differs = true;
            }
        }
        assert!(differs);
    }

    #[test]
    fn zero_dt_stays() {
        let mut w = WalkTrajectory::new(1);
        let p0 = w.position();
        assert_eq!(w.step(0.0), p0);
    }
}
