//! Planar quadrotor kinematics.
//!
//! Fig. 10 evaluates the *controller + estimator* loop, not aerodynamics,
//! so the vehicle model is a velocity-limited kinematic point with
//! actuation noise: commanded displacement per control tick, executed with
//! a small multiplicative error and bounded by the platform's speed. This
//! matches the fidelity at which the paper treats the AscTec Hummingbird
//! (its §9 controller issues "discrete steps").

use chronos_rf::geometry::Point;
use rand::Rng;

/// A kinematic quadrotor.
#[derive(Debug, Clone)]
pub struct Quadrotor {
    /// Current position, meters (world frame).
    pub position: Point,
    /// Maximum speed, m/s.
    pub max_speed: f64,
    /// Multiplicative actuation noise (1-sigma fraction of each step).
    pub actuation_noise: f64,
}

impl Quadrotor {
    /// A hovering quadrotor at `position` with Hummingbird-like limits.
    pub fn new(position: Point) -> Self {
        Quadrotor {
            position,
            max_speed: 2.0,
            actuation_noise: 0.03,
        }
    }

    /// Executes a commanded displacement over `dt` seconds: the step is
    /// clipped to `max_speed * dt` and perturbed by actuation noise.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, command: Point, dt: f64) {
        let max_step = self.max_speed * dt.max(0.0);
        let norm = command.norm();
        let clipped = if norm > max_step && norm > 0.0 {
            command.scale(max_step / norm)
        } else {
            command
        };
        let executed = if self.actuation_noise > 0.0 {
            let g = |rng: &mut R| {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen::<f64>();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            let n1 = 1.0 + self.actuation_noise * g(rng);
            let n2 = self.actuation_noise * g(rng) * clipped.norm();
            // Along-track multiplicative + small cross-track additive.
            let along = clipped.scale(n1);
            let cross = Point::new(-clipped.y, clipped.x).normalized().scale(n2);
            along.add(cross)
        } else {
            clipped
        };
        self.position = self.position.add(executed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_step_moves_exactly() {
        let mut q = Quadrotor::new(Point::new(0.0, 0.0));
        q.actuation_noise = 0.0;
        let mut rng = StdRng::seed_from_u64(1);
        q.step(&mut rng, Point::new(0.1, -0.05), 1.0);
        assert!((q.position.x - 0.1).abs() < 1e-12);
        assert!((q.position.y + 0.05).abs() < 1e-12);
    }

    #[test]
    fn speed_limit_clips_steps() {
        let mut q = Quadrotor::new(Point::new(0.0, 0.0));
        q.actuation_noise = 0.0;
        q.max_speed = 1.0;
        let mut rng = StdRng::seed_from_u64(2);
        // Commanded 10 m in 0.1 s: limited to 0.1 m.
        q.step(&mut rng, Point::new(10.0, 0.0), 0.1);
        assert!((q.position.x - 0.1).abs() < 1e-12);
    }

    #[test]
    fn actuation_noise_statistics() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut errs = Vec::new();
        for _ in 0..500 {
            let mut q = Quadrotor::new(Point::new(0.0, 0.0));
            q.actuation_noise = 0.05;
            q.step(&mut rng, Point::new(0.2, 0.0), 1.0);
            errs.push(q.position.dist(Point::new(0.2, 0.0)));
        }
        let mean_err = chronos_math::stats::mean(&errs);
        // ~5% of a 0.2 m step, two components.
        assert!(mean_err > 0.002 && mean_err < 0.03, "mean err {mean_err}");
    }

    #[test]
    fn zero_command_stays_put_modulo_noise() {
        let mut q = Quadrotor::new(Point::new(1.0, 1.0));
        let mut rng = StdRng::seed_from_u64(4);
        q.step(&mut rng, Point::new(0.0, 0.0), 0.1);
        assert!(q.position.dist(Point::new(1.0, 1.0)) < 1e-9);
    }

    #[test]
    fn negative_dt_is_noop() {
        let mut q = Quadrotor::new(Point::new(0.0, 0.0));
        q.actuation_noise = 0.0;
        let mut rng = StdRng::seed_from_u64(5);
        q.step(&mut rng, Point::new(1.0, 0.0), -1.0);
        assert!(q.position.norm() < 1e-12);
    }
}
