//! The closed follow loop (paper §12.4): Chronos sweep -> distance ->
//! control step, with exact ground truth standing in for VICON.
//!
//! Every control tick (one band sweep, ~84 ms): the user walks, the drone
//! runs a Chronos sweep against the user's device, feeds the resulting
//! distance into the [`DistanceController`], and steps radially along the
//! drone-user axis. Heading toward the user comes from the device
//! compasses in the paper; here the true bearing plays that role (the
//! paper's drones also know bearing independently of Chronos — Chronos
//! supplies the *distance*).

use crate::controller::{ControllerConfig, DistanceController};
use crate::dynamics::Quadrotor;
use crate::trajectory::WalkTrajectory;
use chronos_core::config::ChronosConfig;
use chronos_core::service::{RangingService, ServiceConfig};
use chronos_core::session::ChronosSession;
use chronos_core::tracker::{ClientTracker, PositionTracker, TrackerConfig};
use chronos_link::time::Instant;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::environment::Environment;
use chronos_rf::geometry::Point;
use chronos_rf::hardware::{AntennaArray, Intel5300};
use rand::Rng;

/// What distance estimate feeds the drone's control loop each tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FollowSource {
    /// The paper's §9 pipeline: raw sweep distances through the
    /// controller's sliding window + MAD outlier rejection.
    #[default]
    RawDistance,
    /// Raw distances fused by a [`ClientTracker`] Kalman filter; the
    /// controller consumes the filtered output directly
    /// ([`DistanceController::observe_filtered`]) so the window does not
    /// double-smooth.
    TrackedDistance,
    /// Full 2-D position fixes from the drone's 3-antenna array
    /// (mirror-resolved and fused by a [`PositionTracker`]); the
    /// controller holds the *range to the fix*. Opens §8's localization
    /// as the control observable (§12.4's endgame).
    Position,
    /// Distances come from the **continuous event-driven engine**
    /// ([`RangingService::run_until`]): the drone-side radio ranges the
    /// user at the engine's own tracker-derived cadence — a full
    /// ACQUIRE sweep to converge, then TRACK-mode subset sweeps that
    /// deliver 2–3 fixes per 84 ms control tick instead of one — and
    /// each tick the controller consumes the tracker's latest fused
    /// distance.
    Continuous,
}

/// Follow-simulation settings.
#[derive(Debug, Clone)]
pub struct FollowConfig {
    /// Controller tuning.
    pub controller: ControllerConfig,
    /// Control/sweep period, seconds (84 ms per the paper).
    pub tick_s: f64,
    /// Number of control ticks to simulate.
    pub ticks: usize,
    /// Estimator configuration (defaults tuned for the close-range room).
    pub chronos: ChronosConfig,
    /// Number of calibration sweeps before the run.
    pub calibration_sweeps: usize,
    /// What estimate drives the controller (see [`FollowSource`]).
    pub source: FollowSource,
    /// Tracker tuning for the non-raw sources.
    pub tracker: TrackerConfig,
}

impl Default for FollowConfig {
    fn default() -> Self {
        // Close-range room: a shorter grid keeps per-tick cost low without
        // touching accuracy (paths < 40 ns round the room).
        let chronos = ChronosConfig {
            grid_span_ns: 100.0,
            ..ChronosConfig::default()
        };
        FollowConfig {
            controller: ControllerConfig::default(),
            tick_s: 0.084,
            ticks: 240,
            chronos,
            calibration_sweeps: 2,
            source: FollowSource::RawDistance,
            // Close range, ~10 Hz fixes: trust the fixes, allow maneuvers.
            tracker: TrackerConfig {
                process_noise_mps2: 3.0,
                measurement_noise_m: 0.1,
                ..TrackerConfig::default()
            },
        }
    }
}

impl FollowConfig {
    /// The default configuration with the given control source.
    pub fn with_source(source: FollowSource) -> Self {
        FollowConfig {
            source,
            ..Default::default()
        }
    }
}

/// One tick of recorded ground truth and estimates.
#[derive(Debug, Clone, Copy)]
pub struct FollowRecord {
    /// Simulation time of the tick, seconds.
    pub t_s: f64,
    /// True user position (the "VICON" record).
    pub user: Point,
    /// True drone position.
    pub drone: Point,
    /// True drone-user distance, meters.
    pub true_distance_m: f64,
    /// Chronos raw distance for this tick, if the sweep succeeded.
    pub measured_distance_m: Option<f64>,
    /// The controller's smoothed distance after this tick.
    pub smoothed_distance_m: Option<f64>,
    /// Tracker-fused distance fed to the controller this tick (non-raw
    /// sources only).
    pub tracked_distance_m: Option<f64>,
    /// Mirror-resolved 2-D position fix of the user in the drone's frame
    /// ([`FollowSource::Position`] only).
    pub position_fix: Option<Point>,
    /// Completed ranging sweeps during this control tick: one for the
    /// tick-locked sources, 2–3 in steady state for
    /// [`FollowSource::Continuous`] (subset sweeps outpace the tick).
    pub sweeps_in_tick: usize,
}

/// The closed-loop simulation.
#[derive(Debug)]
pub struct FollowSim {
    cfg: FollowConfig,
    session: ChronosSession,
    drone: Quadrotor,
    user: WalkTrajectory,
    controller: DistanceController,
    dist_tracker: Option<ClientTracker>,
    pos_tracker: Option<PositionTracker>,
    /// One-client continuous ranging service
    /// ([`FollowSource::Continuous`] only; built in `run()` after
    /// calibration so the engine adopts the calibrated session).
    service: Option<RangingService>,
    /// Seed for the engine's per-sweep RNG streams.
    seed: u64,
}

impl FollowSim {
    /// Builds the §12.4 scenario: a 6 m x 5 m room, an Intel 5300 netbook
    /// on the user, a 3-antenna Intel 5300 on the drone.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, cfg: FollowConfig, seed: u64) -> Self {
        let user = WalkTrajectory::new(seed);
        let user_pos = user.position();
        // Drone starts roughly at target distance from the user.
        let drone_pos = Point::new(
            (user_pos.x + cfg.controller.target_m).min(5.5),
            user_pos.y.clamp(0.5, 4.5),
        );
        let mut ctx = MeasurementContext::new(
            Environment::free_space(), // mocap rooms are kept clear
            Intel5300::mobile(rng),
            user_pos,
            Intel5300::device(rng, AntennaArray::laptop()),
            drone_pos,
        );
        ctx.snr.snr_at_1m_db = 42.0;
        let mut session = ChronosSession::new(ctx, cfg.chronos.clone());
        session.sweep_cfg.medium.loss_prob = 0.005;
        let controller = DistanceController::new(cfg.controller);
        let dist_tracker =
            (cfg.source == FollowSource::TrackedDistance).then(|| ClientTracker::new(cfg.tracker));
        let pos_tracker =
            (cfg.source == FollowSource::Position).then(|| PositionTracker::new(cfg.tracker));
        FollowSim {
            cfg,
            session,
            drone: Quadrotor::new(drone_pos),
            user,
            controller,
            dist_tracker,
            pos_tracker,
            service: None,
            seed,
        }
    }

    /// Runs calibration then the full follow loop, returning the per-tick
    /// records.
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<FollowRecord> {
        // One-time constant calibration at the known starting geometry
        // (paper §7 obs. 2).
        if self.cfg.calibration_sweeps > 0 {
            self.session.ctx.initiator_pos = self.user.position();
            self.session.ctx.responder_pos = self.drone.position;
            self.session.calibrate(rng, self.cfg.calibration_sweeps);
        }
        if self.cfg.source == FollowSource::Continuous {
            // The continuous engine adopts the calibrated session; the
            // drone-side radio then sweeps at the engine's own cadence
            // rather than once per control tick.
            let mut svc = RangingService::new(ServiceConfig::adaptive(self.cfg.tracker));
            svc.add_session(self.session.clone());
            self.service = Some(svc);
        }

        let mut records = Vec::with_capacity(self.cfg.ticks);
        for tick in 0..self.cfg.ticks {
            let t_s = tick as f64 * self.cfg.tick_s;
            // User walks during the tick.
            let user_pos = self.user.step(self.cfg.tick_s);

            let measured;
            let sweeps_in_tick;
            let mut tracked = None;
            let mut position_fix = None;
            if self.cfg.source == FollowSource::Continuous {
                // Geometry update, then run the engine through the tick:
                // it admits as many sweeps as the airtime allows (one
                // ACQUIRE, or 2–3 TRACK subsets) and fuses every fix.
                let svc = self.service.as_mut().expect("continuous service");
                {
                    let s = svc.client_mut(0);
                    s.ctx.initiator_pos = user_pos;
                    s.ctx.responder_pos = self.drone.position;
                }
                let w = svc.run_until(
                    self.seed ^ 0xD05E_F011,
                    Instant::from_secs_f64(t_s + self.cfg.tick_s),
                );
                sweeps_in_tick = w.completed();
                measured = w.outcomes.iter().rev().find_map(|o| o.distance_m);
                tracked = svc.tracker(0).and_then(|t| t.filter().predicted_distance());
            } else {
                // Geometry update, then one tick-locked Chronos sweep.
                self.session.ctx.initiator_pos = user_pos;
                self.session.ctx.responder_pos = self.drone.position;
                let out = self.session.sweep(rng, Instant::from_secs_f64(t_s));
                measured = out.mean_distance_m();
                sweeps_in_tick = usize::from(measured.is_some());
                match self.cfg.source {
                    FollowSource::RawDistance => {
                        if let Some(d) = measured {
                            self.controller.observe(d);
                        }
                    }
                    FollowSource::TrackedDistance => {
                        let tracker = self.dist_tracker.as_mut().expect("tracked source");
                        let upd = tracker.observe(
                            Instant::from_secs_f64(t_s),
                            measured,
                            out.link.complete,
                        );
                        tracked = upd.fused_m;
                    }
                    FollowSource::Position => {
                        // The user's position in the drone's frame:
                        // per-antenna ToF circles intersected, mirror
                        // resolved against the tracker's motion prior.
                        // The controller holds the range to the fused fix.
                        let tracker = self.pos_tracker.as_mut().expect("position source");
                        let resolved = tracker.resolve(&out.position_candidates);
                        position_fix = resolved.map(|p| p.point);
                        let upd = tracker.observe(
                            Instant::from_secs_f64(t_s),
                            position_fix,
                            out.link.complete,
                        );
                        tracked = upd.fused.map(Point::norm);
                    }
                    FollowSource::Continuous => unreachable!("handled above"),
                }
            }
            match (self.cfg.source, tracked) {
                (FollowSource::RawDistance, _) => {}
                // Tracker output is already filtered: bypass the §9
                // window so the loop does not smooth twice.
                (_, Some(d)) => self.controller.observe_filtered(d),
                // Tracker not seeded yet (no usable fix so far): fall
                // back to the raw pipeline rather than flying blind.
                (_, None) => {
                    if let Some(d) = measured {
                        self.controller.observe(d);
                    }
                }
            }

            // Control step along the true bearing (compass stand-in).
            let correction = self.controller.correction();
            let bearing = self.drone.position.sub(user_pos).normalized();
            let command = bearing.scale(correction);
            self.drone.step(rng, command, self.cfg.tick_s);

            records.push(FollowRecord {
                t_s,
                user: user_pos,
                drone: self.drone.position,
                true_distance_m: self.drone.position.dist(user_pos),
                measured_distance_m: measured,
                smoothed_distance_m: self.controller.smoothed_distance(),
                tracked_distance_m: tracked,
                position_fix,
                sweeps_in_tick,
            });
        }
        records
    }

    /// Deviation-from-target samples (|true distance − target|), meters,
    /// skipping the first `warmup` ticks — the Fig. 10(a) observable.
    pub fn deviations(records: &[FollowRecord], target_m: f64, warmup: usize) -> Vec<f64> {
        records
            .iter()
            .skip(warmup)
            .map(|r| (r.true_distance_m - target_m).abs())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg(ticks: usize) -> FollowConfig {
        let mut cfg = FollowConfig {
            ticks,
            ..Default::default()
        };
        // Keep unit tests fast.
        cfg.chronos.max_iters = 150;
        cfg.chronos.grid_step_ns = 0.5;
        cfg
    }

    #[test]
    fn follow_loop_runs_and_records() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut sim = FollowSim::new(&mut rng, quick_cfg(20), 1);
        let records = sim.run(&mut rng);
        assert_eq!(records.len(), 20);
        assert!(records.iter().all(|r| r.true_distance_m > 0.0));
        // Most ticks produced a measurement.
        let measured = records
            .iter()
            .filter(|r| r.measured_distance_m.is_some())
            .count();
        assert!(measured >= 15, "only {measured} measured ticks");
    }

    #[test]
    fn drone_converges_toward_target_distance() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sim = FollowSim::new(&mut rng, quick_cfg(80), 2);
        let records = sim.run(&mut rng);
        let early: Vec<f64> = FollowSim::deviations(&records[..20], 1.4, 0);
        let late: Vec<f64> = FollowSim::deviations(&records, 1.4, 50);
        let early_med = chronos_math::stats::median(&early);
        let late_med = chronos_math::stats::median(&late);
        assert!(
            late_med < early_med.max(0.12) + 0.05,
            "no convergence: early {early_med}, late {late_med}"
        );
        // Steady state holds within tens of centimeters at worst.
        assert!(late_med < 0.30, "late deviation {late_med}");
    }

    #[test]
    fn tracked_source_feeds_filtered_distance_and_converges() {
        let mut cfg = quick_cfg(80);
        cfg.source = FollowSource::TrackedDistance;
        let mut rng = StdRng::seed_from_u64(21);
        let mut sim = FollowSim::new(&mut rng, cfg, 2);
        let records = sim.run(&mut rng);
        // Once the tracker seeds, the controller consumes its output
        // verbatim — no second pass through the averaging window.
        let fed: Vec<&FollowRecord> = records
            .iter()
            .filter(|r| r.tracked_distance_m.is_some())
            .collect();
        assert!(fed.len() > 60, "tracker fed only {} ticks", fed.len());
        for r in &fed {
            assert_eq!(r.smoothed_distance_m, r.tracked_distance_m);
        }
        let late = FollowSim::deviations(&records, 1.4, 50);
        let late_med = chronos_math::stats::median(&late);
        assert!(late_med < 0.30, "late deviation {late_med}");
    }

    #[test]
    fn position_source_holds_target_from_2d_fixes() {
        let mut cfg = quick_cfg(80);
        cfg.source = FollowSource::Position;
        let mut rng = StdRng::seed_from_u64(22);
        let mut sim = FollowSim::new(&mut rng, cfg, 3);
        let records = sim.run(&mut rng);
        let fixes = records.iter().filter(|r| r.position_fix.is_some()).count();
        assert!(fixes > 40, "only {fixes} position fixes");
        // The fused fix's range must agree with true distance once
        // converged (position error folds antenna geometry in, so the
        // tolerance is looser than scalar ranging).
        let late = FollowSim::deviations(&records, 1.4, 50);
        let late_med = chronos_math::stats::median(&late);
        assert!(late_med < 0.40, "late deviation {late_med}");
    }

    #[test]
    fn continuous_source_outpaces_the_tick_and_converges() {
        let mut cfg = quick_cfg(60);
        cfg.source = FollowSource::Continuous;
        let mut rng = StdRng::seed_from_u64(23);
        let mut sim = FollowSim::new(&mut rng, cfg, 4);
        let records = sim.run(&mut rng);
        // Once the engine's tracker promotes to TRACK, subset sweeps
        // outpace the 84 ms control tick: several fixes per tick.
        let busy_ticks = records.iter().filter(|r| r.sweeps_in_tick >= 2).count();
        assert!(busy_ticks >= 20, "only {busy_ticks} multi-sweep ticks");
        let fed = records
            .iter()
            .filter(|r| r.tracked_distance_m.is_some())
            .count();
        assert!(fed > 40, "engine tracker fed only {fed} ticks");
        let late = FollowSim::deviations(&records, 1.4, 40);
        let late_med = chronos_math::stats::median(&late);
        assert!(late_med < 0.35, "late deviation {late_med}");
    }

    #[test]
    fn records_have_consistent_truth() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut sim = FollowSim::new(&mut rng, quick_cfg(10), 3);
        let records = sim.run(&mut rng);
        for r in &records {
            assert!((r.drone.dist(r.user) - r.true_distance_m).abs() < 1e-12);
        }
    }

    #[test]
    fn deviations_helper_skips_warmup() {
        let records = vec![
            FollowRecord {
                t_s: 0.0,
                user: Point::new(0.0, 0.0),
                drone: Point::new(3.0, 0.0),
                true_distance_m: 3.0,
                measured_distance_m: None,
                smoothed_distance_m: None,
                tracked_distance_m: None,
                position_fix: None,
                sweeps_in_tick: 0,
            },
            FollowRecord {
                t_s: 0.1,
                user: Point::new(0.0, 0.0),
                drone: Point::new(1.5, 0.0),
                true_distance_m: 1.5,
                measured_distance_m: None,
                smoothed_distance_m: None,
                tracked_distance_m: None,
                position_fix: None,
                sweeps_in_tick: 0,
            },
        ];
        let d = FollowSim::deviations(&records, 1.4, 1);
        assert_eq!(d.len(), 1);
        assert!((d[0] - 0.1).abs() < 1e-12);
    }
}
