//! The closed follow loop (paper §12.4): Chronos sweep -> distance ->
//! control step, with exact ground truth standing in for VICON.
//!
//! Every control tick (one band sweep, ~84 ms): the user walks, the drone
//! runs a Chronos sweep against the user's device, feeds the resulting
//! distance into the [`DistanceController`], and steps radially along the
//! drone-user axis. Heading toward the user comes from the device
//! compasses in the paper; here the true bearing plays that role (the
//! paper's drones also know bearing independently of Chronos — Chronos
//! supplies the *distance*).

use crate::controller::{ControllerConfig, DistanceController};
use crate::dynamics::Quadrotor;
use crate::trajectory::WalkTrajectory;
use chronos_core::config::ChronosConfig;
use chronos_core::session::ChronosSession;
use chronos_link::time::Instant;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::environment::Environment;
use chronos_rf::geometry::Point;
use chronos_rf::hardware::{AntennaArray, Intel5300};
use rand::Rng;

/// Follow-simulation settings.
#[derive(Debug, Clone)]
pub struct FollowConfig {
    /// Controller tuning.
    pub controller: ControllerConfig,
    /// Control/sweep period, seconds (84 ms per the paper).
    pub tick_s: f64,
    /// Number of control ticks to simulate.
    pub ticks: usize,
    /// Estimator configuration (defaults tuned for the close-range room).
    pub chronos: ChronosConfig,
    /// Number of calibration sweeps before the run.
    pub calibration_sweeps: usize,
}

impl Default for FollowConfig {
    fn default() -> Self {
        let mut chronos = ChronosConfig::default();
        // Close-range room: a shorter grid keeps per-tick cost low without
        // touching accuracy (paths < 40 ns round the room).
        chronos.grid_span_ns = 100.0;
        FollowConfig {
            controller: ControllerConfig::default(),
            tick_s: 0.084,
            ticks: 240,
            chronos,
            calibration_sweeps: 2,
        }
    }
}

/// One tick of recorded ground truth and estimates.
#[derive(Debug, Clone, Copy)]
pub struct FollowRecord {
    /// Simulation time of the tick, seconds.
    pub t_s: f64,
    /// True user position (the "VICON" record).
    pub user: Point,
    /// True drone position.
    pub drone: Point,
    /// True drone-user distance, meters.
    pub true_distance_m: f64,
    /// Chronos raw distance for this tick, if the sweep succeeded.
    pub measured_distance_m: Option<f64>,
    /// The controller's smoothed distance after this tick.
    pub smoothed_distance_m: Option<f64>,
}

/// The closed-loop simulation.
#[derive(Debug)]
pub struct FollowSim {
    cfg: FollowConfig,
    session: ChronosSession,
    drone: Quadrotor,
    user: WalkTrajectory,
    controller: DistanceController,
}

impl FollowSim {
    /// Builds the §12.4 scenario: a 6 m x 5 m room, an Intel 5300 netbook
    /// on the user, a 3-antenna Intel 5300 on the drone.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, cfg: FollowConfig, seed: u64) -> Self {
        let user = WalkTrajectory::new(seed);
        let user_pos = user.position();
        // Drone starts roughly at target distance from the user.
        let drone_pos = Point::new(
            (user_pos.x + cfg.controller.target_m).min(5.5),
            user_pos.y.clamp(0.5, 4.5),
        );
        let mut ctx = MeasurementContext::new(
            Environment::free_space(), // mocap rooms are kept clear
            Intel5300::mobile(rng),
            user_pos,
            Intel5300::device(rng, AntennaArray::laptop()),
            drone_pos,
        );
        ctx.snr.snr_at_1m_db = 42.0;
        let mut session = ChronosSession::new(ctx, cfg.chronos.clone());
        session.sweep_cfg.medium.loss_prob = 0.005;
        let controller = DistanceController::new(cfg.controller);
        FollowSim {
            cfg,
            session,
            drone: Quadrotor::new(drone_pos),
            user,
            controller,
        }
    }

    /// Runs calibration then the full follow loop, returning the per-tick
    /// records.
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<FollowRecord> {
        // One-time constant calibration at the known starting geometry
        // (paper §7 obs. 2).
        if self.cfg.calibration_sweeps > 0 {
            self.session.ctx.initiator_pos = self.user.position();
            self.session.ctx.responder_pos = self.drone.position;
            self.session.calibrate(rng, self.cfg.calibration_sweeps);
        }

        let mut records = Vec::with_capacity(self.cfg.ticks);
        for tick in 0..self.cfg.ticks {
            let t_s = tick as f64 * self.cfg.tick_s;
            // User walks during the tick.
            let user_pos = self.user.step(self.cfg.tick_s);

            // Geometry update, then one Chronos sweep.
            self.session.ctx.initiator_pos = user_pos;
            self.session.ctx.responder_pos = self.drone.position;
            let out = self.session.sweep(rng, Instant::from_secs_f64(t_s));
            let measured = out.mean_distance_m();
            if let Some(d) = measured {
                self.controller.observe(d);
            }

            // Control step along the true bearing (compass stand-in).
            let correction = self.controller.correction();
            let bearing = self.drone.position.sub(user_pos).normalized();
            let command = bearing.scale(correction);
            self.drone.step(rng, command, self.cfg.tick_s);

            records.push(FollowRecord {
                t_s,
                user: user_pos,
                drone: self.drone.position,
                true_distance_m: self.drone.position.dist(user_pos),
                measured_distance_m: measured,
                smoothed_distance_m: self.controller.smoothed_distance(),
            });
        }
        records
    }

    /// Deviation-from-target samples (|true distance − target|), meters,
    /// skipping the first `warmup` ticks — the Fig. 10(a) observable.
    pub fn deviations(records: &[FollowRecord], target_m: f64, warmup: usize) -> Vec<f64> {
        records
            .iter()
            .skip(warmup)
            .map(|r| (r.true_distance_m - target_m).abs())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg(ticks: usize) -> FollowConfig {
        let mut cfg = FollowConfig::default();
        cfg.ticks = ticks;
        // Keep unit tests fast.
        cfg.chronos.max_iters = 150;
        cfg.chronos.grid_step_ns = 0.5;
        cfg
    }

    #[test]
    fn follow_loop_runs_and_records() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut sim = FollowSim::new(&mut rng, quick_cfg(20), 1);
        let records = sim.run(&mut rng);
        assert_eq!(records.len(), 20);
        assert!(records.iter().all(|r| r.true_distance_m > 0.0));
        // Most ticks produced a measurement.
        let measured = records.iter().filter(|r| r.measured_distance_m.is_some()).count();
        assert!(measured >= 15, "only {measured} measured ticks");
    }

    #[test]
    fn drone_converges_toward_target_distance() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sim = FollowSim::new(&mut rng, quick_cfg(80), 2);
        let records = sim.run(&mut rng);
        let early: Vec<f64> = FollowSim::deviations(&records[..20], 1.4, 0);
        let late: Vec<f64> = FollowSim::deviations(&records, 1.4, 50);
        let early_med = chronos_math::stats::median(&early);
        let late_med = chronos_math::stats::median(&late);
        assert!(
            late_med < early_med.max(0.12) + 0.05,
            "no convergence: early {early_med}, late {late_med}"
        );
        // Steady state holds within tens of centimeters at worst.
        assert!(late_med < 0.30, "late deviation {late_med}");
    }

    #[test]
    fn records_have_consistent_truth() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut sim = FollowSim::new(&mut rng, quick_cfg(10), 3);
        let records = sim.run(&mut rng);
        for r in &records {
            assert!((r.drone.dist(r.user) - r.true_distance_m).abs() < 1e-12);
        }
    }

    #[test]
    fn deviations_helper_skips_warmup() {
        let records = vec![
            FollowRecord {
                t_s: 0.0,
                user: Point::new(0.0, 0.0),
                drone: Point::new(3.0, 0.0),
                true_distance_m: 3.0,
                measured_distance_m: None,
                smoothed_distance_m: None,
            },
            FollowRecord {
                t_s: 0.1,
                user: Point::new(0.0, 0.0),
                drone: Point::new(1.5, 0.0),
                true_distance_m: 1.5,
                measured_distance_m: None,
                smoothed_distance_m: None,
            },
        ];
        let d = FollowSim::deviations(&records, 1.4, 1);
        assert_eq!(d.len(), 1);
        assert!((d[0] - 0.1).abs() < 1e-12);
    }
}
