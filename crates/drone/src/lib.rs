//! # chronos-drone
//!
//! The paper's flagship application (§9, §12.4): a personal drone that
//! follows its user at a fixed distance using only Chronos ranging between
//! two commodity Wi-Fi cards — no infrastructure, no motion capture in the
//! loop.
//!
//! * [`dynamics`] — planar quadrotor kinematics with actuation noise and
//!   speed limits (the AscTec Hummingbird stand-in; see DESIGN.md §1 for
//!   the substitution argument).
//! * [`trajectory`] — waypoint walking-user model inside the 6 m x 5 m
//!   motion-capture room of §12.4.
//! * [`controller`] — the negative-feedback distance controller with the
//!   measurement averaging and outlier rejection of §9.
//! * [`follow`] — the closed loop: Chronos sweep -> distance -> control
//!   step, with an exact ground-truth recorder standing in for VICON.

pub mod controller;
pub mod dynamics;
pub mod follow;
pub mod trajectory;

pub use controller::{ControllerConfig, DistanceController};
pub use dynamics::Quadrotor;
pub use follow::{FollowConfig, FollowRecord, FollowSim};
pub use trajectory::WalkTrajectory;
