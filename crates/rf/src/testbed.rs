//! The evaluation testbed: a 20 m x 20 m office floor (paper Fig. 6).
//!
//! The paper's experiments run on one floor of a large office building with
//! "multiple offices, a lounge area, conference rooms, metal cabinets,
//! computers and furniture", with devices placed at 30 candidate locations
//! up to 15 m apart. This module generates a procedural equivalent:
//! concrete outer walls, drywall partitions forming offices and a corridor,
//! metal cabinets as strong reflectors, and 30 seeded candidate positions.

use crate::environment::{Environment, Material};
use crate::geometry::{Point, Segment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generated testbed.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// The environment (walls and reflectors).
    pub environment: Environment,
    /// The 30 candidate device locations (the blue dots of Fig. 6).
    pub locations: Vec<Point>,
    /// Floor extent, meters.
    pub size: f64,
}

impl Testbed {
    /// Generates the standard 20 m x 20 m office testbed from a seed.
    ///
    /// The same seed always yields the same floorplan and candidate
    /// locations, so experiments are reproducible.
    pub fn office(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let size = 20.0;
        let mut env = Environment::free_space();

        // Concrete outer shell.
        env.add_room(0.0, 0.0, size, size, Material::Concrete);

        // A corridor along y = 8..12: offices above and below.
        // Lower office partitions (drywall), doors left open (gaps).
        for i in 0..3 {
            let x = 5.0 + 5.0 * i as f64;
            env.add_wall(
                Segment::new(Point::new(x, 0.0), Point::new(x, 6.5)),
                Material::Drywall,
            );
        }
        // Corridor walls with door gaps.
        env.add_wall(
            Segment::new(Point::new(0.0, 8.0), Point::new(8.0, 8.0)),
            Material::Drywall,
        );
        env.add_wall(
            Segment::new(Point::new(10.0, 8.0), Point::new(20.0, 8.0)),
            Material::Drywall,
        );
        env.add_wall(
            Segment::new(Point::new(0.0, 12.0), Point::new(6.0, 12.0)),
            Material::Drywall,
        );
        env.add_wall(
            Segment::new(Point::new(8.0, 12.0), Point::new(16.0, 12.0)),
            Material::Drywall,
        );
        // Conference room glass front (upper-right).
        env.add_wall(
            Segment::new(Point::new(13.0, 12.0), Point::new(13.0, 20.0)),
            Material::Glass,
        );
        // Lounge partition (upper-left).
        env.add_wall(
            Segment::new(Point::new(6.0, 14.5), Point::new(6.0, 20.0)),
            Material::Drywall,
        );

        // Metal cabinets: short strong reflectors scattered around.
        let cabinet_spots = [
            (2.0, 7.2, 3.4, 7.2),
            (11.5, 0.8, 12.7, 0.8),
            (19.2, 9.5, 19.2, 10.7),
            (7.5, 18.8, 8.7, 18.8),
            (15.0, 15.5, 15.0, 16.7),
        ];
        for (x0, y0, x1, y1) in cabinet_spots {
            env.add_wall(
                Segment::new(Point::new(x0, y0), Point::new(x1, y1)),
                Material::Metal,
            );
        }

        // 30 candidate locations, margin 1 m from outer walls, not inside
        // a cabinet (cabinets are segments so any point is fine), spread out
        // by rejection sampling on minimum pairwise distance.
        let mut locations: Vec<Point> = Vec::with_capacity(30);
        let mut guard = 0;
        while locations.len() < 30 && guard < 100_000 {
            guard += 1;
            let p = Point::new(
                rng.gen_range(1.0..size - 1.0),
                rng.gen_range(1.0..size - 1.0),
            );
            if locations.iter().all(|q| q.dist(p) > 2.2) {
                locations.push(p);
            }
        }
        assert_eq!(
            locations.len(),
            30,
            "failed to place 30 candidate locations"
        );

        Testbed {
            environment: env,
            locations,
            size,
        }
    }

    /// All location pairs with ground distance at most `max_dist` meters
    /// (the paper evaluates "pairwise distance up to 15 m"), classified by
    /// line-of-sight.
    pub fn pairs_within(&self, max_dist: f64) -> Vec<TestbedPair> {
        let mut pairs = Vec::new();
        for i in 0..self.locations.len() {
            for j in (i + 1)..self.locations.len() {
                let a = self.locations[i];
                let b = self.locations[j];
                let d = a.dist(b);
                if d <= max_dist {
                    pairs.push(TestbedPair {
                        a,
                        b,
                        distance_m: d,
                        los: self.environment.is_los(a, b),
                    });
                }
            }
        }
        pairs
    }
}

/// Lays out `n` access points on the smallest square grid that holds
/// them, `spacing` meters apart, starting at the origin — the canonical
/// fleet deployment geometry (e.g. `ap_grid(16, 20.0)` is a 4×4 fleet
/// of 20 m cells, sixteen office floors side by side).
///
/// Grid traversal is row-major, so AP index → position is stable as `n`
/// grows: the first `k` APs of a larger fleet sit exactly where a
/// `k`-AP fleet put them.
///
/// ```
/// use chronos_rf::testbed::ap_grid;
///
/// let aps = ap_grid(16, 20.0);
/// assert_eq!(aps.len(), 16);
/// assert_eq!((aps[0].x, aps[0].y), (0.0, 0.0));
/// assert_eq!((aps[5].x, aps[5].y), (20.0, 20.0)); // row 1, col 1
/// ```
pub fn ap_grid(n: usize, spacing: f64) -> Vec<Point> {
    let side = (n as f64).sqrt().ceil() as usize;
    (0..n)
        .map(|i| Point::new((i % side) as f64 * spacing, (i / side) as f64 * spacing))
        .collect()
}

/// One candidate device placement pair.
#[derive(Debug, Clone, Copy)]
pub struct TestbedPair {
    /// First device position.
    pub a: Point,
    /// Second device position.
    pub b: Point,
    /// Ground-truth distance, meters.
    pub distance_m: f64,
    /// Whether the pair is in line of sight.
    pub los: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::PathEnumConfig;

    #[test]
    fn office_is_deterministic_per_seed() {
        let a = Testbed::office(42);
        let b = Testbed::office(42);
        assert_eq!(a.locations, b.locations);
        let c = Testbed::office(43);
        assert_ne!(a.locations, c.locations);
    }

    #[test]
    fn thirty_locations_inside_floor() {
        let t = Testbed::office(1);
        assert_eq!(t.locations.len(), 30);
        for p in &t.locations {
            assert!(p.x >= 1.0 && p.x <= 19.0);
            assert!(p.y >= 1.0 && p.y <= 19.0);
        }
    }

    #[test]
    fn locations_spread_apart() {
        let t = Testbed::office(7);
        for i in 0..30 {
            for j in (i + 1)..30 {
                assert!(t.locations[i].dist(t.locations[j]) > 2.0);
            }
        }
    }

    #[test]
    fn mix_of_los_and_nlos_pairs() {
        let t = Testbed::office(42);
        let pairs = t.pairs_within(15.0);
        assert!(!pairs.is_empty());
        let los = pairs.iter().filter(|p| p.los).count();
        let nlos = pairs.len() - los;
        assert!(los > 5, "los pairs: {los}");
        assert!(nlos > 5, "nlos pairs: {nlos}");
    }

    #[test]
    fn pairs_respect_distance_cap() {
        let t = Testbed::office(42);
        for p in t.pairs_within(10.0) {
            assert!(p.distance_m <= 10.0);
            assert!((p.a.dist(p.b) - p.distance_m).abs() < 1e-12);
        }
    }

    #[test]
    fn environment_generates_multipath_everywhere() {
        let t = Testbed::office(42);
        let cfg = PathEnumConfig::default();
        let pairs = t.pairs_within(15.0);
        for p in pairs.iter().take(10) {
            let ps = t.environment.paths(p.a, p.b, &cfg);
            assert!(ps.len() >= 2, "pair too clean: {} paths", ps.len());
            // Direct path delay matches geometry.
            assert!(
                (ps.true_tof_ns().unwrap() - chronos_math::constants::m_to_ns(p.distance_m)).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn nlos_pairs_have_attenuated_direct_path() {
        let t = Testbed::office(42);
        let cfg = PathEnumConfig::default();
        let pairs = t.pairs_within(15.0);
        let nlos = pairs.iter().find(|p| !p.los).expect("need an NLOS pair");
        let los = pairs.iter().find(|p| p.los).expect("need a LOS pair");
        let ps_nlos = t.environment.paths(nlos.a, nlos.b, &cfg);
        let ps_los = t.environment.paths(los.a, los.b, &cfg);
        // Amplitude * distance normalizes the 1/d factor: obstruction shows.
        let a_nlos = ps_nlos.paths()[0].amplitude * nlos.distance_m;
        let a_los = ps_los.paths()[0].amplitude * los.distance_m;
        assert!(a_nlos < a_los, "NLOS direct path not attenuated");
    }
}
