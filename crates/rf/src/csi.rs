//! The CSI measurement pipeline: from geometry and impairments to the
//! channel-state-information a driver hands to user space.
//!
//! One [`CsiCapture`] is what the Intel 5300 CSI Tool reports for one
//! received packet on one band and one antenna pair: 30 complex values,
//! one per reported subcarrier. The synthesizer corrupts the true channel
//! exactly the way §5–§7 of the paper describe:
//!
//! 1. true multipath channel per subcarrier frequency (Eq. 7);
//! 2. packet-detection delay rotating *baseband* frequencies
//!    (`e^{-j 2 pi (f_k - f_0) delta}`, Eq. 6) — zero at subcarrier 0;
//! 3. carrier-frequency-offset rotation at the capture timestamp (Eq. 11/12);
//! 4. device constant `kappa` and hardware group delay;
//! 5. additive complex Gaussian noise at the receiver's noise floor;
//! 6. the Intel 5300's 2.4 GHz phase quirk on the reported values.
//!
//! [`MeasurementContext::measure_pair`] produces the forward capture (at
//! the receiver, for the transmitter's packet) and the reverse capture (at
//! the transmitter, for the receiver's ACK) that Chronos's reciprocity
//! trick (§7) needs.

use crate::bands::Band;
use crate::cfo::CfoPair;
use crate::environment::{Attacker, Environment, PathEnumConfig};
use crate::geometry::Point;
use crate::hardware::{apply_quirk, DeviceModel};
use crate::noise::{complex_gaussian, SnrModel};
use crate::ofdm::SubcarrierLayout;
use crate::propagation::PathSet;
use chronos_math::Complex64;
use rand::Rng;
use std::f64::consts::PI;

/// CSI for one packet on one band and one (tx antenna, rx antenna) pair.
#[derive(Debug, Clone)]
pub struct CsiCapture {
    /// The band this capture was taken on.
    pub band: Band,
    /// Which subcarriers `csi` covers.
    pub layout: SubcarrierLayout,
    /// Reported complex channel per subcarrier, same order as
    /// `layout.indices()`.
    pub csi: Vec<Complex64>,
    /// Capture timestamp in seconds (receiver clock).
    pub timestamp_s: f64,
    /// Ground truth, simulation-only: the detection delay this packet
    /// suffered (ns). The estimator must *not* read this; the harness uses
    /// it for Fig. 7(c).
    pub truth_detection_delay_ns: f64,
}

/// A forward/reverse CSI pair for one band and antenna pair, plus ground
/// truth for the harness.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Transmit antenna index on the initiating device.
    pub tx_antenna: usize,
    /// Receive antenna index on the responding device.
    pub rx_antenna: usize,
    /// CSI measured at the receiver for the transmitter's packet.
    pub forward: CsiCapture,
    /// CSI measured at the transmitter for the receiver's ACK.
    pub reverse: CsiCapture,
    /// Ground truth, simulation-only: true time-of-flight of the direct
    /// path for this antenna pair, ns.
    pub truth_tof_ns: f64,
    /// Ground truth: whether the link is line-of-sight.
    pub truth_los: bool,
}

/// Everything needed to synthesize measurements between two devices.
#[derive(Debug, Clone)]
pub struct MeasurementContext {
    /// The propagation environment.
    pub environment: Environment,
    /// Path enumeration settings.
    pub path_cfg: PathEnumConfig,
    /// Receiver noise model (shared by both ends).
    pub snr: SnrModel,
    /// The device initiating measurement (sends data packets).
    pub initiator: DeviceModel,
    /// Position of the initiator's array origin.
    pub initiator_pos: Point,
    /// The responding device (sends ACKs).
    pub responder: DeviceModel,
    /// Position of the responder's array origin.
    pub responder_pos: Point,
    /// ACK turnaround time, seconds (paper: "tens of microseconds").
    pub turnaround_s: f64,
    /// Jitter on the turnaround, seconds (uniform +-).
    pub turnaround_jitter_s: f64,
    /// Adversary attached to this link, if any. `None` (the default)
    /// leaves the honest synthesis bit-identical: ground truth is always
    /// computed from the clean path set before corruption applies.
    pub attacker: Option<Attacker>,
}

impl MeasurementContext {
    /// A context with the paper's defaults: 40 us turnaround +-5 us jitter.
    pub fn new(
        environment: Environment,
        initiator: DeviceModel,
        initiator_pos: Point,
        responder: DeviceModel,
        responder_pos: Point,
    ) -> Self {
        MeasurementContext {
            environment,
            path_cfg: PathEnumConfig::default(),
            snr: SnrModel::default(),
            initiator,
            initiator_pos,
            responder,
            responder_pos,
            turnaround_s: 40e-6,
            turnaround_jitter_s: 5e-6,
            attacker: None,
        }
    }

    /// The CFO pair between initiator (as tx) and responder (as rx).
    pub fn cfo(&self) -> CfoPair {
        CfoPair::new(self.initiator.oscillator_ppm, self.responder.oscillator_ppm)
    }

    /// Propagation paths between a specific antenna pair.
    pub fn paths_between(&self, tx_antenna: usize, rx_antenna: usize) -> PathSet {
        let tx = self.initiator.antennas.world_positions(self.initiator_pos)[tx_antenna];
        let rx = self.responder.antennas.world_positions(self.responder_pos)[rx_antenna];
        self.environment.paths(tx, rx, &self.path_cfg)
    }

    /// Whether the direct path between array origins is unobstructed.
    pub fn is_los(&self) -> bool {
        self.environment
            .is_los(self.initiator_pos, self.responder_pos)
    }

    /// Synthesizes the forward/reverse CSI pair for one packet exchange on
    /// `band` between the given antennas, at absolute time `t_s`. The
    /// reverse capture happens one (jittered) turnaround later.
    pub fn measure_pair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        band: &Band,
        layout: &SubcarrierLayout,
        tx_antenna: usize,
        rx_antenna: usize,
        t_s: f64,
    ) -> Measurement {
        let jitter = if self.turnaround_jitter_s > 0.0 {
            rng.gen_range(-self.turnaround_jitter_s..self.turnaround_jitter_s)
        } else {
            0.0
        };
        let t_rev = t_s + (self.turnaround_s + jitter).max(1e-9);
        self.measure_pair_at(rng, band, layout, tx_antenna, rx_antenna, t_s, t_rev)
    }

    /// Like [`measure_pair`](Self::measure_pair) but with explicit capture
    /// timestamps for the forward and reverse directions — used when the
    /// link-layer simulation supplies the exact protocol timing.
    #[allow(clippy::too_many_arguments)]
    pub fn measure_pair_at<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        band: &Band,
        layout: &SubcarrierLayout,
        tx_antenna: usize,
        rx_antenna: usize,
        t_forward_s: f64,
        t_reverse_s: f64,
    ) -> Measurement {
        let t_s = t_forward_s;
        let clean_paths = self.paths_between(tx_antenna, rx_antenna);
        // Ground truth always comes from the clean geometry; an attacker
        // corrupts only what the receivers *measure*.
        let truth_tof_ns = clean_paths.true_tof_ns().unwrap_or(f64::NAN);
        let corrupted = self
            .attacker
            .as_ref()
            .and_then(|a| a.corrupt_paths(&clean_paths));
        let paths = corrupted.as_ref().unwrap_or(&clean_paths);
        // Jamming floors the effective SNR on targeted channels.
        let mut noise_sigma = self.snr.floor_sigma();
        if let Some(jam) = self
            .attacker
            .as_ref()
            .and_then(|a| a.jam_sigma(band.channel))
        {
            noise_sigma = noise_sigma.max(jam);
        }
        let cfo = self.cfo();

        // Hardware group delay: both chains contribute on both directions.
        let hw_delay_ns = self.initiator.hw_delay_ns + self.responder.hw_delay_ns;

        // Forward capture: measured at the responder (acting as receiver).
        let delta_fwd = self.responder.detection_delay.sample(rng);
        let quirk_fwd = self.responder.quirk_for(band);
        let kappa_fwd = self.responder.kappa;
        let forward = synthesize_capture(
            rng,
            band,
            layout,
            paths,
            hw_delay_ns,
            delta_fwd,
            cfo.rotation_at_rx(band.center_hz, t_s),
            kappa_fwd,
            noise_sigma,
            quirk_fwd,
            t_s,
        );

        // Reverse capture: measured at the initiator for the ACK.
        // Reciprocity: same path set.
        let t_rev = t_reverse_s.max(t_s);
        let delta_rev = self.initiator.detection_delay.sample(rng);
        let quirk_rev = self.initiator.quirk_for(band);
        let kappa_rev = self.initiator.kappa;
        let reverse = synthesize_capture(
            rng,
            band,
            layout,
            paths,
            hw_delay_ns,
            delta_rev,
            cfo.rotation_at_tx(band.center_hz, t_rev),
            kappa_rev,
            noise_sigma,
            quirk_rev,
            t_rev,
        );

        Measurement {
            tx_antenna,
            rx_antenna,
            forward,
            reverse,
            truth_tof_ns,
            truth_los: self.is_los(),
        }
    }
}

/// Synthesizes one capture: true channel + detection delay + CFO + kappa +
/// noise + quirk.
#[allow(clippy::too_many_arguments)]
fn synthesize_capture<R: Rng + ?Sized>(
    rng: &mut R,
    band: &Band,
    layout: &SubcarrierLayout,
    paths: &PathSet,
    hw_delay_ns: f64,
    detection_delay_ns: f64,
    cfo_rotation: Complex64,
    kappa: Complex64,
    noise_sigma: f64,
    quirk: crate::hardware::PhaseQuirk,
    timestamp_s: f64,
) -> CsiCapture {
    let n = layout.len();
    let mut csi = Vec::with_capacity(n);
    let offsets = layout.baseband_offsets();
    for (k_idx, &idx) in layout.indices().iter().enumerate() {
        let f_k = layout.freq_of(band.center_hz, idx);
        // True channel at the passband frequency, including the hardware
        // group delay (which behaves exactly like extra distance).
        let mut h = Complex64::ZERO;
        for p in paths.paths() {
            let tau_s = (p.delay_ns + hw_delay_ns) * 1e-9;
            h += Complex64::from_polar(p.amplitude, -2.0 * PI * f_k * tau_s);
        }
        // Detection delay rotates baseband frequencies (paper Eq. 6): the
        // term vanishes at subcarrier 0 by construction.
        let delta_phase = -2.0 * PI * offsets[k_idx] * (detection_delay_ns * 1e-9);
        let mut v = h * Complex64::cis(delta_phase);
        // CFO rotation and device constant.
        v = v * cfo_rotation * kappa;
        // Receiver noise.
        v += complex_gaussian(rng, noise_sigma);
        // Firmware phase quirk on the reported value.
        csi.push(apply_quirk(v, quirk));
    }
    CsiCapture {
        band: *band,
        layout: layout.clone(),
        csi,
        timestamp_s,
        truth_detection_delay_ns: detection_delay_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bands::{band_by_channel, band_plan};
    use crate::hardware::{ideal_device, AntennaArray, Intel5300};
    use chronos_math::constants::m_to_ns;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ideal_ctx(d: f64) -> MeasurementContext {
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            ideal_device(AntennaArray::single()),
            Point::new(0.0, 0.0),
            ideal_device(AntennaArray::single()),
            Point::new(d, 0.0),
        );
        // Noiseless for deterministic tests.
        ctx.snr.snr_at_1m_db = 300.0;
        ctx.turnaround_jitter_s = 0.0;
        ctx
    }

    #[test]
    fn ideal_single_path_phase_encodes_tof() {
        let mut rng = StdRng::seed_from_u64(1);
        let ctx = ideal_ctx(0.6);
        let band = band_by_channel(36).unwrap();
        let layout = SubcarrierLayout::intel5300();
        let m = ctx.measure_pair(&mut rng, &band, &layout, 0, 0, 0.0);
        assert!((m.truth_tof_ns - m_to_ns(0.6)).abs() < 1e-9);
        // With an ideal device at t=0, the subcarrier-0-adjacent phase
        // should be close to -2 pi f tau (modulo 2 pi). Use subcarrier -1.
        let k = m
            .forward
            .layout
            .indices()
            .iter()
            .position(|i| *i == -1)
            .unwrap();
        let f = layout.freq_of(band.center_hz, -1);
        let expected =
            -2.0 * PI * f * (m.truth_tof_ns * 1e-9 + m.forward.truth_detection_delay_ns * 0.0);
        let got = m.forward.csi[k].arg();
        let want = chronos_math::unwrap::wrap_to_pi(expected + 2.0 * PI * 312_500.0 * 0.0);
        assert!(
            chronos_math::unwrap::angular_distance(got, want) < 1e-6,
            "got {got} want {want}"
        );
    }

    #[test]
    fn detection_delay_vanishes_at_zero_subcarrier_limit() {
        // Compare captures with and without detection delay on symmetric
        // subcarriers +-1: the *mean* phase equals the delay-free phase at
        // subcarrier 0 to first order.
        let mut rng = StdRng::seed_from_u64(2);
        let ctx = ideal_ctx(3.0);
        let band = band_by_channel(44).unwrap();
        let layout = SubcarrierLayout::intel5300();
        let paths = ctx.paths_between(0, 0);
        let clean = synthesize_capture(
            &mut rng,
            &band,
            &layout,
            &paths,
            0.0,
            0.0,
            Complex64::ONE,
            Complex64::ONE,
            0.0,
            crate::hardware::PhaseQuirk::None,
            0.0,
        );
        let delayed = synthesize_capture(
            &mut rng,
            &band,
            &layout,
            &paths,
            0.0,
            200.0,
            Complex64::ONE,
            Complex64::ONE,
            0.0,
            crate::hardware::PhaseQuirk::None,
            0.0,
        );
        let i_m1 = layout.indices().iter().position(|i| *i == -1).unwrap();
        let i_p1 = layout.indices().iter().position(|i| *i == 1).unwrap();
        let mean_delayed = (delayed.csi[i_m1].arg() + delayed.csi[i_p1].arg()) / 2.0;
        let mean_clean = (clean.csi[i_m1].arg() + clean.csi[i_p1].arg()) / 2.0;
        assert!(
            chronos_math::unwrap::angular_distance(mean_delayed, mean_clean) < 1e-6,
            "delay leaked into the zero-subcarrier midpoint"
        );
        // And it must NOT vanish away from the center.
        let i_edge = layout.indices().iter().position(|i| *i == 28).unwrap();
        assert!(
            chronos_math::unwrap::angular_distance(
                delayed.csi[i_edge].arg(),
                clean.csi[i_edge].arg()
            ) > 0.1,
            "delay had no effect at band edge"
        );
    }

    #[test]
    fn detection_delay_slope_matches_model() {
        // Phase slope across baseband frequency = -2 pi * (tau + delta)...
        // relative to the clean capture the extra slope is exactly delta.
        let mut rng = StdRng::seed_from_u64(3);
        let ctx = ideal_ctx(2.0);
        let band = band_by_channel(100).unwrap();
        let layout = SubcarrierLayout::full();
        let paths = ctx.paths_between(0, 0);
        let delta_ns = 150.0;
        let clean = synthesize_capture(
            &mut rng,
            &band,
            &layout,
            &paths,
            0.0,
            0.0,
            Complex64::ONE,
            Complex64::ONE,
            0.0,
            crate::hardware::PhaseQuirk::None,
            0.0,
        );
        let delayed = synthesize_capture(
            &mut rng,
            &band,
            &layout,
            &paths,
            0.0,
            delta_ns,
            Complex64::ONE,
            Complex64::ONE,
            0.0,
            crate::hardware::PhaseQuirk::None,
            0.0,
        );
        // Phase difference per subcarrier index step of 1:
        let diffs: Vec<f64> = clean
            .csi
            .iter()
            .zip(delayed.csi.iter())
            .map(|(c, d)| (*d * c.conj()).arg())
            .collect();
        let mut un = diffs.clone();
        chronos_math::unwrap::unwrap_in_place(&mut un);
        let slope = (un.last().unwrap() - un.first().unwrap())
            / (layout.indices().last().unwrap() - layout.indices().first().unwrap()) as f64;
        let expected = -2.0 * PI * 312_500.0 * delta_ns * 1e-9;
        assert!(
            (slope - expected).abs() < 1e-6,
            "slope {slope} expected {expected}"
        );
    }

    #[test]
    fn reciprocity_product_cancels_cfo() {
        // With zero turnaround, forward x reverse has no CFO rotation.
        let mut rng = StdRng::seed_from_u64(4);
        let mut ctx = ideal_ctx(1.0);
        ctx.initiator.oscillator_ppm = 9.0;
        ctx.responder.oscillator_ppm = -3.0;
        ctx.turnaround_s = 1e-9; // effectively simultaneous
        let band = band_by_channel(40).unwrap();
        let layout = SubcarrierLayout::intel5300();
        // Large t so uncompensated CFO would be catastrophic.
        let m = ctx.measure_pair(&mut rng, &band, &layout, 0, 0, 2.5);
        let k = 14; // subcarrier -1
        let product = m.forward.csi[k] * m.reverse.csi[k];
        // Expected: (h_k)^2 — phase of product should match channel model.
        let paths = ctx.paths_between(0, 0);
        let f = layout.freq_of(band.center_hz, -1);
        let h = paths.channel_at(f);
        let expected = (h * h).arg();
        assert!(
            chronos_math::unwrap::angular_distance(product.arg(), expected) < 1e-3,
            "product {} expected {}",
            product.arg(),
            expected
        );
    }

    #[test]
    fn quirk_applied_only_on_24ghz() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ctx = ideal_ctx(2.0);
        ctx.initiator = Intel5300::mobile(&mut rng);
        ctx.responder = Intel5300::laptop(&mut rng);
        ctx.snr.snr_at_1m_db = 300.0;
        let layout = SubcarrierLayout::intel5300();
        let b24 = band_by_channel(6).unwrap();
        let b5 = band_by_channel(64).unwrap();
        let m24 = ctx.measure_pair(&mut rng, &b24, &layout, 0, 0, 0.0);
        let m5 = ctx.measure_pair(&mut rng, &b5, &layout, 0, 0, 0.0);
        // All reported 2.4 GHz phases land in [0, pi/2).
        for z in &m24.forward.csi {
            let a = z.arg();
            assert!(
                (0.0..std::f64::consts::FRAC_PI_2 + 1e-9).contains(&a),
                "phase {a}"
            );
        }
        // 5 GHz phases span the full circle.
        let any_negative = m5.forward.csi.iter().any(|z| z.arg() < 0.0);
        assert!(any_negative, "5 GHz phases suspiciously confined");
    }

    #[test]
    fn noise_scales_with_distance() {
        // Variance of CSI across repeated packets grows with distance.
        let spread = |d: f64| {
            let mut rng = StdRng::seed_from_u64(6);
            let mut ctx = ideal_ctx(d);
            ctx.snr = SnrModel::default();
            let band = band_by_channel(36).unwrap();
            let layout = SubcarrierLayout::intel5300();
            let mut vals = Vec::new();
            for i in 0..50 {
                let m = ctx.measure_pair(&mut rng, &band, &layout, 0, 0, i as f64 * 1e-3);
                vals.push(m.forward.csi[0]);
            }
            let mean = vals.iter().fold(Complex64::ZERO, |a, b| a + *b) / vals.len() as f64;
            // Relative spread: absolute noise is constant, signal shrinks.
            (vals.iter().map(|v| (*v - mean).norm_sq()).sum::<f64>() / vals.len() as f64).sqrt()
                / mean.abs()
        };
        assert!(
            spread(12.0) > spread(1.0),
            "noise did not grow with distance"
        );
    }

    #[test]
    fn full_sweep_produces_35_measurements() {
        let mut rng = StdRng::seed_from_u64(7);
        let ctx = ideal_ctx(5.0);
        let layout = SubcarrierLayout::intel5300();
        let all: Vec<Measurement> = band_plan()
            .iter()
            .map(|b| ctx.measure_pair(&mut rng, b, &layout, 0, 0, 0.0))
            .collect();
        assert_eq!(all.len(), 35);
        assert!(all.iter().all(|m| m.forward.csi.len() == 30));
        assert!(all.iter().all(|m| m.truth_tof_ns > 0.0));
    }

    #[test]
    fn nlos_flag_reflects_environment() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut env = Environment::free_space();
        env.add_wall(
            crate::geometry::Segment::new(Point::new(1.0, -2.0), Point::new(1.0, 2.0)),
            crate::environment::Material::Concrete,
        );
        let ctx = MeasurementContext::new(
            env,
            ideal_device(AntennaArray::single()),
            Point::new(0.0, 0.0),
            ideal_device(AntennaArray::single()),
            Point::new(2.0, 0.0),
        );
        let band = band_by_channel(36).unwrap();
        let layout = SubcarrierLayout::intel5300();
        let m = ctx.measure_pair(&mut rng, &band, &layout, 0, 0, 0.0);
        assert!(!m.truth_los);
    }

    #[test]
    fn replay_attacker_spoofs_apparent_tof_but_not_truth() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut ctx = ideal_ctx(3.0);
        ctx.attacker = Some(crate::environment::Attacker::ReplayOffset {
            extra_delay_ns: 10.0,
        });
        let band = band_by_channel(48).unwrap();
        let layout = SubcarrierLayout::full();
        let m = ctx.measure_pair(&mut rng, &band, &layout, 0, 0, 0.0);
        // Ground truth is the clean geometry...
        assert!((m.truth_tof_ns - m_to_ns(3.0)).abs() < 1e-9);
        // ...but the measured phase slope encodes truth + 10 ns.
        let phases: Vec<f64> = m.forward.csi.iter().map(|z| z.arg()).collect();
        let mut un = phases.clone();
        chronos_math::unwrap::unwrap_in_place(&mut un);
        let slope = (un.last().unwrap() - un.first().unwrap()) / (56.0 * 312_500.0);
        let tau_apparent_ns = -slope / (2.0 * PI) * 1e9;
        assert!(
            (tau_apparent_ns - (m.truth_tof_ns + 10.0)).abs() < 0.2,
            "{tau_apparent_ns} vs {}",
            m.truth_tof_ns + 10.0
        );
    }

    #[test]
    fn jam_corrupts_only_targeted_bands() {
        let clean_ctx = ideal_ctx(2.0);
        let mut jam_ctx = ideal_ctx(2.0);
        jam_ctx.attacker = Some(crate::environment::Attacker::BandJam {
            bands: vec![36],
            snr_floor_db: 5.0,
        });
        let layout = SubcarrierLayout::intel5300();
        let capture = |ctx: &MeasurementContext, ch: u16| {
            let mut rng = StdRng::seed_from_u64(11);
            let band = band_by_channel(ch).unwrap();
            ctx.measure_pair(&mut rng, &band, &layout, 0, 0, 0.0)
        };
        // The jammed band is noisy even though the context is noiseless.
        let bits = |m: &Measurement| -> Vec<(u64, u64)> {
            m.forward
                .csi
                .iter()
                .chain(m.reverse.csi.iter())
                .map(|z| (z.re.to_bits(), z.im.to_bits()))
                .collect()
        };
        assert_ne!(bits(&capture(&jam_ctx, 36)), bits(&capture(&clean_ctx, 36)));
        // An untargeted band is bit-identical to the honest context: the
        // attacker machinery draws no extra randomness off-target.
        assert_eq!(bits(&capture(&jam_ctx, 44)), bits(&capture(&clean_ctx, 44)));
    }

    #[test]
    fn inject_attacker_plants_phantom_early_path() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut ctx = ideal_ctx(6.0); // truth ~20 ns
        ctx.attacker = Some(crate::environment::Attacker::CsiInject {
            forged_profile: crate::propagation::PathSet::single(5.0, 3.0),
        });
        let band = band_by_channel(100).unwrap();
        let layout = SubcarrierLayout::full();
        let m = ctx.measure_pair(&mut rng, &band, &layout, 0, 0, 0.0);
        assert!((m.truth_tof_ns - m_to_ns(6.0)).abs() < 1e-9);
        // The forged 5 ns path dominates: the apparent slope tracks it,
        // not the 20 ns truth.
        let phases: Vec<f64> = m.forward.csi.iter().map(|z| z.arg()).collect();
        let mut un = phases.clone();
        chronos_math::unwrap::unwrap_in_place(&mut un);
        let slope = (un.last().unwrap() - un.first().unwrap()) / (56.0 * 312_500.0);
        let tau_apparent_ns = -slope / (2.0 * PI) * 1e9;
        assert!(
            (tau_apparent_ns - 5.0).abs() < 2.0,
            "apparent {tau_apparent_ns} should hug the forged 5 ns path"
        );
    }

    #[test]
    fn hw_delay_shifts_apparent_tof() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut ctx = ideal_ctx(3.0);
        ctx.initiator.hw_delay_ns = 4.0;
        ctx.responder.hw_delay_ns = 2.0;
        let band = band_by_channel(48).unwrap();
        let layout = SubcarrierLayout::full();
        let m = ctx.measure_pair(&mut rng, &band, &layout, 0, 0, 0.0);
        // Slope of forward phase across passband frequency encodes
        // tau + hw_delay (6 ns extra).
        let phases: Vec<f64> = m.forward.csi.iter().map(|z| z.arg()).collect();
        let mut un = phases.clone();
        chronos_math::unwrap::unwrap_in_place(&mut un);
        let df = 312_500.0;
        // Index span of the full layout is -28..28 = 56 subcarrier steps.
        let slope = (un.last().unwrap() - un.first().unwrap()) / (56.0 * df);
        let tau_apparent_ns = -slope / (2.0 * PI) * 1e9;
        let expected = m.truth_tof_ns + 6.0;
        assert!(
            (tau_apparent_ns - expected).abs() < 0.2,
            "{tau_apparent_ns} vs {expected}"
        );
    }
}
