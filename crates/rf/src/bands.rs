//! The U.S. Wi-Fi band plan swept by Chronos (paper Fig. 2).
//!
//! The paper counts **35 Wi-Fi bands with independent center frequencies**
//! available to an 802.11h-capable 802.11n radio such as the Intel 5300:
//!
//! * 2.4 GHz ISM: channels 1–11, centers 2.412–2.462 GHz (5 MHz channel
//!   raster, 20 MHz-wide signals).
//! * 5 GHz U-NII-1: channels 36–48 (5.180–5.240 GHz).
//! * 5 GHz U-NII-2: channels 52–64 (5.260–5.320 GHz), DFS.
//! * 5 GHz U-NII-2e: channels 100–140 (5.500–5.700 GHz), DFS.
//! * 5 GHz U-NII-3: channels 149–165 (5.745–5.825 GHz).
//!
//! The scattered, *unequally spaced* centers are exactly what makes the
//! Chinese-remainder construction of §4 powerful, and what forces the
//! inverse transform of §6 to be a **non-uniform** DFT.

use chronos_math::constants::{GHZ, MHZ};

/// Which regulatory chunk a band belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandGroup {
    /// 2.4 GHz ISM band (channels 1–11).
    Ism24,
    /// 5.15–5.25 GHz (channels 36–48).
    Unii1,
    /// 5.25–5.35 GHz (channels 52–64), DFS.
    Unii2,
    /// 5.47–5.725 GHz (channels 100–140), DFS.
    Unii2e,
    /// 5.725–5.85 GHz (channels 149–165).
    Unii3,
}

impl BandGroup {
    /// Whether channels in this group require DFS (radar detection).
    pub fn is_dfs(self) -> bool {
        matches!(self, BandGroup::Unii2 | BandGroup::Unii2e)
    }

    /// Whether this group sits in the 2.4 GHz ISM spectrum.
    pub fn is_2g4(self) -> bool {
        matches!(self, BandGroup::Ism24)
    }
}

/// One 20 MHz Wi-Fi band (a "channel" in 802.11 terms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// 802.11 channel number (1–11, 36–165).
    pub channel: u16,
    /// Center frequency in Hz.
    pub center_hz: f64,
    /// Regulatory group.
    pub group: BandGroup,
}

impl Band {
    /// Center frequency in GHz (convenience for display/tests).
    pub fn center_ghz(&self) -> f64 {
        self.center_hz / GHZ
    }

    /// The signal bandwidth of the band (all Chronos traffic is 20 MHz).
    pub const BANDWIDTH_HZ: f64 = 20.0 * MHZ;
}

/// 2.4 GHz channel number -> center frequency.
fn center_24(channel: u16) -> f64 {
    2.407 * GHZ + channel as f64 * 5.0 * MHZ
}

/// 5 GHz channel number -> center frequency.
fn center_5(channel: u16) -> f64 {
    5.000 * GHZ + channel as f64 * 5.0 * MHZ
}

/// The full 35-band U.S. plan in ascending frequency order.
///
/// This is the sweep list of the paper's §5: "a total of 35 Wi-Fi bands with
/// independent center frequencies".
pub fn band_plan() -> Vec<Band> {
    let mut bands = Vec::with_capacity(35);
    // 2.4 GHz: channels 1..=11.
    for ch in 1..=11u16 {
        bands.push(Band {
            channel: ch,
            center_hz: center_24(ch),
            group: BandGroup::Ism24,
        });
    }
    // U-NII-1: 36, 40, 44, 48.
    for ch in [36u16, 40, 44, 48] {
        bands.push(Band {
            channel: ch,
            center_hz: center_5(ch),
            group: BandGroup::Unii1,
        });
    }
    // U-NII-2: 52, 56, 60, 64 (DFS).
    for ch in [52u16, 56, 60, 64] {
        bands.push(Band {
            channel: ch,
            center_hz: center_5(ch),
            group: BandGroup::Unii2,
        });
    }
    // U-NII-2e: 100..=140 step 4 (DFS).
    for ch in (100..=140u16).step_by(4) {
        bands.push(Band {
            channel: ch,
            center_hz: center_5(ch),
            group: BandGroup::Unii2e,
        });
    }
    // U-NII-3: 149, 153, 157, 161, 165.
    for ch in [149u16, 153, 157, 161, 165] {
        bands.push(Band {
            channel: ch,
            center_hz: center_5(ch),
            group: BandGroup::Unii3,
        });
    }
    bands
}

/// Only the 5 GHz members of the plan (24 bands).
pub fn band_plan_5ghz() -> Vec<Band> {
    band_plan()
        .into_iter()
        .filter(|b| !b.group.is_2g4())
        .collect()
}

/// Only the 2.4 GHz members of the plan (11 bands).
pub fn band_plan_24ghz() -> Vec<Band> {
    band_plan()
        .into_iter()
        .filter(|b| b.group.is_2g4())
        .collect()
}

/// Looks up a band by channel number in the standard plan.
pub fn band_by_channel(channel: u16) -> Option<Band> {
    band_plan().into_iter().find(|b| b.channel == channel)
}

/// The default band devices fall back to when the hopping protocol times out
/// (paper §4: "transmitters and receivers revert to a default frequency
/// band"). We use channel 1, the bottom of the plan.
pub fn default_band() -> Band {
    band_by_channel(1).expect("channel 1 always present")
}

/// Total frequency extent the sweep stitches together, in Hz
/// (max center − min center). The paper calls this "almost one GHz".
pub fn stitched_span_hz() -> f64 {
    let plan = band_plan();
    let lo = plan.first().expect("plan non-empty").center_hz;
    let hi = plan.last().expect("plan non-empty").center_hz;
    hi - lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_has_exactly_35_bands() {
        assert_eq!(band_plan().len(), 35);
    }

    #[test]
    fn split_counts() {
        assert_eq!(band_plan_24ghz().len(), 11);
        assert_eq!(band_plan_5ghz().len(), 24);
    }

    #[test]
    fn paper_fig2_endpoints() {
        // Fig. 2: 2.412–2.462 GHz, 5.18–..., 5.5–5.7, 5.745–5.825.
        let plan = band_plan();
        assert!((plan[0].center_ghz() - 2.412).abs() < 1e-9);
        assert!((plan[10].center_ghz() - 2.462).abs() < 1e-9);
        let ch36 = band_by_channel(36).unwrap();
        assert!((ch36.center_ghz() - 5.180).abs() < 1e-9);
        let ch100 = band_by_channel(100).unwrap();
        assert!((ch100.center_ghz() - 5.500).abs() < 1e-9);
        let ch140 = band_by_channel(140).unwrap();
        assert!((ch140.center_ghz() - 5.700).abs() < 1e-9);
        let ch165 = band_by_channel(165).unwrap();
        assert!((ch165.center_ghz() - 5.825).abs() < 1e-9);
    }

    #[test]
    fn ascending_and_unique() {
        let plan = band_plan();
        for w in plan.windows(2) {
            assert!(w[1].center_hz > w[0].center_hz);
        }
    }

    #[test]
    fn dfs_flags() {
        assert!(band_by_channel(100).unwrap().group.is_dfs());
        assert!(band_by_channel(52).unwrap().group.is_dfs());
        assert!(!band_by_channel(36).unwrap().group.is_dfs());
        assert!(!band_by_channel(149).unwrap().group.is_dfs());
        assert!(!band_by_channel(6).unwrap().group.is_dfs());
    }

    #[test]
    fn stitched_span_is_about_3_4_ghz() {
        // 5.825 - 2.412 GHz: the "illusion of a wideband radio" extent.
        let span = stitched_span_hz();
        assert!((span / 1e9 - 3.413).abs() < 1e-6, "span {span}");
    }

    #[test]
    fn default_band_is_channel_1() {
        assert_eq!(default_band().channel, 1);
    }

    #[test]
    fn unknown_channel_rejected() {
        assert!(band_by_channel(14).is_none());
        assert!(band_by_channel(0).is_none());
        assert!(band_by_channel(200).is_none());
    }

    #[test]
    fn unequal_spacing_within_5ghz() {
        // The gap between 64 and 100 (180 MHz) differs from the in-group
        // 20 MHz raster — the non-uniformity Chronos exploits.
        let plan = band_plan_5ghz();
        let mut gaps: Vec<f64> = plan
            .windows(2)
            .map(|w| w[1].center_hz - w[0].center_hz)
            .collect();
        gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(gaps.first().unwrap() < gaps.last().unwrap());
    }
}
