//! Carrier-frequency-offset (CFO) modeling.
//!
//! Two radios never share an oscillator, so their carrier frequencies differ
//! by a few parts per million. Any CSI measured across that offset rotates
//! at the difference frequency, quickly swamping the time-of-flight phase
//! (paper §7). The key physical fact Chronos exploits is **reciprocity of
//! the offset sign**: the offset the receiver sees for the transmitter's
//! packet is the exact negative of the offset the transmitter sees for the
//! receiver's ACK. Multiplying the two CSIs cancels the rotation.
//!
//! This module models per-device oscillators and produces the phase
//! rotation a measurement at a given timestamp suffers.

use chronos_math::Complex64;

/// One device's oscillator.
#[derive(Debug, Clone, Copy)]
pub struct Oscillator {
    /// Fractional frequency error, in parts per million. Typical consumer
    /// Wi-Fi silicon is within +-20 ppm (802.11 requires <= 25 ppm).
    pub ppm: f64,
}

impl Oscillator {
    /// Creates an oscillator with the given ppm error.
    pub fn new(ppm: f64) -> Self {
        Oscillator { ppm }
    }

    /// The actual frequency this oscillator produces when tuned to a
    /// nominal `freq_hz`.
    pub fn actual_freq(&self, freq_hz: f64) -> f64 {
        freq_hz * (1.0 + self.ppm * 1e-6)
    }
}

/// A transmitter/receiver oscillator pair tuned to a common nominal
/// center frequency.
#[derive(Debug, Clone, Copy)]
pub struct CfoPair {
    /// Transmitter-side oscillator.
    pub tx: Oscillator,
    /// Receiver-side oscillator.
    pub rx: Oscillator,
}

impl CfoPair {
    /// Creates the pair.
    pub fn new(tx_ppm: f64, rx_ppm: f64) -> Self {
        CfoPair {
            tx: Oscillator::new(tx_ppm),
            rx: Oscillator::new(rx_ppm),
        }
    }

    /// Carrier frequency offset *as observed at the receiver* for a packet
    /// sent by the transmitter, in Hz: `f_tx - f_rx` (paper §7 notation).
    pub fn offset_at_rx(&self, nominal_hz: f64) -> f64 {
        self.tx.actual_freq(nominal_hz) - self.rx.actual_freq(nominal_hz)
    }

    /// Offset observed at the transmitter for the receiver's ACK: the exact
    /// negative of [`offset_at_rx`](Self::offset_at_rx) — reciprocity.
    pub fn offset_at_tx(&self, nominal_hz: f64) -> f64 {
        -self.offset_at_rx(nominal_hz)
    }

    /// The multiplicative phase corruption on a CSI measured at the
    /// *receiver* at absolute time `t_s` (seconds): `e^{j 2 pi (f_tx - f_rx) t}`
    /// (paper Eq. 11 uses angular notation; the sign convention here matches
    /// it).
    pub fn rotation_at_rx(&self, nominal_hz: f64, t_s: f64) -> Complex64 {
        Complex64::cis(2.0 * std::f64::consts::PI * self.offset_at_rx(nominal_hz) * t_s)
    }

    /// The corruption on the CSI measured at the *transmitter* for the ACK
    /// at time `t_s`: `e^{j 2 pi (f_rx - f_tx) t}` (paper Eq. 12).
    pub fn rotation_at_tx(&self, nominal_hz: f64, t_s: f64) -> Complex64 {
        Complex64::cis(2.0 * std::f64::consts::PI * self.offset_at_tx(nominal_hz) * t_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actual_freq_scaling() {
        let o = Oscillator::new(10.0); // +10 ppm
        let f = o.actual_freq(2.4e9);
        assert!((f - 2.4e9 * (1.0 + 1e-5)).abs() < 1e-3);
        assert!((f - 2.4e9 - 24_000.0).abs() < 1.0);
    }

    #[test]
    fn reciprocity_of_offsets() {
        let pair = CfoPair::new(7.3, -4.1);
        let f = 5.5e9;
        assert!((pair.offset_at_rx(f) + pair.offset_at_tx(f)).abs() < 1e-9);
    }

    #[test]
    fn offset_magnitude_realistic() {
        // ~11 ppm differential at 5.5 GHz ~ 63 kHz — enormous compared to
        // the sub-Hz precision ToF needs, hence §7's machinery.
        let pair = CfoPair::new(7.0, -4.0);
        let off = pair.offset_at_rx(5.5e9).abs();
        assert!(off > 50_000.0 && off < 70_000.0, "off {off}");
    }

    #[test]
    fn rotations_cancel_when_multiplied_same_time() {
        // The heart of paper Eq. 13: rx-rotation * tx-rotation = 1 at equal
        // measurement times.
        let pair = CfoPair::new(12.0, 3.0);
        let f = 2.437e9;
        let t = 1.234;
        let prod = pair.rotation_at_rx(f, t) * pair.rotation_at_tx(f, t);
        assert!(prod.approx_eq(Complex64::ONE, 1e-9));
    }

    #[test]
    fn residual_error_from_turnaround_is_small() {
        // Forward and reverse CSI are measured ~40 us apart. The residual
        // rotation is 2 pi * offset * dt; with ~28 kHz offset and 40 us this
        // is ~7 rad — large! The *product* taken at (t, t+dt) leaves a
        // rotation of 2 pi * offset * dt relative to equal-time capture,
        // which the pipeline suppresses by averaging over packets (§7 obs 1).
        let pair = CfoPair::new(5.0, 0.0); // 5 ppm -> 12 kHz at 2.4 GHz
        let f = 2.412e9;
        let dt = 40e-6;
        let prod = pair.rotation_at_rx(f, 0.0) * pair.rotation_at_tx(f, dt);
        let residual_phase = prod.arg().abs();
        let expected = 2.0 * std::f64::consts::PI * pair.offset_at_rx(f).abs() * dt;
        let wrapped = chronos_math::unwrap::wrap_to_pi(expected).abs();
        assert!((residual_phase - wrapped).abs() < 1e-6);
    }

    #[test]
    fn uncompensated_rotation_is_huge_over_milliseconds() {
        // Motivates §7: after 10 ms, a 28 kHz offset has rotated ~280 full
        // turns; raw CSI phase is useless for ToF.
        let pair = CfoPair::new(7.0, -5.0);
        let f = 2.412e9;
        let turns = pair.offset_at_rx(f).abs() * 10e-3;
        assert!(turns > 100.0, "turns {turns}");
    }

    #[test]
    fn zero_ppm_pair_is_transparent() {
        let pair = CfoPair::new(0.0, 0.0);
        assert_eq!(pair.offset_at_rx(5e9), 0.0);
        assert!(pair
            .rotation_at_rx(5e9, 123.0)
            .approx_eq(Complex64::ONE, 1e-12));
    }
}
