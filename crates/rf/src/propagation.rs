//! Propagation paths and channel synthesis.
//!
//! A [`Path`] is one ray from transmitter to receiver: a propagation delay
//! and a (real, positive) amplitude. A [`PathSet`] is the collection of rays
//! the environment produced. The channel at frequency `f` is the paper's
//! Eq. 7:
//!
//! ```text
//! h(f) = sum_k  a_k * e^{-j 2 pi f tau_k}
//! ```
//!
//! This module is the single place where geometry turns into complex
//! channel values; every simulated CSI sample in the workspace flows
//! through [`PathSet::channel_at`].

use chronos_math::constants::m_to_ns;
use chronos_math::Complex64;

/// One propagation path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Path {
    /// Propagation delay in nanoseconds.
    pub delay_ns: f64,
    /// Amplitude (field attenuation along the path), dimensionless.
    pub amplitude: f64,
}

impl Path {
    /// Creates a path directly from delay and amplitude.
    pub fn new(delay_ns: f64, amplitude: f64) -> Self {
        Path {
            delay_ns,
            amplitude,
        }
    }

    /// Creates a path from a geometric length in meters.
    pub fn from_length(length_m: f64, amplitude: f64) -> Self {
        Path {
            delay_ns: m_to_ns(length_m),
            amplitude,
        }
    }

    /// The path's geometric length in meters.
    pub fn length_m(&self) -> f64 {
        chronos_math::constants::ns_to_m(self.delay_ns)
    }
}

/// An ordered (by delay) collection of propagation paths.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PathSet {
    paths: Vec<Path>,
}

impl PathSet {
    /// Creates a path set; paths are sorted by ascending delay.
    pub fn new(mut paths: Vec<Path>) -> Self {
        paths.sort_by(|a, b| a.delay_ns.partial_cmp(&b.delay_ns).unwrap());
        PathSet { paths }
    }

    /// A single-path (pure line-of-sight) set — the §4 idealization.
    pub fn single(delay_ns: f64, amplitude: f64) -> Self {
        PathSet {
            paths: vec![Path::new(delay_ns, amplitude)],
        }
    }

    /// The paths, ascending by delay.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the set is empty (a fully-blocked link).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Delay of the shortest path — the true time-of-flight the estimator
    /// must recover.
    pub fn true_tof_ns(&self) -> Option<f64> {
        self.paths.first().map(|p| p.delay_ns)
    }

    /// The channel frequency response at `freq_hz` (paper Eq. 7).
    pub fn channel_at(&self, freq_hz: f64) -> Complex64 {
        let mut h = Complex64::ZERO;
        for p in &self.paths {
            let phase = -2.0 * std::f64::consts::PI * freq_hz * (p.delay_ns * 1e-9);
            h += Complex64::from_polar(p.amplitude, phase);
        }
        h
    }

    /// Channel responses at many frequencies.
    pub fn channels_at(&self, freqs_hz: &[f64]) -> Vec<Complex64> {
        freqs_hz.iter().map(|f| self.channel_at(*f)).collect()
    }

    /// Total received power (sum of squared amplitudes) — the incoherent
    /// power used by the SNR model.
    pub fn total_power(&self) -> f64 {
        self.paths.iter().map(|p| p.amplitude * p.amplitude).sum()
    }

    /// Ratio of direct-path power to total power, in `[0, 1]`. Low values
    /// flag links where the direct path is heavily attenuated (NLOS).
    pub fn direct_power_fraction(&self) -> f64 {
        let total = self.total_power();
        if total == 0.0 {
            return 0.0;
        }
        self.paths
            .first()
            .map(|p| p.amplitude * p.amplitude / total)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn single_path_phase_matches_eq1() {
        // Paper Eq. 1: h = a e^{-j 2 pi f tau}.
        let tau_ns = 2.0;
        let f = 2.412e9;
        let ps = PathSet::single(tau_ns, 0.7);
        let h = ps.channel_at(f);
        assert!((h.abs() - 0.7).abs() < 1e-12);
        let expected_phase = (-2.0 * PI * f * tau_ns * 1e-9).rem_euclid(2.0 * PI);
        assert!((h.arg().rem_euclid(2.0 * PI) - expected_phase).abs() < 1e-9);
    }

    #[test]
    fn phase_slope_across_frequency_encodes_delay() {
        // d(phase)/df = -2 pi tau: check with a small frequency step.
        let tau_ns = 13.7;
        let ps = PathSet::single(tau_ns, 1.0);
        let f0 = 5.5e9;
        let df = 100e3;
        let p0 = ps.channel_at(f0).arg();
        let p1 = ps.channel_at(f0 + df).arg();
        let mut dphi = p1 - p0;
        while dphi > PI {
            dphi -= 2.0 * PI;
        }
        while dphi < -PI {
            dphi += 2.0 * PI;
        }
        let tau_est_ns = -dphi / (2.0 * PI * df) * 1e9;
        assert!((tau_est_ns - tau_ns).abs() < 1e-6);
    }

    #[test]
    fn superposition_of_paths() {
        let a = PathSet::single(5.2, 1.0);
        let b = PathSet::single(10.0, 0.6);
        let both = PathSet::new(vec![Path::new(5.2, 1.0), Path::new(10.0, 0.6)]);
        let f = 5.18e9;
        let h = both.channel_at(f);
        let sum = a.channel_at(f) + b.channel_at(f);
        assert!(h.approx_eq(sum, 1e-12));
    }

    #[test]
    fn sorted_by_delay_and_true_tof() {
        let ps = PathSet::new(vec![
            Path::new(16.0, 0.2),
            Path::new(5.2, 1.0),
            Path::new(10.0, 0.5),
        ]);
        assert_eq!(ps.true_tof_ns(), Some(5.2));
        let d: Vec<f64> = ps.paths().iter().map(|p| p.delay_ns).collect();
        assert_eq!(d, vec![5.2, 10.0, 16.0]);
    }

    #[test]
    fn empty_set_reports_none() {
        let ps = PathSet::new(vec![]);
        assert!(ps.is_empty());
        assert_eq!(ps.true_tof_ns(), None);
        assert_eq!(ps.channel_at(5e9), Complex64::ZERO);
        assert_eq!(ps.direct_power_fraction(), 0.0);
    }

    #[test]
    fn power_accounting() {
        let ps = PathSet::new(vec![Path::new(5.0, 0.6), Path::new(8.0, 0.8)]);
        assert!((ps.total_power() - 1.0).abs() < 1e-12);
        assert!((ps.direct_power_fraction() - 0.36).abs() < 1e-12);
    }

    #[test]
    fn length_round_trip() {
        let p = Path::from_length(0.6, 1.0);
        assert!((p.delay_ns - 2.0).abs() < 0.01);
        assert!((p.length_m() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn channels_at_matches_pointwise() {
        let ps = PathSet::new(vec![Path::new(5.2, 1.0), Path::new(16.0, 0.4)]);
        let freqs = [2.412e9, 5.18e9, 5.825e9];
        let hs = ps.channels_at(&freqs);
        for (h, f) in hs.iter().zip(freqs.iter()) {
            assert!(h.approx_eq(ps.channel_at(*f), 1e-12));
        }
    }

    #[test]
    fn frequency_selective_fading_from_two_paths() {
        // Two equal paths produce deep nulls at frequencies where they are
        // out of phase — a basic sanity check of Eq. 7's interference.
        let ps = PathSet::new(vec![Path::new(0.0, 1.0), Path::new(10.0, 1.0)]);
        // Delta tau = 10 ns -> null spacing 100 MHz; null when f*tau = k+1/2.
        let f_null = 0.05e9; // 0.5 cycles over 10 ns
        let f_peak = 0.1e9; // 1.0 cycle
        assert!(ps.channel_at(f_null).abs() < 1e-9);
        assert!((ps.channel_at(f_peak).abs() - 2.0).abs() < 1e-9);
    }
}
