//! Receiver noise: SNR-versus-distance model and complex AWGN on CSI.
//!
//! The paper's Fig. 8(a) attributes the growth of ranging error with
//! distance to "reduced signal-to-noise ratio at further distances"; this
//! module provides that coupling. SNR follows a log-distance model anchored
//! at a reference SNR at 1 m, and CSI samples receive circular complex
//! Gaussian noise with variance set by the per-sample SNR.

use chronos_math::Complex64;
use rand::Rng;

/// Log-distance SNR model.
#[derive(Debug, Clone, Copy)]
pub struct SnrModel {
    /// SNR at the 1 m reference distance, in dB.
    pub snr_at_1m_db: f64,
    /// Path-loss exponent (2.0 = free space; indoor offices run 2.5–3.5).
    pub path_loss_exp: f64,
    /// Hard floor on reported SNR, dB (receiver sensitivity).
    pub floor_db: f64,
}

impl Default for SnrModel {
    fn default() -> Self {
        // Calibrated so links at 15 m retain enough SNR for CSI, matching
        // the paper's ability to range up to 15 m with ~25 cm error.
        SnrModel {
            snr_at_1m_db: 38.0,
            path_loss_exp: 2.4,
            floor_db: -5.0,
        }
    }
}

impl SnrModel {
    /// SNR in dB at `distance_m`.
    pub fn snr_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.1);
        (self.snr_at_1m_db - 10.0 * self.path_loss_exp * d.log10()).max(self.floor_db)
    }

    /// Linear SNR at `distance_m`.
    pub fn snr_linear(&self, distance_m: f64) -> f64 {
        10f64.powf(self.snr_db(distance_m) / 10.0)
    }

    /// Noise standard deviation (per complex dimension) for a signal of RMS
    /// `signal_rms` at `distance_m`.
    ///
    /// Noise power = signal power / SNR, split evenly across the real and
    /// imaginary components.
    pub fn noise_sigma(&self, signal_rms: f64, distance_m: f64) -> f64 {
        let snr = self.snr_linear(distance_m);
        (signal_rms * signal_rms / snr / 2.0).sqrt()
    }

    /// Absolute receiver noise floor (per-component sigma), anchored so a
    /// unit-amplitude signal at 1 m sees exactly `snr_at_1m_db`.
    ///
    /// The CSI synthesizer uses this form: signal power already falls off
    /// with distance through the path amplitudes (1/d and wall losses), so
    /// the *effective* SNR of an obstructed link correctly drops below the
    /// pure log-distance prediction.
    pub fn floor_sigma(&self) -> f64 {
        sigma_for_snr_db(self.snr_at_1m_db)
    }
}

/// Per-component noise sigma at which a unit-amplitude signal sees exactly
/// `snr_db`: noise power `1/SNR`, split across the two components. Used by
/// the receiver noise floor and by jamming attackers that force an
/// effective SNR on targeted bands.
pub fn sigma_for_snr_db(snr_db: f64) -> f64 {
    let snr = 10f64.powf(snr_db / 10.0);
    (1.0 / snr / 2.0).sqrt()
}

/// Draws one sample of circular complex Gaussian noise with per-component
/// standard deviation `sigma`, using the Box–Muller transform (avoids a
/// dependency on `rand_distr`).
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> Complex64 {
    if sigma <= 0.0 {
        return Complex64::ZERO;
    }
    // Box-Muller: two uniforms -> two independent standard normals.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    Complex64::new(sigma * r * theta.cos(), sigma * r * theta.sin())
}

/// Adds i.i.d. complex Gaussian noise to each element of `signal`.
pub fn add_noise<R: Rng + ?Sized>(rng: &mut R, signal: &mut [Complex64], sigma: f64) {
    for s in signal.iter_mut() {
        *s += complex_gaussian(rng, sigma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn snr_monotone_decreasing_with_distance() {
        let m = SnrModel::default();
        let mut prev = f64::INFINITY;
        for d in [0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 30.0] {
            let s = m.snr_db(d);
            assert!(s <= prev, "snr not monotone at {d}");
            prev = s;
        }
    }

    #[test]
    fn snr_at_reference_distance() {
        let m = SnrModel::default();
        assert!((m.snr_db(1.0) - m.snr_at_1m_db).abs() < 1e-12);
    }

    #[test]
    fn snr_floor_applies() {
        let m = SnrModel {
            snr_at_1m_db: 10.0,
            path_loss_exp: 3.0,
            floor_db: -5.0,
        };
        assert!((m.snr_db(1e6) + 5.0).abs() < 1e-12);
    }

    #[test]
    fn ten_x_distance_costs_exponent_times_ten_db() {
        let m = SnrModel {
            snr_at_1m_db: 30.0,
            path_loss_exp: 2.0,
            floor_db: -100.0,
        };
        assert!((m.snr_db(1.0) - m.snr_db(10.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn sigma_for_snr_matches_floor_sigma() {
        let m = SnrModel::default();
        assert!((sigma_for_snr_db(m.snr_at_1m_db) - m.floor_sigma()).abs() < 1e-15);
        // 0 dB: noise power 1 split over two components.
        assert!((sigma_for_snr_db(0.0) - (0.5f64).sqrt()).abs() < 1e-12);
        // Lower SNR -> more noise.
        assert!(sigma_for_snr_db(-5.0) > sigma_for_snr_db(5.0));
    }

    #[test]
    fn noise_sigma_scales_inverse_sqrt_snr() {
        let m = SnrModel::default();
        let s1 = m.noise_sigma(1.0, 1.0);
        let s2 = m.noise_sigma(1.0, 10.0);
        assert!(s2 > s1);
        // Doubling signal RMS doubles sigma.
        assert!((m.noise_sigma(2.0, 5.0) / m.noise_sigma(1.0, 5.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let sigma = 0.3;
        let n = 20_000;
        let mut sum = Complex64::ZERO;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let z = complex_gaussian(&mut rng, sigma);
            sum += z;
            sum_sq += z.norm_sq();
        }
        let mean = sum / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        // E|z|^2 = 2 sigma^2.
        let var = sum_sq / n as f64;
        assert!((var - 2.0 * sigma * sigma).abs() < 0.01, "var {var}");
    }

    #[test]
    fn zero_sigma_is_noiseless() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(complex_gaussian(&mut rng, 0.0), Complex64::ZERO);
        let mut v = vec![Complex64::ONE; 4];
        add_noise(&mut rng, &mut v, 0.0);
        assert!(v.iter().all(|z| *z == Complex64::ONE));
    }

    #[test]
    fn add_noise_perturbs_all_samples() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v = vec![Complex64::ONE; 64];
        add_noise(&mut rng, &mut v, 0.1);
        assert!(v.iter().all(|z| *z != Complex64::ONE));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(complex_gaussian(&mut a, 1.0), complex_gaussian(&mut b, 1.0));
        }
    }
}
