//! Band-subset selection for adaptive sweeps.
//!
//! A full Chronos fix hops all 35 U.S. Wi-Fi bands (~84 ms of airtime,
//! paper Fig. 9a). Once a client's distance is already approximately
//! known — because an online tracker carries a prior across fixes — a
//! *subset* of bands suffices: the sparse inversion only has to refine a
//! delay near the prediction, not disambiguate the whole 200 ns range.
//! What a subset must preserve is the **aperture** (the frequency span
//! sets delay resolution) and a **low-ambiguity spacing**: band centers
//! on a coarse common raster produce a quasi-periodic NDFT point
//! response whose grating lobes alias energy to wrong delays, exactly
//! the ghosts the estimator's first-peak veto fights.
//!
//! [`select_subset`] therefore picks subsets greedily by the
//! [`ambiguity`] metric — the peak sidelobe level of the subset's own
//! point response — which naturally prefers co-prime-looking spacings
//! (the §4 Chinese-remainder intuition: pairwise spacings that share no
//! large common divisor push grating lobes out of the scanned range).
//! Selection is deterministic, so subsets are cacheable per
//! `(plan, k)`; the ranging service memoizes them and the shared
//! `PlanCache` in `chronos-core` then holds one NDFT plan per subset.

use crate::bands::Band;
use chronos_math::Complex64;

/// Peak sidelobe level of the point response of `freqs_hz`, scanned over
/// delay offsets `(2·resolution, max_offset_ns]` in coarse steps.
///
/// The point response at offset `τ` is `|Σ_f e^{j2πfτ}| / n`: 1.0 at the
/// main lobe, and close to 1.0 again wherever the band spacings are
/// commensurate (a grating lobe). Lower is better; an ideal co-prime
/// spread stays near `1/√n`.
///
/// ```
/// use chronos_rf::bands::band_plan_5ghz;
/// use chronos_rf::subset::ambiguity;
///
/// let freqs: Vec<f64> = band_plan_5ghz().iter().map(|b| b.center_hz).collect();
/// let a = ambiguity(&freqs, 100.0);
/// assert!(a > 0.0 && a < 1.0);
/// // A 20 MHz-rastered *regular* comb is maximally ambiguous: its point
/// // response returns to 1.0 every 50 ns.
/// let comb: Vec<f64> = (0..10).map(|i| 5.18e9 + i as f64 * 20e6).collect();
/// assert!(ambiguity(&comb, 100.0) > 0.99);
/// ```
pub fn ambiguity(freqs_hz: &[f64], max_offset_ns: f64) -> f64 {
    if freqs_hz.len() < 2 {
        return 1.0;
    }
    let n = freqs_hz.len() as f64;
    let lo = freqs_hz.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = freqs_hz.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    if span <= 0.0 {
        return 1.0;
    }
    // Main-lobe exclusion: twice the Rayleigh resolution of the aperture.
    let res_ns = 1e9 / span;
    let start = 2.0 * res_ns;
    if start >= max_offset_ns {
        return 1.0;
    }
    let step = 0.05;
    let mut worst = 0.0f64;
    let mut x = start;
    while x <= max_offset_ns {
        let mut acc = Complex64::ZERO;
        for f in freqs_hz {
            acc += Complex64::cis(2.0 * std::f64::consts::PI * f * x * 1e-9);
        }
        worst = worst.max(acc.abs() / n);
        x += step;
    }
    worst
}

/// Quality summary of a chosen subset (used by docs/benches to justify
/// subset sizes; see `docs/TRACKING.md`).
#[derive(Debug, Clone, Copy)]
pub struct SubsetQuality {
    /// Number of bands in the subset.
    pub n_bands: usize,
    /// Frequency aperture (max − min center), Hz.
    pub span_hz: f64,
    /// Peak sidelobe level of the subset's point response ([`ambiguity`]).
    pub peak_sidelobe: f64,
}

/// Scores a subset: aperture plus ambiguity over `max_offset_ns`.
pub fn subset_quality(bands: &[Band], max_offset_ns: f64) -> SubsetQuality {
    let freqs: Vec<f64> = bands.iter().map(|b| b.center_hz).collect();
    let lo = freqs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = freqs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    SubsetQuality {
        n_bands: bands.len(),
        span_hz: (hi - lo).max(0.0),
        peak_sidelobe: ambiguity(&freqs, max_offset_ns),
    }
}

/// Deterministically selects `k` bands of `plan` for a TRACK-mode sweep.
///
/// The endpoints of the plan are always kept (they fix the aperture and
/// hence the delay resolution); the remaining `k - 2` members are added
/// greedily, each step choosing the candidate that minimizes the
/// [`ambiguity`] of the subset built so far. Ties break toward the
/// lower-frequency candidate, so the result is a pure function of
/// `(plan, k, max_offset_ns)` and safe to memoize.
///
/// Returns the subset in ascending plan order. When `k >= plan.len()`
/// (or `k < 2`) the whole plan is returned unchanged.
///
/// ```
/// use chronos_rf::bands::band_plan_5ghz;
/// use chronos_rf::subset::{ambiguity, select_subset};
///
/// let plan = band_plan_5ghz();
/// let sub = select_subset(&plan, 10, 100.0);
/// assert_eq!(sub.len(), 10);
/// // Aperture is preserved: first and last bands of the plan survive.
/// assert_eq!(sub.first().unwrap().channel, plan.first().unwrap().channel);
/// assert_eq!(sub.last().unwrap().channel, plan.last().unwrap().channel);
/// // The greedy pick is far less ambiguous than a naive regular stride.
/// let freqs: Vec<f64> = sub.iter().map(|b| b.center_hz).collect();
/// let stride: Vec<f64> = plan.iter().step_by(2).take(10).map(|b| b.center_hz).collect();
/// assert!(ambiguity(&freqs, 100.0) < ambiguity(&stride, 100.0));
/// ```
pub fn select_subset(plan: &[Band], k: usize, max_offset_ns: f64) -> Vec<Band> {
    if k >= plan.len() || k < 2 || plan.len() < 2 {
        return plan.to_vec();
    }
    let mut chosen: Vec<usize> = vec![0, plan.len() - 1];
    let mut remaining: Vec<usize> = (1..plan.len() - 1).collect();
    while chosen.len() < k {
        let mut best: Option<(usize, f64)> = None; // (position in remaining, score)
        for (pos, &cand) in remaining.iter().enumerate() {
            let mut freqs: Vec<f64> = chosen.iter().map(|&i| plan[i].center_hz).collect();
            freqs.push(plan[cand].center_hz);
            let score = ambiguity(&freqs, max_offset_ns);
            // Strict `<` keeps the earliest (lowest-frequency) candidate
            // on ties, making the pick deterministic.
            if best.map(|(_, s)| score < s).unwrap_or(true) {
                best = Some((pos, score));
            }
        }
        let (pos, _) = best.expect("remaining candidates exist");
        chosen.push(remaining.remove(pos));
    }
    chosen.sort_unstable();
    chosen.into_iter().map(|i| plan[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bands::{band_plan, band_plan_5ghz};

    #[test]
    fn regular_comb_is_ambiguous_scattered_plan_is_not() {
        let comb: Vec<f64> = (0..12).map(|i| 5.5e9 + i as f64 * 20e6).collect();
        let plan: Vec<f64> = band_plan_5ghz().iter().map(|b| b.center_hz).collect();
        assert!(ambiguity(&comb, 120.0) > 0.99);
        assert!(ambiguity(&plan, 120.0) < 0.9);
    }

    #[test]
    fn degenerate_inputs_score_worst() {
        assert_eq!(ambiguity(&[], 100.0), 1.0);
        assert_eq!(ambiguity(&[5.2e9], 100.0), 1.0);
        assert_eq!(ambiguity(&[5.2e9, 5.2e9], 100.0), 1.0);
    }

    #[test]
    fn select_keeps_endpoints_and_size() {
        let plan = band_plan_5ghz();
        for k in [5usize, 8, 12, 16] {
            let sub = select_subset(&plan, k, 100.0);
            assert_eq!(sub.len(), k);
            assert_eq!(sub.first().unwrap().channel, plan.first().unwrap().channel);
            assert_eq!(sub.last().unwrap().channel, plan.last().unwrap().channel);
            // Ascending plan order preserved.
            for w in sub.windows(2) {
                assert!(w[1].center_hz > w[0].center_hz);
            }
        }
    }

    #[test]
    fn oversized_or_tiny_requests_return_whole_plan() {
        let plan = band_plan_5ghz();
        assert_eq!(select_subset(&plan, 24, 100.0).len(), 24);
        assert_eq!(select_subset(&plan, 99, 100.0).len(), 24);
        assert_eq!(select_subset(&plan, 1, 100.0).len(), 24);
        assert_eq!(select_subset(&plan, 0, 100.0).len(), 24);
    }

    #[test]
    fn selection_is_deterministic() {
        let plan = band_plan();
        let a = select_subset(&plan, 12, 100.0);
        let b = select_subset(&plan, 12, 100.0);
        let ca: Vec<u16> = a.iter().map(|x| x.channel).collect();
        let cb: Vec<u16> = b.iter().map(|x| x.channel).collect();
        assert_eq!(ca, cb);
    }

    #[test]
    fn greedy_subset_beats_regular_stride() {
        let plan = band_plan_5ghz();
        let k = 10;
        let greedy = subset_quality(&select_subset(&plan, k, 100.0), 100.0);
        let stride: Vec<Band> = plan
            .iter()
            .step_by(plan.len() / k)
            .cloned()
            .take(k)
            .collect();
        let strided = subset_quality(&stride, 100.0);
        assert!(
            greedy.peak_sidelobe < strided.peak_sidelobe,
            "greedy {} vs stride {}",
            greedy.peak_sidelobe,
            strided.peak_sidelobe
        );
        // Resolution is not sacrificed: full 5 GHz aperture retained.
        assert!(greedy.span_hz > 0.6e9);
    }
}
