//! Indoor environments and image-method multipath enumeration.
//!
//! An [`Environment`] is a set of reflecting surfaces (walls, partitions,
//! metal cabinets) plus optional attenuating obstructions. Given transmitter
//! and receiver positions it enumerates propagation paths:
//!
//! * the direct (line-of-sight) path, attenuated if obstructed;
//! * first-order specular reflections via the image method;
//! * optional second-order reflections (image of an image).
//!
//! Each path carries a geometric length and a cumulative amplitude factor;
//! [`crate::propagation`] turns them into delays and channel responses.

use crate::bands::Band;
use crate::geometry::{Point, Segment};
use crate::propagation::{Path, PathSet};

/// Reflectivity classes for surfaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Material {
    /// Drywall / office partition: moderate reflection, passes some energy.
    Drywall,
    /// Concrete / brick outer wall: strong reflector, heavy through-loss.
    Concrete,
    /// Metal (cabinets, whiteboards): near-perfect reflector, opaque.
    Metal,
    /// Glass: weak reflector, mostly transparent.
    Glass,
}

impl Material {
    /// Amplitude reflection coefficient (fraction of field that stays
    /// *specular* on reflection). Values are at the conservative end of
    /// indoor measurements: rough surfaces scatter a large share of the
    /// incident energy diffusely, which never reaches the receiver as a
    /// coherent ray.
    pub fn reflectivity(self) -> f64 {
        match self {
            Material::Drywall => 0.4,
            Material::Concrete => 0.5,
            Material::Metal => 0.85,
            Material::Glass => 0.25,
        }
    }

    /// Amplitude transmission coefficient (fraction of field passing
    /// through the surface) — used for obstruction of the direct path.
    pub fn transmissivity(self) -> f64 {
        match self {
            Material::Drywall => 0.6,
            Material::Concrete => 0.25,
            Material::Metal => 0.05,
            Material::Glass => 0.85,
        }
    }
}

/// A reflecting/attenuating surface in the environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wall {
    /// The surface geometry.
    pub segment: Segment,
    /// The surface material.
    pub material: Material,
}

/// A 2-D indoor environment.
#[derive(Debug, Clone, Default)]
pub struct Environment {
    walls: Vec<Wall>,
}

/// Knobs for path enumeration.
#[derive(Debug, Clone, Copy)]
pub struct PathEnumConfig {
    /// Include second-order (double-bounce) reflections.
    pub second_order: bool,
    /// Extra amplitude factor applied to second-order paths on top of the
    /// two reflection coefficients: each extra bounce loses coherence to
    /// diffuse scattering and beam spreading beyond the image-method
    /// idealization. Keeps long double-bounce paths (which alias in the
    /// 200 ns-periodic NDFT measurement) at physically plausible strength.
    pub second_order_loss: f64,
    /// Drop paths whose amplitude falls below this fraction of the direct
    /// free-space amplitude at 1 m. Keeps path sets sparse, matching the
    /// paper's observation that few paths dominate indoors (§6.2).
    pub amplitude_floor: f64,
    /// Maximum number of paths retained (strongest first, but the direct
    /// path is always kept if it exists).
    pub max_paths: usize,
}

impl Default for PathEnumConfig {
    fn default() -> Self {
        PathEnumConfig {
            second_order: true,
            second_order_loss: 0.35,
            amplitude_floor: 1e-4,
            max_paths: 12,
        }
    }
}

impl Environment {
    /// An empty environment (free space): only the direct path exists.
    pub fn free_space() -> Self {
        Environment { walls: Vec::new() }
    }

    /// Creates an environment from walls.
    pub fn new(walls: Vec<Wall>) -> Self {
        Environment { walls }
    }

    /// Adds a wall.
    pub fn add_wall(&mut self, segment: Segment, material: Material) {
        self.walls.push(Wall { segment, material });
    }

    /// Adds the four walls of an axis-aligned rectangular room.
    pub fn add_room(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, material: Material) {
        let c = [
            Point::new(x0, y0),
            Point::new(x1, y0),
            Point::new(x1, y1),
            Point::new(x0, y1),
        ];
        for i in 0..4 {
            self.add_wall(Segment::new(c[i], c[(i + 1) % 4]), material);
        }
    }

    /// The walls of this environment.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// Cumulative transmissivity of every wall crossing the open segment
    /// `p -> q`. 1.0 when unobstructed.
    pub fn through_loss(&self, p: Point, q: Point) -> f64 {
        let mut t = 1.0;
        for w in &self.walls {
            if w.segment.blocks(p, q, 1e-9) {
                t *= w.material.transmissivity();
            }
        }
        t
    }

    /// Whether `p` and `q` are in line of sight (no wall crossing).
    pub fn is_los(&self, p: Point, q: Point) -> bool {
        self.walls.iter().all(|w| !w.segment.blocks(p, q, 1e-9))
    }

    /// Line-of-sight mask from `p` to each point of `qs` — one flag per
    /// receive antenna when `qs` are array positions. Localization
    /// scenarios use this to count how many of an AP's antennas a walker
    /// is obstructed from (the NLOS degradation observable).
    pub fn los_mask(&self, p: Point, qs: &[Point]) -> Vec<bool> {
        qs.iter().map(|q| self.is_los(p, *q)).collect()
    }

    /// Enumerates propagation paths from `tx` to `rx`.
    ///
    /// Amplitudes follow a free-space 1/d law scaled by reflection and
    /// through-wall coefficients, normalized so a 1 m unobstructed path has
    /// amplitude 1. Paths are returned sorted by ascending delay.
    pub fn paths(&self, tx: Point, rx: Point, cfg: &PathEnumConfig) -> PathSet {
        let mut paths: Vec<Path> = Vec::new();

        // Direct path (always geometrically present; may be attenuated).
        let d_direct = tx.dist(rx).max(1e-6);
        let amp_direct = self.through_loss(tx, rx) / d_direct;
        paths.push(Path::from_length(d_direct, amp_direct));

        // First-order reflections.
        for (wi, w) in self.walls.iter().enumerate() {
            if let Some(p) = self.first_order_path(tx, rx, w) {
                paths.push(p);
            }
            // Second-order: mirror tx across wall wi, then across wall wj.
            if cfg.second_order {
                for (wj, w2) in self.walls.iter().enumerate() {
                    if wi == wj {
                        continue;
                    }
                    if let Some(mut p) = self.second_order_path(tx, rx, w, w2) {
                        p.amplitude *= cfg.second_order_loss;
                        paths.push(p);
                    }
                }
            }
        }

        // Cull: drop sub-floor paths, keep strongest `max_paths` (direct
        // path always retained), then sort by delay.
        let direct = paths[0];
        let mut rest: Vec<Path> = paths
            .into_iter()
            .skip(1)
            .filter(|p| p.amplitude >= cfg.amplitude_floor)
            .collect();
        rest.sort_by(|a, b| b.amplitude.partial_cmp(&a.amplitude).unwrap());
        rest.truncate(cfg.max_paths.saturating_sub(1));
        let mut all = Vec::with_capacity(rest.len() + 1);
        if direct.amplitude >= cfg.amplitude_floor {
            all.push(direct);
        }
        all.extend(rest);
        all.sort_by(|a, b| a.delay_ns.partial_cmp(&b.delay_ns).unwrap());
        PathSet::new(all)
    }

    /// Single-bounce path off wall `w`, if the reflection point lies on the
    /// wall and both legs are clear of *other* walls (other walls attenuate
    /// via through-loss rather than blocking entirely).
    fn first_order_path(&self, tx: Point, rx: Point, w: &Wall) -> Option<Path> {
        let img = w.segment.mirror(tx);
        let hit = w.segment.intersect(&Segment::new(img, rx))?;
        // Degenerate reflections at the endpoints of the wall are dropped.
        if hit.dist(w.segment.a) < 1e-9 || hit.dist(w.segment.b) < 1e-9 {
            return None;
        }
        let length = tx.dist(hit) + hit.dist(rx);
        if length < 1e-6 {
            return None;
        }
        let mut amp = w.material.reflectivity() / length;
        amp *= self.through_loss_excluding(tx, hit, w);
        amp *= self.through_loss_excluding(hit, rx, w);
        Some(Path::from_length(length, amp))
    }

    /// Double-bounce path: tx -> w1 -> w2 -> rx via iterated images.
    fn second_order_path(&self, tx: Point, rx: Point, w1: &Wall, w2: &Wall) -> Option<Path> {
        let img1 = w1.segment.mirror(tx);
        let img2 = w2.segment.mirror(img1);
        let hit2 = w2.segment.intersect(&Segment::new(img2, rx))?;
        if hit2.dist(w2.segment.a) < 1e-9 || hit2.dist(w2.segment.b) < 1e-9 {
            return None;
        }
        let hit1 = w1.segment.intersect(&Segment::new(img1, hit2))?;
        if hit1.dist(w1.segment.a) < 1e-9 || hit1.dist(w1.segment.b) < 1e-9 {
            return None;
        }
        let length = tx.dist(hit1) + hit1.dist(hit2) + hit2.dist(rx);
        if length < 1e-6 {
            return None;
        }
        let mut amp = w1.material.reflectivity() * w2.material.reflectivity() / length;
        amp *= self.through_loss_excluding(tx, hit1, w1);
        amp *= self.through_loss_excluding2(hit1, hit2, w1, w2);
        amp *= self.through_loss_excluding(hit2, rx, w2);
        Some(Path::from_length(length, amp))
    }

    fn through_loss_excluding(&self, p: Point, q: Point, skip: &Wall) -> f64 {
        let mut t = 1.0;
        for w in &self.walls {
            if std::ptr::eq(w, skip) || w == skip {
                continue;
            }
            if w.segment.blocks(p, q, 1e-9) {
                t *= w.material.transmissivity();
            }
        }
        t
    }

    fn through_loss_excluding2(&self, p: Point, q: Point, s1: &Wall, s2: &Wall) -> f64 {
        let mut t = 1.0;
        for w in &self.walls {
            if w == s1 || w == s2 {
                continue;
            }
            if w.segment.blocks(p, q, 1e-9) {
                t *= w.material.transmissivity();
            }
        }
        t
    }
}

/// An adversary attached to a measurement link.
///
/// Chronos-style ToF ranging faces three classic RF attacks (see
/// `docs/ADVERSARIAL.md`): distance spoofing via delayed replay, CSI
/// injection, and selective jamming. An `Attacker` composes with the
/// honest channel synthesis in [`crate::csi::MeasurementContext`]: replay
/// and injection corrupt the *measured* path set (ground truth stays
/// clean), jamming raises the receiver noise floor on the targeted
/// channels and costs frames at the link layer. A context with
/// `attacker: None` performs bit-identical computation — the adversarial
/// machinery is strictly opt-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Attacker {
    /// Delayed replay: the adversary captures and retransmits the ranging
    /// exchange through a delay line, shifting every apparent path by
    /// `extra_delay_ns` and spoofing a longer distance (~0.3 m per ns).
    ReplayOffset {
        /// Extra delay injected into every path, nanoseconds.
        extra_delay_ns: f64,
    },
    /// CSI injection: the adversary superimposes a forged multipath
    /// profile onto the genuine channel, steering the sparse recovery
    /// toward phantom paths.
    CsiInject {
        /// The forged paths added on top of the real channel.
        forged_profile: PathSet,
    },
    /// Selective jamming: a noise emitter parked on specific Wi-Fi
    /// channels. Jammed bands see their effective SNR floored at
    /// `snr_floor_db` (raising CSI noise) and lose frames outright when
    /// the floor drops low enough to break packet detection.
    BandJam {
        /// Jammed channel numbers (matching [`Band::channel`]).
        bands: Vec<u16>,
        /// Effective SNR on jammed bands, dB. Lower = stronger jamming.
        snr_floor_db: f64,
    },
}

impl Attacker {
    /// The path set the *measurement* sees under this attack, or `None`
    /// when the attack leaves paths untouched (jamming corrupts noise and
    /// frames, not geometry). Ground truth must always be computed from
    /// the clean set before calling this.
    pub fn corrupt_paths(&self, clean: &PathSet) -> Option<PathSet> {
        match self {
            Attacker::ReplayOffset { extra_delay_ns } => {
                let shifted: Vec<Path> = clean
                    .paths()
                    .iter()
                    .map(|p| Path::new(p.delay_ns + extra_delay_ns, p.amplitude))
                    .collect();
                Some(PathSet::new(shifted))
            }
            Attacker::CsiInject { forged_profile } => {
                let mut all: Vec<Path> = clean.paths().to_vec();
                all.extend_from_slice(forged_profile.paths());
                Some(PathSet::new(all))
            }
            Attacker::BandJam { .. } => None,
        }
    }

    /// Whether this attack jams the given channel.
    pub fn jams(&self, channel: u16) -> bool {
        match self {
            Attacker::BandJam { bands, .. } => bands.contains(&channel),
            _ => false,
        }
    }

    /// Per-component noise sigma the jammer imposes on `channel`, if this
    /// attack jams it: the sigma at which a unit-amplitude signal sees
    /// exactly `snr_floor_db`.
    pub fn jam_sigma(&self, channel: u16) -> Option<f64> {
        match self {
            Attacker::BandJam {
                bands,
                snr_floor_db,
            } if bands.contains(&channel) => Some(crate::noise::sigma_for_snr_db(*snr_floor_db)),
            _ => None,
        }
    }

    /// Extra frame-loss probability a jammed band suffers at the link
    /// layer: packet detection starts failing as the SNR floor drops
    /// through ~15 dB and is nearly certain to fail below 0 dB. Weak
    /// jamming (high floor) costs no frames — it only dirties CSI.
    pub fn jam_frame_loss(&self) -> f64 {
        match self {
            Attacker::BandJam { snr_floor_db, .. } => {
                ((15.0 - snr_floor_db) / 20.0).clamp(0.0, 0.95)
            }
            _ => 0.0,
        }
    }

    /// Per-plan-index extra frame-loss vector for a sweep over `plan`, or
    /// `None` when this attack costs no frames on any planned band. The
    /// link layer ORs this loss into its erasure model (see
    /// `SweepConfig::band_loss`).
    pub fn band_loss(&self, plan: &[Band]) -> Option<Vec<f64>> {
        let loss = self.jam_frame_loss();
        if loss <= 0.0 {
            return None;
        }
        let v: Vec<f64> = plan
            .iter()
            .map(|b| if self.jams(b.channel) { loss } else { 0.0 })
            .collect();
        if v.iter().all(|l| *l <= 0.0) {
            None
        } else {
            Some(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos_math::constants::m_to_ns;

    #[test]
    fn free_space_single_path() {
        let env = Environment::free_space();
        let ps = env.paths(
            Point::new(0.0, 0.0),
            Point::new(0.6, 0.0),
            &PathEnumConfig::default(),
        );
        assert_eq!(ps.paths().len(), 1);
        let p = ps.paths()[0];
        // 0.6 m ~ 2 ns, the paper's §4 example.
        assert!((p.delay_ns - m_to_ns(0.6)).abs() < 1e-9);
        assert!((p.delay_ns - 2.0).abs() < 0.01);
    }

    #[test]
    fn one_wall_adds_one_reflection() {
        let mut env = Environment::free_space();
        env.add_wall(
            Segment::new(Point::new(-10.0, 2.0), Point::new(10.0, 2.0)),
            Material::Concrete,
        );
        let tx = Point::new(-1.0, 0.0);
        let rx = Point::new(1.0, 0.0);
        let ps = env.paths(
            tx,
            rx,
            &PathEnumConfig {
                second_order: false,
                ..Default::default()
            },
        );
        assert_eq!(ps.paths().len(), 2);
        // Direct: 2 m. Reflected: via y=2 -> image at (-1,4), length sqrt(4+16).
        let direct = ps.paths()[0];
        let refl = ps.paths()[1];
        assert!((direct.delay_ns - m_to_ns(2.0)).abs() < 1e-9);
        let expect_len = ((2.0f64).powi(2) + (4.0f64).powi(2)).sqrt();
        assert!((refl.delay_ns - m_to_ns(expect_len)).abs() < 1e-9);
        assert!(refl.amplitude < direct.amplitude);
    }

    #[test]
    fn direct_path_always_first() {
        let mut env = Environment::free_space();
        env.add_room(0.0, 0.0, 20.0, 20.0, Material::Concrete);
        let ps = env.paths(
            Point::new(3.0, 3.0),
            Point::new(17.0, 12.0),
            &PathEnumConfig::default(),
        );
        let delays: Vec<f64> = ps.paths().iter().map(|p| p.delay_ns).collect();
        assert!(delays.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            (delays[0] - m_to_ns(Point::new(3.0, 3.0).dist(Point::new(17.0, 12.0)))).abs() < 1e-9
        );
    }

    #[test]
    fn room_generates_rich_multipath() {
        let mut env = Environment::free_space();
        env.add_room(0.0, 0.0, 20.0, 20.0, Material::Concrete);
        let cfg = PathEnumConfig::default();
        let ps = env.paths(Point::new(5.0, 5.0), Point::new(15.0, 9.0), &cfg);
        // 4 walls -> direct + 4 first-order (+ second-order culled to cap).
        assert!(ps.paths().len() >= 5, "{}", ps.paths().len());
        assert!(ps.paths().len() <= cfg.max_paths);
    }

    #[test]
    fn obstruction_attenuates_but_keeps_direct_path() {
        let mut env = Environment::free_space();
        // A drywall partition between tx and rx.
        env.add_wall(
            Segment::new(Point::new(1.0, -1.0), Point::new(1.0, 1.0)),
            Material::Drywall,
        );
        let tx = Point::new(0.0, 0.0);
        let rx = Point::new(2.0, 0.0);
        let ps = env.paths(tx, rx, &PathEnumConfig::default());
        let direct = ps.paths()[0];
        // Amplitude = transmissivity / distance.
        assert!((direct.amplitude - Material::Drywall.transmissivity() / 2.0).abs() < 1e-9);
        assert!(!env.is_los(tx, rx));
    }

    #[test]
    fn los_mask_flags_blocked_antennas() {
        let mut env = Environment::free_space();
        // A short wall shadowing only the leftmost antenna.
        env.add_wall(
            Segment::new(Point::new(-1.0, 1.0), Point::new(-0.3, 1.0)),
            Material::Concrete,
        );
        let antennas = [
            Point::new(-0.6, 0.0),
            Point::new(0.6, 0.0),
            Point::new(0.0, 0.8),
        ];
        let mask = env.los_mask(Point::new(-0.6, 3.0), &antennas);
        assert_eq!(mask, vec![false, true, true]);
    }

    #[test]
    fn metal_blocks_near_everything() {
        let mut env = Environment::free_space();
        env.add_wall(
            Segment::new(Point::new(1.0, -5.0), Point::new(1.0, 5.0)),
            Material::Metal,
        );
        let loss = env.through_loss(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        assert!((loss - 0.05).abs() < 1e-9);
    }

    #[test]
    fn second_order_paths_longer_than_first_order() {
        let mut env = Environment::free_space();
        env.add_room(0.0, 0.0, 10.0, 10.0, Material::Metal);
        let tx = Point::new(2.0, 5.0);
        let rx = Point::new(8.0, 5.0);
        let first = env.paths(
            tx,
            rx,
            &PathEnumConfig {
                second_order: false,
                max_paths: 32,
                ..Default::default()
            },
        );
        let second = env.paths(
            tx,
            rx,
            &PathEnumConfig {
                second_order: true,
                max_paths: 32,
                ..Default::default()
            },
        );
        assert!(second.paths().len() > first.paths().len());
        let max_first = first.paths().iter().map(|p| p.delay_ns).fold(0.0, f64::max);
        let max_second = second
            .paths()
            .iter()
            .map(|p| p.delay_ns)
            .fold(0.0, f64::max);
        assert!(max_second > max_first);
    }

    #[test]
    fn amplitude_floor_and_cap_respected() {
        let mut env = Environment::free_space();
        env.add_room(0.0, 0.0, 20.0, 20.0, Material::Concrete);
        let cfg = PathEnumConfig {
            second_order: true,
            amplitude_floor: 1e-4,
            max_paths: 5,
            ..Default::default()
        };
        let ps = env.paths(Point::new(1.0, 1.0), Point::new(19.0, 19.0), &cfg);
        assert!(ps.paths().len() <= 5);
        assert!(ps.paths().iter().all(|p| p.amplitude >= 1e-4));
    }

    #[test]
    fn reflection_point_must_lie_on_wall() {
        let mut env = Environment::free_space();
        // Short wall segment far off to the side: mirror image exists but the
        // reflection point misses the physical wall -> no reflected path.
        env.add_wall(
            Segment::new(Point::new(100.0, 2.0), Point::new(101.0, 2.0)),
            Material::Metal,
        );
        let ps = env.paths(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            &PathEnumConfig::default(),
        );
        assert_eq!(ps.paths().len(), 1);
    }

    #[test]
    fn replay_shifts_every_path_uniformly() {
        let clean = PathSet::new(vec![Path::new(5.0, 1.0), Path::new(12.0, 0.4)]);
        let atk = Attacker::ReplayOffset {
            extra_delay_ns: 7.5,
        };
        let dirty = atk.corrupt_paths(&clean).unwrap();
        assert_eq!(dirty.len(), clean.len());
        for (c, d) in clean.paths().iter().zip(dirty.paths()) {
            assert!((d.delay_ns - c.delay_ns - 7.5).abs() < 1e-12);
            assert_eq!(d.amplitude, c.amplitude);
        }
        // Truth must come from the clean set; the spoofed ToF moved.
        assert!((dirty.true_tof_ns().unwrap() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn inject_superimposes_forged_paths_sorted() {
        let clean = PathSet::new(vec![Path::new(10.0, 1.0)]);
        let atk = Attacker::CsiInject {
            forged_profile: PathSet::new(vec![Path::new(4.0, 2.0), Path::new(30.0, 0.5)]),
        };
        let dirty = atk.corrupt_paths(&clean).unwrap();
        let delays: Vec<f64> = dirty.paths().iter().map(|p| p.delay_ns).collect();
        assert_eq!(delays, vec![4.0, 10.0, 30.0]);
        // A strong forged early path hijacks the apparent direct path.
        assert_eq!(dirty.true_tof_ns(), Some(4.0));
        assert_eq!(clean.true_tof_ns(), Some(10.0));
    }

    #[test]
    fn jam_targets_only_listed_channels() {
        let atk = Attacker::BandJam {
            bands: vec![36, 40],
            snr_floor_db: 5.0,
        };
        assert!(atk.jams(36) && atk.jams(40));
        assert!(!atk.jams(44) && !atk.jams(1));
        assert!(atk.jam_sigma(36).unwrap() > 0.0);
        assert!(atk.jam_sigma(44).is_none());
        assert!(atk.corrupt_paths(&PathSet::single(5.0, 1.0)).is_none());
        // Replay/inject never jam.
        let replay = Attacker::ReplayOffset {
            extra_delay_ns: 3.0,
        };
        assert!(!replay.jams(36));
        assert_eq!(replay.jam_frame_loss(), 0.0);
    }

    #[test]
    fn jam_frame_loss_grows_as_floor_drops() {
        let loss_at = |db: f64| {
            Attacker::BandJam {
                bands: vec![36],
                snr_floor_db: db,
            }
            .jam_frame_loss()
        };
        assert_eq!(loss_at(20.0), 0.0); // weak: CSI noise only
        assert!((loss_at(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(loss_at(-10.0), 0.95); // clamped
        assert!(loss_at(0.0) < loss_at(-5.0));
    }

    #[test]
    fn band_loss_maps_plan_indices() {
        let plan = crate::bands::band_plan_5ghz();
        let atk = Attacker::BandJam {
            bands: vec![plan[0].channel, plan[3].channel],
            snr_floor_db: -5.0,
        };
        let loss = atk.band_loss(&plan).unwrap();
        assert_eq!(loss.len(), plan.len());
        assert!(loss[0] > 0.9 && loss[3] > 0.9);
        assert!(loss[1] == 0.0 && loss[2] == 0.0);
        // Weak jamming (no frame loss) and off-plan channels yield None.
        let weak = Attacker::BandJam {
            bands: vec![plan[0].channel],
            snr_floor_db: 20.0,
        };
        assert!(weak.band_loss(&plan).is_none());
        let off_plan = Attacker::BandJam {
            bands: vec![1],
            snr_floor_db: -5.0,
        };
        assert!(off_plan.band_loss(&plan).is_none());
    }
}
