//! 802.11n OFDM subcarrier layout and the Intel 5300 CSI report grid.
//!
//! A 20 MHz 802.11n channel carries 64 subcarriers spaced 312.5 kHz apart,
//! indices −32…31 around the center frequency. Data/pilots occupy −28…28
//! (excluding 0); the zero-subcarrier coincides with the radio's DC offset
//! and is never transmitted (paper §5) — which is precisely why Chronos must
//! *interpolate* the channel there.
//!
//! The Intel 5300 CSI Tool reports the channel on a fixed 30-subcarrier
//! subset of those 56 populated subcarriers (grouping Ng = 2 per the
//! 802.11n compressed-CSI format).

/// Subcarrier spacing of 20 MHz 802.11n, in Hz.
pub const SUBCARRIER_SPACING_HZ: f64 = 312_500.0;

/// The 30 subcarrier indices reported by the Intel 5300 CSI Tool for a
/// 20 MHz channel (Ng = 2 grouping). Note the index 0 (DC) is absent.
pub const INTEL5300_SUBCARRIERS: [i32; 30] = [
    -28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1, 1, 3, 5, 7, 9, 11, 13,
    15, 17, 19, 21, 23, 25, 27, 28,
];

/// All 56 populated (data + pilot) subcarrier indices of 20 MHz 802.11n.
pub fn populated_subcarriers() -> Vec<i32> {
    (-28..=28).filter(|k| *k != 0).collect()
}

/// A subcarrier grid: which indices are measured, around which center
/// frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct SubcarrierLayout {
    indices: Vec<i32>,
}

impl SubcarrierLayout {
    /// The Intel 5300 CSI Tool layout (30 subcarriers).
    pub fn intel5300() -> Self {
        SubcarrierLayout {
            indices: INTEL5300_SUBCARRIERS.to_vec(),
        }
    }

    /// The full populated layout (56 subcarriers), for idealized studies.
    pub fn full() -> Self {
        SubcarrierLayout {
            indices: populated_subcarriers(),
        }
    }

    /// A custom layout. Indices must be non-zero (DC is unmeasurable) and
    /// strictly increasing.
    ///
    /// # Panics
    /// Panics if the invariant is violated.
    pub fn custom(indices: Vec<i32>) -> Self {
        assert!(!indices.is_empty(), "layout must be non-empty");
        assert!(
            indices.iter().all(|k| *k != 0),
            "DC subcarrier is unmeasurable"
        );
        assert!(
            indices.windows(2).all(|w| w[1] > w[0]),
            "indices must be strictly increasing"
        );
        SubcarrierLayout { indices }
    }

    /// The measured subcarrier indices.
    pub fn indices(&self) -> &[i32] {
        &self.indices
    }

    /// Number of measured subcarriers.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the layout is empty (never true for built-in layouts).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Absolute frequency (Hz) of subcarrier `index` around `center_hz`.
    pub fn freq_of(&self, center_hz: f64, index: i32) -> f64 {
        center_hz + index as f64 * SUBCARRIER_SPACING_HZ
    }

    /// Absolute frequencies of every measured subcarrier.
    pub fn freqs(&self, center_hz: f64) -> Vec<f64> {
        self.indices
            .iter()
            .map(|k| self.freq_of(center_hz, *k))
            .collect()
    }

    /// Baseband offsets (`f_{i,k} − f_{i,0}` in the paper's §5 notation) of
    /// every measured subcarrier, in Hz.
    pub fn baseband_offsets(&self) -> Vec<f64> {
        self.indices
            .iter()
            .map(|k| *k as f64 * SUBCARRIER_SPACING_HZ)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_layout_has_30_entries_without_dc() {
        let l = SubcarrierLayout::intel5300();
        assert_eq!(l.len(), 30);
        assert!(!l.indices().contains(&0));
        assert_eq!(*l.indices().first().unwrap(), -28);
        assert_eq!(*l.indices().last().unwrap(), 28);
    }

    #[test]
    fn full_layout_has_56_entries() {
        let l = SubcarrierLayout::full();
        assert_eq!(l.len(), 56);
        assert!(!l.indices().contains(&0));
    }

    #[test]
    fn intel_is_subset_of_full() {
        let full = populated_subcarriers();
        for k in INTEL5300_SUBCARRIERS {
            assert!(full.contains(&k), "missing {k}");
        }
    }

    #[test]
    fn frequencies_straddle_center() {
        let l = SubcarrierLayout::intel5300();
        let center = 5.18e9;
        let freqs = l.freqs(center);
        assert!((freqs[0] - (center - 28.0 * SUBCARRIER_SPACING_HZ)).abs() < 1e-3);
        assert!((freqs[29] - (center + 28.0 * SUBCARRIER_SPACING_HZ)).abs() < 1e-3);
        // Edge subcarriers sit 8.75 MHz out.
        assert!((28.0 * SUBCARRIER_SPACING_HZ - 8.75e6).abs() < 1.0);
    }

    #[test]
    fn baseband_offsets_match_indices() {
        let l = SubcarrierLayout::custom(vec![-2, 1, 3]);
        let offs = l.baseband_offsets();
        assert!((offs[0] + 625_000.0).abs() < 1e-9);
        assert!((offs[1] - 312_500.0).abs() < 1e-9);
        assert!((offs[2] - 937_500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "DC subcarrier")]
    fn custom_rejects_dc() {
        let _ = SubcarrierLayout::custom(vec![-1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn custom_rejects_unsorted() {
        let _ = SubcarrierLayout::custom(vec![3, 1]);
    }

    #[test]
    fn spacing_constant_is_20mhz_over_64() {
        assert!((SUBCARRIER_SPACING_HZ - 20e6 / 64.0).abs() < 1e-9);
    }
}
