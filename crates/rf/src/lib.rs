//! # chronos-rf
//!
//! The RF substrate the paper's hardware provided and this reproduction
//! simulates (see DESIGN.md §1 for the substitution rationale):
//!
//! * [`bands`] — the U.S. Wi-Fi band plan the paper sweeps (Fig. 2): 11
//!   channels at 2.4 GHz plus 24 at 5 GHz, 35 center frequencies total.
//! * [`ofdm`] — the 802.11n OFDM subcarrier layout, including the Intel 5300
//!   CSI Tool's 30-subcarrier grouping.
//! * [`geometry`] — 2-D points, segments, mirror reflections.
//! * [`environment`] — walls and reflectors; image-method path enumeration.
//! * [`propagation`] — per-path delay/attenuation and channel synthesis
//!   (the paper's Eq. 7).
//! * [`noise`] — SNR-versus-distance model and complex AWGN.
//! * [`cfo`] — carrier-frequency-offset (oscillator) model with the
//!   reciprocity property Chronos exploits (§7).
//! * [`hardware`] — the Intel 5300 device model: packet-detection delay,
//!   per-device `kappa`, the 2.4 GHz phase quirk, antenna arrays.
//! * [`csi`] — the measurement pipeline that turns geometry + impairments
//!   into the `CsiCapture` a driver would hand to user space.
//! * [`testbed`] — the 20 m x 20 m office testbed generator (Fig. 6).
//! * [`subset`] — band-subset selection for adaptive TRACK-mode sweeps:
//!   a grating-lobe ambiguity metric over candidate spacings, and a
//!   deterministic greedy pick that keeps the full aperture while
//!   minimizing alias risk (consumed by the `chronos-core` scheduler).

pub mod bands;
pub mod cfo;
pub mod csi;
pub mod environment;
pub mod geometry;
pub mod hardware;
pub mod noise;
pub mod ofdm;
pub mod propagation;
pub mod subset;
pub mod testbed;

pub use bands::{band_plan, Band, BandGroup};
pub use csi::{CsiCapture, Measurement, MeasurementContext};
pub use environment::{Attacker, Environment};
pub use geometry::Point;
pub use hardware::{DeviceModel, Intel5300};
pub use propagation::{Path, PathSet};
