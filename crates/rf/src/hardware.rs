//! Device hardware models — the Intel 5300 and an idealized radio.
//!
//! Everything the paper has to fight at the hardware level is injected
//! here so the estimation pipeline genuinely earns its results:
//!
//! * **Packet detection delay** (§5): energy detection in baseband adds a
//!   per-packet delay `delta_i`, orders of magnitude larger than the
//!   time-of-flight (median ~177 ns, sd ~25 ns in the paper's Fig. 7c).
//! * **Hardware constant `kappa`** (§7): transmit/receive chains contribute
//!   a device-dependent, location-independent complex factor.
//! * **The 2.4 GHz firmware quirk** (§11, footnote 5): the Intel 5300
//!   reports 2.4 GHz channel phase modulo pi/2 instead of modulo 2 pi.
//! * **Antenna arrays**: 3-antenna geometries at laptop (30 cm) and
//!   access-point (100 cm) separations, used by localization (§8, §12.2).

use crate::bands::Band;
use crate::geometry::Point;
use chronos_math::Complex64;
use rand::Rng;

/// Distribution of packet-detection delay.
///
/// Modeled as a Gaussian truncated at zero. Defaults reproduce the paper's
/// Fig. 7(c): median 177 ns, standard deviation 24.76 ns.
#[derive(Debug, Clone, Copy)]
pub struct DetectionDelayModel {
    /// Median detection delay, nanoseconds.
    pub median_ns: f64,
    /// Standard deviation, nanoseconds.
    pub std_ns: f64,
}

impl Default for DetectionDelayModel {
    fn default() -> Self {
        DetectionDelayModel {
            median_ns: 177.0,
            std_ns: 24.76,
        }
    }
}

impl DetectionDelayModel {
    /// Draws one per-packet detection delay in nanoseconds (never negative).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller normal draw.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.median_ns + self.std_ns * n).max(0.0)
    }
}

/// How the device corrupts reported CSI phase per band group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseQuirk {
    /// Phase reported faithfully modulo 2 pi.
    None,
    /// Phase reported modulo pi/2 — the Intel 5300's 2.4 GHz firmware bug.
    /// Equivalent to multiplying the phase ambiguity group by 4; Chronos
    /// works around it by feeding `h^4` to its algorithm at 2.4 GHz.
    ModuloPiOver2,
}

/// Applies a phase quirk to a CSI value: magnitude is preserved, phase is
/// reduced modulo the quirk's modulus.
pub fn apply_quirk(h: Complex64, quirk: PhaseQuirk) -> Complex64 {
    match quirk {
        PhaseQuirk::None => h,
        PhaseQuirk::ModuloPiOver2 => {
            let (r, theta) = h.to_polar();
            let reduced = theta.rem_euclid(std::f64::consts::FRAC_PI_2);
            Complex64::from_polar(r, reduced)
        }
    }
}

/// A physical antenna array: positions of each antenna relative to the
/// device origin, in meters.
#[derive(Debug, Clone, PartialEq)]
pub struct AntennaArray {
    positions: Vec<Point>,
}

impl AntennaArray {
    /// Single antenna at the device origin.
    pub fn single() -> Self {
        AntennaArray {
            positions: vec![Point::new(0.0, 0.0)],
        }
    }

    /// The 3-antenna laptop array used in §12.2's "small separation"
    /// experiments: mean pairwise separation ~30 cm, deliberately
    /// non-collinear (paper §8 requires non-collinearity to disambiguate).
    pub fn laptop() -> Self {
        AntennaArray {
            positions: vec![
                Point::new(-0.18, 0.0),
                Point::new(0.18, 0.0),
                Point::new(0.0, 0.24),
            ],
        }
    }

    /// The 3-antenna "access point" array with ~100 cm separation
    /// (§12.2, Fig. 8c).
    pub fn access_point() -> Self {
        AntennaArray {
            positions: vec![
                Point::new(-0.6, 0.0),
                Point::new(0.6, 0.0),
                Point::new(0.0, 0.8),
            ],
        }
    }

    /// A custom array.
    pub fn custom(positions: Vec<Point>) -> Self {
        assert!(!positions.is_empty(), "array needs at least one antenna");
        AntennaArray { positions }
    }

    /// Antenna offsets relative to the device origin.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Number of antennas.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the array is empty (never true via constructors).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Absolute antenna positions for a device centered at `origin`.
    pub fn world_positions(&self, origin: Point) -> Vec<Point> {
        self.positions.iter().map(|p| origin.add(*p)).collect()
    }

    /// Mean pairwise separation between antennas, meters.
    pub fn mean_separation(&self) -> f64 {
        let n = self.positions.len();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += self.positions[i].dist(self.positions[j]);
                count += 1;
            }
        }
        total / count as f64
    }
}

/// A complete device model: what the paper's "commercial Wi-Fi card" is in
/// this simulation.
#[derive(Debug, Clone)]
pub struct DeviceModel {
    /// Human-readable name, for logs and experiment output.
    pub name: &'static str,
    /// Detection-delay distribution.
    pub detection_delay: DetectionDelayModel,
    /// Device hardware constant `kappa` (paper Eq. 12): a fixed complex
    /// factor of the TX/RX chain, independent of location.
    pub kappa: Complex64,
    /// Constant group delay of the TX/RX chains (cables, filters), in ns.
    /// Adds a location-independent offset to every measured delay; the paper
    /// (§7, observation 2) removes it with a one-time calibration against a
    /// device at known distance.
    pub hw_delay_ns: f64,
    /// Oscillator error in ppm.
    pub oscillator_ppm: f64,
    /// Antenna array geometry.
    pub antennas: AntennaArray,
    /// Whether the 2.4 GHz firmware phase quirk applies.
    pub quirk_24ghz: bool,
}

impl DeviceModel {
    /// The phase quirk in effect on `band` for this device.
    pub fn quirk_for(&self, band: &Band) -> PhaseQuirk {
        if self.quirk_24ghz && band.group.is_2g4() {
            PhaseQuirk::ModuloPiOver2
        } else {
            PhaseQuirk::None
        }
    }
}

/// Factory for Intel 5300 device models with per-device randomized
/// imperfections (kappa phase, oscillator ppm).
#[derive(Debug, Clone, Copy)]
pub struct Intel5300;

impl Intel5300 {
    /// A randomized Intel 5300 with the given antenna array.
    pub fn device<R: Rng + ?Sized>(rng: &mut R, antennas: AntennaArray) -> DeviceModel {
        DeviceModel {
            name: "Intel 5300",
            detection_delay: DetectionDelayModel::default(),
            kappa: Complex64::from_polar(
                rng.gen_range(0.8..1.2),
                rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
            ),
            hw_delay_ns: rng.gen_range(2.0..8.0),
            oscillator_ppm: rng.gen_range(-15.0..15.0),
            antennas,
            quirk_24ghz: true,
        }
    }

    /// A laptop (ThinkPad W530-style) Intel 5300 device.
    pub fn laptop<R: Rng + ?Sized>(rng: &mut R) -> DeviceModel {
        Self::device(rng, AntennaArray::laptop())
    }

    /// An access-point-style device with 100 cm antenna separation.
    pub fn access_point<R: Rng + ?Sized>(rng: &mut R) -> DeviceModel {
        Self::device(rng, AntennaArray::access_point())
    }

    /// A single-antenna mobile device (the tracked "user device").
    pub fn mobile<R: Rng + ?Sized>(rng: &mut R) -> DeviceModel {
        Self::device(rng, AntennaArray::single())
    }
}

/// An idealized radio: no detection delay, unit kappa, perfect oscillator,
/// no quirk. Used by unit tests and the "genie" ablations.
pub fn ideal_device(antennas: AntennaArray) -> DeviceModel {
    DeviceModel {
        name: "ideal",
        detection_delay: DetectionDelayModel {
            median_ns: 0.0,
            std_ns: 0.0,
        },
        kappa: Complex64::ONE,
        hw_delay_ns: 0.0,
        oscillator_ppm: 0.0,
        antennas,
        quirk_24ghz: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bands::band_by_channel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn detection_delay_statistics_match_paper() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = DetectionDelayModel::default();
        let samples: Vec<f64> = (0..20_000).map(|_| model.sample(&mut rng)).collect();
        let median = chronos_math::stats::median(&samples);
        let std = chronos_math::stats::std_dev(&samples);
        assert!((median - 177.0).abs() < 2.0, "median {median}");
        assert!((std - 24.76).abs() < 1.5, "std {std}");
        assert!(samples.iter().all(|s| *s >= 0.0));
    }

    #[test]
    fn detection_delay_dwarfs_tof() {
        // §5's motivation: detection delay >> ToF for indoor links (~8x at
        // the paper's testbed scale).
        let mut rng = StdRng::seed_from_u64(4);
        let model = DetectionDelayModel::default();
        let mean_delay: f64 = (0..1000).map(|_| model.sample(&mut rng)).sum::<f64>() / 1000.0;
        let typical_tof_ns = 22.0; // ~6.6 m link
        assert!(mean_delay / typical_tof_ns > 6.0);
    }

    #[test]
    fn quirk_reduces_phase_mod_pi_over_2() {
        let h = Complex64::from_polar(2.0, 1.9);
        let q = apply_quirk(h, PhaseQuirk::ModuloPiOver2);
        assert!((q.abs() - 2.0).abs() < 1e-12);
        let expected = 1.9f64.rem_euclid(std::f64::consts::FRAC_PI_2);
        assert!((q.arg() - expected).abs() < 1e-12);
        // Identity quirk unchanged.
        assert_eq!(apply_quirk(h, PhaseQuirk::None), h);
    }

    #[test]
    fn quirk_fourth_power_removes_ambiguity() {
        // (h mod pi/2)^4 and h^4 share phase modulo 2 pi — the paper's fix.
        for phase in [0.3, 1.2, 2.8, -2.0, -0.9] {
            let h = Complex64::from_polar(1.0, phase);
            let quirked = apply_quirk(h, PhaseQuirk::ModuloPiOver2);
            let a = quirked.powi(4).arg();
            let b = h.powi(4).arg();
            assert!(
                chronos_math::unwrap::angular_distance(a, b) < 1e-9,
                "phase {phase}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn device_quirk_only_on_24ghz() {
        let mut rng = StdRng::seed_from_u64(5);
        let dev = Intel5300::laptop(&mut rng);
        let b24 = band_by_channel(6).unwrap();
        let b5 = band_by_channel(36).unwrap();
        assert_eq!(dev.quirk_for(&b24), PhaseQuirk::ModuloPiOver2);
        assert_eq!(dev.quirk_for(&b5), PhaseQuirk::None);
    }

    #[test]
    fn arrays_have_expected_separations() {
        let laptop = AntennaArray::laptop();
        let ap = AntennaArray::access_point();
        assert_eq!(laptop.len(), 3);
        assert_eq!(ap.len(), 3);
        // Paper: "mean antenna separation of 30 cm" and "100 cm".
        assert!(
            (laptop.mean_separation() - 0.30).abs() < 0.05,
            "{}",
            laptop.mean_separation()
        );
        assert!(
            (ap.mean_separation() - 1.00).abs() < 0.25,
            "{}",
            ap.mean_separation()
        );
    }

    #[test]
    fn arrays_not_collinear() {
        for arr in [AntennaArray::laptop(), AntennaArray::access_point()] {
            let p = arr.positions();
            let v1 = p[1].sub(p[0]);
            let v2 = p[2].sub(p[0]);
            assert!(v1.cross(v2).abs() > 1e-6, "collinear array");
        }
    }

    #[test]
    fn world_positions_translate() {
        let arr = AntennaArray::laptop();
        let w = arr.world_positions(Point::new(10.0, 5.0));
        assert!((w[0].x - 9.82).abs() < 1e-12);
        assert!((w[2].y - 5.24).abs() < 1e-12);
    }

    #[test]
    fn ideal_device_is_transparent() {
        let dev = ideal_device(AntennaArray::single());
        assert_eq!(dev.kappa, Complex64::ONE);
        assert_eq!(dev.oscillator_ppm, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(dev.detection_delay.sample(&mut rng), 0.0);
        let b24 = band_by_channel(1).unwrap();
        assert_eq!(dev.quirk_for(&b24), PhaseQuirk::None);
    }

    #[test]
    fn distinct_devices_have_distinct_kappas() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Intel5300::laptop(&mut rng);
        let b = Intel5300::laptop(&mut rng);
        assert!(!a.kappa.approx_eq(b.kappa, 1e-6));
        assert!(a.oscillator_ppm != b.oscillator_ppm);
    }

    #[test]
    fn mean_separation_single_antenna_is_zero() {
        assert_eq!(AntennaArray::single().mean_separation(), 0.0);
    }
}
