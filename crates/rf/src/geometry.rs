//! Planar geometry for the propagation simulator.
//!
//! The testbed is modeled in 2-D (the paper's evaluation geometry is a
//! single office floor; antenna height differences fold into path lengths).
//! This module provides points/vectors, line segments for walls, mirror
//! reflection (the image method's core operation), and segment
//! intersection tests for occlusion checks.

/// A 2-D point (also used as a vector), in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate, meters.
    pub x: f64,
    /// Y coordinate, meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Vector addition.
    // Named methods (not `ops` traits) keep call sites chainable without
    // importing `std::ops::Add`/`Sub` everywhere the geometry is used.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Point) -> Point {
        Point::new(self.x + other.x, self.y + other.y)
    }

    /// Vector subtraction (`self - other`).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Point) -> Point {
        Point::new(self.x - other.x, self.y - other.y)
    }

    /// Scalar multiplication.
    pub fn scale(self, k: f64) -> Point {
        Point::new(self.x * k, self.y * k)
    }

    /// Dot product.
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product (signed area measure).
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm when treated as a vector.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Unit vector in the same direction. Returns the zero vector for a
    /// zero-length input.
    pub fn normalized(self) -> Point {
        let n = self.norm();
        if n == 0.0 {
            Point::default()
        } else {
            self.scale(1.0 / n)
        }
    }

    /// Midpoint with another point.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Linear interpolation toward `other`: `t = 0` is `self`, `t = 1` is
    /// `other`. `t` is not clamped, so values outside `[0, 1]`
    /// extrapolate along the line — handy for straight-line walker
    /// trajectories in scenarios.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self.add(other.sub(self).scale(t))
    }
}

/// A line segment between two points — a wall face or reflector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// One endpoint.
    pub a: Point,
    /// The other endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Mirrors `p` across the infinite line through this segment.
    ///
    /// This is the image-method primitive: a first-order reflection off a
    /// wall is equivalent to a direct path from the *mirror image* of the
    /// source.
    pub fn mirror(&self, p: Point) -> Point {
        let d = self.b.sub(self.a);
        let n = d.norm();
        if n == 0.0 {
            return p;
        }
        let u = d.scale(1.0 / n);
        let ap = p.sub(self.a);
        let proj = u.scale(ap.dot(u));
        let foot = self.a.add(proj);
        // p' = 2 * foot - p
        foot.scale(2.0).sub(p)
    }

    /// Intersection of this segment with segment `other`, if any.
    ///
    /// Returns the intersection point for *proper* crossings (including
    /// endpoint touches). Collinear overlaps return `None` — a grazing ray
    /// along a wall face neither reflects nor is blocked in our model.
    pub fn intersect(&self, other: &Segment) -> Option<Point> {
        let r = self.b.sub(self.a);
        let s = other.b.sub(other.a);
        let denom = r.cross(s);
        if denom.abs() < 1e-15 {
            return None; // parallel or collinear
        }
        let qp = other.a.sub(self.a);
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (-1e-12..=1.0 + 1e-12).contains(&t) && (-1e-12..=1.0 + 1e-12).contains(&u) {
            Some(self.a.add(r.scale(t)))
        } else {
            None
        }
    }

    /// Whether the open segment `p -> q` crosses this wall, excluding
    /// touches within `eps` of either endpoint of the path (a ray leaving a
    /// reflection point must not be counted as blocked by the very wall it
    /// reflects off).
    pub fn blocks(&self, p: Point, q: Point, eps: f64) -> bool {
        match self.intersect(&Segment::new(p, q)) {
            None => false,
            Some(x) => x.dist(p) > eps && x.dist(q) > eps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_pythagoras() {
        assert!((Point::new(0.0, 0.0).dist(Point::new(3.0, 4.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn vector_algebra() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 0.5);
        assert_eq!(a.add(b), Point::new(-2.0, 2.5));
        assert_eq!(a.sub(b), Point::new(4.0, 1.5));
        assert!((a.dot(b) + 2.0).abs() < 1e-12);
        assert!((a.cross(b) - (1.0 * 0.5 - 2.0 * -3.0)).abs() < 1e-12);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
        assert_eq!(Point::default().normalized(), Point::default());
    }

    #[test]
    fn lerp_interpolates_and_extrapolates() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(5.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
        assert_eq!(a.lerp(b, 2.0), Point::new(9.0, -6.0));
    }

    #[test]
    fn mirror_across_x_axis() {
        let wall = Segment::new(Point::new(-10.0, 0.0), Point::new(10.0, 0.0));
        let img = wall.mirror(Point::new(2.0, 3.0));
        assert!((img.x - 2.0).abs() < 1e-12);
        assert!((img.y + 3.0).abs() < 1e-12);
    }

    #[test]
    fn mirror_is_involution() {
        let wall = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 5.0));
        let p = Point::new(4.0, -2.0);
        let back = wall.mirror(wall.mirror(p));
        assert!(back.dist(p) < 1e-12);
    }

    #[test]
    fn mirror_preserves_distance_to_wall_line() {
        let wall = Segment::new(Point::new(1.0, 1.0), Point::new(4.0, 2.0));
        let p = Point::new(2.0, 5.0);
        let img = wall.mirror(p);
        // Both at equal distance from any point on the wall line.
        let m = wall.a.midpoint(wall.b);
        assert!((m.dist(p) - m.dist(img)).abs() < 1e-9);
    }

    #[test]
    fn segment_intersection_basics() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let s2 = Segment::new(Point::new(0.0, 2.0), Point::new(2.0, 0.0));
        let x = s1.intersect(&s2).unwrap();
        assert!(x.dist(Point::new(1.0, 1.0)) < 1e-12);

        // Disjoint.
        let s3 = Segment::new(Point::new(5.0, 5.0), Point::new(6.0, 5.0));
        assert!(s1.intersect(&s3).is_none());

        // Parallel.
        let s4 = Segment::new(Point::new(0.0, 1.0), Point::new(2.0, 3.0));
        assert!(s1.intersect(&s4).is_none());
    }

    #[test]
    fn blocking_excludes_path_endpoints() {
        let wall = Segment::new(Point::new(0.0, -1.0), Point::new(0.0, 1.0));
        // Path crossing the wall in the middle is blocked.
        assert!(wall.blocks(Point::new(-1.0, 0.0), Point::new(1.0, 0.0), 1e-9));
        // Path *starting* on the wall is not blocked by it.
        assert!(!wall.blocks(Point::new(0.0, 0.0), Point::new(1.0, 0.0), 1e-9));
        // Path ending on the wall is not blocked by it.
        assert!(!wall.blocks(Point::new(-1.0, 0.0), Point::new(0.0, 0.5), 1e-9));
    }

    #[test]
    fn reflection_path_length_equals_image_distance() {
        // Image method invariant: |tx -> wall -> rx| == |tx_image -> rx|.
        let wall = Segment::new(Point::new(-5.0, 3.0), Point::new(5.0, 3.0));
        let tx = Point::new(-1.0, 0.0);
        let rx = Point::new(2.0, 1.0);
        let img = wall.mirror(tx);
        // Reflection point: intersection of img->rx with the wall line.
        let hit = wall.intersect(&Segment::new(img, rx)).unwrap();
        let reflected_len = tx.dist(hit) + hit.dist(rx);
        assert!((reflected_len - img.dist(rx)).abs() < 1e-9);
    }
}
