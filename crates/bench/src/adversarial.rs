//! Adversarial-ranging scenarios: honest clients sharing a service with
//! one attacker, at graded attack strengths.
//!
//! These runners back `tests/adversarial.rs`, the `BENCH_adversarial.json`
//! detection-latency baseline (`scripts/check-bench-regression.sh` — CI
//! fails on a >20% latency regression) and the numbers quoted in
//! `docs/ADVERSARIAL.md`. Everything is deterministic given a seed.
//!
//! Every scenario warms up **clean** before the attacker switches on at
//! the `onset` epoch: a constant spoof present from a client's very first
//! sweep is self-consistent (the filter seeds on it) and therefore
//! undetectable by innovation statistics — it is the *onset* of an attack
//! that trips the gate. See the threat-model notes in
//! `docs/ADVERSARIAL.md`.

use crate::report::Table;
use chronos_core::config::ChronosConfig;
use chronos_core::service::{EpochReport, QuarantineConfig, RangingService, ServiceConfig};
use chronos_core::tracker::TrackerConfig;
use chronos_rf::bands::band_plan_5ghz;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::environment::{Attacker, Environment};
use chronos_rf::geometry::Point;
use chronos_rf::hardware::{ideal_device, AntennaArray};
use chronos_rf::propagation::{Path, PathSet};

/// Sentinel detection latency for scenarios where the attacker is never
/// quarantined within the run (weak attacks staying under the gate are
/// undetected *by design* — the bench table shows the gradient).
pub const DETECT_SENTINEL: f64 = 999.0;

/// Attack strength grades used by [`scenario_matrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strength {
    /// Below the innovation gate / barely above the noise floor —
    /// expected to go undetected.
    Weak,
    /// Clearly above the gate; detection within a few sweeps.
    Mid,
    /// Blatant; detection on the first attacked sweep (or a short miss
    /// run for jamming).
    Strong,
}

impl Strength {
    fn tag(self) -> &'static str {
        match self {
            Strength::Weak => "weak",
            Strength::Mid => "mid",
            Strength::Strong => "strong",
        }
    }
}

/// Builds the replay attacker at a given strength: a constant extra
/// delay spliced into every path (meters of spoofed range ≈ 0.3 ×
/// `extra_delay_ns`).
pub fn replay_attacker(s: Strength) -> Attacker {
    let extra_delay_ns = match s {
        Strength::Weak => 0.5,
        Strength::Mid => 5.0,
        Strength::Strong => 20.0,
    };
    Attacker::ReplayOffset { extra_delay_ns }
}

/// Builds the CSI-injection attacker: a phantom path *earlier* than the
/// true direct path (5 ns ≈ 1.5 m), at a strength-graded amplitude. The
/// estimator's first-dominant-peak rule ignores the weak phantom but
/// locks onto the strong one.
pub fn inject_attacker(s: Strength) -> Attacker {
    let amplitude = match s {
        Strength::Weak => 0.02,
        Strength::Mid => 0.6,
        Strength::Strong => 3.0,
    };
    Attacker::CsiInject {
        forged_profile: PathSet::new(vec![Path::new(5.0, amplitude)]),
    }
}

/// Builds the band-jamming attacker over the whole 5 GHz plan (the bands
/// TRACK subsets are drawn from), at a strength-graded SNR floor: 20 dB
/// adds CSI noise only, 5 dB costs ~50% of frames per jammed band,
/// −5 dB is a near-total blackout.
pub fn jam_attacker(s: Strength) -> Attacker {
    let snr_floor_db = match s {
        Strength::Weak => 20.0,
        Strength::Mid => 5.0,
        Strength::Strong => -5.0,
    };
    Attacker::BandJam {
        bands: band_plan_5ghz().iter().map(|b| b.channel).collect(),
        snr_floor_db,
    }
}

/// Parameters of one adversarial run.
#[derive(Debug, Clone)]
pub struct AdversarialScenarioConfig {
    /// Scenario name (the regression baseline's row key).
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Total epochs (one sweep per client per epoch).
    pub epochs: usize,
    /// Epoch at which the attacker switches on (`None` attacker runs are
    /// the attack-free baseline). Sweeps before the onset are clean for
    /// every client.
    pub onset: usize,
    /// The attack, or `None` for the attack-free control run.
    pub attacker: Option<Attacker>,
    /// Worker-thread count (0 = one per core). Results are independent
    /// of this by the engine's seeding contract; `tests/adversarial.rs`
    /// asserts it stays true under attack.
    pub threads: usize,
}

impl AdversarialScenarioConfig {
    /// The attack-free control: same clients, same seeds, no attacker.
    pub fn attack_free(seed: u64, epochs: usize, onset: usize) -> Self {
        AdversarialScenarioConfig {
            name: "attack_free".to_string(),
            seed,
            epochs,
            onset,
            attacker: None,
            threads: 0,
        }
    }
}

/// A strength-graded attacker constructor ([`replay_attacker`] and kin).
pub type AttackerBuilder = fn(Strength) -> Attacker;

/// The replay/inject/jam × weak/mid/strong grid, prefixed by the
/// attack-free control run.
pub fn scenario_matrix(seed: u64, epochs: usize, onset: usize) -> Vec<AdversarialScenarioConfig> {
    let mut m = vec![AdversarialScenarioConfig::attack_free(seed, epochs, onset)];
    let builders: [(&str, AttackerBuilder); 3] = [
        ("replay", replay_attacker),
        ("inject", inject_attacker),
        ("jam", jam_attacker),
    ];
    for (kind, build) in builders {
        for s in [Strength::Weak, Strength::Mid, Strength::Strong] {
            m.push(AdversarialScenarioConfig {
                name: format!("{kind}_{}", s.tag()),
                attacker: Some(build(s)),
                ..AdversarialScenarioConfig::attack_free(seed, epochs, onset)
            });
        }
    }
    m
}

/// Index of the attacker client in every adversarial run. It joins
/// *last* so the honest clients' admission order, slot indices and RNG
/// streams are identical to the attack-free control.
pub const ATTACKER: usize = 2;

/// Ground-truth client positions (AP array at the origin): two honest
/// clients plus the attacker.
pub const CLIENT_POSITIONS: [Point; 3] = [
    Point::new(1.5, 3.0),
    Point::new(-2.0, 2.5),
    Point::new(2.5, 2.0),
];

/// One adversarial run's outcome.
#[derive(Debug, Clone)]
pub struct AdversarialRun {
    /// Per-epoch service reports, in order (3 clients each).
    pub reports: Vec<EpochReport>,
    /// The onset epoch the run was configured with.
    pub onset: usize,
}

impl AdversarialRun {
    /// Epochs the honest-error metric skips while the position filters
    /// converge from their zero-velocity seed.
    pub const WARMUP_EPOCHS: usize = 3;

    /// Mean tracked-position error of the *honest* clients over the
    /// post-warmup epochs, meters — the collateral-damage observable: an
    /// attack on one client must not degrade its neighbors.
    pub fn honest_err_m(&self) -> f64 {
        let errs: Vec<f64> = self
            .reports
            .iter()
            .skip(Self::WARMUP_EPOCHS)
            .flat_map(|r| {
                r.outcomes
                    .iter()
                    .filter(|o| o.client != ATTACKER)
                    .filter_map(|o| o.tracked_pos_error_m)
            })
            .collect();
        if errs.is_empty() {
            f64::NAN
        } else {
            errs.iter().sum::<f64>() / errs.len() as f64
        }
    }

    /// Sweeps from the attack onset to the attacker's first quarantined
    /// outcome (1 = flagged on the very first attacked sweep), or
    /// [`DETECT_SENTINEL`] if it is never flagged within the run.
    pub fn detect_latency_sweeps(&self) -> f64 {
        for (e, r) in self.reports.iter().enumerate().skip(self.onset) {
            let flagged = r
                .outcomes
                .iter()
                .any(|o| o.client == ATTACKER && o.quarantined);
            if flagged {
                return (e - self.onset + 1) as f64;
            }
        }
        DETECT_SENTINEL
    }

    /// Fraction of the attacker's post-onset outcomes reported under
    /// QUARANTINE — how persistently the service distrusts it once the
    /// attack is on.
    pub fn quarantined_rate(&self) -> f64 {
        let post: Vec<bool> = self
            .reports
            .iter()
            .skip(self.onset)
            .flat_map(|r| {
                r.outcomes
                    .iter()
                    .filter(|o| o.client == ATTACKER)
                    .map(|o| o.quarantined)
            })
            .collect();
        if post.is_empty() {
            0.0
        } else {
            post.iter().filter(|q| **q).count() as f64 / post.len() as f64
        }
    }
}

/// The estimator settings adversarial runs use: the coarse-but-honest
/// grid also used by `tests/engine.rs`, so the debug-mode test tier
/// stays fast while release benches measure the same pipeline.
pub fn adversarial_chronos() -> ChronosConfig {
    ChronosConfig {
        max_iters: 120,
        grid_step_ns: 0.5,
        ..ChronosConfig::ideal()
    }
}

/// The tracker tuning adversarial runs use (the LOS position-bench
/// tuning: generous maneuvering allowance, cm-level measurement noise).
pub fn adversarial_tracker() -> TrackerConfig {
    TrackerConfig {
        process_noise_mps2: 4.0,
        measurement_noise_m: 0.08,
        ..TrackerConfig::default()
    }
}

/// Builds the adversarial service: three static clients at
/// [`CLIENT_POSITIONS`] (the attacker last) ranged in position mode by a
/// 3-antenna AP array at the origin, adaptive scheduling, quarantine
/// policy on, all clients still honest. Shared by [`run_adversarial`]
/// and the window-mode determinism tests.
pub fn adversarial_service(threads: usize) -> RangingService {
    let mut svc = RangingService::new(ServiceConfig {
        threads,
        quarantine: Some(QuarantineConfig::default()),
        ..ServiceConfig::position(adversarial_tracker())
    });
    for p in CLIENT_POSITIONS {
        let mut ctx = MeasurementContext::new(
            Environment::free_space(),
            ideal_device(AntennaArray::single()),
            p,
            ideal_device(AntennaArray::access_point()),
            Point::new(0.0, 0.0),
        );
        ctx.snr.snr_at_1m_db = 36.0;
        let id = svc.add_client(ctx, adversarial_chronos());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    svc
}

/// Runs one adversarial scenario through lock-step epochs. The run
/// starts clean; at the onset epoch the attacker's measurement context
/// is corrupted mid-run, exactly as a compromised client would start
/// lying between two sweeps.
pub fn run_adversarial(cfg: &AdversarialScenarioConfig) -> AdversarialRun {
    let mut svc = adversarial_service(cfg.threads);
    let mut reports = Vec::with_capacity(cfg.epochs);
    for e in 0..cfg.epochs {
        if e == cfg.onset {
            svc.client_mut(ATTACKER).ctx.attacker = cfg.attacker.clone();
        }
        reports.push(svc.run_epoch(cfg.seed.wrapping_mul(1000).wrapping_add(e as u64)));
    }
    AdversarialRun {
        reports,
        onset: cfg.onset,
    }
}

/// Headers of the `BENCH_adversarial` table, in column order.
/// `detect_latency_sweeps` matches the regression checker's
/// lower-is-better rule via its `latency` substring; `honest_err_m` via
/// `err`; `quarantined_rate` is higher-is-better via `rate`.
pub const ADVERSARIAL_HEADERS: [&str; 6] = [
    "scenario",
    "epochs",
    "onset",
    "honest_err_m",
    "detect_latency_sweeps",
    "quarantined_rate",
];

/// Runs the full scenario matrix and tabulates the detection-latency
/// regression metrics (the `BENCH_adversarial.json` payload).
pub fn adversarial_table(seed: u64, epochs: usize, onset: usize) -> Table {
    let mut table = Table::new("BENCH_adversarial", &ADVERSARIAL_HEADERS);
    for cfg in scenario_matrix(seed, epochs, onset) {
        let run = run_adversarial(&cfg);
        table.row(&[
            cfg.name.clone(),
            format!("{}", cfg.epochs),
            format!("{}", cfg.onset),
            format!("{:.3}", run.honest_err_m()),
            format!("{:.0}", run.detect_latency_sweeps()),
            format!("{:.3}", run.quarantined_rate()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_attack_and_strength() {
        let m = scenario_matrix(1, 10, 4);
        assert_eq!(m.len(), 10);
        assert_eq!(m[0].name, "attack_free");
        for kind in ["replay", "inject", "jam"] {
            for s in ["weak", "mid", "strong"] {
                assert!(
                    m.iter().any(|c| c.name == format!("{kind}_{s}")),
                    "missing {kind}_{s}"
                );
            }
        }
    }

    #[test]
    fn strengths_are_graded() {
        // Replay delays grow with strength.
        let delay = |s| match replay_attacker(s) {
            Attacker::ReplayOffset { extra_delay_ns } => extra_delay_ns,
            _ => unreachable!(),
        };
        assert!(delay(Strength::Weak) < delay(Strength::Mid));
        assert!(delay(Strength::Mid) < delay(Strength::Strong));
        // Jam floors drop (more noise, more loss) with strength.
        let floor = |s| match jam_attacker(s) {
            Attacker::BandJam { snr_floor_db, .. } => snr_floor_db,
            _ => unreachable!(),
        };
        assert!(floor(Strength::Weak) > floor(Strength::Mid));
        assert!(floor(Strength::Mid) > floor(Strength::Strong));
        // The jammer targets the whole 5 GHz plan (TRACK subsets).
        match jam_attacker(Strength::Strong) {
            Attacker::BandJam { bands, .. } => assert_eq!(bands.len(), 24),
            _ => unreachable!(),
        }
    }

    #[test]
    fn detection_metrics_on_synthetic_reports() {
        // An empty run reports the sentinel and a zero rate, not NaN.
        let run = AdversarialRun {
            reports: Vec::new(),
            onset: 0,
        };
        assert_eq!(run.detect_latency_sweeps(), DETECT_SENTINEL);
        assert_eq!(run.quarantined_rate(), 0.0);
    }
}
