//! Figure generators: one function per paper figure, shared between the
//! per-figure binaries and `run_all`. Each returns the tables it printed,
//! so callers can also persist them as CSV.

use crate::report::Table;
use crate::scenarios::{
    run_accuracy, run_drone, run_fig4_profile, run_hop_times, run_tcp_trace, run_video_trace,
    split_errors, summarize, AccuracyConfig,
};
use chronos_core::config::ChronosConfig;
use chronos_core::crt::congruence_from_channel;
use chronos_math::stats::{Buckets, Ecdf, Histogram};
use chronos_math::Complex64;
use chronos_rf::hardware::AntennaArray;
use std::f64::consts::PI;

/// Quantiles sampled when a figure dumps a CDF.
const CDF_POINTS: [f64; 13] = [
    0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0,
];

fn cdf_table(name: &str, series: &[(&str, &[f64])]) -> Table {
    let mut headers = vec!["quantile".to_string()];
    headers.extend(series.iter().map(|(n, _)| n.to_string()));
    let mut t = Table {
        name: name.to_string(),
        headers,
        rows: Vec::new(),
    };
    let ecdfs: Vec<Ecdf> = series.iter().map(|(_, v)| Ecdf::new(v)).collect();
    for q in CDF_POINTS {
        let mut row = vec![format!("{q:.2}")];
        for e in &ecdfs {
            row.push(format!("{:.4}", e.quantile(q)));
        }
        t.row(&row);
    }
    t
}

/// Fig. 3: multi-band phase alignment for a source at 0.6 m (tau = 2 ns).
///
/// For each of the five illustrated bands, lists the candidate delays in
/// `[0, 3]` ns implied by the band's phase; the final row reports the
/// voting solution (the delay where most bands align).
pub fn fig03() -> Vec<Table> {
    let tau = chronos_math::constants::m_to_ns(0.6);
    let freqs_ghz = [2.412, 2.462, 5.18, 5.3, 5.825];
    let mut t = Table::new("fig03_crt", &["band_ghz", "candidate_delays_ns"]);
    let mut congruences = Vec::new();
    for f in freqs_ghz {
        let h = Complex64::from_polar(1.0, -2.0 * PI * f * 1e9 * tau * 1e-9);
        let c = congruence_from_channel(f * 1e9, h, 1.0);
        congruences.push(c);
        let mut cands = Vec::new();
        let mut x = c.remainder;
        while x <= 3.0 {
            cands.push(format!("{x:.3}"));
            x += c.modulus;
        }
        t.row(&[format!("{f}"), cands.join(" ")]);
    }
    let sol =
        chronos_math::crt::solve_by_voting(&congruences, 10.0, 0.001, 0.02).expect("solution");
    let mut s = Table::new(
        "fig03_solution",
        &["true_tau_ns", "resolved_tau_ns", "votes"],
    );
    s.row(&[
        format!("{tau:.3}"),
        format!("{:.3}", sol.value),
        format!("{}", sol.votes),
    ]);
    println!("{}", t.render());
    println!("{}", s.render());
    vec![t, s]
}

/// Fig. 4: the recovered three-path multipath profile.
pub fn fig04() -> Vec<Table> {
    let (rows, tof) = run_fig4_profile();
    let mut t = Table::new("fig04_multipath_profile", &["delay_ns", "magnitude"]);
    for (d, m) in rows.iter().filter(|(_, m)| *m > 1e-6) {
        t.row_f64(&[*d, *m], 4);
    }
    let mut s = Table::new("fig04_summary", &["true_first_path_ns", "estimated_tof_ns"]);
    s.row(&[format!("{:.2}", 5.2), format!("{tof:.3}")]);
    println!("{}", t.render());
    println!("{}", s.render());
    vec![t, s]
}

/// Shared accuracy sweep used by Figs. 7a/7b/7c/8a/8b. Heavier than the
/// rest; `pairs` scales effort.
pub fn accuracy_trials(seed: u64, pairs: usize) -> Vec<crate::scenarios::LinkTrial> {
    let cfg = AccuracyConfig {
        seed,
        max_pairs: pairs,
        ..Default::default()
    };
    run_accuracy(&cfg)
}

/// Fig. 7(a): CDF of time-of-flight error, LOS vs NLOS.
pub fn fig07a(trials: &[crate::scenarios::LinkTrial]) -> Vec<Table> {
    let (los, nlos) = split_errors(trials, |t| t.tof_errors_ns.clone());
    let t = cdf_table(
        "fig07a_tof_error_cdf",
        &[("los_ns", &los), ("nlos_ns", &nlos)],
    );
    let sl = summarize(&los);
    let sn = summarize(&nlos);
    let mut s = Table::new(
        "fig07a_summary",
        &[
            "setting",
            "median_ns",
            "p95_ns",
            "paper_median_ns",
            "paper_p95_ns",
            "n",
        ],
    );
    s.row(&[
        "LOS".into(),
        format!("{:.3}", sl.median),
        format!("{:.3}", sl.p95),
        "0.47".into(),
        "1.96".into(),
        format!("{}", sl.n),
    ]);
    s.row(&[
        "NLOS".into(),
        format!("{:.3}", sn.median),
        format!("{:.3}", sn.p95),
        "0.69".into(),
        "4.01".into(),
        format!("{}", sn.n),
    ]);
    println!("{}", s.render());
    vec![t, s]
}

/// Fig. 7(b): representative multipath profiles + the sparsity statistic.
pub fn fig07b(trials: &[crate::scenarios::LinkTrial]) -> Vec<Table> {
    let counts: Vec<f64> = trials
        .iter()
        .flat_map(|t| t.peak_counts.iter().map(|c| *c as f64))
        .collect();
    let s = summarize(&counts);
    let mut t = Table::new(
        "fig07b_sparsity",
        &["mean_dominant_peaks", "std", "paper_mean", "paper_std", "n"],
    );
    t.row(&[
        format!("{:.2}", s.mean),
        format!("{:.2}", s.std),
        "5.05".into(),
        "1.95".into(),
        format!("{}", s.n),
    ]);
    println!("{}", t.render());
    vec![t]
}

/// Fig. 7(c): histograms of propagation delay vs packet detection delay.
pub fn fig07c(trials: &[crate::scenarios::LinkTrial]) -> Vec<Table> {
    let delays: Vec<f64> = trials
        .iter()
        .flat_map(|t| t.detection_delays_ns.clone())
        .collect();
    let tofs: Vec<f64> = trials.iter().map(|t| t.true_tof_ns).collect();
    let mut hist_d = Histogram::new(0.0, 300.0, 60);
    hist_d.add_all(&delays);
    let mut hist_t = Histogram::new(0.0, 300.0, 60);
    hist_t.add_all(&tofs);
    let mut t = Table::new(
        "fig07c_delay_histogram",
        &[
            "bin_center_ns",
            "frac_detection_delay",
            "frac_propagation_delay",
        ],
    );
    for ((center, fd), (_, ft)) in hist_d.normalized().iter().zip(hist_t.normalized()) {
        if *fd > 0.0 || ft > 0.0 {
            t.row_f64(&[*center, *fd, ft], 4);
        }
    }
    let s = summarize(&delays);
    let ratio = s.median / chronos_math::stats::median(&tofs);
    let mut sm = Table::new(
        "fig07c_summary",
        &[
            "median_detection_ns",
            "std_ns",
            "paper_median_ns",
            "paper_std_ns",
            "ratio_to_tof",
        ],
    );
    sm.row(&[
        format!("{:.1}", s.median),
        format!("{:.2}", s.std),
        "177".into(),
        "24.76".into(),
        format!("{ratio:.1}x"),
    ]);
    println!("{}", sm.render());
    vec![t, sm]
}

/// Fig. 8(a): distance error vs ground-truth distance buckets.
pub fn fig08a(trials: &[crate::scenarios::LinkTrial]) -> Vec<Table> {
    let edges = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0];
    let mut los_b = Buckets::new(&edges);
    let mut nlos_b = Buckets::new(&edges);
    for tr in trials {
        for e in &tr.distance_errors_m {
            if tr.los {
                los_b.add(tr.true_distance_m, *e);
            } else {
                nlos_b.add(tr.true_distance_m, *e);
            }
        }
    }
    let mut t = Table::new(
        "fig08a_distance_error",
        &[
            "bucket_m",
            "los_mean_m",
            "los_std_m",
            "los_n",
            "nlos_mean_m",
            "nlos_std_m",
            "nlos_n",
        ],
    );
    for (l, n) in los_b.rows().iter().zip(nlos_b.rows()) {
        t.row(&[
            l.0.clone(),
            format!("{:.3}", l.1),
            format!("{:.3}", l.2),
            format!("{}", l.3),
            format!("{:.3}", n.1),
            format!("{:.3}", n.2),
            format!("{}", n.3),
        ]);
    }
    println!("{}", t.render());
    vec![t]
}

/// Figs. 8(b)/8(c): localization error CDF for a given antenna array.
pub fn fig08_localization(
    name: &str,
    seed: u64,
    pairs: usize,
    array: AntennaArray,
    paper_los: &str,
    paper_nlos: &str,
) -> Vec<Table> {
    let cfg = AccuracyConfig {
        seed,
        max_pairs: pairs,
        array,
        chronos: ChronosConfig::default(),
        ..Default::default()
    };
    let trials = run_accuracy(&cfg);
    let (los, nlos) = split_errors(&trials, |t| t.localization_error_m.into_iter().collect());
    let t = cdf_table(
        &format!("{name}_cdf"),
        &[("los_m", &los), ("nlos_m", &nlos)],
    );
    let sl = summarize(&los);
    let sn = summarize(&nlos);
    let mut s = Table::new(
        &format!("{name}_summary"),
        &["setting", "median_m", "paper_median_m", "n"],
    );
    s.row(&[
        "LOS".into(),
        format!("{:.3}", sl.median),
        paper_los.into(),
        format!("{}", sl.n),
    ]);
    s.row(&[
        "NLOS".into(),
        format!("{:.3}", sn.median),
        paper_nlos.into(),
        format!("{}", sn.n),
    ]);
    println!("{}", s.render());
    vec![t, s]
}

/// Fig. 9(a): CDF of band-sweep (hop) time.
pub fn fig09a(seed: u64, n: usize) -> Vec<Table> {
    let times = run_hop_times(seed, n);
    let t = cdf_table("fig09a_hop_time_cdf", &[("hop_ms", &times)]);
    let s = summarize(&times);
    let mut sm = Table::new("fig09a_summary", &["median_ms", "paper_median_ms", "n"]);
    sm.row(&[format!("{:.1}", s.median), "84".into(), format!("{}", s.n)]);
    println!("{}", sm.render());
    vec![t, sm]
}

/// Fig. 9(b): video download/play trace around a localization at t = 6 s.
pub fn fig09b(seed: u64) -> Vec<Table> {
    let samples = run_video_trace(seed);
    let mut t = Table::new(
        "fig09b_video_trace",
        &["t_s", "downloaded_kb", "played_kb", "stalled"],
    );
    for s in samples.iter().step_by(10) {
        t.row(&[
            format!("{:.2}", s.t.as_secs_f64()),
            format!("{:.0}", s.downloaded_kb),
            format!("{:.0}", s.played_kb),
            format!("{}", s.stalled as u8),
        ]);
    }
    let stalled = chronos_link::traffic::VideoModel::has_stall(&samples);
    let mut sm = Table::new("fig09b_summary", &["stall_observed", "paper_stall"]);
    sm.row(&[format!("{stalled}"), "false".into()]);
    println!("{}", sm.render());
    vec![t, sm]
}

/// Fig. 9(c): TCP throughput trace around the same localization.
pub fn fig09c(seed: u64) -> Vec<Table> {
    let samples = run_tcp_trace(seed);
    let mut t = Table::new("fig09c_tcp_trace", &["t_s", "throughput_mbps"]);
    for s in &samples {
        t.row(&[
            format!("{:.0}", s.t.as_secs_f64()),
            format!("{:.3}", s.throughput_mbps),
        ]);
    }
    // Dip at the 7 s window (contains the t=6 s outage).
    let steady = samples
        .iter()
        .filter(|s| s.t.as_secs_f64() < 6.0)
        .map(|s| s.throughput_mbps)
        .fold(0.0, f64::max);
    let dip = samples
        .iter()
        .find(|s| (s.t.as_secs_f64() - 7.0).abs() < 0.01)
        .map(|s| s.throughput_mbps)
        .unwrap_or(f64::NAN);
    let loss_pct = (steady - dip) / steady * 100.0;
    let mut sm = Table::new("fig09c_summary", &["dip_percent", "paper_dip_percent"]);
    sm.row(&[format!("{loss_pct:.1}"), "6.5".into()]);
    println!("{}", sm.render());
    vec![t, sm]
}

/// Fig. 10(a): CDF of the drone's deviation from the 1.4 m target.
pub fn fig10a(seed: u64, ticks: usize) -> Vec<Table> {
    let records = run_drone(seed, ticks);
    let warmup = 30.min(records.len() / 4);
    let dev = chronos_drone::FollowSim::deviations(&records, 1.4, warmup);
    let dev_cm: Vec<f64> = dev.iter().map(|d| d * 100.0).collect();
    let t = cdf_table("fig10a_drone_deviation_cdf", &[("deviation_cm", &dev_cm)]);
    let s = summarize(&dev_cm);
    let rmse = chronos_math::stats::rms(&dev_cm);
    let mut sm = Table::new(
        "fig10a_summary",
        &[
            "median_cm",
            "rmse_cm",
            "paper_median_cm",
            "paper_rmse_cm",
            "n",
        ],
    );
    sm.row(&[
        format!("{:.2}", s.median),
        format!("{rmse:.2}"),
        "4.17".into(),
        "4.2".into(),
        format!("{}", s.n),
    ]);
    println!("{}", sm.render());
    vec![t, sm]
}

/// Fig. 10(b): the drone/user trajectory dump.
pub fn fig10b(seed: u64, ticks: usize) -> Vec<Table> {
    let records = run_drone(seed, ticks);
    let mut t = Table::new(
        "fig10b_trajectory",
        &[
            "t_s",
            "user_x",
            "user_y",
            "drone_x",
            "drone_y",
            "distance_m",
        ],
    );
    for r in records.iter().step_by(4) {
        t.row_f64(
            &[
                r.t_s,
                r.user.x,
                r.user.y,
                r.drone.x,
                r.drone.y,
                r.true_distance_m,
            ],
            3,
        );
    }
    println!("trajectory: {} rows (see CSV)", t.rows.len());
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_tables_well_formed() {
        let tables = fig03();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 5);
        // Resolved value ~ 2 ns.
        let resolved: f64 = tables[1].rows[0][1].parse().unwrap();
        assert!((resolved - 2.0).abs() < 0.05);
    }

    #[test]
    fn fig09a_median_near_84() {
        let tables = fig09a(5, 15);
        let med: f64 = tables[1].rows[0][0].parse().unwrap();
        assert!((70.0..100.0).contains(&med), "median {med}");
    }

    #[test]
    fn fig09b_no_stall() {
        let tables = fig09b(6);
        assert_eq!(tables[1].rows[0][0], "false");
    }

    #[test]
    fn fig09c_dip_in_range() {
        let tables = fig09c(7);
        let dip: f64 = tables[1].rows[0][0].parse().unwrap();
        assert!((2.0..15.0).contains(&dip), "dip {dip}%");
    }

    #[test]
    fn cdf_table_monotone() {
        let t = cdf_table("test", &[("a", &[1.0, 2.0, 3.0, 4.0, 5.0])]);
        let vals: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }
}
