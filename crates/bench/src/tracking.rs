//! Adaptive-tracking scenarios: full-sweep vs band-subset capacity and
//! accuracy, on static and moving clients.
//!
//! The runners here back `tests/tracking.rs`'s ablation assertions, the
//! `bench_service` capacity comparison and the numbers quoted in
//! `docs/TRACKING.md`. Everything is deterministic given a seed.

use crate::report::Table;
use chronos_core::config::ChronosConfig;
use chronos_core::service::{ClientOutcome, EpochReport, RangingService, ServiceConfig};
use chronos_core::tracker::{TrackMode, TrackerConfig};
use chronos_link::time::Duration;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::environment::Environment;
use chronos_rf::geometry::Point;
use chronos_rf::hardware::{ideal_device, AntennaArray};

/// Parameters of one tracking run.
#[derive(Debug, Clone)]
pub struct TrackingConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of clients.
    pub n_clients: usize,
    /// Epochs to simulate.
    pub epochs: usize,
    /// Radial velocity applied to every client, m/s (0 = static
    /// scenario; positive = walking away from its locator).
    pub velocity_mps: f64,
    /// Adaptive scheduling: `Some` enables per-client trackers.
    pub adaptive: Option<TrackerConfig>,
}

impl Default for TrackingConfig {
    fn default() -> Self {
        TrackingConfig {
            seed: 42,
            n_clients: 4,
            epochs: 12,
            velocity_mps: 0.0,
            adaptive: Some(TrackerConfig::default()),
        }
    }
}

/// Aggregates of one tracking run.
#[derive(Debug, Clone)]
pub struct TrackingRun {
    /// Per-epoch reports, in order.
    pub reports: Vec<EpochReport>,
}

impl TrackingRun {
    /// Epochs in which every scheduled client ran in TRACK mode — the
    /// adaptive scheduler's steady state (empty for non-adaptive runs).
    pub fn steady_state(&self) -> Vec<&EpochReport> {
        self.reports
            .iter()
            .filter(|r| {
                let occ = r.mode_occupancy();
                occ.track > 0 && occ.acquire == 0
            })
            .collect()
    }

    /// Mean sweeps/s of simulated airtime over the given reports.
    fn mean_throughput(reports: &[&EpochReport]) -> Option<f64> {
        if reports.is_empty() {
            return None;
        }
        Some(
            reports
                .iter()
                .map(|r| r.sweeps_per_sec_airtime())
                .sum::<f64>()
                / reports.len() as f64,
        )
    }

    /// Mean sweeps/s over steady-state (all-TRACK) epochs.
    pub fn steady_throughput(&self) -> Option<f64> {
        Self::mean_throughput(&self.steady_state())
    }

    /// Mean sweeps/s over all epochs (the figure for non-adaptive runs).
    pub fn overall_throughput(&self) -> Option<f64> {
        Self::mean_throughput(&self.reports.iter().collect::<Vec<_>>())
    }

    /// Mean absolute raw-fix error over epochs scheduled fully in TRACK
    /// mode (or over all epochs when no TRACK epochs exist).
    pub fn mean_abs_error_m(&self) -> Option<f64> {
        let steady = self.steady_state();
        let pool: Vec<&EpochReport> = if steady.is_empty() {
            self.reports.iter().collect()
        } else {
            steady
        };
        let errs: Vec<f64> = pool
            .iter()
            .flat_map(|r| r.outcomes.iter().filter_map(|o| o.error_m))
            .collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }

    /// Worst per-epoch tracker RMSE across the run's adaptive epochs.
    pub fn worst_track_rmse_m(&self) -> Option<f64> {
        self.reports
            .iter()
            .filter_map(|r| r.track_rmse_m())
            .max_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Fraction of (client, epoch) slots spent in TRACK mode.
    pub fn track_occupancy(&self) -> f64 {
        let (mut track, mut total) = (0usize, 0usize);
        for r in &self.reports {
            let occ = r.mode_occupancy();
            track += occ.track;
            total += occ.track + occ.acquire;
        }
        if total == 0 {
            0.0
        } else {
            track as f64 / total as f64
        }
    }
}

/// A high-SNR free-space client `d` meters from its locator.
pub fn tracking_ctx(d: f64) -> MeasurementContext {
    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        ideal_device(AntennaArray::single()),
        Point::new(0.0, 0.0),
        ideal_device(AntennaArray::laptop()),
        Point::new(d, 0.0),
    );
    ctx.snr.snr_at_1m_db = 55.0;
    ctx
}

/// Runs one tracking scenario: `n_clients` spread over 2–9 m, optionally
/// all receding at `velocity_mps`, for `epochs` service rounds.
pub fn run_tracking(cfg: &TrackingConfig) -> TrackingRun {
    let service_cfg = match cfg.adaptive {
        Some(t) => ServiceConfig::adaptive(t),
        None => ServiceConfig::default(),
    };
    let mut svc = RangingService::new(service_cfg);
    for i in 0..cfg.n_clients {
        let d = 2.0 + 7.0 * i as f64 / cfg.n_clients.max(1) as f64;
        let id = svc.add_client(tracking_ctx(d), ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }

    let mut reports = Vec::with_capacity(cfg.epochs);
    let mut prev_span_s: Option<f64> = None;
    for e in 0..cfg.epochs {
        if cfg.velocity_mps != 0.0 {
            // Epoch k+1 starts one airtime span + epoch gap after epoch
            // k; move each mobile endpoint away by v x that interval.
            if let Some(span_s) = prev_span_s {
                let step = cfg.velocity_mps * (span_s + 0.005);
                for i in 0..cfg.n_clients {
                    let x = svc.client(i).ctx.initiator_pos.x - step;
                    svc.client_mut(i).ctx.initiator_pos = Point::new(x, 0.0);
                }
            }
        }
        let r = svc.run_epoch(cfg.seed.wrapping_mul(1000).wrapping_add(e as u64));
        prev_span_s = Some(r.airtime_span.as_secs_f64());
        reports.push(r);
    }
    TrackingRun { reports }
}

/// One row of the adaptive-vs-full capacity table (README, TRACKING.md).
#[derive(Debug, Clone)]
pub struct CapacityRow {
    /// Client count.
    pub n_clients: usize,
    /// Full-sweep service throughput, sweeps/s of airtime.
    pub full_sweeps_per_sec: f64,
    /// Adaptive steady-state throughput, sweeps/s of airtime.
    pub adaptive_sweeps_per_sec: f64,
    /// Full-sweep mean absolute error, meters.
    pub full_mae_m: f64,
    /// Adaptive TRACK-mode mean absolute error, meters.
    pub adaptive_mae_m: f64,
}

/// Runs the static-client capacity comparison for each client count.
pub fn capacity_table(client_counts: &[usize], epochs: usize, seed: u64) -> Vec<CapacityRow> {
    client_counts
        .iter()
        .map(|&n| {
            let base = TrackingConfig {
                seed,
                n_clients: n,
                epochs,
                velocity_mps: 0.0,
                adaptive: None,
            };
            let full = run_tracking(&base);
            let adaptive = run_tracking(&TrackingConfig {
                adaptive: Some(TrackerConfig::default()),
                ..base
            });
            CapacityRow {
                n_clients: n,
                full_sweeps_per_sec: full.overall_throughput().unwrap_or(0.0),
                adaptive_sweeps_per_sec: adaptive
                    .steady_throughput()
                    .or_else(|| adaptive.overall_throughput())
                    .unwrap_or(0.0),
                full_mae_m: full.mean_abs_error_m().unwrap_or(f64::NAN),
                adaptive_mae_m: adaptive.mean_abs_error_m().unwrap_or(f64::NAN),
            }
        })
        .collect()
}

/// One row of the epoch-barrier vs continuous-engine comparison on a
/// **mixed** ACQUIRE/TRACK population (half the clients pinned in
/// ACQUIRE — cold joiners, broken tracks — half tracking with subset
/// sweeps). The epoch barrier makes every TRACK client idle until the
/// slowest ACQUIRE sweep of the round finishes; the event engine lets
/// them re-sweep as soon as their subset airtime allows.
#[derive(Debug, Clone)]
pub struct MixedComparison {
    /// Client count (half pinned ACQUIRE, half free to TRACK).
    pub n_clients: usize,
    /// Lock-step `run_epoch` throughput, sweeps/s of simulated time.
    pub epoch_sweeps_per_sec: f64,
    /// Fraction of the epoch phase's simulated time with a sweep on the
    /// air.
    pub epoch_utilization: f64,
    /// Mean absolute TRACK-fix error under the epoch barrier, meters.
    pub epoch_track_mae_m: f64,
    /// Continuous `run_until` throughput, sweeps/s of simulated time.
    pub event_sweeps_per_sec: f64,
    /// Fraction of the continuous window with a sweep on the air.
    pub event_utilization: f64,
    /// Mean absolute TRACK-fix error under the continuous engine, meters.
    pub event_track_mae_m: f64,
}

impl MixedComparison {
    /// Event-engine throughput gain over the epoch barrier.
    pub fn gain(&self) -> f64 {
        self.event_sweeps_per_sec / self.epoch_sweeps_per_sec.max(1e-9)
    }
}

/// Builds the mixed-population service: even-indexed clients pinned in
/// ACQUIRE (per-client tracker override, `acquire_fixes: usize::MAX`),
/// odd-indexed clients free to promote to TRACK. Eight interleaved
/// hoppers are allowed: with the default cap of 4 both schedulers
/// saturate the medium at N ≥ 8 and the comparison would only measure
/// the barrier tail, not the idle-while-waiting cost.
fn mixed_service(n: usize) -> RangingService {
    let mut cfg = ServiceConfig::adaptive(TrackerConfig::default());
    cfg.arbiter.max_concurrent = 8;
    let mut svc = RangingService::new(cfg);
    for i in 0..n {
        let d = 2.0 + 7.0 * i as f64 / n.max(1) as f64;
        let ctx = tracking_ctx(d);
        let id = if i % 2 == 0 {
            svc.add_client_with_tracker(
                ctx,
                ChronosConfig::ideal(),
                TrackerConfig {
                    acquire_fixes: usize::MAX,
                    ..TrackerConfig::default()
                },
            )
        } else {
            svc.add_client(ctx, ChronosConfig::ideal())
        };
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }
    svc
}

/// Mean absolute raw-fix error over complete TRACK-mode sweeps, meters.
/// Incomplete sweeps are excluded on both sides of the comparison: their
/// degraded fixes carry elevated ghost-peak risk and the mode machine
/// never fuses them (see `ClientTracker::observe`), so they are misses,
/// not estimates a deployment would report.
fn track_mae_m(outcomes: &[ClientOutcome]) -> f64 {
    let errs: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.mode == TrackMode::Track && o.link_complete)
        .filter_map(|o| o.error_m)
        .collect();
    if errs.is_empty() {
        f64::NAN
    } else {
        errs.iter().sum::<f64>() / errs.len() as f64
    }
}

/// Runs the epoch-vs-event comparison at one client count. Both
/// variants share the scenario, the warm-up (three epochs, promoting the
/// free half into TRACK) and the arbiter policy; only the scheduler
/// differs. Deterministic given the seed.
pub fn mixed_comparison(
    n_clients: usize,
    seed: u64,
    epochs: usize,
    window: Duration,
) -> MixedComparison {
    const WARM: usize = 3;

    // Epoch barrier: one sweep per client per round.
    let mut svc = mixed_service(n_clients);
    for e in 0..WARM {
        svc.run_epoch(seed.wrapping_add(e as u64));
    }
    let t0 = svc.clock();
    let mut end = t0;
    let mut completed = 0usize;
    let mut busy_s = 0.0;
    let mut outcomes = Vec::new();
    for e in 0..epochs {
        let r = svc.run_epoch(seed.wrapping_add((WARM + e) as u64));
        completed += r.completed();
        busy_s += r.utilization * r.airtime_span.as_secs_f64();
        end = r.started + r.airtime_span;
        outcomes.extend(r.outcomes);
    }
    let total_s = end.saturating_since(t0).as_secs_f64().max(1e-9);
    let epoch_sweeps_per_sec = completed as f64 / total_s;
    let epoch_utilization = busy_s / total_s;
    let epoch_track_mae_m = track_mae_m(&outcomes);

    // Continuous engine: identical service and warm-up, then one window.
    let mut svc = mixed_service(n_clients);
    for e in 0..WARM {
        svc.run_epoch(seed.wrapping_add(e as u64));
    }
    let w = svc.run_until(seed ^ 0xE7E7_E7E7, svc.clock() + window);

    MixedComparison {
        n_clients,
        epoch_sweeps_per_sec,
        epoch_utilization,
        epoch_track_mae_m,
        event_sweeps_per_sec: w.sweeps_per_sec(),
        event_utilization: w.utilization,
        event_track_mae_m: track_mae_m(&w.outcomes),
    }
}

/// The epoch-vs-event table README quotes: mixed populations at several
/// client counts, one simulated second of continuous operation each.
pub fn mixed_capacity_table(client_counts: &[usize], seed: u64) -> Vec<MixedComparison> {
    client_counts
        .iter()
        .map(|&n| mixed_comparison(n, seed, 8, Duration::from_millis(1000)))
        .collect()
}

/// Tabulates [`MixedComparison`] rows for console/CSV reporting — the
/// window-report plumbing `bench_service` renders.
pub fn mixed_table(rows: &[MixedComparison]) -> Table {
    let mut table = Table::new(
        "epoch_vs_event",
        &[
            "clients",
            "epoch_sweeps_s",
            "event_sweeps_s",
            "gain",
            "epoch_util",
            "event_util",
            "epoch_track_mae_m",
            "event_track_mae_m",
        ],
    );
    for r in rows {
        table.row_display(&[
            &r.n_clients,
            &format!("{:.1}", r.epoch_sweeps_per_sec),
            &format!("{:.1}", r.event_sweeps_per_sec),
            &format!("{:.1}x", r.gain()),
            &format!("{:.0}%", 100.0 * r.epoch_utilization),
            &format!("{:.0}%", 100.0 * r.event_utilization),
            &format!("{:.3}", r.epoch_track_mae_m),
            &format!("{:.3}", r.event_track_mae_m),
        ]);
    }
    table
}

/// Convenience: whether a run ever fell back to ACQUIRE after reaching
/// TRACK (used to assert re-acquisition behavior).
pub fn reacquired(run: &TrackingRun, client: usize) -> bool {
    let mut seen_track = false;
    for r in &run.reports {
        if let Some(o) = r.outcomes.iter().find(|o| o.client == client) {
            match o.mode {
                TrackMode::Track => seen_track = true,
                TrackMode::Acquire if seen_track => return true,
                TrackMode::Acquire => {}
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_run_reaches_steady_state_and_saves_airtime() {
        let run = run_tracking(&TrackingConfig::default());
        let steady = run.steady_state();
        assert!(steady.len() >= 8, "only {} steady epochs", steady.len());
        for r in &steady {
            assert!(r.airtime_saved() > 0.5, "saved {}", r.airtime_saved());
        }
        assert!(run.track_occupancy() > 0.7);
        // Static, lossless clients give the gate no reason to fire.
        for client in 0..TrackingConfig::default().n_clients {
            assert!(
                !reacquired(&run, client),
                "client {client} spuriously re-acquired"
            );
        }
    }

    #[test]
    fn capacity_table_shows_at_least_2x() {
        let rows = capacity_table(&[2], 8, 7);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(
            r.adaptive_sweeps_per_sec >= 2.0 * r.full_sweeps_per_sec,
            "adaptive {} vs full {}",
            r.adaptive_sweeps_per_sec,
            r.full_sweeps_per_sec
        );
        assert!(r.adaptive_mae_m <= 2.0 * r.full_mae_m + 1e-3);
    }

    #[test]
    fn moving_clients_stay_tracked() {
        let run = run_tracking(&TrackingConfig {
            velocity_mps: 1.2,
            epochs: 14,
            n_clients: 2,
            ..Default::default()
        });
        assert!(
            run.track_occupancy() > 0.5,
            "occupancy {}",
            run.track_occupancy()
        );
        let rmse = run.worst_track_rmse_m().expect("adaptive epochs");
        assert!(rmse < 0.5, "worst RMSE {rmse}");
    }
}
