//! Adaptive-tracking scenarios: full-sweep vs band-subset capacity and
//! accuracy, on static and moving clients.
//!
//! The runners here back `tests/tracking.rs`'s ablation assertions, the
//! `bench_service` capacity comparison and the numbers quoted in
//! `docs/TRACKING.md`. Everything is deterministic given a seed.

use chronos_core::config::ChronosConfig;
use chronos_core::service::{EpochReport, RangingService, ServiceConfig};
use chronos_core::tracker::{TrackMode, TrackerConfig};
use chronos_rf::csi::MeasurementContext;
use chronos_rf::environment::Environment;
use chronos_rf::geometry::Point;
use chronos_rf::hardware::{ideal_device, AntennaArray};

/// Parameters of one tracking run.
#[derive(Debug, Clone)]
pub struct TrackingConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of clients.
    pub n_clients: usize,
    /// Epochs to simulate.
    pub epochs: usize,
    /// Radial velocity applied to every client, m/s (0 = static
    /// scenario; positive = walking away from its locator).
    pub velocity_mps: f64,
    /// Adaptive scheduling: `Some` enables per-client trackers.
    pub adaptive: Option<TrackerConfig>,
}

impl Default for TrackingConfig {
    fn default() -> Self {
        TrackingConfig {
            seed: 42,
            n_clients: 4,
            epochs: 12,
            velocity_mps: 0.0,
            adaptive: Some(TrackerConfig::default()),
        }
    }
}

/// Aggregates of one tracking run.
#[derive(Debug, Clone)]
pub struct TrackingRun {
    /// Per-epoch reports, in order.
    pub reports: Vec<EpochReport>,
}

impl TrackingRun {
    /// Epochs in which every scheduled client ran in TRACK mode — the
    /// adaptive scheduler's steady state (empty for non-adaptive runs).
    pub fn steady_state(&self) -> Vec<&EpochReport> {
        self.reports
            .iter()
            .filter(|r| {
                let occ = r.mode_occupancy();
                occ.track > 0 && occ.acquire == 0
            })
            .collect()
    }

    /// Mean sweeps/s of simulated airtime over the given reports.
    fn mean_throughput(reports: &[&EpochReport]) -> Option<f64> {
        if reports.is_empty() {
            return None;
        }
        Some(
            reports
                .iter()
                .map(|r| r.sweeps_per_sec_airtime())
                .sum::<f64>()
                / reports.len() as f64,
        )
    }

    /// Mean sweeps/s over steady-state (all-TRACK) epochs.
    pub fn steady_throughput(&self) -> Option<f64> {
        Self::mean_throughput(&self.steady_state())
    }

    /// Mean sweeps/s over all epochs (the figure for non-adaptive runs).
    pub fn overall_throughput(&self) -> Option<f64> {
        Self::mean_throughput(&self.reports.iter().collect::<Vec<_>>())
    }

    /// Mean absolute raw-fix error over epochs scheduled fully in TRACK
    /// mode (or over all epochs when no TRACK epochs exist).
    pub fn mean_abs_error_m(&self) -> Option<f64> {
        let steady = self.steady_state();
        let pool: Vec<&EpochReport> = if steady.is_empty() {
            self.reports.iter().collect()
        } else {
            steady
        };
        let errs: Vec<f64> = pool
            .iter()
            .flat_map(|r| r.outcomes.iter().filter_map(|o| o.error_m))
            .collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }

    /// Worst per-epoch tracker RMSE across the run's adaptive epochs.
    pub fn worst_track_rmse_m(&self) -> Option<f64> {
        self.reports
            .iter()
            .filter_map(|r| r.track_rmse_m())
            .max_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Fraction of (client, epoch) slots spent in TRACK mode.
    pub fn track_occupancy(&self) -> f64 {
        let (mut track, mut total) = (0usize, 0usize);
        for r in &self.reports {
            let occ = r.mode_occupancy();
            track += occ.track;
            total += occ.track + occ.acquire;
        }
        if total == 0 {
            0.0
        } else {
            track as f64 / total as f64
        }
    }
}

/// A high-SNR free-space client `d` meters from its locator.
pub fn tracking_ctx(d: f64) -> MeasurementContext {
    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        ideal_device(AntennaArray::single()),
        Point::new(0.0, 0.0),
        ideal_device(AntennaArray::laptop()),
        Point::new(d, 0.0),
    );
    ctx.snr.snr_at_1m_db = 55.0;
    ctx
}

/// Runs one tracking scenario: `n_clients` spread over 2–9 m, optionally
/// all receding at `velocity_mps`, for `epochs` service rounds.
pub fn run_tracking(cfg: &TrackingConfig) -> TrackingRun {
    let service_cfg = match cfg.adaptive {
        Some(t) => ServiceConfig::adaptive(t),
        None => ServiceConfig::default(),
    };
    let mut svc = RangingService::new(service_cfg);
    for i in 0..cfg.n_clients {
        let d = 2.0 + 7.0 * i as f64 / cfg.n_clients.max(1) as f64;
        let id = svc.add_client(tracking_ctx(d), ChronosConfig::ideal());
        svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;
    }

    let mut reports = Vec::with_capacity(cfg.epochs);
    let mut prev_span_s: Option<f64> = None;
    for e in 0..cfg.epochs {
        if cfg.velocity_mps != 0.0 {
            // Epoch k+1 starts one airtime span + epoch gap after epoch
            // k; move each mobile endpoint away by v x that interval.
            if let Some(span_s) = prev_span_s {
                let step = cfg.velocity_mps * (span_s + 0.005);
                for i in 0..cfg.n_clients {
                    let x = svc.client(i).ctx.initiator_pos.x - step;
                    svc.client_mut(i).ctx.initiator_pos = Point::new(x, 0.0);
                }
            }
        }
        let r = svc.run_epoch(cfg.seed.wrapping_mul(1000).wrapping_add(e as u64));
        prev_span_s = Some(r.airtime_span.as_secs_f64());
        reports.push(r);
    }
    TrackingRun { reports }
}

/// One row of the adaptive-vs-full capacity table (README, TRACKING.md).
#[derive(Debug, Clone)]
pub struct CapacityRow {
    /// Client count.
    pub n_clients: usize,
    /// Full-sweep service throughput, sweeps/s of airtime.
    pub full_sweeps_per_sec: f64,
    /// Adaptive steady-state throughput, sweeps/s of airtime.
    pub adaptive_sweeps_per_sec: f64,
    /// Full-sweep mean absolute error, meters.
    pub full_mae_m: f64,
    /// Adaptive TRACK-mode mean absolute error, meters.
    pub adaptive_mae_m: f64,
}

/// Runs the static-client capacity comparison for each client count.
pub fn capacity_table(client_counts: &[usize], epochs: usize, seed: u64) -> Vec<CapacityRow> {
    client_counts
        .iter()
        .map(|&n| {
            let base = TrackingConfig {
                seed,
                n_clients: n,
                epochs,
                velocity_mps: 0.0,
                adaptive: None,
            };
            let full = run_tracking(&base);
            let adaptive = run_tracking(&TrackingConfig {
                adaptive: Some(TrackerConfig::default()),
                ..base
            });
            CapacityRow {
                n_clients: n,
                full_sweeps_per_sec: full.overall_throughput().unwrap_or(0.0),
                adaptive_sweeps_per_sec: adaptive
                    .steady_throughput()
                    .or_else(|| adaptive.overall_throughput())
                    .unwrap_or(0.0),
                full_mae_m: full.mean_abs_error_m().unwrap_or(f64::NAN),
                adaptive_mae_m: adaptive.mean_abs_error_m().unwrap_or(f64::NAN),
            }
        })
        .collect()
}

/// Convenience: whether a run ever fell back to ACQUIRE after reaching
/// TRACK (used to assert re-acquisition behavior).
pub fn reacquired(run: &TrackingRun, client: usize) -> bool {
    let mut seen_track = false;
    for r in &run.reports {
        if let Some(o) = r.outcomes.iter().find(|o| o.client == client) {
            match o.mode {
                TrackMode::Track => seen_track = true,
                TrackMode::Acquire if seen_track => return true,
                TrackMode::Acquire => {}
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_run_reaches_steady_state_and_saves_airtime() {
        let run = run_tracking(&TrackingConfig::default());
        let steady = run.steady_state();
        assert!(steady.len() >= 8, "only {} steady epochs", steady.len());
        for r in &steady {
            assert!(r.airtime_saved() > 0.5, "saved {}", r.airtime_saved());
        }
        assert!(run.track_occupancy() > 0.7);
        // Static, lossless clients give the gate no reason to fire.
        for client in 0..TrackingConfig::default().n_clients {
            assert!(
                !reacquired(&run, client),
                "client {client} spuriously re-acquired"
            );
        }
    }

    #[test]
    fn capacity_table_shows_at_least_2x() {
        let rows = capacity_table(&[2], 8, 7);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(
            r.adaptive_sweeps_per_sec >= 2.0 * r.full_sweeps_per_sec,
            "adaptive {} vs full {}",
            r.adaptive_sweeps_per_sec,
            r.full_sweeps_per_sec
        );
        assert!(r.adaptive_mae_m <= 2.0 * r.full_mae_m + 1e-3);
    }

    #[test]
    fn moving_clients_stay_tracked() {
        let run = run_tracking(&TrackingConfig {
            velocity_mps: 1.2,
            epochs: 14,
            n_clients: 2,
            ..Default::default()
        });
        assert!(
            run.track_occupancy() > 0.5,
            "occupancy {}",
            run.track_occupancy()
        );
        let rmse = run.worst_track_rmse_m().expect("adaptive epochs");
        assert!(rmse < 0.5, "worst RMSE {rmse}");
    }
}
