//! Shared flag parsing for the benchmark binaries.
//!
//! Every gated bench binary (`bench_position`, `bench_throughput`)
//! understands the same four flags:
//!
//! * `--quick` — fewer epochs/rounds (the CI setting; baselines must be
//!   generated with the same flag CI checks with);
//! * `--out <path>` — where to write the JSON baseline (default is the
//!   binary's checked-in baseline name);
//! * `--check <baseline>` — compare against a checked-in baseline
//!   instead of overwriting it (exit 1 on regression);
//! * `--tolerance <frac>` — relative regression tolerance (default 0.20).
//!
//! Parsing lives here so the binaries cannot drift apart.

use std::path::PathBuf;

/// The parsed common flags.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Run the reduced CI-sized workload.
    pub quick: bool,
    /// Output path for baseline (re)generation.
    pub out: PathBuf,
    /// Baseline to gate against, if any.
    pub check: Option<PathBuf>,
    /// Relative regression tolerance.
    pub tolerance: f64,
}

impl BenchArgs {
    /// Parses `std::env::args` with the given default `--out` path.
    /// Returns a usage message on an unknown flag or a missing value.
    pub fn parse(default_out: &str) -> Result<BenchArgs, String> {
        Self::parse_from(std::env::args().skip(1), default_out)
    }

    /// [`BenchArgs::parse`] over an explicit argument iterator (tests).
    pub fn parse_from(
        args: impl IntoIterator<Item = String>,
        default_out: &str,
    ) -> Result<BenchArgs, String> {
        let mut parsed = BenchArgs {
            quick: false,
            out: PathBuf::from(default_out),
            check: None,
            tolerance: 0.20,
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => parsed.quick = true,
                "--out" => {
                    parsed.out = PathBuf::from(args.next().ok_or("--out needs a path".to_string())?)
                }
                "--check" => {
                    parsed.check = Some(PathBuf::from(
                        args.next().ok_or("--check needs a path".to_string())?,
                    ))
                }
                "--tolerance" => {
                    parsed.tolerance = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--tolerance needs a fraction, e.g. 0.20".to_string())?
                }
                other => {
                    return Err(format!("unknown flag {other}; see the crate docs"));
                }
            }
        }
        Ok(parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Result<BenchArgs, String> {
        BenchArgs::parse_from(args.iter().map(|s| s.to_string()), "BENCH_default.json")
    }

    #[test]
    fn defaults_and_flags() {
        let a = v(&[]).unwrap();
        assert!(!a.quick);
        assert_eq!(a.out, PathBuf::from("BENCH_default.json"));
        assert!(a.check.is_none());
        assert!((a.tolerance - 0.20).abs() < 1e-12);

        let a = v(&[
            "--quick",
            "--out",
            "x.json",
            "--check",
            "b.json",
            "--tolerance",
            "0.1",
        ])
        .unwrap();
        assert!(a.quick);
        assert_eq!(a.out, PathBuf::from("x.json"));
        assert_eq!(a.check, Some(PathBuf::from("b.json")));
        assert!((a.tolerance - 0.1).abs() < 1e-12);
    }

    #[test]
    fn errors_reported() {
        assert!(v(&["--frobnicate"]).is_err());
        assert!(v(&["--out"]).is_err());
        assert!(v(&["--check"]).is_err());
        assert!(v(&["--tolerance", "abc"]).is_err());
    }
}
