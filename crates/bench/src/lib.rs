//! # chronos-bench
//!
//! The experiment harness: scenario builders and Monte-Carlo runners that
//! regenerate every figure of the paper's evaluation (see DESIGN.md §3 for
//! the experiment index), plus CSV/console reporting helpers.
//!
//! Each figure has a binary in `src/bin/`; `run_all` executes everything
//! and writes `EXPERIMENTS-data/*.csv`. Criterion performance benches live
//! in `benches/`.

pub mod adversarial;
pub mod alloc_count;
pub mod cli;
pub mod figures;
pub mod fleet;
pub mod position;
pub mod report;
pub mod scenarios;
pub mod soak;
pub mod throughput;
pub mod tracking;

pub use report::{write_csv, write_json, Table};
pub use scenarios::*;
