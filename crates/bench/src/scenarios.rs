//! Scenario builders and Monte-Carlo runners for the paper's evaluation.
//!
//! Every figure of §12 maps to one function here (see DESIGN.md §3). The
//! runners are deterministic given a seed and parallelized across links
//! with std scoped threads.

use chronos_core::config::ChronosConfig;
use chronos_core::delay::arrival_delay_ns;
use chronos_core::session::ChronosSession;
use chronos_core::tof::genie_product;
use chronos_core::TofEstimator;
use chronos_link::sweep::{run_sweep, SweepConfig};
use chronos_link::time::Instant;
use chronos_link::traffic::{Outage, TcpModel, TcpSample, VideoModel, VideoSample};
use chronos_math::stats;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::environment::Environment;
use chronos_rf::geometry::Point;
use chronos_rf::hardware::{AntennaArray, DeviceModel, Intel5300};
use chronos_rf::testbed::Testbed;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One link-level trial outcome (a device pair at a testbed placement).
#[derive(Debug, Clone)]
pub struct LinkTrial {
    /// Ground-truth distance between device origins, meters.
    pub true_distance_m: f64,
    /// Whether the link is line-of-sight.
    pub los: bool,
    /// Per-antenna absolute ToF errors, ns.
    pub tof_errors_ns: Vec<f64>,
    /// Per-antenna absolute distance errors, m.
    pub distance_errors_m: Vec<f64>,
    /// Localization error (position vs truth in receiver frame), m.
    pub localization_error_m: Option<f64>,
    /// Dominant-peak counts of the primary profiles (sparsity statistic).
    pub peak_counts: Vec<usize>,
    /// Measured per-packet detection delays, ns (slope method, §5).
    pub detection_delays_ns: Vec<f64>,
    /// True per-packet propagation delay, ns.
    pub true_tof_ns: f64,
}

/// Parameters of the testbed accuracy experiments (Figs. 7 and 8).
#[derive(Debug, Clone)]
pub struct AccuracyConfig {
    /// Master seed.
    pub seed: u64,
    /// Maximum number of placements to evaluate (subsampled determin-
    /// istically from the testbed's pair list).
    pub max_pairs: usize,
    /// Receiver antenna array (laptop = Fig. 8b, access point = Fig. 8c).
    pub array: AntennaArray,
    /// Estimator configuration.
    pub chronos: ChronosConfig,
    /// Worker threads.
    pub threads: usize,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        AccuracyConfig {
            seed: 42,
            max_pairs: 80,
            array: AntennaArray::laptop(),
            chronos: ChronosConfig::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// Builds a calibrated session for a device pair, then re-targets it at the
/// testbed placement. Calibration happens once per pair at a known 2 m
/// line-of-sight geometry (paper §7 obs. 2), *before* the pair ever sees
/// the testbed — nothing about the evaluation placement leaks into it.
fn calibrated_session(
    rng: &mut StdRng,
    array: &AntennaArray,
    chronos: &ChronosConfig,
) -> ChronosSession {
    let initiator: DeviceModel = Intel5300::mobile(rng);
    let responder: DeviceModel = Intel5300::device(rng, array.clone());
    let mut ctx = MeasurementContext::new(
        Environment::free_space(),
        initiator,
        Point::new(0.0, 0.0),
        responder,
        Point::new(2.0, 0.0),
    );
    // Realistic Wi-Fi link budget: ~-30 dBm RSSI at 1 m over a -95 dBm
    // noise floor puts the 1 m SNR well above 50 dB; we use 50 dB so links
    // at 15 m (and through walls) retain workable CSI SNR, as the paper's
    // testbed did.
    ctx.snr.snr_at_1m_db = 50.0;
    let mut session = ChronosSession::new(ctx, chronos.clone());
    session.calibrate(rng, 2);
    session
}

/// Runs one placement trial.
fn run_link_trial(
    seed: u64,
    testbed: &Testbed,
    pair: &chronos_rf::testbed::TestbedPair,
    array: &AntennaArray,
    chronos: &ChronosConfig,
) -> LinkTrial {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut session = calibrated_session(&mut rng, array, chronos);

    // Move the pair into the testbed.
    session.ctx.environment = testbed.environment.clone();
    session.ctx.initiator_pos = pair.a;
    session.ctx.responder_pos = pair.b;

    let out = session.sweep(&mut rng, Instant::ZERO);

    let ant_world = session.ctx.responder.antennas.world_positions(pair.b);
    let mut tof_errors_ns = Vec::new();
    let mut distance_errors_m = Vec::new();
    let mut peak_counts = Vec::new();
    for (i, tof) in out.tofs.iter().enumerate() {
        if let Ok(t) = tof {
            let true_d = ant_world[i].dist(pair.a);
            let true_tof = chronos_math::constants::m_to_ns(true_d);
            tof_errors_ns.push((t.tof_ns - true_tof).abs());
            distance_errors_m.push((t.distance_m - true_d).abs());
            if let Some(g) = t.groups.first() {
                peak_counts.push(g.profile.peak_count(0.15));
            }
        }
    }

    let truth_rel = pair.a.sub(pair.b);
    let localization_error_m = out.position.as_ref().ok().map(|p| p.point.dist(truth_rel));

    // Detection delays measured per packet via the §5 slope method, on a
    // handful of fresh captures at this placement.
    let mut detection_delays_ns = Vec::new();
    let band = chronos_rf::bands::band_by_channel(100).expect("band");
    let layout = chronos_rf::ofdm::SubcarrierLayout::intel5300();
    let hw = session.ctx.initiator.hw_delay_ns + session.ctx.responder.hw_delay_ns;
    for k in 0..6 {
        let m = session
            .ctx
            .measure_pair(&mut rng, &band, &layout, 0, 0, 1.0 + k as f64 * 1e-3);
        if let Ok(arrival) = arrival_delay_ns(&m.forward) {
            detection_delays_ns.push(arrival - m.truth_tof_ns - hw);
        }
    }

    LinkTrial {
        true_distance_m: pair.distance_m,
        los: pair.los,
        tof_errors_ns,
        distance_errors_m,
        localization_error_m,
        peak_counts,
        detection_delays_ns,
        true_tof_ns: chronos_math::constants::m_to_ns(pair.distance_m),
    }
}

/// Runs the full testbed accuracy experiment (shared by Figs. 7a, 7b, 7c,
/// 8a, 8b, 8c). Deterministic per config.
pub fn run_accuracy(cfg: &AccuracyConfig) -> Vec<LinkTrial> {
    let testbed = Testbed::office(cfg.seed);
    let mut pairs = testbed.pairs_within(15.0);
    // Deterministic subsample: spread over the list.
    if pairs.len() > cfg.max_pairs {
        let stride = pairs.len() as f64 / cfg.max_pairs as f64;
        pairs = (0..cfg.max_pairs)
            .map(|i| pairs[(i as f64 * stride) as usize])
            .collect();
    }

    let results: Vec<LinkTrial> = std::thread::scope(|scope| {
        let chunk = pairs.len().div_ceil(cfg.threads.max(1));
        let mut handles = Vec::new();
        for (w, slice) in pairs.chunks(chunk).enumerate() {
            let testbed = &testbed;
            let chronos = &cfg.chronos;
            let array = &cfg.array;
            let seed = cfg.seed;
            handles.push(scope.spawn(move || {
                slice
                    .iter()
                    .enumerate()
                    .map(|(i, pair)| {
                        let trial_seed = seed
                            .wrapping_mul(1_000_003)
                            .wrapping_add((w * 10_000 + i) as u64);
                        run_link_trial(trial_seed, testbed, pair, array, chronos)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker"))
            .collect()
    });
    results
}

/// Splits trials into (LOS, NLOS) flattened error vectors by a selector.
pub fn split_errors(
    trials: &[LinkTrial],
    select: impl Fn(&LinkTrial) -> Vec<f64>,
) -> (Vec<f64>, Vec<f64>) {
    let mut los = Vec::new();
    let mut nlos = Vec::new();
    for t in trials {
        let vals = select(t);
        if t.los {
            los.extend(vals);
        } else {
            nlos.extend(vals);
        }
    }
    (los, nlos)
}

/// Fig. 9(a): distribution of full-sweep (hop) times, milliseconds.
pub fn run_hop_times(seed: u64, n: usize) -> Vec<f64> {
    let cfg = SweepConfig::standard();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut guard = 0;
    while out.len() < n && guard < n * 4 {
        guard += 1;
        let r = run_sweep(&cfg, Instant::ZERO, &mut rng);
        if r.complete {
            out.push(r.duration().as_millis_f64());
        }
    }
    out
}

/// Runs one protocol sweep and converts it into a single traffic outage
/// window starting at `at_ms` (the paper triggers localization at t = 6 s).
pub fn sweep_outage(seed: u64, at_ms: u64) -> Outage {
    let cfg = SweepConfig::standard();
    let mut rng = StdRng::seed_from_u64(seed);
    let r = run_sweep(&cfg, Instant::from_millis(at_ms), &mut rng);
    Outage {
        start: r.started,
        end: r.finished,
    }
}

/// Fig. 9(b): the video trace around a localization request at t = 6 s.
pub fn run_video_trace(seed: u64) -> Vec<VideoSample> {
    let outage = sweep_outage(seed, 6_000);
    VideoModel::default().run(
        chronos_link::time::Duration::from_millis(10_000),
        chronos_link::time::Duration::from_millis(20),
        &[outage],
    )
}

/// Fig. 9(c): the TCP throughput trace around the same request.
pub fn run_tcp_trace(seed: u64) -> Vec<TcpSample> {
    let outage = sweep_outage(seed, 6_000);
    TcpModel::default().run(
        chronos_link::time::Duration::from_millis(15_000),
        chronos_link::time::Duration::from_millis(1_000),
        &[outage],
    )
}

/// Fig. 10: the drone follow experiment. Returns per-tick records.
pub fn run_drone(seed: u64, ticks: usize) -> Vec<chronos_drone::FollowRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = chronos_drone::FollowConfig {
        ticks,
        ..Default::default()
    };
    let mut sim = chronos_drone::FollowSim::new(&mut rng, cfg, seed);
    sim.run(&mut rng)
}

/// Fig. 4: the three-path multipath profile recovered from an ideal
/// full-plan sweep on raw (unsquared) channels. Returns `(delay_ns,
/// magnitude)` rows of the recovered profile plus the estimated ToF.
pub fn run_fig4_profile() -> (Vec<(f64, f64)>, f64) {
    let paths = [(5.2, 1.0), (10.0, 0.65), (16.0, 0.4)];
    let products: Vec<_> = chronos_rf::bands::band_plan()
        .iter()
        .map(|b| genie_product(b.center_hz, &paths, 1.0))
        .collect();
    let mut cfg = ChronosConfig::ideal();
    cfg.grid_span_ns = 50.0;
    cfg.grid_step_ns = 0.1;
    let est = TofEstimator::new(cfg);
    let r = est
        .estimate_from_products(&products)
        .expect("fig4 estimate");
    let prof = &r.groups[0].profile;
    let rows: Vec<(f64, f64)> = prof
        .magnitudes
        .iter()
        .enumerate()
        .map(|(i, m)| (prof.start_ns + i as f64 * prof.step_ns, *m))
        .collect();
    (rows, r.tof_ns)
}

/// Summary statistics the headline table quotes.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Median of the samples.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
    /// Sample count.
    pub n: usize,
}

/// Reduces a sample vector to its summary.
pub fn summarize(xs: &[f64]) -> Summary {
    Summary {
        median: stats::median(xs),
        p95: stats::percentile(xs, 95.0),
        mean: stats::mean(xs),
        std: stats::std_dev(xs),
        n: xs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_chronos() -> ChronosConfig {
        ChronosConfig {
            max_iters: 120,
            grid_step_ns: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn accuracy_runner_produces_trials() {
        let cfg = AccuracyConfig {
            seed: 1,
            max_pairs: 6,
            array: AntennaArray::laptop(),
            chronos: quick_chronos(),
            threads: 2,
        };
        let trials = run_accuracy(&cfg);
        assert_eq!(trials.len(), 6);
        // The quick config (coarse grid, few iterations) is deliberately
        // degraded; far NLOS placements may fail, as in the full runs.
        let with_tof = trials
            .iter()
            .filter(|t| !t.tof_errors_ns.is_empty())
            .count();
        assert!(with_tof >= 3, "only {with_tof} trials produced estimates");
        for t in &trials {
            for e in &t.tof_errors_ns {
                assert!(e.is_finite() && *e >= 0.0);
            }
        }
    }

    #[test]
    fn accuracy_runner_deterministic() {
        let cfg = AccuracyConfig {
            seed: 9,
            max_pairs: 3,
            array: AntennaArray::laptop(),
            chronos: quick_chronos(),
            threads: 1,
        };
        let a = run_accuracy(&cfg);
        let b = run_accuracy(&cfg);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.tof_errors_ns, y.tof_errors_ns);
        }
    }

    #[test]
    fn split_errors_partitions() {
        let t1 = LinkTrial {
            true_distance_m: 1.0,
            los: true,
            tof_errors_ns: vec![0.1, 0.2],
            distance_errors_m: vec![],
            localization_error_m: None,
            peak_counts: vec![],
            detection_delays_ns: vec![],
            true_tof_ns: 3.3,
        };
        let mut t2 = t1.clone();
        t2.los = false;
        t2.tof_errors_ns = vec![0.9];
        let (los, nlos) = split_errors(&[t1, t2], |t| t.tof_errors_ns.clone());
        assert_eq!(los, vec![0.1, 0.2]);
        assert_eq!(nlos, vec![0.9]);
    }

    #[test]
    fn hop_times_sane() {
        let times = run_hop_times(3, 10);
        assert_eq!(times.len(), 10);
        let med = stats::median(&times);
        assert!((70.0..100.0).contains(&med), "median {med}");
    }

    #[test]
    fn traces_generated() {
        let v = run_video_trace(4);
        assert!(!v.is_empty());
        assert!(!chronos_link::traffic::VideoModel::has_stall(&v));
        let t = run_tcp_trace(4);
        assert!(t.len() >= 14);
    }

    #[test]
    fn fig4_profile_has_three_peaks() {
        let (rows, tof) = run_fig4_profile();
        assert!((tof - 5.2).abs() < 0.2, "tof {tof}");
        let mags: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let peaks = chronos_math::peaks::find_peaks(
            &mags,
            0.0,
            0.1,
            &chronos_math::peaks::PeakConfig {
                dominance: 0.2,
                min_separation: 5,
            },
        );
        assert!(peaks.len() >= 3, "{} peaks", peaks.len());
    }

    #[test]
    fn summary_reduction() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.median, 3.0);
        assert!(s.p95 > 4.0);
    }
}
