//! Console, CSV and JSON reporting for experiment output.
//!
//! Every experiment binary prints a table (the paper's "rows/series") and
//! optionally writes it to `EXPERIMENTS-data/<name>.csv` so the results can
//! be diffed across runs and quoted in EXPERIMENTS.md. Benchmark gates
//! additionally serialize tables as machine-readable JSON
//! ([`Table::to_json`] / [`write_json`]) so CI can diff a run against a
//! checked-in baseline (`scripts/check-bench-regression.sh`).

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple column-oriented table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name (used as CSV file stem).
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of formatted cells.
    ///
    /// # Panics
    /// Panics when the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of `f64` values, formatted with `precision` decimals.
    pub fn row_f64(&mut self, values: &[f64], precision: usize) {
        let cells: Vec<String> = values.iter().map(|v| format!("{v:.precision$}")).collect();
        self.row(&cells);
    }

    /// Appends a row of heterogeneous `Display` cells — counts, gains,
    /// percentages and pre-formatted strings in one row, as the
    /// window-report tables need.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Renders the table for the console, aligned.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// CSV serialization (headers + rows, comma separated, quoted when
    /// needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl Table {
    /// JSON serialization: `{"name": ..., "headers": [...], "rows":
    /// [[...], ...]}`. Cells that parse as finite `f64` are emitted as
    /// JSON numbers (so baseline checkers compare them numerically);
    /// everything else is emitted as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": {},\n", json_string(&self.name)));
        out.push_str("  \"headers\": [");
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| json_string(h))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("],\n  \"rows\": [\n");
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|c| json_cell(c)).collect();
                format!("    [{}]", cells.join(", "))
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a table from the JSON produced by [`Table::to_json`].
    ///
    /// This is a minimal parser for that exact shape (string/number cells,
    /// no nested objects), not a general JSON reader — enough for the
    /// bench-regression gate to load its checked-in baseline without
    /// pulling a serde dependency into the offline workspace.
    pub fn from_json(json: &str) -> Result<Table, String> {
        let name = extract_json_string(json, "name")?;
        let headers_src = extract_json_array(json, "headers")?;
        let headers = parse_scalar_list(&headers_src)?;
        let rows_src = extract_json_array(json, "rows")?;
        let mut rows = Vec::new();
        for row_src in split_top_level_arrays(&rows_src)? {
            let cells = parse_scalar_list(&row_src)?;
            if cells.len() != headers.len() {
                return Err(format!(
                    "row width {} != header width {}",
                    cells.len(),
                    headers.len()
                ));
            }
            rows.push(cells);
        }
        Ok(Table {
            name,
            headers,
            rows,
        })
    }

    /// The cell at (`row`, column named `header`) parsed as `f64`, when
    /// present and numeric.
    pub fn cell_f64(&self, row: usize, header: &str) -> Option<f64> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows
            .get(row)?
            .get(col)?
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
    }

    /// Index of the row whose first cell equals `key`.
    pub fn row_by_key(&self, key: &str) -> Option<usize> {
        self.rows
            .iter()
            .position(|r| r.first().map(String::as_str) == Some(key))
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_cell(cell: &str) -> String {
    match cell.parse::<f64>() {
        // Canonical numeric form (what `parse` accepts back); rejects
        // NaN/inf, which JSON cannot carry.
        Ok(v) if v.is_finite() => cell.trim().to_string(),
        _ => json_string(cell),
    }
}

/// Decodes a JSON string body starting just *after* the opening quote.
/// Returns the decoded value and the byte length consumed, including the
/// closing quote. Handles exactly the escapes [`Table::to_json`] emits
/// (`\"`, `\\`, `\n`, `\r`, `\t`, and `\uXXXX` for control characters),
/// so the writer/parser pair round-trips every cell.
fn decode_json_string(src: &str) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut chars = src.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => match chars.next().map(|(_, e)| e) {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        let digit = h
                            .to_digit(16)
                            .ok_or_else(|| format!("bad hex digit {h:?} in \\u escape"))?;
                        code = code * 16 + digit;
                    }
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("\\u{code:04x} is not a scalar value"))?,
                    );
                }
                Some(e) => out.push(e),
                None => return Err("dangling escape".into()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn extract_json_string(json: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\"");
    let at = json
        .find(&pat)
        .ok_or_else(|| format!("missing key {key}"))?;
    let rest = &json[at + pat.len()..];
    let colon = rest
        .find(':')
        .ok_or_else(|| format!("malformed key {key}"))?;
    let rest = rest[colon + 1..].trim_start();
    if !rest.starts_with('"') {
        return Err(format!("key {key} is not a string"));
    }
    decode_json_string(&rest[1..])
        .map(|(s, _)| s)
        .map_err(|e| format!("{e} for key {key}"))
}

/// Returns the source between the brackets of `"key": [ ... ]`, handling
/// nested arrays and strings.
fn extract_json_array(json: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\"");
    let at = json
        .find(&pat)
        .ok_or_else(|| format!("missing key {key}"))?;
    let rest = &json[at + pat.len()..];
    let open = rest
        .find('[')
        .ok_or_else(|| format!("key {key} is not an array"))?;
    let body = &rest[open + 1..];
    let mut depth = 1usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(body[..i].to_string());
                }
            }
            _ => {}
        }
    }
    Err(format!("unterminated array for key {key}"))
}

/// Splits `[...], [...], ...` into the inner sources of each top-level
/// array.
fn split_top_level_arrays(src: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in src.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '[' => {
                if depth == 0 {
                    start = i + 1;
                }
                depth += 1;
            }
            ']' => {
                if depth == 0 {
                    return Err("unbalanced brackets".into());
                }
                depth -= 1;
                if depth == 0 {
                    out.push(src[start..i].to_string());
                }
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err("unbalanced brackets".into());
    }
    Ok(out)
}

/// Parses a comma-separated list of JSON strings / numbers into cells.
fn parse_scalar_list(src: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut rest = src.trim_start();
    while !rest.is_empty() {
        if let Some(body) = rest.strip_prefix('"') {
            let (val, used) = decode_json_string(body)?;
            out.push(val);
            rest = rest[1 + used..].trim_start();
        } else {
            let stop = rest.find(',').unwrap_or(rest.len());
            let token = rest[..stop].trim();
            if token.is_empty() {
                return Err("empty cell".into());
            }
            token
                .parse::<f64>()
                .map_err(|_| format!("bad number {token:?}"))?;
            out.push(token.to_string());
            rest = &rest[stop..];
        }
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("trailing garbage {rest:?}"));
        }
    }
    Ok(out)
}

/// Writes a table to `<dir>/<table.name>.csv`, creating the directory.
pub fn write_csv(table: &Table, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", table.name));
    let mut f = fs::File::create(&path)?;
    f.write_all(table.to_csv().as_bytes())?;
    Ok(path)
}

/// Writes a table as JSON to `path` (e.g. the checked-in
/// `BENCH_position.json` baseline), creating parent directories.
pub fn write_json(table: &Table, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut f = fs::File::create(path)?;
    f.write_all(table.to_json().as_bytes())
}

/// The default output directory for experiment CSVs.
pub fn data_dir() -> std::path::PathBuf {
    std::env::var_os("CHRONOS_DATA_DIR")
        .map(Into::into)
        .unwrap_or_else(|| std::path::PathBuf::from("EXPERIMENTS-data"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("demo", &["metric", "value"]);
        t.row(&["median".into(), "0.47".into()]);
        t.row_f64(&[95.0, 1.96], 2);
        let rendered = t.render();
        assert!(rendered.contains("median"));
        assert!(rendered.contains("0.47"));
        let csv = t.to_csv();
        assert!(csv.starts_with("metric,value\n"));
        assert!(csv.contains("95.00,1.96"));
    }

    #[test]
    fn row_display_mixes_cell_types() {
        let mut t = Table::new("mix", &["clients", "gain", "util"]);
        t.row_display(&[&8usize, &format!("{:.1}x", 2.16), &"100%"]);
        assert_eq!(t.rows[0], vec!["8", "2.2x", "100%"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("esc", &["a", "b"]);
        t.row(&["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn json_roundtrip_preserves_cells() {
        let mut t = Table::new("BENCH_demo", &["scenario", "median_err_m", "note"]);
        t.row(&["los".into(), "0.42".into(), "free space".into()]);
        t.row(&["nlos, walled".into(), "1.05".into(), "say \"hi\"".into()]);
        let json = t.to_json();
        assert!(json.contains("\"BENCH_demo\""));
        assert!(json.contains("0.42"), "{json}");
        let back = Table::from_json(&json).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.headers, t.headers);
        assert_eq!(back.rows, t.rows);
        assert_eq!(back.cell_f64(0, "median_err_m"), Some(0.42));
        assert_eq!(back.cell_f64(0, "scenario"), None);
        assert_eq!(back.row_by_key("nlos, walled"), Some(1));
        assert_eq!(back.row_by_key("missing"), None);
    }

    #[test]
    fn json_roundtrip_decodes_control_char_escapes() {
        // to_json emits \uXXXX for control characters; from_json must
        // decode them or the documented roundtrip silently corrupts keys.
        let mut t = Table::new("esc\u{7}name", &["k"]);
        t.row(&["bell\u{7}cell".into()]);
        let json = t.to_json();
        assert!(json.contains("\\u0007"), "{json}");
        let back = Table::from_json(&json).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.rows, t.rows);
        assert_eq!(back.row_by_key("bell\u{7}cell"), Some(0));
    }

    #[test]
    fn json_parser_rejects_malformed_input() {
        assert!(Table::from_json("{}").is_err());
        assert!(Table::from_json("{\"name\": \"x\", \"headers\": [\"a\"]}").is_err());
        let mismatched = "{\"name\": \"x\", \"headers\": [\"a\", \"b\"], \"rows\": [[1]]}";
        assert!(Table::from_json(mismatched).is_err());
    }

    #[test]
    fn write_json_roundtrip() {
        let mut t = Table::new("json_roundtrip", &["x"]);
        t.row(&["1.5".into()]);
        let path = std::env::temp_dir().join("chronos_bench_test_BENCH.json");
        write_json(&t, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let back = Table::from_json(&content).unwrap();
        assert_eq!(back.rows, t.rows);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn write_csv_roundtrip() {
        let mut t = Table::new("roundtrip_test", &["x"]);
        t.row(&["1".into()]);
        let dir = std::env::temp_dir().join("chronos_bench_test");
        let path = write_csv(&t, &dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\n1\n");
        let _ = std::fs::remove_file(path);
    }
}
