//! Console and CSV reporting for experiment output.
//!
//! Every experiment binary prints a table (the paper's "rows/series") and
//! optionally writes it to `EXPERIMENTS-data/<name>.csv` so the results can
//! be diffed across runs and quoted in EXPERIMENTS.md.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple column-oriented table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name (used as CSV file stem).
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of formatted cells.
    ///
    /// # Panics
    /// Panics when the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a row of `f64` values, formatted with `precision` decimals.
    pub fn row_f64(&mut self, values: &[f64], precision: usize) {
        let cells: Vec<String> =
            values.iter().map(|v| format!("{v:.precision$}")).collect();
        self.row(&cells);
    }

    /// Renders the table for the console, aligned.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// CSV serialization (headers + rows, comma separated, quoted when
    /// needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a table to `<dir>/<table.name>.csv`, creating the directory.
pub fn write_csv(table: &Table, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", table.name));
    let mut f = fs::File::create(&path)?;
    f.write_all(table.to_csv().as_bytes())?;
    Ok(path)
}

/// The default output directory for experiment CSVs.
pub fn data_dir() -> std::path::PathBuf {
    std::env::var_os("CHRONOS_DATA_DIR")
        .map(Into::into)
        .unwrap_or_else(|| std::path::PathBuf::from("EXPERIMENTS-data"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("demo", &["metric", "value"]);
        t.row(&["median".into(), "0.47".into()]);
        t.row_f64(&[95.0, 1.96], 2);
        let rendered = t.render();
        assert!(rendered.contains("median"));
        assert!(rendered.contains("0.47"));
        let csv = t.to_csv();
        assert!(csv.starts_with("metric,value\n"));
        assert!(csv.contains("95.00,1.96"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("esc", &["a", "b"]);
        t.row(&["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn write_csv_roundtrip() {
        let mut t = Table::new("roundtrip_test", &["x"]);
        t.row(&["1".into()]);
        let dir = std::env::temp_dir().join("chronos_bench_test");
        let path = write_csv(&t, &dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\n1\n");
        let _ = std::fs::remove_file(path);
    }
}
