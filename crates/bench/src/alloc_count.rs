//! A counting global allocator for allocation-budget tests and the
//! `bench_throughput` allocs/sweep metric.
//!
//! [`CountingAlloc`] forwards every request to the [`System`] allocator
//! and counts allocation *events* (alloc, alloc_zeroed, realloc —
//! dealloc is free and not counted) both globally and per thread. The
//! per-thread counter is what measurements use: it is immune to
//! allocations made by other test threads running concurrently.
//!
//! Install it as the global allocator in a binary or test crate:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: chronos_bench::alloc_count::CountingAlloc = CountingAlloc::new();
//! ```
//!
//! Counters only advance when the program's global allocator is a
//! `CountingAlloc`; library code calling [`thread_allocations`] under a
//! different allocator reads a frozen counter (deltas are zero).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Allocation-counting wrapper around the system allocator.
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new counting allocator (const, for `#[global_allocator]`).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn record() {
    GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    // `try_with` keeps us safe during thread teardown, when the TLS slot
    // may already be destroyed but late allocations still happen.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: pure pass-through to `System`; the counters have no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record();
        System.realloc(ptr, layout, new_size)
    }
}

/// Allocation events recorded on the *current thread* since it started.
/// Take a delta around the measured region.
pub fn thread_allocations() -> u64 {
    THREAD_ALLOCS.try_with(|c| c.get()).unwrap_or(0)
}

/// Allocation events recorded process-wide.
pub fn total_allocations() -> u64 {
    GLOBAL_ALLOCS.load(Ordering::Relaxed)
}
