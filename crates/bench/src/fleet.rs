//! Fleet capacity benchmark: synchronized one-way TDoA versus per-AP
//! round-trip sweeps at 16 APs with a roaming population.
//!
//! Backs `bin/bench_fleet`, the checked-in `BENCH_fleet.json` baseline
//! (fifth gate in `scripts/check-bench-regression.sh`) and the capacity
//! table in the README. The scenario: a 4×4 AP grid (20 m cells, one
//! `MediumArbiter` each), a city-size population of 1000 deterministic
//! walkers bouncing across cells, and the *same* population run twice —
//! once in [`FleetRangingMode::RoundTrip`] (every fix is a per-AP band
//! sweep), once in [`FleetRangingMode::Tdoa`] (every fix is one blast
//! timestamped fleet-wide). The `ratio_tdoa_over_roundtrip` row records
//! the headline claim the ISSUE pins: ≥ 2× fixes/s per client at
//! ≤ 1.5× the cross-AP position error. [`fleet_table`] asserts both, so
//! a committed baseline always satisfies them.
//!
//! The `fleet_shard_w{1,2,4}` rows measure the shard-parallel window
//! driver in the PR-9 throughput methodology: paired rounds (every
//! worker config measured once per round) min-filtered per config, with
//! the serial loop (`w1`) as the speedup denominator. Wall-clock
//! speedup is informational — CI hosts vary in core count — but the
//! rows' stats columns and the `worker_allocs = 0` steady-state gate
//! are exact, and the table builder asserts every config's reports
//! digest-identical before a baseline can be written.
//!
//! Determinism: walkers move as a pure function of (index, window);
//! both fleet modes inherit the engine seeding contract, so identical
//! seeds replay identical tables and the regression gate trips on real
//! drift, not noise. Worker counts never change results — only wall
//! clock — per the fleet's two-level parallelism contract
//! (`docs/FLEET.md`).

use crate::report::Table;
use chronos_core::config::ChronosConfig;
use chronos_core::fleet::{FleetConfig, FleetEngine, FleetRangingMode, FleetWindowReport};
use chronos_core::tracker::TrackerConfig;
use chronos_link::time::Duration;
use chronos_rf::environment::Environment;
use chronos_rf::geometry::Point;
use chronos_rf::testbed::ap_grid;

/// APs on the grid (4×4).
pub const FLEET_APS: usize = 16;

/// Grid cell pitch, meters.
pub const AP_SPACING_M: f64 = 20.0;

/// Roaming clients (the ROADMAP's city-size target: ~62 per AP).
pub const FLEET_CLIENTS: usize = 1000;

/// Pool workers pinned for the headline mode rows (4-way shard
/// concurrency with the helping fleet driver). Pinned — not host-auto —
/// so every machine runs the identical execution strategy; reports are
/// bitwise worker-count-invariant anyway, so this only affects wall
/// clock.
pub const FLEET_POOL_WORKERS: usize = 3;

/// Walker ground speed, m/s. High for a pedestrian on purpose: windows
/// are short, and the bench needs cell crossings (handoffs) within a
/// few seconds of simulated time.
pub const WALKER_SPEED_MPS: f64 = 6.0;

/// Table headers; first column is the regression-gate row key.
/// Direction rules (`check_regression`): `fix_rate_per_client` is
/// higher-better, `median_err_m`/`p90_err_m` and `handoff_gap_sweeps`
/// are lower-better, everything else numeric must match the baseline
/// exactly — which is how `worker_allocs` gates the steady-state shard
/// path at 0 and `workers` pins each row's execution strategy.
/// `speedup_vs_serial` is rendered with an `x` suffix, so the gate
/// skips it (informational: CI hosts vary in core count).
pub const FLEET_HEADERS: [&str; 12] = [
    "scenario",
    "aps",
    "clients",
    "windows",
    "workers",
    "fix_rate_per_client",
    "median_err_m",
    "p90_err_m",
    "handoffs",
    "handoff_gap_sweeps",
    "worker_allocs",
    "speedup_vs_serial",
];

/// The estimator settings fleet round-trip sweeps use: the coarse grid
/// shared with `tests/engine.rs` and the soak bench, so the debug-mode
/// test tier stays fast while release benches measure the same
/// pipeline.
pub fn fleet_chronos() -> ChronosConfig {
    ChronosConfig {
        max_iters: 120,
        grid_step_ns: 0.5,
        ..ChronosConfig::ideal()
    }
}

/// Walker `i`'s position after `windows` completed windows of length
/// `window_s`: a constant-velocity bounce inside the fleet's bounding
/// box. Pure function — both fleet modes see the identical trajectory.
pub fn walker_at(i: usize, windows: usize, window_s: f64) -> Point {
    let extent = ((FLEET_APS as f64).sqrt().ceil() - 1.0) * AP_SPACING_M;
    // Start scattered over the grid, headings spread over the circle.
    let fx = (i as f64 * 0.537_228).fract();
    let fy = (i as f64 * 0.754_878).fract();
    let heading = i as f64 * 2.399_963; // golden-angle spread
    let t = windows as f64 * window_s;
    let bounce = |x0: f64, v: f64| {
        // Reflective boundary on [0, extent] via the triangle wave of
        // the unfolded coordinate.
        let period = 2.0 * extent;
        let u = (x0 + v * t).rem_euclid(period);
        if u <= extent {
            u
        } else {
            period - u
        }
    };
    Point::new(
        bounce(fx * extent, WALKER_SPEED_MPS * heading.cos()),
        bounce(fy * extent, WALKER_SPEED_MPS * heading.sin()),
    )
}

/// Parameters of one fleet comparison run.
#[derive(Debug, Clone, Copy)]
pub struct FleetScenarioConfig {
    /// Master seed.
    pub seed: u64,
    /// Continuous windows to run.
    pub windows: usize,
    /// Length of each window, seconds.
    pub window_s: f64,
}

impl FleetScenarioConfig {
    /// The gate scenario: `--quick` runs 3×200 ms windows, the full
    /// bench 8×250 ms.
    pub fn standard(seed: u64, quick: bool) -> Self {
        if quick {
            FleetScenarioConfig {
                seed,
                windows: 3,
                window_s: 0.2,
            }
        } else {
            FleetScenarioConfig {
                seed,
                windows: 8,
                window_s: 0.25,
            }
        }
    }
}

/// Accumulated metrics of one mode's run.
#[derive(Debug, Clone)]
pub struct FleetRunStats {
    /// Successful raw fixes across all windows.
    pub fixes: usize,
    /// Fixes per second per client over the whole run.
    pub fix_rate_per_client: f64,
    /// Median raw-fix error, meters.
    pub median_err_m: f64,
    /// 90th-percentile raw-fix error, meters.
    pub p90_err_m: f64,
    /// Total handoffs.
    pub handoffs: usize,
    /// Total post-handoff re-ACQUIRE sweeps.
    pub handoff_gap_sweeps: usize,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// One mode run's full result: folded stats plus the measurement
/// side-channels the scaling rows need.
#[derive(Debug, Clone)]
pub struct FleetModeRun {
    /// Folded per-window metrics.
    pub stats: FleetRunStats,
    /// Host wall clock over the window loop (construction, population
    /// and plan prewarm excluded).
    pub wall_s: f64,
    /// Worker-side allocation events on the fine (sweep) task path
    /// after the first window — the steady-state counter the gate pins
    /// at 0. Always 0 when the bench binary's alloc probe is not
    /// installed (e.g. under `cargo test`).
    pub worker_allocs: u64,
    /// FNV-1a digest of everything deterministic in the window reports
    /// (outcome streams, utilization bits, handoff/sync accounting;
    /// wall clock and cache-hit lookup counts excluded). Equal digests
    /// across worker counts is the bitwise-identity claim.
    pub digest: u64,
}

/// Folds the deterministic content of a run's reports into one FNV-1a
/// digest (see [`FleetModeRun::digest`]).
fn digest_reports(reports: &[FleetWindowReport]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut put = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for r in reports {
        put(r.started.as_nanos());
        put(r.ended.as_nanos());
        put(r.handoffs as u64);
        put(r.handoff_gap_sweeps as u64);
        put(r.sync_rounds as u64);
        put(r.n_clients as u64);
        for sr in &r.shard_reports {
            put(sr.utilization.to_bits());
            put(sr.cache.misses);
            put(sr.bands_planned as u64);
            for o in &sr.outcomes {
                put(o.client as u64);
                put(o.sweep);
                put(o.started.as_nanos());
                put(o.finished.as_nanos());
                put(o.distance_m.unwrap_or(f64::NAN).to_bits());
                put(o.pos_error_m.unwrap_or(f64::NAN).to_bits());
            }
        }
        for o in &r.tdoa_outcomes {
            put(o.client as u64);
            put(o.blast);
            put(o.at.as_nanos());
            put(o.pos_error_m.unwrap_or(f64::NAN).to_bits());
        }
    }
    h
}

/// Runs one mode over the standard roaming population with the given
/// [`FleetConfig::workers`] strategy and folds the per-window reports
/// into run-level stats plus wall/alloc/digest measurements.
pub fn run_fleet_mode(
    cfg: &FleetScenarioConfig,
    mode: FleetRangingMode,
    workers: Option<usize>,
) -> FleetModeRun {
    let mut fleet_cfg = FleetConfig::position(TrackerConfig::default(), mode);
    fleet_cfg.chronos = fleet_chronos();
    fleet_cfg.workers = workers;
    let mut fleet = FleetEngine::new(
        fleet_cfg,
        Environment::free_space(),
        ap_grid(FLEET_APS, AP_SPACING_M),
    );
    for i in 0..FLEET_CLIENTS {
        fleet.add_client(walker_at(i, 0, cfg.window_s));
    }
    // One warm pass over the deduplicated plan set for the whole fleet
    // (not once per shard), so the timed loop starts plan-resident.
    fleet.prewarm_plans();
    let pool_allocs = |fleet: &FleetEngine| {
        fleet
            .runtime()
            .map(|rt| rt.worker_allocations())
            .unwrap_or(0)
    };
    let started = std::time::Instant::now();
    let mut allocs_warm = 0u64;
    let mut reports: Vec<FleetWindowReport> = Vec::with_capacity(cfg.windows);
    for w in 0..cfg.windows {
        for i in 0..FLEET_CLIENTS {
            fleet.set_client_pos(i, walker_at(i, w, cfg.window_s));
        }
        reports.push(fleet.run_window(cfg.seed, Duration::from_secs_f64(cfg.window_s)));
        if w == 0 {
            // Window 0 sizes every pipeline's scratch; the steady-state
            // alloc gate starts after it.
            allocs_warm = pool_allocs(&fleet);
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    let worker_allocs = pool_allocs(&fleet).saturating_sub(allocs_warm);
    let fixes: usize = reports.iter().map(|r| r.fixes()).sum();
    let mut errs: Vec<f64> = reports.iter().flat_map(|r| r.pos_errors_m()).collect();
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(!errs.is_empty(), "fleet run produced no fixes");
    let span_s = cfg.windows as f64 * cfg.window_s;
    FleetModeRun {
        stats: FleetRunStats {
            fixes,
            fix_rate_per_client: fixes as f64 / span_s / FLEET_CLIENTS as f64,
            median_err_m: percentile(&errs, 0.50),
            p90_err_m: percentile(&errs, 0.90),
            handoffs: reports.iter().map(|r| r.handoffs).sum(),
            handoff_gap_sweeps: reports.iter().map(|r| r.handoff_gap_sweeps).sum(),
        },
        wall_s,
        worker_allocs,
        digest: digest_reports(&reports),
    }
}

/// The shard-scaling ladder: row name and the [`FleetConfig::workers`]
/// value it pins. `w1` is the strictly serial shard loop; `wN` means
/// N-way shard concurrency (N−1 pool workers plus the helping fleet
/// driver).
pub const SHARD_SCALING: [(&str, usize); 3] = [
    ("fleet_shard_w1", 0),
    ("fleet_shard_w2", 1),
    ("fleet_shard_w4", 3),
];

/// Builds the `BENCH_fleet` table: one row per mode, the ratio row, and
/// the paired min-filtered shard-scaling rows. Asserts the capacity
/// claim (TDoA ≥ 2× fixes/s per client at ≤ 1.5× the position error)
/// and the shard-parallelism claim (bitwise-identical reports across
/// worker counts) so a generated baseline always embodies both.
pub fn fleet_table(seed: u64, quick: bool) -> Table {
    let cfg = FleetScenarioConfig::standard(seed, quick);
    let rt = run_fleet_mode(&cfg, FleetRangingMode::RoundTrip, Some(FLEET_POOL_WORKERS));
    let td = run_fleet_mode(&cfg, FleetRangingMode::Tdoa, Some(FLEET_POOL_WORKERS));
    let rate_ratio = td.stats.fix_rate_per_client / rt.stats.fix_rate_per_client;
    let err_ratio = td.stats.median_err_m / rt.stats.median_err_m;
    assert!(
        rate_ratio >= 2.0,
        "TDoA fix-rate advantage collapsed: {rate_ratio:.2}x"
    );
    assert!(
        err_ratio <= 1.5,
        "TDoA error exceeded 1.5x round-trip: {err_ratio:.2}x"
    );
    let mut table = Table::new("BENCH_fleet", &FLEET_HEADERS);
    let mut mode_row = |name: &str, r: &FleetModeRun| {
        table.row(&[
            name.into(),
            format!("{FLEET_APS}"),
            format!("{FLEET_CLIENTS}"),
            format!("{}", cfg.windows),
            format!("{FLEET_POOL_WORKERS}"),
            format!("{:.3}", r.stats.fix_rate_per_client),
            format!("{:.3}", r.stats.median_err_m),
            format!("{:.3}", r.stats.p90_err_m),
            format!("{}", r.stats.handoffs),
            format!("{}", r.stats.handoff_gap_sweeps),
            format!("{}", r.worker_allocs),
            "-".into(),
        ]);
    };
    mode_row("roundtrip", &rt);
    mode_row("tdoa", &td);
    table.row(&[
        "ratio_tdoa_over_roundtrip".into(),
        format!("{FLEET_APS}"),
        format!("{FLEET_CLIENTS}"),
        format!("{}", cfg.windows),
        format!("{FLEET_POOL_WORKERS}"),
        format!("{rate_ratio:.3}"),
        format!("{err_ratio:.3}"),
        format!("{:.3}", td.stats.p90_err_m / rt.stats.p90_err_m),
        "0".into(),
        "0".into(),
        "0".into(),
        "-".into(),
    ]);

    // Shard-scaling rows (PR-9 throughput methodology): paired rounds —
    // every config measured once per round, so host noise hits all of
    // them alike — then min-filtered per config. Shorter window count
    // than the mode rows: these rows measure execution strategy, not
    // the capacity claim.
    let scale_cfg = FleetScenarioConfig {
        seed,
        windows: if quick { 2 } else { 3 },
        window_s: cfg.window_s,
    };
    let rounds = if quick { 2 } else { 3 };
    let mut best: Vec<Option<FleetModeRun>> = vec![None; SHARD_SCALING.len()];
    for _round in 0..rounds {
        for (i, (name, workers)) in SHARD_SCALING.iter().enumerate() {
            let run = run_fleet_mode(&scale_cfg, FleetRangingMode::RoundTrip, Some(*workers));
            if let Some(prev) = &best[i] {
                assert_eq!(
                    prev.digest, run.digest,
                    "{name}: fleet run must replay identically across rounds"
                );
            }
            let faster = best[i].as_ref().is_none_or(|b| run.wall_s < b.wall_s);
            let run = FleetModeRun {
                worker_allocs: run
                    .worker_allocs
                    .max(best[i].as_ref().map_or(0, |b| b.worker_allocs)),
                wall_s: if faster {
                    run.wall_s
                } else {
                    best[i].as_ref().unwrap().wall_s
                },
                ..run
            };
            best[i] = Some(run);
        }
    }
    let best: Vec<FleetModeRun> = best.into_iter().map(|r| r.unwrap()).collect();
    // The tentpole's determinism claim, asserted at full bench scale:
    // serial and every parallel width produce identical reports.
    for (run, (name, _)) in best.iter().zip(SHARD_SCALING.iter()).skip(1) {
        assert_eq!(
            best[0].digest, run.digest,
            "{name}: shard-parallel reports diverged from the serial loop"
        );
    }
    let serial_wall = best[0].wall_s;
    for (run, (name, workers)) in best.iter().zip(SHARD_SCALING.iter()) {
        table.row(&[
            (*name).into(),
            format!("{FLEET_APS}"),
            format!("{FLEET_CLIENTS}"),
            format!("{}", scale_cfg.windows),
            format!("{workers}"),
            format!("{:.3}", run.stats.fix_rate_per_client),
            format!("{:.3}", run.stats.median_err_m),
            format!("{:.3}", run.stats.p90_err_m),
            format!("{}", run.stats.handoffs),
            format!("{}", run.stats.handoff_gap_sweeps),
            format!("{}", run.worker_allocs),
            format!("{:.2}x", serial_wall / run.wall_s),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkers_stay_inside_the_grid_and_actually_roam() {
        let extent = 3.0 * AP_SPACING_M;
        let mut moved = 0;
        for i in (0..FLEET_CLIENTS).step_by(17) {
            let a = walker_at(i, 0, 0.25);
            let b = walker_at(i, 8, 0.25);
            for p in [a, b] {
                assert!(p.x >= 0.0 && p.x <= extent && p.y >= 0.0 && p.y <= extent);
            }
            if a.dist(b) > 1.0 {
                moved += 1;
            }
        }
        assert!(moved >= 10, "walkers must cover ground: {moved}");
    }

    #[test]
    fn walker_trajectory_is_window_consistent() {
        // The position after w windows equals the closed-form point —
        // both modes replay the identical trajectory.
        let a = walker_at(7, 4, 0.2);
        let b = walker_at(7, 4, 0.2);
        assert_eq!(
            (a.x.to_bits(), a.y.to_bits()),
            (b.x.to_bits(), b.y.to_bits())
        );
    }
}
