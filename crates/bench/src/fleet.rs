//! Fleet capacity benchmark: synchronized one-way TDoA versus per-AP
//! round-trip sweeps at 16 APs with a roaming population.
//!
//! Backs `bin/bench_fleet`, the checked-in `BENCH_fleet.json` baseline
//! (fifth gate in `scripts/check-bench-regression.sh`) and the capacity
//! table in the README. The scenario: a 4×4 AP grid (20 m cells, one
//! `MediumArbiter` each), a population of deterministic walkers
//! bouncing across cells, and the *same* population run twice — once in
//! [`FleetRangingMode::RoundTrip`] (every fix is a per-AP band sweep),
//! once in [`FleetRangingMode::Tdoa`] (every fix is one blast
//! timestamped fleet-wide). The `ratio_tdoa_over_roundtrip` row records
//! the headline claim the ISSUE pins: ≥ 2× fixes/s per client at
//! ≤ 1.5× the cross-AP position error. [`fleet_table`] asserts both, so
//! a committed baseline always satisfies them.
//!
//! Determinism: walkers move as a pure function of (index, window);
//! both fleet modes inherit the engine seeding contract, so identical
//! seeds replay identical tables and the regression gate trips on real
//! drift, not noise.

use crate::report::Table;
use chronos_core::config::ChronosConfig;
use chronos_core::fleet::{FleetConfig, FleetEngine, FleetRangingMode, FleetWindowReport};
use chronos_core::tracker::TrackerConfig;
use chronos_link::time::Duration;
use chronos_rf::environment::Environment;
use chronos_rf::geometry::Point;
use chronos_rf::testbed::ap_grid;

/// APs on the grid (4×4).
pub const FLEET_APS: usize = 16;

/// Grid cell pitch, meters.
pub const AP_SPACING_M: f64 = 20.0;

/// Roaming clients (12 per AP).
pub const FLEET_CLIENTS: usize = 192;

/// Walker ground speed, m/s. High for a pedestrian on purpose: windows
/// are short, and the bench needs cell crossings (handoffs) within a
/// few seconds of simulated time.
pub const WALKER_SPEED_MPS: f64 = 6.0;

/// Table headers; first column is the regression-gate row key.
/// Direction rules (`check_regression`): `fix_rate_per_client` is
/// higher-better, `median_err_m`/`p90_err_m` and `handoff_gap_sweeps`
/// are lower-better, everything else must match the baseline exactly.
pub const FLEET_HEADERS: [&str; 9] = [
    "scenario",
    "aps",
    "clients",
    "windows",
    "fix_rate_per_client",
    "median_err_m",
    "p90_err_m",
    "handoffs",
    "handoff_gap_sweeps",
];

/// The estimator settings fleet round-trip sweeps use: the coarse grid
/// shared with `tests/engine.rs` and the soak bench, so the debug-mode
/// test tier stays fast while release benches measure the same
/// pipeline.
pub fn fleet_chronos() -> ChronosConfig {
    ChronosConfig {
        max_iters: 120,
        grid_step_ns: 0.5,
        ..ChronosConfig::ideal()
    }
}

/// Walker `i`'s position after `windows` completed windows of length
/// `window_s`: a constant-velocity bounce inside the fleet's bounding
/// box. Pure function — both fleet modes see the identical trajectory.
pub fn walker_at(i: usize, windows: usize, window_s: f64) -> Point {
    let extent = ((FLEET_APS as f64).sqrt().ceil() - 1.0) * AP_SPACING_M;
    // Start scattered over the grid, headings spread over the circle.
    let fx = (i as f64 * 0.537_228).fract();
    let fy = (i as f64 * 0.754_878).fract();
    let heading = i as f64 * 2.399_963; // golden-angle spread
    let t = windows as f64 * window_s;
    let bounce = |x0: f64, v: f64| {
        // Reflective boundary on [0, extent] via the triangle wave of
        // the unfolded coordinate.
        let period = 2.0 * extent;
        let u = (x0 + v * t).rem_euclid(period);
        if u <= extent {
            u
        } else {
            period - u
        }
    };
    Point::new(
        bounce(fx * extent, WALKER_SPEED_MPS * heading.cos()),
        bounce(fy * extent, WALKER_SPEED_MPS * heading.sin()),
    )
}

/// Parameters of one fleet comparison run.
#[derive(Debug, Clone, Copy)]
pub struct FleetScenarioConfig {
    /// Master seed.
    pub seed: u64,
    /// Continuous windows to run.
    pub windows: usize,
    /// Length of each window, seconds.
    pub window_s: f64,
}

impl FleetScenarioConfig {
    /// The gate scenario: `--quick` runs 3×200 ms windows, the full
    /// bench 8×250 ms.
    pub fn standard(seed: u64, quick: bool) -> Self {
        if quick {
            FleetScenarioConfig {
                seed,
                windows: 3,
                window_s: 0.2,
            }
        } else {
            FleetScenarioConfig {
                seed,
                windows: 8,
                window_s: 0.25,
            }
        }
    }
}

/// Accumulated metrics of one mode's run.
#[derive(Debug, Clone)]
pub struct FleetRunStats {
    /// Successful raw fixes across all windows.
    pub fixes: usize,
    /// Fixes per second per client over the whole run.
    pub fix_rate_per_client: f64,
    /// Median raw-fix error, meters.
    pub median_err_m: f64,
    /// 90th-percentile raw-fix error, meters.
    pub p90_err_m: f64,
    /// Total handoffs.
    pub handoffs: usize,
    /// Total post-handoff re-ACQUIRE sweeps.
    pub handoff_gap_sweeps: usize,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Runs one mode over the standard roaming population and folds the
/// per-window reports into run-level stats.
pub fn run_fleet_mode(cfg: &FleetScenarioConfig, mode: FleetRangingMode) -> FleetRunStats {
    let mut fleet_cfg = FleetConfig::position(TrackerConfig::default(), mode);
    fleet_cfg.chronos = fleet_chronos();
    let mut fleet = FleetEngine::new(
        fleet_cfg,
        Environment::free_space(),
        ap_grid(FLEET_APS, AP_SPACING_M),
    );
    for i in 0..FLEET_CLIENTS {
        fleet.add_client(walker_at(i, 0, cfg.window_s));
    }
    let mut reports: Vec<FleetWindowReport> = Vec::with_capacity(cfg.windows);
    for w in 0..cfg.windows {
        for i in 0..FLEET_CLIENTS {
            fleet.set_client_pos(i, walker_at(i, w, cfg.window_s));
        }
        reports.push(fleet.run_window(cfg.seed, Duration::from_secs_f64(cfg.window_s)));
    }
    let fixes: usize = reports.iter().map(|r| r.fixes()).sum();
    let mut errs: Vec<f64> = reports.iter().flat_map(|r| r.pos_errors_m()).collect();
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(!errs.is_empty(), "fleet run produced no fixes");
    let span_s = cfg.windows as f64 * cfg.window_s;
    FleetRunStats {
        fixes,
        fix_rate_per_client: fixes as f64 / span_s / FLEET_CLIENTS as f64,
        median_err_m: percentile(&errs, 0.50),
        p90_err_m: percentile(&errs, 0.90),
        handoffs: reports.iter().map(|r| r.handoffs).sum(),
        handoff_gap_sweeps: reports.iter().map(|r| r.handoff_gap_sweeps).sum(),
    }
}

/// Builds the `BENCH_fleet` table: one row per mode plus the ratio row,
/// asserting the capacity claim (TDoA ≥ 2× fixes/s per client at
/// ≤ 1.5× the position error) so a generated baseline always embodies
/// it.
pub fn fleet_table(seed: u64, quick: bool) -> Table {
    let cfg = FleetScenarioConfig::standard(seed, quick);
    let rt = run_fleet_mode(&cfg, FleetRangingMode::RoundTrip);
    let td = run_fleet_mode(&cfg, FleetRangingMode::Tdoa);
    let rate_ratio = td.fix_rate_per_client / rt.fix_rate_per_client;
    let err_ratio = td.median_err_m / rt.median_err_m;
    assert!(
        rate_ratio >= 2.0,
        "TDoA fix-rate advantage collapsed: {rate_ratio:.2}x"
    );
    assert!(
        err_ratio <= 1.5,
        "TDoA error exceeded 1.5x round-trip: {err_ratio:.2}x"
    );
    let mut table = Table::new("BENCH_fleet", &FLEET_HEADERS);
    let mut row = |name: &str, s: &FleetRunStats| {
        table.row(&[
            name.into(),
            format!("{FLEET_APS}"),
            format!("{FLEET_CLIENTS}"),
            format!("{}", cfg.windows),
            format!("{:.3}", s.fix_rate_per_client),
            format!("{:.3}", s.median_err_m),
            format!("{:.3}", s.p90_err_m),
            format!("{}", s.handoffs),
            format!("{}", s.handoff_gap_sweeps),
        ]);
    };
    row("roundtrip", &rt);
    row("tdoa", &td);
    table.row(&[
        "ratio_tdoa_over_roundtrip".into(),
        format!("{FLEET_APS}"),
        format!("{FLEET_CLIENTS}"),
        format!("{}", cfg.windows),
        format!("{rate_ratio:.3}"),
        format!("{err_ratio:.3}"),
        format!("{:.3}", td.p90_err_m / rt.p90_err_m),
        "0".into(),
        "0".into(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkers_stay_inside_the_grid_and_actually_roam() {
        let extent = 3.0 * AP_SPACING_M;
        let mut moved = 0;
        for i in (0..FLEET_CLIENTS).step_by(17) {
            let a = walker_at(i, 0, 0.25);
            let b = walker_at(i, 8, 0.25);
            for p in [a, b] {
                assert!(p.x >= 0.0 && p.x <= extent && p.y >= 0.0 && p.y <= extent);
            }
            if a.dist(b) > 1.0 {
                moved += 1;
            }
        }
        assert!(moved >= 10, "walkers must cover ground: {moved}");
    }

    #[test]
    fn walker_trajectory_is_window_consistent() {
        // The position after w windows equals the closed-form point —
        // both modes replay the identical trajectory.
        let a = walker_at(7, 4, 0.2);
        let b = walker_at(7, 4, 0.2);
        assert_eq!(
            (a.x.to_bits(), a.y.to_bits()),
            (b.x.to_bits(), b.y.to_bits())
        );
    }
}
