//! The headline table: every Section 1 bullet of the paper, reproduced in
//! one run. Slower than individual figures (it runs the accuracy sweep,
//! both localization sweeps, the hop-time study and the drone loop).

use chronos_bench::figures;
use chronos_bench::report::{data_dir, write_csv, Table};
use chronos_bench::scenarios::{run_drone, run_hop_times, split_errors, summarize};
use chronos_rf::hardware::AntennaArray;

fn main() {
    let pairs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    let mut t = Table::new("summary_table", &["metric", "paper", "measured", "unit"]);

    // Time-of-flight accuracy (Fig. 7a) + distance (Sec. 1 bullets).
    let trials = figures::accuracy_trials(42, pairs);
    let (tof_los, tof_nlos) = split_errors(&trials, |tr| tr.tof_errors_ns.clone());
    let (d_los, d_nlos) = split_errors(&trials, |tr| tr.distance_errors_m.clone());
    t.row(&[
        "median ToF error, LOS".into(),
        "0.47".into(),
        format!("{:.2}", summarize(&tof_los).median),
        "ns".into(),
    ]);
    t.row(&[
        "median ToF error, NLOS".into(),
        "0.69".into(),
        format!("{:.2}", summarize(&tof_nlos).median),
        "ns".into(),
    ]);
    t.row(&[
        "median distance error, LOS".into(),
        "14.1".into(),
        format!("{:.1}", summarize(&d_los).median * 100.0),
        "cm".into(),
    ]);
    t.row(&[
        "median distance error, NLOS".into(),
        "20.7".into(),
        format!("{:.1}", summarize(&d_nlos).median * 100.0),
        "cm".into(),
    ]);

    // Localization (Figs. 8b, 8c).
    for (label, seed, array, paper_los, paper_nlos) in [
        ("client 30cm", 42u64, AntennaArray::laptop(), "58", "118"),
        ("AP 100cm", 43u64, AntennaArray::access_point(), "35", "62"),
    ] {
        let cfg = chronos_bench::scenarios::AccuracyConfig {
            seed,
            max_pairs: pairs,
            array,
            ..Default::default()
        };
        let tr = chronos_bench::scenarios::run_accuracy(&cfg);
        let (l, n) = split_errors(&tr, |x| x.localization_error_m.into_iter().collect());
        t.row(&[
            format!("median localization LOS, {label}"),
            paper_los.into(),
            format!("{:.0}", summarize(&l).median * 100.0),
            "cm".into(),
        ]);
        t.row(&[
            format!("median localization NLOS, {label}"),
            paper_nlos.into(),
            format!("{:.0}", summarize(&n).median * 100.0),
            "cm".into(),
        ]);
    }

    // Hop time (Fig. 9a).
    let hops = run_hop_times(7, 100);
    t.row(&[
        "median band-sweep time".into(),
        "84".into(),
        format!("{:.0}", summarize(&hops).median),
        "ms".into(),
    ]);

    // Drone (Fig. 10a).
    let records = run_drone(21, 200);
    let dev = chronos_drone::FollowSim::deviations(&records, 1.4, 30);
    let dev_cm: Vec<f64> = dev.iter().map(|d| d * 100.0).collect();
    t.row(&[
        "drone distance RMSE".into(),
        "4.2".into(),
        format!("{:.1}", chronos_math::stats::rms(&dev_cm)),
        "cm".into(),
    ]);
    t.row(&[
        "drone median deviation".into(),
        "4.17".into(),
        format!("{:.1}", summarize(&dev_cm).median),
        "cm".into(),
    ]);

    println!("{}", t.render());
    write_csv(&t, &data_dir()).expect("write csv");
}
