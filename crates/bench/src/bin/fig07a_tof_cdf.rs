//! Regenerates Fig. 7(a): the CDF of time-of-flight error in LOS and NLOS
//! across the office testbed (paper medians: 0.47 ns / 0.69 ns).

fn main() {
    let pairs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let trials = chronos_bench::figures::accuracy_trials(42, pairs);
    let dir = chronos_bench::report::data_dir();
    for t in chronos_bench::figures::fig07a(&trials) {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
