//! Regenerates Fig. 8(c): localization error CDF with the 100 cm
//! access-point array (paper medians: 35 cm LOS / 62 cm NLOS).

use chronos_rf::hardware::AntennaArray;

fn main() {
    let pairs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(70);
    let dir = chronos_bench::report::data_dir();
    let tables = chronos_bench::figures::fig08_localization(
        "fig08c_localization_ap",
        43,
        pairs,
        AntennaArray::access_point(),
        "0.35",
        "0.62",
    );
    for t in tables {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
