//! The position-tracking benchmark and its CI regression gate.
//!
//! ```sh
//! # Regenerate the checked-in baseline (CI gates a --quick run, so the
//! # baseline must be a --quick run too — epoch-count mismatches fail
//! # the gate explicitly):
//! cargo run --release -p chronos-bench --bin bench_position -- --quick
//!
//! # Gate mode (what scripts/check-bench-regression.sh runs in CI):
//! cargo run --release -p chronos-bench --bin bench_position -- \
//!     --quick --check BENCH_position.json --tolerance 0.20
//! ```
//!
//! Flags: `--quick` (fewer epochs — the CI setting), `--out <path>`
//! (where to write the JSON; default `BENCH_position.json` in the
//! current directory), `--check <baseline>` (compare against a
//! checked-in baseline instead of overwriting it; exits 1 on any metric
//! regressed past the tolerance), `--tolerance <frac>` (default 0.20).
//!
//! The run is fully deterministic, so the comparison gates on real
//! algorithmic drift, not noise.

use chronos_bench::position::{check_regression, position_table};
use chronos_bench::report::{write_json, Table};
use std::path::PathBuf;
use std::process::ExitCode;

const SEED: u64 = 61;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = PathBuf::from("BENCH_position.json");
    let mut check: Option<PathBuf> = None;
    let mut tolerance = 0.20;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            "--check" => check = Some(PathBuf::from(args.next().expect("--check needs a path"))),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance needs a fraction, e.g. 0.20")
            }
            other => {
                eprintln!("unknown flag {other}; see the crate docs");
                return ExitCode::FAILURE;
            }
        }
    }

    let epochs = if quick { 10 } else { 24 };
    let table = position_table(SEED, epochs);
    println!("{}", table.render());

    match check {
        None => {
            write_json(&table, &out).expect("write BENCH_position.json");
            println!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Some(baseline_path) => {
            let baseline_src = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
                panic!("cannot read baseline {}: {e}", baseline_path.display())
            });
            let baseline = Table::from_json(&baseline_src)
                .unwrap_or_else(|e| panic!("malformed baseline: {e}"));
            match check_regression(&table, &baseline, tolerance) {
                Ok(()) => {
                    println!(
                        "bench-regression gate: OK (within {:.0}% of {})",
                        tolerance * 100.0,
                        baseline_path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(failures) => {
                    eprintln!("bench-regression gate: FAILED");
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    eprintln!(
                        "(baseline {}; intentional changes: re-run without --check and \
                         commit the new baseline)",
                        baseline_path.display()
                    );
                    ExitCode::FAILURE
                }
            }
        }
    }
}
