//! The adversarial-ranging benchmark and its CI regression gate:
//! detection latency versus attack strength for the replay / CSI-inject
//! / band-jam attacker matrix (see `docs/ADVERSARIAL.md`).
//!
//! ```sh
//! # Regenerate the checked-in baseline (CI gates a --quick run, so the
//! # baseline must be a --quick run too — epoch-count mismatches fail
//! # the gate explicitly):
//! cargo run --release -p chronos-bench --bin bench_adversarial -- --quick
//!
//! # Gate mode (what scripts/check-bench-regression.sh runs in CI):
//! cargo run --release -p chronos-bench --bin bench_adversarial -- \
//!     --quick --check BENCH_adversarial.json --tolerance 0.20
//! ```
//!
//! Flags are the shared set parsed by [`chronos_bench::cli::BenchArgs`]
//! (`--quick`, `--out`, `--check`, `--tolerance`). The run is fully
//! deterministic, so the gate trips on real detection-latency drift, not
//! noise. Weak attacks deliberately sit under the innovation gate and
//! report the `999` undetected sentinel — the table documents the
//! detectability gradient, and the gate keeps it from silently eroding.

use chronos_bench::adversarial::adversarial_table;
use chronos_bench::cli::BenchArgs;
use chronos_bench::position::check_regression;
use chronos_bench::report::{write_json, Table};
use std::process::ExitCode;

const SEED: u64 = 73;

fn main() -> ExitCode {
    let args = match BenchArgs::parse("BENCH_adversarial.json") {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let (epochs, onset) = if args.quick { (17, 5) } else { (28, 8) };
    let table = adversarial_table(SEED, epochs, onset);
    println!("{}", table.render());

    let tolerance = args.tolerance;
    match args.check {
        None => {
            let out = args.out;
            write_json(&table, &out).expect("write BENCH_adversarial.json");
            println!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Some(baseline_path) => {
            let baseline_src = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
                panic!("cannot read baseline {}: {e}", baseline_path.display())
            });
            let baseline = Table::from_json(&baseline_src)
                .unwrap_or_else(|e| panic!("malformed baseline: {e}"));
            match check_regression(&table, &baseline, tolerance) {
                Ok(()) => {
                    println!(
                        "bench-regression gate: OK (within {:.0}% of {})",
                        tolerance * 100.0,
                        baseline_path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(failures) => {
                    eprintln!("bench-regression gate: FAILED");
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    eprintln!(
                        "(baseline {}; intentional changes: re-run without --check and \
                         commit the new baseline)",
                        baseline_path.display()
                    );
                    ExitCode::FAILURE
                }
            }
        }
    }
}
