//! Regenerates Fig. 7(b): multipath-profile sparsity (paper: mean 5.05
//! dominant peaks, sd 1.95).

fn main() {
    let pairs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let trials = chronos_bench::figures::accuracy_trials(42, pairs);
    let dir = chronos_bench::report::data_dir();
    for t in chronos_bench::figures::fig07b(&trials) {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
