//! Regenerates Fig. 10(a): CDF of the drone's deviation from its 1.4 m
//! target distance (paper: median 4.17 cm, RMSE ~4.2 cm).

fn main() {
    let ticks = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(240);
    let dir = chronos_bench::report::data_dir();
    for t in chronos_bench::figures::fig10a(21, ticks) {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
