//! Regenerates the paper's Fig. 4: separating three propagation paths
//! (5.2 / 10 / 16 ns) with the sparse inverse-NDFT.

fn main() {
    let dir = chronos_bench::report::data_dir();
    for t in chronos_bench::figures::fig04() {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
