//! Regenerates every figure of the paper's evaluation in one run and
//! writes all tables to `EXPERIMENTS-data/*.csv`.
//!
//! Usage: `cargo run --release -p chronos-bench --bin run_all [pairs]`
//! where `pairs` scales the Monte-Carlo effort of the testbed experiments
//! (default 60; the EXPERIMENTS.md numbers use 80).

use chronos_bench::figures;
use chronos_bench::report::{data_dir, write_csv, Table};
use chronos_rf::hardware::AntennaArray;

fn persist(tables: Vec<Table>) {
    let dir = data_dir();
    for t in tables {
        let path = write_csv(&t, &dir).expect("write csv");
        println!("  wrote {}", path.display());
    }
}

fn main() {
    let pairs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    println!("== Fig. 3: CRT phase alignment ==");
    persist(figures::fig03());

    println!("== Fig. 4: multipath profile ==");
    persist(figures::fig04());

    println!("== Figs. 7a/7b/7c + 8a: testbed accuracy ({pairs} pairs) ==");
    let trials = figures::accuracy_trials(42, pairs);
    persist(figures::fig07a(&trials));
    persist(figures::fig07b(&trials));
    persist(figures::fig07c(&trials));
    persist(figures::fig08a(&trials));

    println!("== Fig. 8b: localization, 30 cm client array ==");
    persist(figures::fig08_localization(
        "fig08b_localization_client",
        42,
        pairs,
        AntennaArray::laptop(),
        "0.58",
        "1.18",
    ));

    println!("== Fig. 8c: localization, 100 cm AP array ==");
    persist(figures::fig08_localization(
        "fig08c_localization_ap",
        43,
        pairs,
        AntennaArray::access_point(),
        "0.35",
        "0.62",
    ));

    println!("== Fig. 9a: hop time ==");
    persist(figures::fig09a(7, 200));

    println!("== Fig. 9b: video trace ==");
    persist(figures::fig09b(11));

    println!("== Fig. 9c: TCP trace ==");
    persist(figures::fig09c(12));

    println!("== Fig. 10a: drone distance ==");
    persist(figures::fig10a(21, 240));

    println!("== Fig. 10b: drone trajectory ==");
    persist(figures::fig10b(22, 240));

    println!("all figures regenerated under {}", data_dir().display());
}
