//! Regenerates Fig. 8(a): distance error vs ground-truth distance buckets
//! (paper: ~10 cm near, up to ~25.6 cm at 12-15 m).

fn main() {
    let pairs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let trials = chronos_bench::figures::accuracy_trials(42, pairs);
    let dir = chronos_bench::report::data_dir();
    for t in chronos_bench::figures::fig08a(&trials) {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
