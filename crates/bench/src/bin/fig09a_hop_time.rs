//! Regenerates Fig. 9(a): the CDF of full band-sweep (hop) time
//! (paper median: 84 ms).

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let dir = chronos_bench::report::data_dir();
    for t in chronos_bench::figures::fig09a(7, n) {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
