//! Regenerates Fig. 8(b): localization error CDF with the 30 cm laptop
//! array (paper medians: 58 cm LOS / 118 cm NLOS).

use chronos_rf::hardware::AntennaArray;

fn main() {
    let pairs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(70);
    let dir = chronos_bench::report::data_dir();
    let tables = chronos_bench::figures::fig08_localization(
        "fig08b_localization_client",
        42,
        pairs,
        AntennaArray::laptop(),
        "0.58",
        "1.18",
    );
    for t in tables {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
