//! Regenerates the paper's Fig. 3: multi-band phase alignment resolving a
//! 2 ns time-of-flight (a source at 0.6 m).

fn main() {
    let dir = chronos_bench::report::data_dir();
    for t in chronos_bench::figures::fig03() {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
