//! The overload-soak benchmark and its CI regression gate: admission,
//! shedding, fairness and honest accuracy at 1x–5x offered load through
//! the bounded ingestion front-end (see `docs/INGESTION.md`).
//!
//! ```sh
//! # Regenerate the checked-in baseline (CI gates a --quick run, so the
//! # baseline must be a --quick run too — window-count mismatches fail
//! # the gate explicitly):
//! cargo run --release -p chronos-bench --bin bench_soak -- --quick
//!
//! # Gate mode (what scripts/check-bench-regression.sh runs in CI):
//! cargo run --release -p chronos-bench --bin bench_soak -- \
//!     --quick --check BENCH_soak.json --tolerance 0.20
//! ```
//!
//! Flags are the shared set parsed by [`chronos_bench::cli::BenchArgs`]
//! (`--quick`, `--out`, `--check`, `--tolerance`). The run is fully
//! deterministic — the queue sheds as a pure function of the arrival
//! sequence — so the gate trips on real scheduling drift, not noise.
//! The load-shedding contract the table pins down: ACQUIRE sheds stay
//! at zero at every load, BACKGROUND absorbs the drops, TRACK absorbs
//! deferrals, and the honest walkers' error grows gracefully rather
//! than collapsing.

use chronos_bench::cli::BenchArgs;
use chronos_bench::position::check_regression;
use chronos_bench::report::{write_json, Table};
use chronos_bench::soak::soak_table;
use std::process::ExitCode;

const SEED: u64 = 41;

fn main() -> ExitCode {
    let args = match BenchArgs::parse("BENCH_soak.json") {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let (windows, window_ms) = if args.quick { (4, 250) } else { (8, 250) };
    let table = soak_table(SEED, windows, window_ms);
    println!("{}", table.render());

    let tolerance = args.tolerance;
    match args.check {
        None => {
            let out = args.out;
            write_json(&table, &out).expect("write BENCH_soak.json");
            println!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Some(baseline_path) => {
            let baseline_src = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
                panic!("cannot read baseline {}: {e}", baseline_path.display())
            });
            let baseline = Table::from_json(&baseline_src)
                .unwrap_or_else(|e| panic!("malformed baseline: {e}"));
            match check_regression(&table, &baseline, tolerance) {
                Ok(()) => {
                    println!(
                        "bench-regression gate: OK (within {:.0}% of {})",
                        tolerance * 100.0,
                        baseline_path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(failures) => {
                    eprintln!("bench-regression gate: FAILED");
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    eprintln!(
                        "(baseline {}; intentional changes: re-run without --check and \
                         commit the new baseline)",
                        baseline_path.display()
                    );
                    ExitCode::FAILURE
                }
            }
        }
    }
}
