//! Regenerates Fig. 9(c): TCP throughput around a localization at t = 6 s
//! (paper: ~6.5% dip).

fn main() {
    let dir = chronos_bench::report::data_dir();
    for t in chronos_bench::figures::fig09c(12) {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
