//! Regenerates Fig. 10(b): the drone-follows-user trajectory.

fn main() {
    let ticks = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(240);
    let dir = chronos_bench::report::data_dir();
    for t in chronos_bench::figures::fig10b(22, ticks) {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
