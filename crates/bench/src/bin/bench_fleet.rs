//! The fleet capacity benchmark and its CI regression gate:
//! synchronized one-way TDoA versus per-AP round-trip sweeps at 16 APs
//! with 1000 roaming clients, plus the shard-scaling rows for the
//! pool-parallel window driver (see `docs/FLEET.md`).
//!
//! ```sh
//! # Regenerate the checked-in baseline (CI gates a --quick run, so the
//! # baseline must be a --quick run too — window-count mismatches fail
//! # the gate explicitly):
//! cargo run --release -p chronos-bench --bin bench_fleet -- --quick
//!
//! # Gate mode (what scripts/check-bench-regression.sh runs in CI):
//! cargo run --release -p chronos-bench --bin bench_fleet -- \
//!     --quick --check BENCH_fleet.json --tolerance 0.20
//! ```
//!
//! Flags are the shared set parsed by [`chronos_bench::cli::BenchArgs`]
//! (`--quick`, `--out`, `--check`, `--tolerance`). The run is fully
//! deterministic, and [`chronos_bench::fleet::fleet_table`] asserts the
//! capacity claim (TDoA ≥ 2× fixes/s per client at ≤ 1.5× the error)
//! before any table is written, so a committed baseline always embodies
//! it; the gate then holds the margin against drift.

use chronos_bench::alloc_count::CountingAlloc;
use chronos_bench::cli::BenchArgs;
use chronos_bench::fleet::fleet_table;
use chronos_bench::position::check_regression;
use chronos_bench::report::{write_json, Table};
use std::process::ExitCode;

const SEED: u64 = 47;

// The worker_allocs column counts real allocation events only because
// the benchmark binary routes every allocation through the counter.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() -> ExitCode {
    let args = match BenchArgs::parse("BENCH_fleet.json") {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Let the worker runtime charge fine-task allocations to the
    // per-thread counting allocator, so the worker_allocs column
    // reports true worker-side allocation events (the steady-state
    // 0-allocs contract on the shard path).
    chronos_core::runtime::set_alloc_probe(chronos_bench::alloc_count::thread_allocations);

    let table = fleet_table(SEED, args.quick);
    println!("{}", table.render());

    let tolerance = args.tolerance;
    match args.check {
        None => {
            let out = args.out;
            write_json(&table, &out).expect("write BENCH_fleet.json");
            println!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Some(baseline_path) => {
            let baseline_src = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
                panic!("cannot read baseline {}: {e}", baseline_path.display())
            });
            let baseline = Table::from_json(&baseline_src)
                .unwrap_or_else(|e| panic!("malformed baseline: {e}"));
            match check_regression(&table, &baseline, tolerance) {
                Ok(()) => {
                    println!(
                        "bench-regression gate: OK (within {:.0}% of {})",
                        tolerance * 100.0,
                        baseline_path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(failures) => {
                    eprintln!("bench-regression gate: FAILED");
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    eprintln!(
                        "(baseline {}; intentional changes: re-run without --check and \
                         commit the new baseline)",
                        baseline_path.display()
                    );
                    ExitCode::FAILURE
                }
            }
        }
    }
}
