//! The sweep-pipeline throughput benchmark and its CI regression gate.
//!
//! ```sh
//! # Regenerate the checked-in baseline (CI gates a --quick run with the
//! # simd feature, so the baseline must match both — parameter
//! # mismatches fail the gate explicitly):
//! cargo run --release -p chronos-bench --bin bench_throughput \
//!     --features chronos-core/simd -- --quick
//!
//! # Gate mode (what scripts/check-bench-regression.sh runs in CI):
//! cargo run --release -p chronos-bench --bin bench_throughput \
//!     --features chronos-core/simd -- \
//!     --quick --check BENCH_throughput.json --tolerance 0.20
//! ```
//!
//! Shared flags (`--quick/--out/--check/--tolerance`) are parsed by
//! [`chronos_bench::cli::BenchArgs`]. The gate covers the portable
//! metrics only: `speedup_x` (pipeline vs the transcribed pre-refactor
//! solver; >20% regression or falling below the absolute 3.0× floor
//! fails) and `allocs_per_sweep` (any increase fails — including the
//! worker-side counters on the persistent-pool rows). Absolute sweeps/s
//! columns are informational — they depend on the host.

use chronos_bench::alloc_count::CountingAlloc;
use chronos_bench::cli::BenchArgs;
use chronos_bench::report::{write_json, Table};
use chronos_bench::throughput::{check_throughput_regression, throughput_table};
use std::process::ExitCode;

// The allocs/sweep column counts real allocation events only because the
// benchmark binary routes every allocation through the counter.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() -> ExitCode {
    let args = match BenchArgs::parse("BENCH_throughput.json") {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Let the worker runtime charge job allocations to the per-thread
    // counting allocator, so the fix_pool rows report true worker-side
    // allocation events (the 0-allocs/sweep contract).
    chronos_core::runtime::set_alloc_probe(chronos_bench::alloc_count::thread_allocations);

    let rounds = if args.quick { 4 } else { 12 };
    let table = throughput_table(rounds);
    println!("{}", table.render());

    match args.check {
        None => {
            write_json(&table, &args.out).expect("write BENCH_throughput.json");
            println!("wrote {}", args.out.display());
            ExitCode::SUCCESS
        }
        Some(baseline_path) => {
            let baseline_src = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
                panic!("cannot read baseline {}: {e}", baseline_path.display())
            });
            let baseline = Table::from_json(&baseline_src)
                .unwrap_or_else(|e| panic!("malformed baseline: {e}"));
            match check_throughput_regression(&table, &baseline, args.tolerance) {
                Ok(()) => {
                    println!(
                        "bench-regression gate: OK (within {:.0}% of {})",
                        args.tolerance * 100.0,
                        baseline_path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(failures) => {
                    eprintln!("bench-regression gate: FAILED");
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    eprintln!(
                        "(baseline {}; intentional changes: re-run without --check and \
                         commit the new baseline)",
                        baseline_path.display()
                    );
                    ExitCode::FAILURE
                }
            }
        }
    }
}
