//! Regenerates Fig. 7(c): packet-detection delay vs propagation delay
//! histograms (paper: median 177 ns, sd 24.76 ns, ~8x larger than ToF).

fn main() {
    let pairs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let trials = chronos_bench::figures::accuracy_trials(42, pairs);
    let dir = chronos_bench::report::data_dir();
    for t in chronos_bench::figures::fig07c(&trials) {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
