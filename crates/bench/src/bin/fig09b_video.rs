//! Regenerates Fig. 9(b): video streaming through a localization outage at
//! t = 6 s (paper: no visible stall).

fn main() {
    let dir = chronos_bench::report::data_dir();
    for t in chronos_bench::figures::fig09b(11) {
        chronos_bench::report::write_csv(&t, &dir).expect("write csv");
    }
}
