//! Position-tracking scenarios: one multi-antenna AP localizing a
//! walking client in 2-D, in the open and behind a concrete wall.
//!
//! These runners back `tests/position.rs`, the `BENCH_position.json`
//! regression baseline (`scripts/check-bench-regression.sh` — CI fails on
//! a >20% metric regression) and the numbers quoted in
//! `docs/LOCALIZATION.md`. Everything is deterministic given a seed.

use crate::report::Table;
use chronos_core::config::ChronosConfig;
use chronos_core::engine::WindowReport;
use chronos_core::service::{EpochReport, RangingService, ServiceConfig};
use chronos_core::tracker::TrackerConfig;
use chronos_link::time::Duration;
use chronos_rf::csi::MeasurementContext;
use chronos_rf::environment::{Environment, Material};
use chronos_rf::geometry::{Point, Segment};
use chronos_rf::hardware::{ideal_device, AntennaArray};

/// Parameters of one position-tracking run.
#[derive(Debug, Clone)]
pub struct PositionScenarioConfig {
    /// Scenario name (the regression baseline's row key).
    pub name: &'static str,
    /// Master seed.
    pub seed: u64,
    /// Epochs to simulate (the walker crosses its whole path over these).
    pub epochs: usize,
    /// Walker path start, AP frame (AP array at the origin).
    pub start: Point,
    /// Walker path end.
    pub end: Point,
    /// Walls between the walker and the AP (empty = LOS scenario).
    pub walls: Vec<(Segment, Material)>,
    /// Receiver SNR at 1 m, dB.
    pub snr_at_1m_db: f64,
    /// Position-tracker tuning.
    pub tracker: TrackerConfig,
}

impl PositionScenarioConfig {
    /// The open-floor LOS scenario: a walker crossing the AP's field of
    /// view at ~3.5 m range, nothing in the way. This is the §8/§12.2
    /// regime where fixes must be sub-meter.
    pub fn los(seed: u64, epochs: usize) -> Self {
        PositionScenarioConfig {
            name: "los",
            seed,
            epochs,
            start: Point::new(-2.5, 3.2),
            end: Point::new(3.5, 3.2),
            walls: Vec::new(),
            snr_at_1m_db: 36.0,
            // The walker covers the whole path in `epochs` sweeps (~0.7 m
            // per ~90 ms epoch in the quick run), so the filter needs a
            // generous maneuvering allowance; measurement noise reflects
            // the cm-level accuracy of LOS access-point-array fixes
            // rather than the distance-mode default.
            tracker: TrackerConfig {
                process_noise_mps2: 4.0,
                measurement_noise_m: 0.08,
                ..TrackerConfig::default()
            },
        }
    }

    /// The walled NLOS scenario: same walk, but a concrete slab shadows
    /// the AP mid-path. Fixes may thin out or degrade behind the wall;
    /// the tracker must coast and the error must stay bounded.
    pub fn nlos_wall(seed: u64, epochs: usize) -> Self {
        PositionScenarioConfig {
            walls: vec![(
                Segment::new(Point::new(-0.8, 1.8), Point::new(1.3, 1.8)),
                Material::Concrete,
            )],
            name: "nlos_wall",
            ..Self::los(seed, epochs)
        }
    }
}

/// Where the walker stands at epoch `e` of `epochs`.
pub fn walker_at(cfg: &PositionScenarioConfig, e: usize) -> Point {
    let t = if cfg.epochs <= 1 {
        0.0
    } else {
        e as f64 / (cfg.epochs - 1) as f64
    };
    cfg.start.lerp(cfg.end, t)
}

/// One scenario's outcome: per-epoch reports plus the walker's true path.
#[derive(Debug, Clone)]
pub struct PositionRun {
    /// Per-epoch service reports, in order (one client: the walker).
    pub reports: Vec<EpochReport>,
    /// Walker ground-truth position per epoch, AP frame.
    pub truth: Vec<Point>,
    /// Per-epoch count of AP antennas the walker had line of sight to.
    pub los_antennas: Vec<usize>,
}

impl PositionRun {
    /// Fraction of epochs whose sweep produced a raw position fix.
    pub fn fix_rate(&self) -> f64 {
        let fixed = self
            .reports
            .iter()
            .filter(|r| r.outcomes[0].position.is_some())
            .count();
        fixed as f64 / self.reports.len().max(1) as f64
    }

    /// Raw-fix 2-D errors, meters (epochs with a fix only).
    pub fn raw_errors_m(&self) -> Vec<f64> {
        self.reports
            .iter()
            .filter_map(|r| r.outcomes[0].pos_error_m)
            .collect()
    }

    /// Epochs the tracked-position metrics skip: the filter seeds at zero
    /// velocity, so its first few epochs lag a moving walker while the
    /// velocity states converge. Tracking quality is a steady-state
    /// property; the transient is visible in `reports` for anyone who
    /// wants it.
    pub const WARMUP_EPOCHS: usize = 3;

    /// Tracked-position 2-D errors after warmup, meters (epochs with a
    /// seeded filter).
    pub fn tracked_errors_m(&self) -> Vec<f64> {
        self.reports
            .iter()
            .skip(Self::WARMUP_EPOCHS)
            .filter_map(|r| r.outcomes[0].tracked_pos_error_m)
            .collect()
    }

    /// Median raw-fix error, meters.
    pub fn median_err_m(&self) -> f64 {
        let e = self.raw_errors_m();
        if e.is_empty() {
            f64::NAN
        } else {
            chronos_math::stats::median(&e)
        }
    }

    /// 90th-percentile raw-fix error, meters.
    pub fn p90_err_m(&self) -> f64 {
        let e = self.raw_errors_m();
        if e.is_empty() {
            f64::NAN
        } else {
            chronos_math::stats::percentile(&e, 90.0)
        }
    }

    /// RMS tracked-position error, meters.
    pub fn pos_rmse_m(&self) -> f64 {
        chronos_math::stats::rms(&self.tracked_errors_m())
    }

    /// Worst tracked-position error, meters — the "bounded degradation"
    /// observable for the NLOS scenario.
    pub fn worst_tracked_err_m(&self) -> f64 {
        self.tracked_errors_m().into_iter().fold(f64::NAN, f64::max)
    }
}

/// Runs one position scenario: a single-antenna walker ranged by a
/// 3-antenna access-point array at the origin, position-mode service,
/// adaptive scheduling.
pub fn run_position(cfg: &PositionScenarioConfig) -> PositionRun {
    let mut env = Environment::free_space();
    for (seg, mat) in &cfg.walls {
        env.add_wall(*seg, *mat);
    }
    let ap_array = AntennaArray::access_point();
    let mut ctx = MeasurementContext::new(
        env.clone(),
        ideal_device(AntennaArray::single()),
        walker_at(cfg, 0),
        ideal_device(ap_array.clone()),
        Point::new(0.0, 0.0),
    );
    ctx.snr.snr_at_1m_db = cfg.snr_at_1m_db;

    let mut svc = RangingService::new(ServiceConfig::position(cfg.tracker));
    let id = svc.add_client(ctx, ChronosConfig::ideal());
    svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;

    let ap_antennas = ap_array.world_positions(Point::new(0.0, 0.0));
    let mut reports = Vec::with_capacity(cfg.epochs);
    let mut truth = Vec::with_capacity(cfg.epochs);
    let mut los_antennas = Vec::with_capacity(cfg.epochs);
    for e in 0..cfg.epochs {
        let pos = walker_at(cfg, e);
        svc.client_mut(id).ctx.initiator_pos = pos;
        truth.push(pos);
        los_antennas.push(
            env.los_mask(pos, &ap_antennas)
                .iter()
                .filter(|l| **l)
                .count(),
        );
        reports.push(svc.run_epoch(cfg.seed.wrapping_mul(1000).wrapping_add(e as u64)));
    }
    PositionRun {
        reports,
        truth,
        los_antennas,
    }
}

/// One continuous-engine position run: per-window reports plus the
/// walker's true position at each window boundary.
#[derive(Debug, Clone)]
pub struct PositionWindowRun {
    /// Per-window service reports, in order (one client: the walker).
    pub windows: Vec<WindowReport>,
    /// Walker ground-truth position at each window's start, AP frame.
    pub truth: Vec<Point>,
}

impl PositionWindowRun {
    /// All completed sweeps across the run.
    pub fn sweeps(&self) -> usize {
        self.windows.iter().map(|w| w.outcomes.len()).sum()
    }

    /// Raw-fix 2-D errors across all windows, meters.
    pub fn raw_errors_m(&self) -> Vec<f64> {
        self.windows
            .iter()
            .flat_map(|w| w.outcomes.iter().filter_map(|o| o.pos_error_m))
            .collect()
    }

    /// Median raw-fix error, meters.
    pub fn median_err_m(&self) -> f64 {
        let e = self.raw_errors_m();
        if e.is_empty() {
            f64::NAN
        } else {
            chronos_math::stats::median(&e)
        }
    }
}

/// Runs a position scenario through the **continuous engine**: the same
/// walker and geometry as [`run_position`], but instead of one lock-step
/// sweep per epoch the service plays `run_until` windows of `window`
/// simulated time — once the position tracker promotes to TRACK, subset
/// sweeps deliver several fixes per window. The walker moves at each
/// window boundary (cfg.epochs boundaries span the whole path).
pub fn run_position_continuous(
    cfg: &PositionScenarioConfig,
    window: Duration,
) -> PositionWindowRun {
    let mut env = Environment::free_space();
    for (seg, mat) in &cfg.walls {
        env.add_wall(*seg, *mat);
    }
    let mut ctx = MeasurementContext::new(
        env,
        ideal_device(AntennaArray::single()),
        walker_at(cfg, 0),
        ideal_device(AntennaArray::access_point()),
        Point::new(0.0, 0.0),
    );
    ctx.snr.snr_at_1m_db = cfg.snr_at_1m_db;

    let mut svc = RangingService::new(ServiceConfig::position(cfg.tracker));
    let id = svc.add_client(ctx, ChronosConfig::ideal());
    svc.client_mut(id).sweep_cfg.medium.loss_prob = 0.0;

    let mut windows = Vec::with_capacity(cfg.epochs);
    let mut truth = Vec::with_capacity(cfg.epochs);
    for e in 0..cfg.epochs {
        let pos = walker_at(cfg, e);
        svc.client_mut(id).ctx.initiator_pos = pos;
        truth.push(pos);
        windows.push(svc.run_until(cfg.seed.wrapping_mul(1000), svc.clock() + window));
    }
    PositionWindowRun { windows, truth }
}

/// Headers of the `BENCH_position` table, in column order.
pub const POSITION_HEADERS: [&str; 7] = [
    "scenario",
    "epochs",
    "fix_rate",
    "median_err_m",
    "p90_err_m",
    "pos_rmse_m",
    "worst_err_m",
];

/// Runs the LOS + walled-NLOS scenarios and tabulates the regression
/// metrics (the `BENCH_position.json` payload).
pub fn position_table(seed: u64, epochs: usize) -> Table {
    let mut table = Table::new("BENCH_position", &POSITION_HEADERS);
    for cfg in [
        PositionScenarioConfig::los(seed, epochs),
        PositionScenarioConfig::nlos_wall(seed, epochs),
    ] {
        let run = run_position(&cfg);
        table.row(&[
            cfg.name.to_string(),
            format!("{}", cfg.epochs),
            format!("{:.3}", run.fix_rate()),
            format!("{:.3}", run.median_err_m()),
            format!("{:.3}", run.p90_err_m()),
            format!("{:.3}", run.pos_rmse_m()),
            format!("{:.3}", run.worst_tracked_err_m()),
        ]);
    }
    table
}

/// Compares a fresh `BENCH_position` run against the checked-in baseline.
///
/// Direction is inferred from the header: error-like columns (`*err*`,
/// `*rmse*`) must not grow by more than `tol` (relative, with a 2 cm
/// absolute slack so near-zero baselines don't gate on noise); rate-like
/// columns (`*rate*`) must not shrink by more than `tol`. Any other
/// numeric column (e.g. `epochs`) is a scenario *parameter*: it must
/// match exactly, because metrics from runs with different settings are
/// not comparable — a mismatch means the baseline was generated with a
/// different command than CI runs. Returns every violated metric.
pub fn check_regression(current: &Table, baseline: &Table, tol: f64) -> Result<(), Vec<String>> {
    const ABS_SLACK: f64 = 0.02;
    let mut failures = Vec::new();
    for (bi, brow) in baseline.rows.iter().enumerate() {
        let key = brow.first().cloned().unwrap_or_default();
        let Some(ci) = current.row_by_key(&key) else {
            failures.push(format!("scenario {key:?} missing from current run"));
            continue;
        };
        for header in &baseline.headers {
            let (Some(base), Some(cur)) =
                (baseline.cell_f64(bi, header), current.cell_f64(ci, header))
            else {
                continue;
            };
            let lower_better = header.contains("err")
                || header.contains("rmse")
                || header.contains("detect")
                || header.contains("latency")
                || header.contains("shed")
                || header.contains("fairness")
                || header.contains("deferred")
                || header.contains("gap");
            let higher_better = header.contains("rate");
            if !lower_better && !higher_better {
                if (cur - base).abs() > 1e-9 {
                    failures.push(format!(
                        "{key}/{header}: scenario parameter {cur} != baseline {base} — \
                         regenerate the baseline with the same settings CI uses \
                         (scripts/check-bench-regression.sh runs --quick)"
                    ));
                }
                continue;
            }
            if lower_better && cur > base * (1.0 + tol) + ABS_SLACK {
                failures.push(format!(
                    "{key}/{header}: {cur:.3} regressed past baseline {base:.3} (+{tol:.0}%)",
                    tol = tol * 100.0
                ));
            } else if higher_better && cur < base * (1.0 - tol) - ABS_SLACK {
                failures.push(format!(
                    "{key}/{header}: {cur:.3} regressed below baseline {base:.3} (-{tol:.0}%)",
                    tol = tol * 100.0
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_spans_the_path() {
        let cfg = PositionScenarioConfig::los(1, 5);
        assert!(walker_at(&cfg, 0).dist(cfg.start) < 1e-12);
        assert!(walker_at(&cfg, 4).dist(cfg.end) < 1e-12);
        let one = PositionScenarioConfig::los(1, 1);
        assert!(walker_at(&one, 0).dist(one.start) < 1e-12);
    }

    #[test]
    fn nlos_scenario_actually_shadows_midpath() {
        let cfg = PositionScenarioConfig::nlos_wall(1, 9);
        let mut env = Environment::free_space();
        for (seg, mat) in &cfg.walls {
            env.add_wall(*seg, *mat);
        }
        let antennas = AntennaArray::access_point().world_positions(Point::new(0.0, 0.0));
        let mid = walker_at(&cfg, 4);
        let blocked = env.los_mask(mid, &antennas).iter().filter(|l| !**l).count();
        assert!(
            blocked >= 2,
            "wall must shadow the array mid-path, blocked={blocked}"
        );
        // Path ends are in the clear.
        assert!(env
            .los_mask(walker_at(&cfg, 0), &antennas)
            .iter()
            .all(|l| *l));
        assert!(env
            .los_mask(walker_at(&cfg, 8), &antennas)
            .iter()
            .all(|l| *l));
    }

    #[test]
    fn regression_checker_directions() {
        let mut base = Table::new("BENCH_position", &POSITION_HEADERS);
        base.row(&[
            "los".into(),
            "10".into(),
            "1.000".into(),
            "0.300".into(),
            "0.500".into(),
            "0.250".into(),
            "0.600".into(),
        ]);
        // Identical run passes.
        assert!(check_regression(&base.clone(), &base, 0.2).is_ok());
        // Error regression >20% + slack fails.
        let mut worse = base.clone();
        worse.rows[0][3] = "0.500".into();
        let errs = check_regression(&worse, &base, 0.2).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("median_err_m")), "{errs:?}");
        // Fix-rate collapse fails.
        let mut sparse = base.clone();
        sparse.rows[0][2] = "0.500".into();
        assert!(check_regression(&sparse, &base, 0.2).is_err());
        // Missing scenario fails.
        let empty = Table::new("BENCH_position", &POSITION_HEADERS);
        assert!(check_regression(&empty, &base, 0.2).is_err());
        // Scenario-parameter drift (epoch count) fails even when every
        // metric looks fine — the runs are not comparable.
        let mut longer = base.clone();
        longer.rows[0][1] = "24".into();
        let errs = check_regression(&longer, &base, 0.2).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("epochs")), "{errs:?}");
        // Improvement passes.
        let mut better = base.clone();
        better.rows[0][3] = "0.100".into();
        assert!(check_regression(&better, &base, 0.2).is_ok());
    }

    #[test]
    fn regression_checker_gates_handoff_gap() {
        // Fleet-bench columns: `handoff_gap_sweeps` is lower-is-better
        // (re-ACQUIRE sweeps after a handoff are the cost migration is
        // supposed to eliminate); `handoffs` itself is a deterministic
        // scenario parameter and must match exactly.
        let headers = ["scenario", "handoffs", "handoff_gap_sweeps"];
        let mut base = Table::new("BENCH_fleet", &headers);
        base.row(&["roundtrip".into(), "12".into(), "3".into()]);
        assert!(check_regression(&base.clone(), &base, 0.2).is_ok());
        let mut gappier = base.clone();
        gappier.rows[0][2] = "9".into();
        let errs = check_regression(&gappier, &base, 0.2).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("handoff_gap_sweeps")),
            "{errs:?}"
        );
        let mut tighter = base.clone();
        tighter.rows[0][2] = "0".into();
        assert!(check_regression(&tighter, &base, 0.2).is_ok());
        let mut drifted = base.clone();
        drifted.rows[0][1] = "13".into();
        let errs = check_regression(&drifted, &base, 0.2).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("handoffs")), "{errs:?}");
    }

    #[test]
    fn regression_checker_gates_detection_latency() {
        // Latency columns (BENCH_adversarial) are lower-is-better: a
        // slower detection fails, a faster one passes.
        let headers = ["scenario", "detect_latency_sweeps"];
        let mut base = Table::new("BENCH_adversarial", &headers);
        base.row(&["replay_strong".into(), "2".into()]);
        assert!(check_regression(&base.clone(), &base, 0.2).is_ok());
        let mut slower = base.clone();
        slower.rows[0][1] = "5".into();
        let errs = check_regression(&slower, &base, 0.2).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("detect_latency_sweeps")),
            "{errs:?}"
        );
        let mut faster = base.clone();
        faster.rows[0][1] = "1".into();
        assert!(check_regression(&faster, &base, 0.2).is_ok());
    }

    #[test]
    fn regression_checker_gates_shedding_metrics() {
        // Soak-bench columns: shed counts, deferral counts and the
        // fairness ratio are lower-is-better; admitted-fix rate keeps
        // the higher-is-better `rate` rule.
        let headers = [
            "scenario",
            "shed_acquire",
            "deferred_track",
            "fairness_ratio",
            "admitted_fix_rate",
        ];
        let mut base = Table::new("BENCH_soak", &headers);
        base.row(&[
            "load_3x".into(),
            "0".into(),
            "40".into(),
            "1.300".into(),
            "0.800".into(),
        ]);
        assert!(check_regression(&base.clone(), &base, 0.2).is_ok());
        for (col, worse_val, metric) in [
            (1usize, "5", "shed_acquire"),
            (2, "80", "deferred_track"),
            (3, "2.500", "fairness_ratio"),
            (4, "0.400", "admitted_fix_rate"),
        ] {
            let mut worse = base.clone();
            worse.rows[0][col] = worse_val.into();
            let errs = check_regression(&worse, &base, 0.2).unwrap_err();
            assert!(
                errs.iter().any(|e| e.contains(metric)),
                "{metric}: {errs:?}"
            );
        }
        // Improvements in every direction pass.
        let mut better = base.clone();
        better.rows[0][2] = "10".into();
        better.rows[0][3] = "1.000".into();
        better.rows[0][4] = "0.950".into();
        assert!(check_regression(&better, &base, 0.2).is_ok());
    }
}
